"""Memory controller (queue) tests."""

from repro.config import DramConfig
from repro.memory import MemoryController


def test_request_completes_after_controller_latency():
    cfg = DramConfig()
    ctrl = MemoryController(cfg)
    done = ctrl.request(0, now=0)
    assert done >= cfg.controller_latency


def test_occupancy_tracks_inflight():
    ctrl = MemoryController(DramConfig())
    ctrl.request(0, now=0)
    ctrl.request(2, now=0)
    assert ctrl.occupancy(0) == 2
    assert ctrl.occupancy(10**9) == 0


def test_queue_full_delays_speculative_requests():
    cfg = DramConfig(queue_entries=4)
    ctrl = MemoryController(cfg)
    for i in range(4):
        ctrl.request(i * 64, now=0, kind="prefetch")
    before = ctrl.queue_full_delays
    ctrl.request(999, now=0, kind="prefetch")
    assert ctrl.queue_full_delays == before + 1
    assert ctrl.total_queue_wait > 0


def test_demand_requests_bypass_full_queue():
    cfg = DramConfig(queue_entries=2)
    ctrl = MemoryController(cfg)
    for i in range(4):
        ctrl.request(i * 64, now=0, kind="runahead")
    before = ctrl.queue_full_delays
    ctrl.request(999, now=0, kind="demand")
    assert ctrl.queue_full_delays == before


def test_stats_exposed():
    ctrl = MemoryController(DramConfig())
    ctrl.request(0, now=0)
    assert ctrl.stats.requests == 1
