"""Reference interpreter tests (the golden model)."""

import pytest

from repro.isa import DataMemory, Interpreter, ProgramBuilder

from util import build_counted_loop, build_sum_array, make_memory_with_array


def run_to_halt(program, memory=None, max_insts=100_000):
    interp = Interpreter(program, memory)
    for _ in interp.run(max_insts):
        pass
    return interp


def test_counted_loop_runs_expected_iterations():
    interp = run_to_halt(build_counted_loop(10))
    assert interp.halted
    assert interp.regs[1] == 10
    # 2 setup + 10 * (addi + bne) + halt
    assert interp.retired == 2 + 20 + 1


def test_sum_array():
    values = [3, 1, 4, 1, 5, 9, 2, 6]
    memory = make_memory_with_array(0x1000, values)
    interp = run_to_halt(build_sum_array(0x1000, len(values)), memory)
    assert interp.regs[5] == sum(values)


def test_store_then_load():
    b = ProgramBuilder()
    b.li("R1", 0x2000)
    b.li("R2", 77)
    b.store("R2", "R1", 0)
    b.load("R3", "R1", 0)
    b.halt()
    interp = run_to_halt(b.build())
    assert interp.regs[3] == 77
    assert interp.memory.load(0x2000) == 77


def test_call_and_return():
    b = ProgramBuilder()
    b.call("func")
    b.li("R2", 2)         # executed after return
    b.halt()
    b.label("func")
    b.li("R1", 1)
    b.ret()
    interp = run_to_halt(b.build())
    assert interp.regs[1] == 1
    assert interp.regs[2] == 2
    assert interp.halted


def test_indirect_jump():
    b = ProgramBuilder()
    b.li("R1", 3)
    b.jr("R1")
    b.li("R2", 99)        # skipped
    b.halt()
    interp = run_to_halt(b.build())
    assert interp.regs[2] == 0


def test_zero_register_is_immutable():
    b = ProgramBuilder()
    b.li("R0", 55)
    b.add("R1", "R0", "R0")
    b.halt()
    interp = run_to_halt(b.build())
    assert interp.regs[0] == 0
    assert interp.regs[1] == 0


def test_run_respects_instruction_budget():
    b = ProgramBuilder()
    b.label("spin")
    b.jmp("spin")
    interp = Interpreter(b.build())
    count = sum(1 for _ in interp.run(500))
    assert count == 500
    assert not interp.halted


def test_step_after_halt_raises():
    b = ProgramBuilder()
    b.halt()
    interp = run_to_halt(b.build())
    with pytest.raises(RuntimeError):
        interp.step()


def test_retired_op_records_memory_access():
    b = ProgramBuilder()
    b.li("R1", 0x3000)
    b.load("R2", "R1", 8)
    b.halt()
    interp = Interpreter(b.build(), DataMemory(default_fill="zero"))
    ops = list(interp.run(10))
    load_op = ops[1]
    assert load_op.mem_addr == 0x3008
    assert load_op.dest_value == 0


def test_retired_op_records_branch_outcome():
    b = ProgramBuilder()
    b.li("R1", 1)
    b.beq("R1", "R0", "skip")
    b.label("skip")
    b.halt()
    interp = Interpreter(b.build())
    ops = list(interp.run(10))
    assert ops[1].taken is False


def test_init_regs_validation():
    b = ProgramBuilder()
    b.halt()
    with pytest.raises(ValueError):
        Interpreter(b.build(), regs=[0] * 3)
