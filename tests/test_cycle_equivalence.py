"""Cycle-equivalence suite: the optimized hot paths must be timing no-ops.

The simulator's inner loops carry several profile-guided optimizations
(static decode tables, MRU cache fast paths, indexed wakeup — see
``docs/simulator.md``).  Each one is argued to be *bit-identical* to the
straightforward implementation; this suite enforces that argument: every
workload x runahead mode must reproduce the pinned pre-optimization
reference stats exactly — cycles, IPC, every cache/DRAM counter, and
every energy-event count.

The reference (``tests/golden/cycle_equivalence.json``) was generated
from the unoptimized simulator (plus the intentional fetch ``_line_ready``
redirect fix) at small budgets.  To regenerate after an *intentional*
model change::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/test_cycle_equivalence.py -q

and commit the updated JSON together with the model change.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path

import pytest

from repro.config import build_named_config
from repro.core import simulate
from repro.workloads import workload_names

GOLDEN_PATH = Path(__file__).parent / "golden" / "cycle_equivalence.json"
REGEN = os.environ.get("REPRO_REGEN_GOLDEN") == "1"

# One named config per RunaheadMode (NONE, TRADITIONAL, BUFFER,
# BUFFER_CHAIN_CACHE, HYBRID).
CONFIGS = ("baseline", "runahead", "rab", "rab_cc", "hybrid")

INSTRUCTIONS = 2_000
WARMUP = 1_500

# Derived float metrics are recomputed from the integer counters, so a
# mismatch would be double-reported; drop them plus free-form metadata.
_SKIP_KEYS = frozenset({
    "workload", "config_name", "energy_report", "ipc", "mpki",
    "memstall_fraction", "branch_accuracy", "rab_cycle_fraction",
    "runahead_cycle_fraction", "hybrid_rab_share", "chain_cache_hit_rate",
    "chain_cache_exact_fraction", "misses_per_interval", "total_energy_j",
})


def _canonical(stats) -> dict:
    """The integer-exact projection of SimStats that must not drift."""
    out = {}
    for key, value in stats.to_dict().items():
        if key in _SKIP_KEYS:
            continue
        if isinstance(value, float):
            # chains analysis carries a few derived floats; normalize.
            value = round(value, 12)
        out[key] = value
    return out


def _simulate_cell(workload: str, config_name: str) -> dict:
    result = simulate(workload, build_named_config(config_name),
                      max_instructions=INSTRUCTIONS,
                      warmup_instructions=WARMUP)
    return _canonical(result.stats)


def _load_golden() -> dict:
    if not GOLDEN_PATH.exists():
        pytest.skip("golden reference missing; regenerate with "
                    "REPRO_REGEN_GOLDEN=1")
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def golden() -> dict:
    if REGEN:
        doc = {
            "instructions": INSTRUCTIONS,
            "warmup": WARMUP,
            "cells": {
                f"{workload}/{config}": _simulate_cell(workload, config)
                for workload in workload_names()
                for config in CONFIGS
            },
        }
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
        return doc
    return _load_golden()


@pytest.mark.parametrize("config_name", CONFIGS)
def test_cycle_identical(golden, config_name):
    assert golden["instructions"] == INSTRUCTIONS
    assert golden["warmup"] == WARMUP
    mismatches = []
    for workload in workload_names():
        reference = golden["cells"][f"{workload}/{config_name}"]
        current = _simulate_cell(workload, config_name)
        if current != reference:
            diffs = []
            for key in sorted(set(reference) | set(current)):
                ref_v, cur_v = reference.get(key), current.get(key)
                if ref_v != cur_v:
                    diffs.append(f"{key}: ref={ref_v!r} cur={cur_v!r}")
            mismatches.append(f"{workload}: " + "; ".join(diffs[:8]))
    assert not mismatches, (
        f"{config_name}: stats drifted from the pinned reference on "
        f"{len(mismatches)} workload(s):\n  " + "\n  ".join(mismatches)
    )


# -- port / component-graph refactor -----------------------------------------
#
# The core↔memory seam is an explicit port graph (repro.memory.ports):
# every golden cell above already exercises it, because the default
# single-core hierarchy now reaches its LLC complex through a DirectLink.
# These tests make the refactor's contract explicit: the graph is real
# (not vestigial), and driving the same cells through the *multi-core*
# construction path (System with N=1) reproduces the pinned reference
# bit-for-bit — the golden file needs zero changes for the refactor.

PORT_SAMPLE_WORKLOADS = ("mcf", "lbm", "omnetpp", "libquantum")


def test_default_hierarchy_routes_through_the_port_graph():
    from repro.config import build_named_config
    from repro.core.processor import Processor
    from repro.memory import DirectLink, SharedLLC
    from repro.workloads import build_workload

    workload = build_workload("mcf")
    proc = Processor(workload.program, build_named_config("rab_cc"),
                     memory=workload.memory, init_regs=workload.init_regs)
    assert isinstance(proc.hierarchy.port, DirectLink)
    assert isinstance(proc.hierarchy.shared, SharedLLC)
    assert proc.hierarchy.port.endpoint is proc.hierarchy.shared
    assert proc.hierarchy.llc is proc.hierarchy.shared.llc


@pytest.mark.parametrize("config_name", ("baseline", "rab_cc"))
def test_port_graph_single_core_matches_golden(golden, config_name):
    from repro import simulate_multicore

    mismatches = []
    for workload in PORT_SAMPLE_WORKLOADS:
        reference = golden["cells"][f"{workload}/{config_name}"]
        result = simulate_multicore([workload], cores=1,
                                    configs=[config_name],
                                    max_instructions=INSTRUCTIONS,
                                    warmup_instructions=WARMUP)
        if _canonical(result.per_core[0]) != reference:
            mismatches.append(workload)
    assert not mismatches, (
        f"{config_name}: the N=1 component-graph path drifted from the "
        f"pinned single-core reference on {mismatches}")


def test_golden_covers_full_grid(golden):
    expected = {f"{w}/{c}" for w in workload_names() for c in CONFIGS}
    assert expected == set(golden["cells"])
    # Sanity: the reference itself must describe real runs.
    for key, cell in golden["cells"].items():
        assert cell["committed_insts"] >= INSTRUCTIONS, key
        assert cell["cycles"] > 0, key
        assert math.isfinite(cell["cycles"]), key
