"""Shared test fixtures."""

import pytest

from repro.config import default_system


@pytest.fixture
def system_config():
    return default_system()
