"""Smoke tests: every example script runs to completion.

Examples are documentation; a broken example is a broken promise.  Each
script is executed in-process (imported as ``__main__``-style) with small
argv budgets so the whole file stays fast.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv: list[str], capsys) -> str:
    script = EXAMPLES / name
    assert script.exists(), script
    old_argv = sys.argv
    sys.argv = [str(script)] + argv
    try:
        runpy.run_path(str(script), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", ["mcf", "2000"], capsys)
    assert "runahead buffer" in out
    assert "speedup" in out


def test_chain_anatomy(capsys):
    out = run_example("chain_anatomy.py", [], capsys)
    assert "extracted chain" in out
    assert "on the dependence chain" in out


def test_memory_wall(capsys):
    out = run_example("memory_wall.py", [], capsys)
    assert "list walk" in out
    assert "gather" in out


def test_custom_workload(capsys):
    out = run_example("custom_workload.py", [], capsys)
    assert "best policy" in out
    assert "chain cache" in out


def test_energy_breakdown(capsys):
    out = run_example("energy_breakdown.py", ["mcf"], capsys)
    assert "front-end" in out
    assert "clock-gating" in out


def test_interval_timeline(capsys):
    out = run_example("interval_timeline.py", ["mcf", "2000"], capsys)
    assert "intervals" in out
    assert "committed instructions" in out
