"""DDR3 DRAM timing model tests."""

from hypothesis import given, settings, strategies as st

from repro.config import DramConfig
from repro.memory import Dram


def make_dram(**overrides):
    return Dram(DramConfig(**overrides))


class TestAddressMapping:
    def test_channel_interleaving(self):
        dram = make_dram()
        ch0 = dram.map_address(0)[0]
        ch1 = dram.map_address(1)[0]
        assert ch0 != ch1

    def test_consecutive_channel_lines_share_row(self):
        dram = make_dram()
        # Lines 0 and 2 are consecutive within channel 0: same bank+row.
        _, bank0, row0 = dram.map_address(0)
        _, bank2, row2 = dram.map_address(2)
        assert (bank0, row0) == (bank2, row2)

    def test_aligned_regions_spread_across_banks(self):
        """Regression test: 64 MB-aligned regions must not all map to one
        bank (the pathology XOR bank hashing exists to fix)."""
        dram = make_dram()
        region_lines = (64 << 20) >> 6
        banks = {dram.map_address(k * region_lines)[1] for k in range(1, 9)}
        assert len(banks) >= 3

    @given(line=st.integers(min_value=0, max_value=2**40))
    def test_mapping_in_range(self, line):
        dram = make_dram()
        channel, bank, row = dram.map_address(line)
        assert 0 <= channel < 2
        assert 0 <= bank < 8
        assert row >= 0


class TestTiming:
    def test_row_miss_then_hit(self):
        cfg = DramConfig()
        dram = Dram(cfg)
        first = dram.access(0, now=0)
        # First access: empty bank -> activate + CAS + burst.
        assert first == cfg.t_rcd + cfg.t_cas + cfg.t_burst
        assert dram.stats.row_misses == 1
        # Immediate re-access to the same row: row hit (cheaper).
        second = dram.access(0, now=first)
        assert second - first <= cfg.t_cas + cfg.t_burst
        assert dram.stats.row_hits == 1

    def test_row_conflict_costs_most(self):
        cfg = DramConfig(row_timeout=10**9)
        dram = Dram(cfg)
        lines_per_row = cfg.row_bytes // 64
        t1 = dram.access(0, now=0)
        # Same channel+bank, different row: full precharge cycle.
        conflict_line = 2 * lines_per_row * 8  # same bank after /channels
        # Find a line that actually conflicts (same channel+bank, new row).
        base = dram.map_address(0)
        other = None
        line = 2
        while other is None:
            m = dram.map_address(line)
            if m[0] == base[0] and m[1] == base[1] and m[2] != base[2]:
                other = line
            line += 2
        t2 = dram.access(other, now=t1)
        assert t2 - t1 >= cfg.t_rp + cfg.t_rcd + cfg.t_cas
        assert dram.stats.row_conflicts == 1
        del conflict_line

    def test_row_timeout_closes_idle_row(self):
        cfg = DramConfig(row_timeout=50)
        dram = Dram(cfg)
        t1 = dram.access(0, now=0)
        dram.access(0, now=t1 + 1000)  # long idle gap
        assert dram.stats.row_hits == 0
        assert dram.stats.row_misses == 2

    def test_bank_serialization(self):
        dram = make_dram()
        t1 = dram.access(0, now=0)
        t2 = dram.access(0, now=0)   # same bank, same instant
        assert t2 > t1

    def test_demand_priority_caps_wait(self):
        cfg = DramConfig()
        dram = Dram(cfg)
        # Flood one bank with speculative requests.
        last = 0
        for _ in range(10):
            last = dram.access(0, now=0, kind="runahead")
        backlogged = last
        # A priority (demand) request does not wait for the whole backlog.
        demand_done = dram.access(0, now=0, kind="demand")
        assert demand_done < backlogged

    def test_stats_by_kind(self):
        dram = make_dram()
        dram.access(0, 0, kind="demand")
        dram.access(2, 0, kind="prefetch")
        dram.access(4, 0, is_write=True, kind="writeback")
        assert dram.stats.by_kind == {"demand": 1, "prefetch": 1,
                                      "writeback": 1}
        assert dram.stats.reads == 2
        assert dram.stats.writes == 1

    def test_reset_stats(self):
        dram = make_dram()
        dram.access(0, 0)
        dram.reset_stats()
        assert dram.stats.requests == 0

    @given(lines=st.lists(st.integers(min_value=0, max_value=10_000),
                          min_size=1, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_completion_always_after_request(self, lines):
        dram = make_dram()
        now = 0
        for line in lines:
            done = dram.access(line, now)
            assert done > now
            now += 7
