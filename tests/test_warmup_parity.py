"""Warm-up/oracle parity: the fast-forward tier's foundation.

``Processor.warm_up`` (and ``Processor.fast_forward``, which it wraps)
must agree with the ``repro.isa.interpreter`` oracle bit for bit on
architectural state — final registers, memory image, PC, halt flag — and
``Interpreter.run_warm`` (the batched loop the warm path executes) must
report the exact same retirement stream as the step-by-step oracle,
because the two-tier engine substitutes one for the other between
sampled detailed windows.

``test_*_over_fuzz_corpus`` run the differential over the
``repro.verify`` fuzz corpus (>= 100 seeds).  The two regression tests
at the bottom were written against the pre-fix ``warm_up`` and fail
without the fixes in ``repro.core.processor``:

* halt boundary — warm_up on an already-halted processor built a fresh
  (non-halted) interpreter at ``fetch.pc`` and executed the code placed
  *after* the HALT (the fuzz corpus parks CALL subroutines there),
  corrupting registers and memory and un-halting the core;
* speculative handoff — warm_up mid-run started the interpreter at the
  speculative ``fetch.pc`` with only committed register state, skipping
  every in-flight instruction (their stores and register writes were
  lost) and inheriting a possibly wrong-path PC.  The fix collapses to
  the architectural point (``sync_architectural``) and replays from
  there functionally.
"""

from __future__ import annotations

import pytest

from repro.config import build_named_config
from repro.core.processor import Processor
from repro.isa import Interpreter
from repro.verify.fuzz import build_fuzz_program

# Acceptance floor: the differential must cover >= 100 fuzz seeds.
PARITY_SEEDS = 120
PARITY_BUDGET = 1_500
PARITY_TARGET_INSTS = 1_200


def _oracle(fuzz, budget: int):
    """Step-by-step reference run; returns (interp, retired ops)."""
    interp = Interpreter(fuzz.program, fuzz.memory())
    ops = list(interp.run(budget))
    return interp, ops


def _run_warm(fuzz, budget: int):
    """Batched run recording every callback; returns (interp, executed,
    ifetch stream, memory stream, branch stream)."""
    interp = Interpreter(fuzz.program, fuzz.memory())
    pcs: list[int] = []
    mems: list[int] = []
    branches: list[tuple[int, bool, int]] = []
    executed = interp.run_warm(
        budget,
        on_ifetch=pcs.append,
        on_mem=mems.append,
        on_branch=lambda pc, inst, taken, nxt: branches.append(
            (pc, taken, nxt)),
    )
    return interp, executed, pcs, mems, branches


def test_run_warm_matches_step_over_fuzz_corpus():
    """The batched loop re-implements step(); the streams keep it honest."""
    failures = []
    for seed in range(PARITY_SEEDS):
        fuzz = build_fuzz_program(seed, target_insts=PARITY_TARGET_INSTS)
        oracle, ops = _oracle(fuzz, PARITY_BUDGET)
        warm, executed, pcs, mems, branches = _run_warm(fuzz, PARITY_BUDGET)
        for what, got, want in (
            ("executed", executed, len(ops)),
            ("retirement stream", pcs, [op.pc for op in ops]),
            ("memory stream", mems,
             [op.mem_addr for op in ops if op.mem_addr is not None]),
            ("branch stream", branches,
             [(op.pc, op.taken, op.next_pc) for op in ops
              if op.inst.is_branch]),
            ("regs", warm.regs, oracle.regs),
            ("pc", warm.pc, oracle.pc),
            ("halted", warm.halted, oracle.halted),
            ("retired", warm.retired, oracle.retired),
            ("memory", warm.memory.snapshot(), oracle.memory.snapshot()),
        ):
            if got != want:
                failures.append(f"seed {seed}: {what} diverged")
                break
    assert not failures, (
        f"{len(failures)}/{PARITY_SEEDS} seeds diverged:\n  "
        + "\n  ".join(failures[:10])
    )


def test_warmup_matches_oracle_over_fuzz_corpus():
    """warm_up on a fresh processor lands on the oracle's state exactly."""
    failures = []
    for seed in range(PARITY_SEEDS):
        fuzz = build_fuzz_program(seed, target_insts=PARITY_TARGET_INSTS)
        interp, ops = _oracle(fuzz, PARITY_BUDGET)
        proc = Processor(fuzz.program, build_named_config("baseline"),
                         memory=fuzz.memory())
        executed = proc.warm_up(PARITY_BUDGET)
        for what, got, want in (
            ("executed", executed, len(ops)),
            ("regs", proc.rename.arch_values(), interp.regs),
            ("pc", proc.fetch.pc, interp.pc),
            ("halted", proc.halted, interp.halted),
            ("memory", proc.memory.snapshot(), interp.memory.snapshot()),
        ):
            if got != want:
                failures.append(f"seed {seed}: {what} diverged")
                break
    assert not failures, (
        f"{len(failures)}/{PARITY_SEEDS} seeds diverged:\n  "
        + "\n  ".join(failures[:10])
    )


def test_warmup_executed_count_stops_at_halt():
    # A budget far past the program's end: parity requires stopping at
    # HALT with the oracle's retired count, not the budget.
    fuzz = build_fuzz_program(11, target_insts=600)
    interp, ops = _oracle(fuzz, 10 ** 6)
    assert interp.halted, "fuzz programs must terminate"
    proc = Processor(fuzz.program, build_named_config("baseline"),
                     memory=fuzz.memory())
    assert proc.warm_up(10 ** 6) == len(ops)
    assert proc.halted


# ---------------------------------------------------------------------------
# Pre-fix-failing regressions.
# ---------------------------------------------------------------------------

def test_warmup_after_halt_is_inert():
    """Regression (halt boundary): warming a halted processor must be a
    no-op — the pre-fix warm_up fell off the HALT into the subroutine
    region and re-executed code."""
    fuzz = build_fuzz_program(3, target_insts=800)
    assert fuzz.spec.subroutines, "seed must park code after the HALT"
    proc = Processor(fuzz.program, build_named_config("baseline"),
                     memory=fuzz.memory())
    proc.warm_up(10 ** 6)
    assert proc.halted
    regs = proc.rename.arch_values()
    pc = proc.fetch.pc
    mem = proc.memory.snapshot()

    assert proc.warm_up(500) == 0
    assert proc.halted, "warm_up un-halted a finished program"
    assert proc.fetch.pc == pc
    assert proc.rename.arch_values() == regs
    assert proc.memory.snapshot() == mem


@pytest.mark.parametrize("config_name", ["baseline", "rab_cc"])
def test_warmup_mid_run_replays_from_architectural_point(config_name):
    """Regression (speculative handoff / store ordering): warm_up after a
    partial detailed run must land on the same state as the oracle
    executing committed + fast-forwarded instructions from scratch.  The
    pre-fix warm_up jumped to the speculative fetch PC, silently dropping
    every in-flight instruction (including uncommitted stores)."""
    fuzz = build_fuzz_program(7, target_insts=4_000)
    proc = Processor(fuzz.program, build_named_config(config_name),
                     memory=fuzz.memory())
    proc.run(600)
    assert not proc.halted
    committed = proc.committed
    executed = proc.warm_up(800)
    assert executed > 0

    oracle = Interpreter(fuzz.program, fuzz.memory())
    for _ in oracle.run(committed + executed):
        pass
    assert proc.fetch.pc == oracle.pc
    assert proc.rename.arch_values() == oracle.regs
    assert proc.memory.snapshot() == oracle.memory.snapshot()
    assert proc.halted == oracle.halted
