"""Warm-up/oracle parity: the fast-forward tier's foundation.

``Processor.warm_up`` (and ``Processor.fast_forward``, which it wraps)
must agree with the ``repro.isa.interpreter`` oracle bit for bit on
architectural state — final registers, memory image, PC, halt flag — and
``Interpreter.run_warm`` (the batched loop the warm path executes) must
report the exact same retirement stream as the step-by-step oracle,
because the two-tier engine substitutes one for the other between
sampled detailed windows.

``test_*_over_fuzz_corpus`` run the differential over the
``repro.verify`` fuzz corpus (>= 100 seeds).  The two regression tests
at the bottom were written against the pre-fix ``warm_up`` and fail
without the fixes in ``repro.core.processor``:

* halt boundary — warm_up on an already-halted processor built a fresh
  (non-halted) interpreter at ``fetch.pc`` and executed the code placed
  *after* the HALT (the fuzz corpus parks CALL subroutines there),
  corrupting registers and memory and un-halting the core;
* speculative handoff — warm_up mid-run started the interpreter at the
  speculative ``fetch.pc`` with only committed register state, skipping
  every in-flight instruction (their stores and register writes were
  lost) and inheriting a possibly wrong-path PC.  The fix collapses to
  the architectural point (``sync_architectural``) and replays from
  there functionally.
"""

from __future__ import annotations

import pytest

from repro.config import build_named_config
from repro.core.processor import Processor
from repro.fastpath.blockjit import INST_BYTES, WarmTargets
from repro.frontend.branch_predictor import BranchPredictor
from repro.isa import Interpreter
from repro.memory.hierarchy import MemoryHierarchy
from repro.verify.fuzz import build_fuzz_program
from repro.workloads import build_workload

# Acceptance floor: the differential must cover >= 100 fuzz seeds.
PARITY_SEEDS = 120
PARITY_BUDGET = 1_500
PARITY_TARGET_INSTS = 1_200


def _oracle(fuzz, budget: int):
    """Step-by-step reference run; returns (interp, retired ops)."""
    interp = Interpreter(fuzz.program, fuzz.memory())
    ops = list(interp.run(budget))
    return interp, ops


def _run_warm(fuzz, budget: int):
    """Batched run recording every callback; returns (interp, executed,
    ifetch stream, memory stream, branch stream)."""
    interp = Interpreter(fuzz.program, fuzz.memory())
    pcs: list[int] = []
    mems: list[int] = []
    branches: list[tuple[int, bool, int]] = []
    executed = interp.run_warm(
        budget,
        on_ifetch=pcs.append,
        on_mem=mems.append,
        on_branch=lambda pc, inst, taken, nxt: branches.append(
            (pc, taken, nxt)),
    )
    return interp, executed, pcs, mems, branches


def test_run_warm_matches_step_over_fuzz_corpus():
    """The batched loop re-implements step(); the streams keep it honest."""
    failures = []
    for seed in range(PARITY_SEEDS):
        fuzz = build_fuzz_program(seed, target_insts=PARITY_TARGET_INSTS)
        oracle, ops = _oracle(fuzz, PARITY_BUDGET)
        warm, executed, pcs, mems, branches = _run_warm(fuzz, PARITY_BUDGET)
        for what, got, want in (
            ("executed", executed, len(ops)),
            ("retirement stream", pcs, [op.pc for op in ops]),
            ("memory stream", mems,
             [op.mem_addr for op in ops if op.mem_addr is not None]),
            ("branch stream", branches,
             [(op.pc, op.taken, op.next_pc) for op in ops
              if op.inst.is_branch]),
            ("regs", warm.regs, oracle.regs),
            ("pc", warm.pc, oracle.pc),
            ("halted", warm.halted, oracle.halted),
            ("retired", warm.retired, oracle.retired),
            ("memory", warm.memory.snapshot(), oracle.memory.snapshot()),
        ):
            if got != want:
                failures.append(f"seed {seed}: {what} diverged")
                break
    assert not failures, (
        f"{len(failures)}/{PARITY_SEEDS} seeds diverged:\n  "
        + "\n  ".join(failures[:10])
    )


def test_warmup_matches_oracle_over_fuzz_corpus():
    """warm_up on a fresh processor lands on the oracle's state exactly."""
    failures = []
    for seed in range(PARITY_SEEDS):
        fuzz = build_fuzz_program(seed, target_insts=PARITY_TARGET_INSTS)
        interp, ops = _oracle(fuzz, PARITY_BUDGET)
        proc = Processor(fuzz.program, build_named_config("baseline"),
                         memory=fuzz.memory())
        executed = proc.warm_up(PARITY_BUDGET)
        for what, got, want in (
            ("executed", executed, len(ops)),
            ("regs", proc.rename.arch_values(), interp.regs),
            ("pc", proc.fetch.pc, interp.pc),
            ("halted", proc.halted, interp.halted),
            ("memory", proc.memory.snapshot(), interp.memory.snapshot()),
        ):
            if got != want:
                failures.append(f"seed {seed}: {what} diverged")
                break
    assert not failures, (
        f"{len(failures)}/{PARITY_SEEDS} seeds diverged:\n  "
        + "\n  ".join(failures[:10])
    )


def test_warmup_executed_count_stops_at_halt():
    # A budget far past the program's end: parity requires stopping at
    # HALT with the oracle's retired count, not the budget.
    fuzz = build_fuzz_program(11, target_insts=600)
    interp, ops = _oracle(fuzz, 10 ** 6)
    assert interp.halted, "fuzz programs must terminate"
    proc = Processor(fuzz.program, build_named_config("baseline"),
                     memory=fuzz.memory())
    assert proc.warm_up(10 ** 6) == len(ops)
    assert proc.halted


# ---------------------------------------------------------------------------
# Block-jit lane differential (see repro.fastpath.blockjit): the compiled
# fast-forward lane must be interchangeable with run_warm — identical
# callback event streams in events mode, identical warmed hardware state
# in warm mode.
# ---------------------------------------------------------------------------

# Uneven budget schedule: exercises mid-block entry PCs, budget tails
# (the per-op fallback inside run_warm_jit) and resume-from-arbitrary-pc.
JIT_CHUNKS = (7, 113, 1, 64, 500, 9, 1000, 5000)


def _run_warm_jit(fuzz, budget: int):
    """run_warm_jit driven in uneven chunks, recording every callback."""
    interp = Interpreter(fuzz.program, fuzz.memory())
    pcs: list[int] = []
    mems: list[int] = []
    branches: list[tuple[int, bool, int]] = []
    executed = 0
    for chunk in (*JIT_CHUNKS, budget):
        if executed >= budget or interp.halted:
            break
        executed += interp.run_warm_jit(
            min(chunk, budget - executed),
            on_ifetch=pcs.append,
            on_mem=mems.append,
            on_branch=lambda pc, inst, taken, nxt: branches.append(
                (pc, taken, nxt)),
        )
    return interp, executed, pcs, mems, branches


def test_run_warm_jit_matches_run_warm_over_fuzz_corpus():
    """Events mode: the compiled lane's callback streams and final
    architectural state must be bit-identical to ``run_warm``'s."""
    failures = []
    for seed in range(PARITY_SEEDS):
        fuzz = build_fuzz_program(seed, target_insts=PARITY_TARGET_INSTS)
        ref, executed, pcs, mems, branches = _run_warm(fuzz, PARITY_BUDGET)
        fuzz2 = build_fuzz_program(seed, target_insts=PARITY_TARGET_INSTS)
        jit, jexecuted, jpcs, jmems, jbranches = _run_warm_jit(
            fuzz2, PARITY_BUDGET)
        for what, got, want in (
            ("executed", jexecuted, executed),
            ("retirement stream", jpcs, pcs),
            ("memory stream", jmems, mems),
            ("branch stream", jbranches, branches),
            ("regs", jit.regs, ref.regs),
            ("pc", jit.pc, ref.pc),
            ("halted", jit.halted, ref.halted),
            ("retired", jit.retired, ref.retired),
            ("memory", jit.memory.snapshot(), ref.memory.snapshot()),
        ):
            if got != want:
                failures.append(f"seed {seed}: {what} diverged")
                break
    assert not failures, (
        f"{len(failures)}/{PARITY_SEEDS} seeds diverged:\n  "
        + "\n  ".join(failures[:10])
    )


def _cache_state(cache):
    """Full observable cache state: per-set contents in LRU order plus
    the MRU key (so elided touches can't hide)."""
    return ([[(k, (ln.ready_cycle, ln.dirty)) for k, ln in s.items()]
             for s in cache._sets], cache._mru_key)


def _pred_state(pred):
    return (bytes(pred._gshare), bytes(pred._bimodal), bytes(pred._chooser),
            pred.ghr, dict(pred._btb), list(pred._ras), pred._ras_sp,
            (pred.stats.cond_predictions, pred.stats.cond_mispredicts,
             pred.stats.btb_misses, pred.stats.ras_predictions))


def _warm_lane(program, memory, budget: int, jit: bool):
    """One fast-forward lane against fresh caches/predictor, mirroring
    the closures ``Processor.fast_forward`` builds; returns every piece
    of state the lane is allowed to touch."""
    cfg = build_named_config("baseline")
    interp = Interpreter(program, memory)
    hierarchy = MemoryHierarchy(cfg)
    pred = BranchPredictor(cfg.branch)
    prev_taken: dict[int, bool] = {}
    l1i = hierarchy.l1i
    warm_ifetch = hierarchy.warm_ifetch
    shift = ((l1i.line_bytes.bit_length() - 1)
             - (INST_BYTES.bit_length() - 1))

    def on_ifetch(pc):
        line = pc >> shift
        if line == l1i._mru_key and l1i._mru_line.ready_cycle <= 0:
            return
        warm_ifetch(pc * INST_BYTES)

    def on_branch(pc, inst, taken, next_pc):
        if inst.is_conditional_branch:
            mispred = prev_taken.get(pc, False) != taken
            pred.update(pc, inst, taken, next_pc, mispred)
            prev_taken[pc] = taken
        elif inst.is_branch:
            pred.update(pc, inst, True, next_pc, False)

    if jit:
        warm = WarmTargets(hierarchy=hierarchy, predictor=pred,
                           prev_taken=prev_taken, pc_line_shift=shift)
        executed = 0
        for chunk in (*JIT_CHUNKS, budget):
            if executed >= budget or interp.halted:
                break
            executed += interp.run_warm_jit(
                min(chunk, budget - executed), on_ifetch=on_ifetch,
                on_mem=hierarchy.warm_load, on_branch=on_branch, warm=warm)
    else:
        executed = interp.run_warm(budget, on_ifetch=on_ifetch,
                                   on_mem=hierarchy.warm_load,
                                   on_branch=on_branch)
    return {
        "executed": executed,
        "regs": interp.regs,
        "pc": interp.pc,
        "halted": interp.halted,
        "memory": interp.memory.snapshot(),
        "l1d": _cache_state(hierarchy.l1d),
        "l1i": _cache_state(hierarchy.l1i),
        "llc": _cache_state(hierarchy.llc),
        "pred": _pred_state(pred),
        "prev_taken": dict(prev_taken),
    }


def test_warm_lane_state_parity_over_fuzz_corpus():
    """Warm mode: caches (LRU order + MRU), predictor tables/BTB/GHR/RAS
    and stats, and architectural state all bit-identical across lanes."""
    failures = []
    for seed in range(PARITY_SEEDS):
        fa = build_fuzz_program(seed, target_insts=PARITY_TARGET_INSTS)
        fb = build_fuzz_program(seed, target_insts=PARITY_TARGET_INSTS)
        ref = _warm_lane(fa.program, fa.memory(), PARITY_BUDGET, jit=False)
        jit = _warm_lane(fb.program, fb.memory(), PARITY_BUDGET, jit=True)
        for what in ref:
            if ref[what] != jit[what]:
                failures.append(f"seed {seed}: {what} diverged")
                break
    assert not failures, (
        f"{len(failures)}/{PARITY_SEEDS} seeds diverged:\n  "
        + "\n  ".join(failures[:10])
    )


@pytest.mark.parametrize("workload", ["mcf", "milc", "libquantum", "lbm"])
def test_warm_lane_state_parity_on_workloads(workload):
    """Same differential on the real kernels, where loop superblocks,
    the batched branch trainer and the flat miss paths actually fire."""
    wa = build_workload(workload)
    wb = build_workload(workload)
    ref = _warm_lane(wa.program, wa.memory, 50_000, jit=False)
    jit = _warm_lane(wb.program, wb.memory, 50_000, jit=True)
    for what in ref:
        assert ref[what] == jit[what], f"{workload}: {what} diverged"


# ---------------------------------------------------------------------------
# Lane-equivalence gate (repro.fastpath.checkpoint): both fast-forward
# lanes must materialize byte-identical warm-state snapshots at every
# stride boundary.  This is strictly stronger than state parity above —
# it pins the *canonical serialization* (snapshot_bytes), which is what
# checkpoint keys and the content-addressed store hash.  A lane whose
# snapshots drifted would silently split the store into per-lane chains.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("workload", ["mcf", "libquantum"])
def test_ff_lane_snapshots_byte_identical_at_stride_boundaries(workload):
    from repro.fastpath import snapshot_bytes, snapshot_digest

    stride = 10_000
    boundaries = 5
    wa = build_workload(workload)
    wb = build_workload(workload)
    jit = Processor(wa.program, build_named_config("baseline"),
                    memory=wa.memory)
    interp = Processor(wb.program, build_named_config("baseline"),
                       memory=wb.memory)
    assert (snapshot_bytes(jit.snapshot())
            == snapshot_bytes(interp.snapshot())), "entry states differ"
    for boundary in range(1, boundaries + 1):
        assert jit.fast_forward(stride, lane="jit") == stride
        assert interp.fast_forward(stride, lane="interp") == stride
        a, b = jit.snapshot(), interp.snapshot()
        assert snapshot_bytes(a) == snapshot_bytes(b), (
            f"{workload}: lanes diverged at stride boundary {boundary} "
            f"({snapshot_digest(a)[:12]} != {snapshot_digest(b)[:12]})")


def test_ff_lane_snapshots_byte_identical_over_fuzz_corpus():
    """Same gate over fuzz seeds (uneven strides, mid-block boundaries)."""
    from repro.fastpath import snapshot_bytes

    failures = []
    for seed in range(0, PARITY_SEEDS, 8):
        fa = build_fuzz_program(seed, target_insts=PARITY_TARGET_INSTS)
        fb = build_fuzz_program(seed, target_insts=PARITY_TARGET_INSTS)
        jit = Processor(fa.program, build_named_config("baseline"),
                        memory=fa.memory())
        interp = Processor(fb.program, build_named_config("baseline"),
                           memory=fb.memory())
        for chunk in JIT_CHUNKS:
            jit.fast_forward(chunk, lane="jit")
            interp.fast_forward(chunk, lane="interp")
            if (snapshot_bytes(jit.snapshot())
                    != snapshot_bytes(interp.snapshot())):
                failures.append(f"seed {seed}: diverged after +{chunk}")
                break
    assert not failures, "\n".join(failures)


# ---------------------------------------------------------------------------
# Pre-fix-failing regressions.
# ---------------------------------------------------------------------------

def test_warmup_after_halt_is_inert():
    """Regression (halt boundary): warming a halted processor must be a
    no-op — the pre-fix warm_up fell off the HALT into the subroutine
    region and re-executed code."""
    fuzz = build_fuzz_program(3, target_insts=800)
    assert fuzz.spec.subroutines, "seed must park code after the HALT"
    proc = Processor(fuzz.program, build_named_config("baseline"),
                     memory=fuzz.memory())
    proc.warm_up(10 ** 6)
    assert proc.halted
    regs = proc.rename.arch_values()
    pc = proc.fetch.pc
    mem = proc.memory.snapshot()

    assert proc.warm_up(500) == 0
    assert proc.halted, "warm_up un-halted a finished program"
    assert proc.fetch.pc == pc
    assert proc.rename.arch_values() == regs
    assert proc.memory.snapshot() == mem


@pytest.mark.parametrize("config_name", ["baseline", "rab_cc"])
def test_warmup_mid_run_replays_from_architectural_point(config_name):
    """Regression (speculative handoff / store ordering): warm_up after a
    partial detailed run must land on the same state as the oracle
    executing committed + fast-forwarded instructions from scratch.  The
    pre-fix warm_up jumped to the speculative fetch PC, silently dropping
    every in-flight instruction (including uncommitted stores)."""
    fuzz = build_fuzz_program(7, target_insts=4_000)
    proc = Processor(fuzz.program, build_named_config(config_name),
                     memory=fuzz.memory())
    proc.run(600)
    assert not proc.halted
    committed = proc.committed
    executed = proc.warm_up(800)
    assert executed > 0

    oracle = Interpreter(fuzz.program, fuzz.memory())
    for _ in oracle.run(committed + executed):
        pass
    assert proc.fetch.pc == oracle.pc
    assert proc.rename.arch_values() == oracle.regs
    assert proc.memory.snapshot() == oracle.memory.snapshot()
    assert proc.halted == oracle.halted
