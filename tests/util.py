"""Shared program-building helpers for tests."""

from __future__ import annotations

from repro import DataMemory, ProgramBuilder


def build_counted_loop(iterations: int, body=None):
    """A loop running ``iterations`` times then HALT.

    ``body(builder)`` may emit extra instructions inside the loop.
    Register conventions: R1 counts up, R2 holds the bound.
    """
    b = ProgramBuilder()
    b.li("R1", 0)
    b.li("R2", iterations)
    b.label("loop")
    if body is not None:
        body(b)
    b.addi("R1", "R1", 1)
    b.bne("R1", "R2", "loop")
    b.halt()
    return b.build(name="counted_loop")


def build_sum_array(base: int, count: int):
    """Sum ``count`` words starting at ``base`` into R5, then HALT."""
    b = ProgramBuilder()
    b.li("R1", base)
    b.li("R2", base + 8 * count)
    b.li("R5", 0)
    b.label("loop")
    b.load("R3", "R1", 0)
    b.add("R5", "R5", "R3")
    b.addi("R1", "R1", 8)
    b.bne("R1", "R2", "loop")
    b.halt()
    return b.build(name="sum_array")


def make_memory_with_array(base: int, values):
    memory = DataMemory()
    for i, value in enumerate(values):
        memory.store(base + 8 * i, value)
    return memory
