"""Runahead execution tests: traditional, buffer, chain cache, hybrid.

Two families of checks: (a) *correctness* — runahead is speculative, so
architectural results must still equal the reference interpreter exactly;
(b) *mechanism* — intervals happen, MLP is generated, the front-end is
gated in buffer mode, policies decide as the paper's Fig. 8 describes.
"""

import pytest

from repro import DataMemory, Interpreter, ProgramBuilder
from repro.config import RunaheadMode, make_config
from repro.core import Processor
from repro.workloads import gather, hash_probe, linked_list, streaming


def gather_workload():
    return gather("t_gather", index_region_bytes=4 << 20,
                  data_region_bytes=32 << 20, deref_depth=1, filler_int=4)


def run_mode(workload_fn, mode, insts=3000, warmup=2000, **cfg_kwargs):
    wl = workload_fn()
    cfg = make_config(mode, **cfg_kwargs)
    proc = Processor(wl.program, cfg, memory=wl.memory)
    proc.warm_up(warmup)
    stats = proc.run(insts)
    return proc, stats


class TestCorrectnessUnderRunahead:
    """Runahead must never change architectural results."""

    @pytest.mark.parametrize("mode", [
        RunaheadMode.TRADITIONAL,
        RunaheadMode.BUFFER,
        RunaheadMode.BUFFER_CHAIN_CACHE,
        RunaheadMode.HYBRID,
    ])
    def test_arch_state_matches_interpreter(self, mode):
        wl = gather_workload()
        proc = Processor(wl.program, make_config(mode), memory=wl.memory)
        stats = proc.run(2000)
        assert stats.runahead_intervals > 0, "runahead never triggered"

        ref = gather_workload()
        interp = Interpreter(ref.program, ref.memory)
        for _ in interp.run(proc.committed):
            pass
        assert proc.rename.arch_values() == interp.regs
        assert proc.memory.snapshot() == interp.memory.snapshot()

    def test_runahead_stores_never_reach_memory(self):
        """Stores pseudo-retired during runahead go to the runahead cache,
        not to architectural memory."""
        wl = gather("t_st", deref_depth=1, store=True)
        proc = Processor(wl.program, make_config(RunaheadMode.TRADITIONAL),
                         memory=wl.memory)
        proc.run(2000)
        ref = gather("t_st", deref_depth=1, store=True)
        interp = Interpreter(ref.program, ref.memory)
        for _ in interp.run(proc.committed):
            pass
        assert proc.memory.snapshot() == interp.memory.snapshot()


class TestTraditionalRunahead:
    def test_intervals_and_mlp(self):
        proc, stats = run_mode(gather_workload, RunaheadMode.TRADITIONAL)
        assert stats.runahead_intervals > 0
        assert stats.runahead_misses_generated > 0
        assert stats.runahead_pseudo_retired > 0
        assert stats.cycles_in_traditional > 0
        assert stats.cycles_in_rab == 0

    def test_performance_improves_on_gather(self):
        _, base = run_mode(gather_workload, RunaheadMode.NONE)
        _, ra = run_mode(gather_workload, RunaheadMode.TRADITIONAL)
        assert ra.ipc > base.ipc * 1.05

    def test_poisoned_ops_counted(self):
        _, stats = run_mode(gather_workload, RunaheadMode.TRADITIONAL)
        assert stats.inv_ops > 0

    def test_no_help_for_serial_pointer_chase(self):
        """A pure linked-list walk has its source data off chip: no
        runahead scheme can generate MLP for it (Fig. 2's complement)."""
        make = lambda: linked_list("t_list", num_nodes=1 << 15)
        _, base = run_mode(make, RunaheadMode.NONE, insts=1500, warmup=500)
        _, ra = run_mode(make, RunaheadMode.TRADITIONAL, insts=1500,
                         warmup=500)
        assert ra.ipc < base.ipc * 1.10  # no real gain

    def test_enhancements_reduce_intervals(self):
        _, plain = run_mode(gather_workload, RunaheadMode.TRADITIONAL)
        _, enh = run_mode(gather_workload, RunaheadMode.TRADITIONAL,
                          enhancements=True)
        assert enh.runahead_intervals <= plain.runahead_intervals
        assert enh.entries_blocked_enh >= 0


class TestRunaheadBuffer:
    def test_chain_loop_generates_mlp(self):
        # A big loop body with a tiny address chain: the filtered buffer
        # loop runs much further ahead than 4-wide fetch of the full body.
        make = lambda: gather("t_big_body", index_region_bytes=4 << 20,
                              data_region_bytes=32 << 20, deref_depth=1,
                              filler_fp=16, filler_int=4)
        _, ra = run_mode(make, RunaheadMode.TRADITIONAL)
        _, rab = run_mode(make, RunaheadMode.BUFFER)
        assert rab.rab_intervals > 0
        assert rab.rab_iterations > rab.rab_intervals  # the chain looped
        # The paper's headline: the buffer runs further ahead.
        assert rab.misses_per_interval > ra.misses_per_interval

    def test_frontend_gated_in_buffer_mode(self):
        _, rab = run_mode(gather_workload, RunaheadMode.BUFFER)
        assert rab.cycles_in_rab > 0
        assert rab.frontend_idle_cycles >= rab.cycles_in_rab
        # Front-end energy events do not accrue while gated: fetch count
        # is far below what traditional runahead fetches.
        _, ra = run_mode(gather_workload, RunaheadMode.TRADITIONAL)
        assert rab.fetched_uops < ra.fetched_uops

    def test_no_matching_pc_blocks_buffer_entry(self):
        """A miss PC with no second instance in the ROB cannot build a
        chain; the pure-buffer system skips runahead."""
        b = ProgramBuilder()
        # One cold miss from a unique PC inside a long compute stretch.
        b.li("R1", 1 << 26)
        b.li("R9", 0)
        b.li("R10", 1 << 20)
        b.label("loop")
        b.load("R2", "R1", 0)        # the only load PC; misses each pass
        b.add("R1", "R1", "R11")
        for _ in range(60):
            b.addi("R3", "R3", 1)
        b.addi("R9", "R9", 1)
        b.bne("R9", "R10", "loop")
        b.halt()
        # With a 60-op body and a 192-entry ROB there are >2 instances in
        # flight, so instead verify via stats that entries happen OR are
        # blocked; the structural check is in test_chain_generation.
        wl_mem = DataMemory()
        proc = Processor(b.build(), make_config(RunaheadMode.BUFFER),
                         memory=wl_mem)
        stats = proc.run(2000)
        assert stats.rab_intervals + stats.entries_blocked_no_chain >= 0

    def test_buffer_size_cap_respected(self):
        proc, stats = run_mode(gather_workload, RunaheadMode.BUFFER,
                               buffer_uops=16, max_chain_length=16)
        assert stats.rab_intervals > 0


class TestChainCache:
    def test_hits_accumulate(self):
        _, stats = run_mode(gather_workload,
                            RunaheadMode.BUFFER_CHAIN_CACHE)
        assert stats.chain_cache_hits > 0
        assert stats.chain_cache_hit_rate > 0.5

    def test_chain_cache_reduces_generation(self):
        _, no_cc = run_mode(gather_workload, RunaheadMode.BUFFER)
        _, cc = run_mode(gather_workload, RunaheadMode.BUFFER_CHAIN_CACHE)
        assert cc.chain_generations < no_cc.chain_generations

    def test_exact_match_instrumentation(self):
        _, stats = run_mode(gather_workload,
                            RunaheadMode.BUFFER_CHAIN_CACHE,
                            collect_chain_stats=True)
        assert stats.chain_cache_checked_hits > 0
        assert 0 <= stats.chain_cache_exact_fraction <= 1


class TestHybrid:
    def test_short_chains_use_buffer(self):
        _, stats = run_mode(gather_workload, RunaheadMode.HYBRID)
        assert stats.rab_intervals > 0
        assert stats.hybrid_rab_share > 0.5

    def test_overlong_chains_fall_back_to_traditional(self):
        """hash_probe chains exceed 32 uops: Fig. 8 falls back."""
        make = lambda: hash_probe("t_hash", table_bytes=16 << 20,
                                  hash_rounds=16)
        _, stats = run_mode(make, RunaheadMode.HYBRID, insts=3000)
        assert stats.traditional_intervals > 0
        assert stats.hybrid_rab_share < 0.5

    def test_hybrid_at_least_matches_best_single_mode(self):
        results = {}
        for mode in (RunaheadMode.TRADITIONAL, RunaheadMode.BUFFER,
                     RunaheadMode.HYBRID):
            _, stats = run_mode(gather_workload, mode)
            results[mode] = stats.ipc
        best_single = max(results[RunaheadMode.TRADITIONAL],
                          results[RunaheadMode.BUFFER])
        assert results[RunaheadMode.HYBRID] > 0.85 * best_single


class TestExitBehaviour:
    def test_mode_returns_to_normal(self):
        proc, stats = run_mode(gather_workload, RunaheadMode.BUFFER)
        # After the run the policy has closed all intervals.
        assert proc.ra_policy.current is None or proc.mode != "normal"
        for record in proc.ra_policy.intervals:
            assert record.exit_cycle >= record.entry_cycle

    def test_interval_cycles_accounted(self):
        _, stats = run_mode(gather_workload, RunaheadMode.BUFFER)
        assert stats.cycles_in_rab <= stats.cycles
