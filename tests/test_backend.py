"""Back-end substrate tests: rename state, PRF, store queue."""

import pytest

from repro.backend import (
    ForwardResult,
    InFlightUop,
    PhysicalRegisterFile,
    RenameState,
    StoreQueue,
)
from repro.isa import Instruction, NUM_ARCH_REGS, Opcode


class TestPhysicalRegisterFile:
    def test_write_sets_ready_and_poison(self):
        prf = PhysicalRegisterFile(64)
        prf.write(5, 42, poisoned=True)
        assert prf.value[5] == 42
        assert prf.ready[5]
        assert prf.poison[5]

    def test_mark_pending_clears_state(self):
        prf = PhysicalRegisterFile(64)
        prf.write(5, 42, poisoned=True)
        prf.mark_pending(5, producer_seq=9)
        assert not prf.ready[5]
        assert not prf.poison[5]
        assert prf.producer_seq[5] == 9

    def test_minimum_size_enforced(self):
        with pytest.raises(ValueError):
            PhysicalRegisterFile(16)


class TestRenameState:
    def test_initial_identity_mapping(self):
        rs = RenameState(PhysicalRegisterFile(64))
        assert rs.rat[:4] == [0, 1, 2, 3]
        assert rs.free_count() == 64 - NUM_ARCH_REGS

    def test_alloc_free_roundtrip(self):
        rs = RenameState(PhysicalRegisterFile(64))
        phys = rs.alloc()
        assert phys >= NUM_ARCH_REGS
        before = rs.free_count()
        rs.free(phys)
        assert rs.free_count() == before + 1

    def test_arch_values_follow_commit_rat(self):
        rs = RenameState(PhysicalRegisterFile(64))
        phys = rs.alloc()
        rs.prf.write(phys, 123)
        rs.commit_rat[7] = phys
        assert rs.arch_values()[7] == 123

    def test_reset_to_values(self):
        rs = RenameState(PhysicalRegisterFile(64))
        values = list(range(NUM_ARCH_REGS))
        rs.reset_to_values(values)
        assert rs.arch_values() == values
        assert rs.free_count() == 64 - NUM_ARCH_REGS
        for arch in range(NUM_ARCH_REGS):
            assert rs.prf.ready[rs.rat[arch]]
            assert not rs.prf.poison[rs.rat[arch]]


def make_store(seq, addr=None, data=0, data_known=True, poisoned=False):
    uop = InFlightUop(seq, pc=0, inst=Instruction(Opcode.ST, rs1=1, rs2=2))
    if addr is not None:
        uop.mem_addr = addr
        uop.addr_known = True
    uop.store_data = data
    uop.data_known = data_known
    uop.poisoned = poisoned
    return uop


class TestStoreQueue:
    def test_forward_from_youngest_match(self):
        sq = StoreQueue(8)
        sq.push(make_store(1, addr=0x100, data=11))
        sq.push(make_store(2, addr=0x100, data=22))
        result, store = sq.search(0x100 >> 3, load_seq=5)
        assert result is ForwardResult.FORWARD
        assert store.store_data == 22

    def test_no_match(self):
        sq = StoreQueue(8)
        sq.push(make_store(1, addr=0x100))
        result, _ = sq.search(0x200 >> 3, load_seq=5)
        assert result is ForwardResult.NO_MATCH

    def test_unknown_address_forces_wait(self):
        sq = StoreQueue(8)
        sq.push(make_store(1))  # address unknown
        result, _ = sq.search(0x100 >> 3, load_seq=5)
        assert result is ForwardResult.WAIT

    def test_pending_data_forces_wait(self):
        sq = StoreQueue(8)
        sq.push(make_store(1, addr=0x100, data_known=False))
        result, _ = sq.search(0x100 >> 3, load_seq=5)
        assert result is ForwardResult.WAIT

    def test_poisoned_address_store_skipped(self):
        sq = StoreQueue(8)
        sq.push(make_store(1, poisoned=True))  # runahead INV store
        result, _ = sq.search(0x100 >> 3, load_seq=5)
        assert result is ForwardResult.NO_MATCH

    def test_younger_stores_ignored(self):
        sq = StoreQueue(8)
        sq.push(make_store(9, addr=0x100, data=99))
        result, _ = sq.search(0x100 >> 3, load_seq=5)
        assert result is ForwardResult.NO_MATCH

    def test_squash_younger(self):
        sq = StoreQueue(8)
        sq.push(make_store(1, addr=0x100))
        sq.push(make_store(5, addr=0x200))
        sq.squash_younger(boundary_seq=3)
        assert len(sq) == 1

    def test_pop_oldest_pops_head(self):
        sq = StoreQueue(8)
        a, b = make_store(1, addr=0x100), make_store(2, addr=0x200)
        sq.push(a)
        sq.push(b)
        sq.pop_oldest(a)
        assert len(sq) == 1
        sq.pop_oldest(b)
        assert len(sq) == 0

    def test_pop_oldest_raises_on_non_head(self):
        # A commit popping anything but the queue head means stores are
        # retiring out of order — a silent no-op here masked that.
        sq = StoreQueue(8)
        a, b = make_store(1, addr=0x100), make_store(2, addr=0x200)
        sq.push(a)
        sq.push(b)
        with pytest.raises(RuntimeError, match="out of order"):
            sq.pop_oldest(b)
        assert len(sq) == 2  # queue untouched

    def test_pop_oldest_raises_on_empty(self):
        sq = StoreQueue(8)
        with pytest.raises(RuntimeError, match="out of order"):
            sq.pop_oldest(make_store(1))

    def test_capacity(self):
        sq = StoreQueue(2)
        sq.push(make_store(1))
        sq.push(make_store(2))
        assert sq.full()

    def test_find_producing_store_for_chain_gen(self):
        sq = StoreQueue(8)
        sq.push(make_store(1, addr=0x100, data=7))
        found = sq.find_producing_store(0x100 >> 3, load_seq=5)
        assert found is not None and found.seq == 1
        assert sq.find_producing_store(0x300 >> 3, load_seq=5) is None
