"""Throughput-benchmark harness tests (``repro.analysis.bench``).

The numbers themselves are host-dependent; these tests pin the parts
that must not drift: the geomean, the result-document schema, the
before/after speedup math, and the CI regression gate.
"""

import pytest

from repro.analysis import bench


class TestGeomean:
    def test_basic(self):
        assert bench.geomean([2.0, 8.0]) == pytest.approx(4.0)

    def test_single_value(self):
        assert bench.geomean([7.5]) == pytest.approx(7.5)

    def test_empty_and_nonpositive(self):
        assert bench.geomean([]) == 0.0
        assert bench.geomean([0.0, -1.0]) == 0.0

    def test_ignores_nonpositive_entries(self):
        assert bench.geomean([0.0, 4.0, 16.0]) == pytest.approx(8.0)


class TestAttachBefore:
    def test_speedup_math(self):
        doc = {"geomean_kips": {"normal": 100.0, "rab": 60.0, "overall": 80.0}}
        before = {
            "generated": "t0",
            "geomean_kips": {"normal": 50.0, "rab": 30.0, "overall": 40.0},
            "results": [],
        }
        out = bench.attach_before(doc, before)
        assert out["speedup_vs_before"] == {
            "normal": 2.0, "rab": 2.0, "overall": 2.0,
        }
        assert out["before"]["generated"] == "t0"
        assert "before" not in doc          # the input document is not mutated

    def test_missing_before_mode_skipped(self):
        doc = {"geomean_kips": {"normal": 100.0}}
        out = bench.attach_before(doc, {"geomean_kips": {}})
        assert out["speedup_vs_before"] == {}


class TestCheckRegression:
    BASELINE = {"geomean_kips": {"normal": 100.0, "rab": 60.0, "overall": 80.0}}

    def test_within_tolerance_passes(self):
        current = {"geomean_kips": {"normal": 75.0, "rab": 45.0}}
        assert bench.check_regression(current, self.BASELINE,
                                      tolerance=0.30) == []

    def test_regression_reported_per_mode(self):
        current = {"geomean_kips": {"normal": 50.0, "rab": 60.0}}
        failures = bench.check_regression(current, self.BASELINE,
                                          tolerance=0.30)
        assert len(failures) == 1
        assert failures[0].startswith("normal")

    def test_overall_and_missing_modes_ignored(self):
        # "overall" is derived from the per-mode geomeans, and modes absent
        # from the current run (a shrunk grid) must not fail the gate.
        current = {"geomean_kips": {"overall": 1.0}}
        assert bench.check_regression(current, self.BASELINE) == []


def test_run_benchmark_schema_and_roundtrip(tmp_path):
    doc = bench.run_benchmark(workloads=("mcf",), modes=("normal",),
                              instructions=1500, warmup=500, reps=1)
    assert doc["schema"] == bench.SCHEMA
    (cell,) = doc["results"]
    assert cell["workload"] == "mcf"
    assert cell["mode"] == "normal"
    assert cell["config"] == bench.MODES["normal"]
    assert cell["committed"] >= 1500
    assert cell["kips"] > 0
    assert doc["geomean_kips"]["normal"] == pytest.approx(cell["kips"])
    assert doc["geomean_kips"]["overall"] == pytest.approx(cell["kips"])
    path = bench.write_results(doc, tmp_path / "bench.json")
    assert bench.load_results(path) == doc
