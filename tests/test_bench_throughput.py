"""Throughput-benchmark harness tests (``repro.analysis.bench``).

The numbers themselves are host-dependent; these tests pin the parts
that must not drift: the geomean, the result-document schema, the
before/after speedup math, the CI regression gate, and — via a scripted
clock — the tier timing accounting (warm-up seconds never enter any
KIPS figure; fast-forward seconds never enter the detailed-tier KIPS).
"""

import pytest

import repro.fastpath
from repro.analysis import bench
from repro.config import SamplingConfig


class TestGeomean:
    def test_basic(self):
        assert bench.geomean([2.0, 8.0]) == pytest.approx(4.0)

    def test_single_value(self):
        assert bench.geomean([7.5]) == pytest.approx(7.5)

    def test_empty_and_nonpositive(self):
        assert bench.geomean([]) == 0.0
        assert bench.geomean([0.0, -1.0]) == 0.0

    def test_ignores_nonpositive_entries(self):
        assert bench.geomean([0.0, 4.0, 16.0]) == pytest.approx(8.0)


class TestAttachBefore:
    def test_speedup_math(self):
        doc = {"geomean_kips": {"normal": 100.0, "rab": 60.0, "overall": 80.0}}
        before = {
            "generated": "t0",
            "geomean_kips": {"normal": 50.0, "rab": 30.0, "overall": 40.0},
            "results": [],
        }
        out = bench.attach_before(doc, before)
        assert out["speedup_vs_before"] == {
            "normal": 2.0, "rab": 2.0, "overall": 2.0,
        }
        assert out["before"]["generated"] == "t0"
        assert "before" not in doc          # the input document is not mutated

    def test_missing_before_mode_skipped(self):
        doc = {"geomean_kips": {"normal": 100.0}}
        out = bench.attach_before(doc, {"geomean_kips": {}})
        assert out["speedup_vs_before"] == {}


class TestCheckRegression:
    BASELINE = {"geomean_kips": {"normal": 100.0, "rab": 60.0, "overall": 80.0}}

    def test_within_tolerance_passes(self):
        current = {"geomean_kips": {"normal": 75.0, "rab": 45.0}}
        assert bench.check_regression(current, self.BASELINE,
                                      tolerance=0.30) == []

    def test_regression_reported_per_mode(self):
        current = {"geomean_kips": {"normal": 50.0, "rab": 60.0}}
        failures = bench.check_regression(current, self.BASELINE,
                                          tolerance=0.30)
        assert len(failures) == 1
        assert failures[0].startswith("normal")

    def test_overall_and_missing_modes_ignored(self):
        # "overall" is derived from the per-mode geomeans, and modes absent
        # from the current run (a shrunk grid) must not fail the gate.
        current = {"geomean_kips": {"overall": 1.0}}
        assert bench.check_regression(current, self.BASELINE) == []


class _FakeStats:
    committed_insts = 5_000
    cycles = 42_000


class _FakeProcessor:
    """Stands in for Processor so the scripted clock is the only input."""

    def __init__(self, *args, **kwargs):
        self.stats = _FakeStats()
        self.halted = False

    def warm_up(self, n):
        return n

    def run(self, n, max_cycles=None):
        return self.stats


class TestTierTimingAccounting:
    """Pin the accounting rules with a scripted ``perf_counter``."""

    def _patch_common(self, monkeypatch, clock_values):
        ticks = iter(clock_values)
        monkeypatch.setattr(bench.time, "perf_counter", lambda: next(ticks))
        monkeypatch.setattr(bench, "build_workload",
                            lambda name: type("W", (), {
                                "program": None, "memory": None,
                                "init_regs": None})())
        monkeypatch.setattr(bench, "build_named_config", lambda name: None)
        monkeypatch.setattr(bench, "Processor", _FakeProcessor)

    def test_detailed_cell_excludes_warmup_from_kips(self, monkeypatch):
        # warm-up spans [0, 3); the detailed run spans [3, 7).
        self._patch_common(monkeypatch, [0.0, 3.0, 7.0])
        cell = bench._time_cell("mcf", "baseline", 5_000, 12_000)
        assert cell["tier"] == "detailed"
        assert cell["warmup_seconds"] == pytest.approx(3.0)
        assert cell["sim_seconds"] == pytest.approx(4.0)
        # KIPS uses the 4s of detailed time only — 3s of warm-up excluded.
        assert cell["kips"] == pytest.approx(5_000 / 4.0 / 1000.0)

    def test_two_level_cell_accounting(self, monkeypatch):
        # bench reads the clock only around warm-up; tier timing comes
        # from the engine metadata.
        self._patch_common(monkeypatch, [0.0, 3.0])
        meta = {
            "detailed_seconds": 2.0,
            "fast_forward_seconds": 0.5,
            "instructions_advanced": 100_000,
        }
        monkeypatch.setattr(repro.fastpath, "run_two_tier",
                            lambda *a, **k: meta)
        plan = SamplingConfig(tier="two-level")
        cell = bench._time_cell("mcf", "rab_cc", 100_000, 12_000, plan=plan)
        assert cell["tier"] == "two-level"
        # Warm-up reported separately, folded into no KIPS figure.
        assert cell["warmup_seconds"] == pytest.approx(3.0)
        # Headline KIPS: whole advance over detailed + fast-forward time.
        assert cell["sim_seconds"] == pytest.approx(2.5)
        assert cell["ff_seconds"] == pytest.approx(0.5)
        assert cell["kips"] == pytest.approx(100_000 / 2.5 / 1000.0)
        # Detailed-tier KIPS: detailed instructions over detailed seconds
        # alone — fast-forward time must never be folded in.
        assert cell["kips_detailed"] == pytest.approx(
            5_000 / 2.0 / 1000.0)


def test_run_benchmark_two_tier_document():
    plan = SamplingConfig(tier="two-level", ramp_instructions=200,
                          window_instructions=400, stride_instructions=2_000)
    doc = bench.run_benchmark(workloads=("mcf",), modes=("normal",),
                              instructions=1_000, warmup=500, reps=1,
                              tiers=("detailed", "two-level"), plan=plan)
    assert doc["tiers"] == ["detailed", "two-level"]
    assert doc["sampling_plan"] == {
        "ramp_instructions": 200,
        "window_instructions": 400,
        "stride_instructions": 2_000,
    }
    det, two = doc["results"]
    assert det["tier"] == "detailed"
    assert two["tier"] == "two-level"
    # The two-level budget is scaled so several strides fit.
    assert two["instructions"] == 1_000 * bench.TWO_LEVEL_SCALE
    assert two["advanced"] >= two["committed"] > 0
    assert set(doc["geomean_kips"]) == {"normal", "normal/two-level",
                                        "overall"}
    speedup = doc["two_level_speedup"]
    assert speedup["per_cell"]["mcf/normal"] == pytest.approx(
        two["kips"] / det["kips"], rel=0.01)
    assert set(speedup["geomean"]) == {"normal"}


def test_committed_record_shows_two_level_speedup():
    """The committed BENCH_sim_throughput.json must demonstrate the
    two-tier win: >=5x geomean speedup in at least one mode, and at
    least three workloads individually at >=5x in that mode."""
    import pathlib
    record = bench.load_results(
        pathlib.Path(__file__).resolve().parents[1]
        / "BENCH_sim_throughput.json")
    assert record["schema"] == bench.SCHEMA
    assert "two-level" in record["tiers"]
    speedup = record["two_level_speedup"]
    fast_modes = [mode for mode, x in speedup["geomean"].items() if x >= 5.0]
    assert fast_modes, f"no mode reaches 5x geomean: {speedup['geomean']}"
    best = max(fast_modes, key=lambda m: speedup["geomean"][m])
    per_workload = [x for cell, x in speedup["per_cell"].items()
                    if cell.endswith(f"/{best}")]
    assert sum(1 for x in per_workload if x >= 5.0) >= 3, (
        f"fewer than 3 workloads at >=5x in mode {best}: {per_workload}")


def test_run_benchmark_schema_and_roundtrip(tmp_path):
    doc = bench.run_benchmark(workloads=("mcf",), modes=("normal",),
                              instructions=1500, warmup=500, reps=1)
    assert doc["schema"] == bench.SCHEMA
    (cell,) = doc["results"]
    assert cell["workload"] == "mcf"
    assert cell["mode"] == "normal"
    assert cell["config"] == bench.MODES["normal"]
    assert cell["committed"] >= 1500
    assert cell["kips"] > 0
    assert doc["geomean_kips"]["normal"] == pytest.approx(cell["kips"])
    assert doc["geomean_kips"]["overall"] == pytest.approx(cell["kips"])
    path = bench.write_results(doc, tmp_path / "bench.json")
    assert bench.load_results(path) == doc
