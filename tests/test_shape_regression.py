"""Machine-checked paper-shape regression suite.

EXPERIMENTS.md tracks which of the paper's qualitative *shapes* —
orderings, signs, rough factors, per-benchmark outliers — the
reproduction achieves (its ✅ column).  This suite turns every one of
those claims into an assertion over the committed run matrix
(``results/experiments.json``), so a model change that silently breaks
a reproduced shape fails CI instead of rotting the document.

Two kinds of tests:

* ``test_shape_*`` — run each check against the real matrix.
* ``TestGateBites`` — run the same checks against deliberately
  perturbed copies of the matrix and assert they *fail*, proving each
  gate actually discriminates (a vacuous assertion would pass both).

The suite intentionally reads the raw JSON, not :class:`ExperimentMatrix`:
it must never simulate.  A stale matrix (model-version bump without a
regen) is a hard failure, not a skip — regenerate with::

    PYTHONPATH=src python -m repro suite --jobs <N>
"""

from __future__ import annotations

import copy
import json
from pathlib import Path

import pytest

from repro.analysis.experiments import KEY_SCHEMA, MODEL_VERSION
from repro.analysis.metrics import gmean
from repro.workloads import medium_high_names

RESULTS_PATH = Path(__file__).resolve().parent.parent / "results" / "experiments.json"


class Grid:
    """Read-only view of one committed experiment matrix."""

    def __init__(self, payload: dict) -> None:
        if (payload.get("model_version") != MODEL_VERSION
                or payload.get("key_schema") != KEY_SCHEMA):
            pytest.fail(
                f"results/experiments.json is stale "
                f"(model_version={payload.get('model_version')}, "
                f"key_schema={payload.get('key_schema')}; code expects "
                f"{MODEL_VERSION}/{KEY_SCHEMA}).  Regenerate with "
                f"`python -m repro suite` and commit the result."
            )
        self.instructions = payload["instructions"]
        self.warmup = payload["warmup"]
        self.results = payload["results"]
        self.workloads = medium_high_names()

    def cell(self, workload: str, config: str) -> dict:
        base = f"{workload}/{config}/{self.instructions}/w{self.warmup}"
        found = self.results.get(base)
        if found is None:  # +chains is a timing-identical superset
            found = self.results.get(
                f"{workload}/{config}+chains"
                f"/{self.instructions}/w{self.warmup}")
        if found is None:
            pytest.fail(f"matrix is missing cell {base!r}; "
                        f"run `python -m repro suite`")
        return found

    # -- aggregates mirroring repro.analysis.figures ------------------------

    def speedup_pct(self, workload: str, config: str) -> float:
        base = self.cell(workload, "baseline")["ipc"]
        return 100.0 * (self.cell(workload, config)["ipc"] / base - 1.0)

    def gmean_speedup_pct(self, config: str) -> float:
        ratios = [self.cell(w, config)["ipc"] / self.cell(w, "baseline")["ipc"]
                  for w in self.workloads]
        return 100.0 * (gmean(ratios) - 1.0)

    def gmean_energy_pct(self, config: str) -> float:
        ratios = [self.cell(w, config)["total_energy_j"]
                  / self.cell(w, "baseline")["total_energy_j"]
                  for w in self.workloads]
        return 100.0 * (gmean(ratios) - 1.0)

    def avg_misses_per_interval(self, config: str) -> float:
        values = [self.cell(w, config)["misses_per_interval"]
                  for w in self.workloads]
        return sum(values) / len(values)

    def avg_hybrid_rab_share(self) -> float:
        values = [self.cell(w, "hybrid")["hybrid_rab_share"]
                  for w in self.workloads]
        return sum(values) / len(values)


@pytest.fixture(scope="module")
def grid() -> Grid:
    if not RESULTS_PATH.exists():
        pytest.fail(f"{RESULTS_PATH} not found; run `python -m repro suite`")
    return Grid(json.loads(RESULTS_PATH.read_text()))


# ---------------------------------------------------------------------------
# The shape checks.  Plain functions over a Grid so the perturbation tests
# can run them against doctored matrices.
# ---------------------------------------------------------------------------

def check_fig9_perf_ordering(grid: Grid) -> None:
    """Fig. 9 / abstract: no-PF speedups order RA < RAB ≈ RAB+CC < Hybrid,
    and every mechanism beats the baseline."""
    ra = grid.gmean_speedup_pct("runahead")
    rab = grid.gmean_speedup_pct("rab")
    rab_cc = grid.gmean_speedup_pct("rab_cc")
    hybrid = grid.gmean_speedup_pct("hybrid")
    assert ra > 0 and rab > 0 and rab_cc > 0 and hybrid > 0, \
        f"some mechanism lost to baseline: {ra=:.1f} {rab=:.1f} " \
        f"{rab_cc=:.1f} {hybrid=:.1f}"
    assert ra < rab, f"runahead ({ra:.1f}%) should trail rab ({rab:.1f}%)"
    assert abs(rab - rab_cc) < 5.0, \
        f"rab ({rab:.1f}%) and rab_cc ({rab_cc:.1f}%) should be within 5pp"
    assert hybrid >= rab and hybrid >= rab_cc, \
        f"hybrid ({hybrid:.1f}%) should lead rab ({rab:.1f}%) " \
        f"and rab_cc ({rab_cc:.1f}%)"


def check_fig10_mlp_ratio(grid: Grid) -> None:
    """Fig. 10 / abstract: the runahead buffer uncovers ~2x the misses per
    interval of traditional runahead; prefetching reduces both, without
    flipping the ordering."""
    ra = grid.avg_misses_per_interval("runahead")
    rab = grid.avg_misses_per_interval("rab")
    assert 1.5 <= rab / ra <= 3.0, \
        f"rab/ra misses-per-interval ratio {rab / ra:.2f} left the " \
        f"paper's ~2x band (ra={ra:.1f}, rab={rab:.1f})"
    ra_pf = grid.avg_misses_per_interval("runahead_pf")
    rab_pf = grid.avg_misses_per_interval("rab_pf")
    assert ra_pf < ra and rab_pf < rab, \
        f"prefetching should reduce misses/interval " \
        f"(ra {ra:.1f}->{ra_pf:.1f}, rab {rab:.1f}->{rab_pf:.1f})"
    assert rab_pf >= ra_pf, \
        f"with PF, rab ({rab_pf:.1f}) should still match or exceed " \
        f"runahead ({ra_pf:.1f})"


def check_fig17_energy_signs(grid: Grid) -> None:
    """Fig. 17 / abstract: buffer-based mechanisms save energy, traditional
    runahead costs energy, and the ISCA'05 enhancements reduce (without
    reversing) that cost."""
    ra = grid.gmean_energy_pct("runahead")
    ra_enh = grid.gmean_energy_pct("runahead_enh")
    assert ra > 0, f"traditional runahead energy should exceed baseline " \
                   f"(got {ra:+.1f}%)"
    assert ra_enh <= ra, \
        f"enhancements ({ra_enh:+.1f}%) should not cost more than plain " \
        f"runahead ({ra:+.1f}%)"
    for config in ("rab", "rab_cc", "hybrid"):
        delta = grid.gmean_energy_pct(config)
        assert delta <= 0, f"{config} energy should not exceed baseline " \
                           f"(got {delta:+.1f}%)"


def check_fig14_hybrid_buffer_favoured(grid: Grid) -> None:
    """Fig. 14: the hybrid policy spends most runahead cycles in buffer
    mode on average, but falls back to traditional on omnetpp (whose
    chains overflow the 32-uop buffer)."""
    share = grid.avg_hybrid_rab_share()
    assert share >= 0.5, \
        f"hybrid should be buffer-favoured on average (share={share:.2f})"
    omnetpp = grid.cell("omnetpp", "hybrid")["hybrid_rab_share"]
    assert omnetpp <= 0.25, \
        f"omnetpp should run mostly traditional under hybrid " \
        f"(buffer share {omnetpp:.2f})"


def check_omnetpp_prefers_traditional(grid: Grid) -> None:
    """Fig. 9 outlier: omnetpp's long chains favour traditional runahead
    over the runahead buffer (and the paper calls this out)."""
    ra = grid.speedup_pct("omnetpp", "runahead")
    rab = grid.speedup_pct("omnetpp", "rab")
    assert ra > rab, \
        f"omnetpp should prefer traditional runahead " \
        f"(runahead {ra:+.1f}% vs rab {rab:+.1f}%)"


def check_fig15_runahead_beats_pf_alone(grid: Grid) -> None:
    """Fig. 15: traditional runahead on top of the stream prefetcher beats
    the prefetcher alone (the orthogonal-MLP claim)."""
    pf = grid.gmean_speedup_pct("pf")
    ra_pf = grid.gmean_speedup_pct("runahead_pf")
    assert ra_pf > pf, \
        f"runahead+PF ({ra_pf:+.1f}%) should beat PF alone ({pf:+.1f}%)"


ALL_CHECKS = (
    check_fig9_perf_ordering,
    check_fig10_mlp_ratio,
    check_fig17_energy_signs,
    check_fig14_hybrid_buffer_favoured,
    check_omnetpp_prefers_traditional,
    check_fig15_runahead_beats_pf_alone,
)


# ---------------------------------------------------------------------------
# The real gates.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("check", ALL_CHECKS, ids=lambda c: c.__name__)
def test_shape(grid: Grid, check) -> None:
    check(grid)


# ---------------------------------------------------------------------------
# Prove each gate bites: perturb the matrix so the claim is false and
# assert the check fails.  A check that passes its perturbed fixture is
# vacuous and must be fixed.
# ---------------------------------------------------------------------------

def _perturbed(grid: Grid, mutate) -> Grid:
    clone = copy.deepcopy(grid)
    mutate(clone)
    return clone


def _scale_cells(grid: Grid, config: str, field: str, factor: float) -> None:
    for workload in grid.workloads:
        cell = grid.cell(workload, config)
        cell[field] = cell[field] * factor


class TestGateBites:
    def test_fig9_gate(self, grid: Grid) -> None:
        # Sink the buffer configs below traditional runahead.
        bad = _perturbed(grid, lambda g: [
            _scale_cells(g, c, "ipc", 0.5) for c in ("rab", "rab_cc",
                                                     "hybrid")])
        with pytest.raises(AssertionError):
            check_fig9_perf_ordering(bad)

    def test_fig10_gate(self, grid: Grid) -> None:
        # Collapse the buffer's MLP advantage.
        bad = _perturbed(
            grid,
            lambda g: _scale_cells(g, "rab", "misses_per_interval", 0.5))
        with pytest.raises(AssertionError):
            check_fig10_mlp_ratio(bad)

    def test_fig17_gate(self, grid: Grid) -> None:
        # Make the runahead buffer an energy loser.
        bad = _perturbed(
            grid, lambda g: _scale_cells(g, "rab", "total_energy_j", 1.5))
        with pytest.raises(AssertionError):
            check_fig17_energy_signs(bad)

    def test_fig14_gate(self, grid: Grid) -> None:
        def flip(g: Grid) -> None:
            for workload in g.workloads:
                g.cell(workload, "hybrid")["hybrid_rab_share"] = 0.1

        with pytest.raises(AssertionError):
            check_fig14_hybrid_buffer_favoured(_perturbed(grid, flip))

    def test_omnetpp_gate(self, grid: Grid) -> None:
        def swap(g: Grid) -> None:
            ra = g.cell("omnetpp", "runahead")
            rab = g.cell("omnetpp", "rab")
            ra["ipc"], rab["ipc"] = rab["ipc"], ra["ipc"]

        with pytest.raises(AssertionError):
            check_omnetpp_prefers_traditional(_perturbed(grid, swap))

    def test_fig15_gate(self, grid: Grid) -> None:
        bad = _perturbed(
            grid, lambda g: _scale_cells(g, "runahead_pf", "ipc", 0.5))
        with pytest.raises(AssertionError):
            check_fig15_runahead_beats_pf_alone(bad)

    def test_stale_matrix_fails(self, grid: Grid) -> None:
        with pytest.raises(pytest.fail.Exception):
            Grid({"model_version": MODEL_VERSION - 1,
                  "key_schema": KEY_SCHEMA, "results": {}})
