"""Stream prefetcher + FDP throttling tests."""

from repro.config import PrefetcherConfig
from repro.prefetch import StreamPrefetcher


def make_pf(**overrides):
    defaults = dict(enabled=True, fdp_enabled=False)
    defaults.update(overrides)
    return StreamPrefetcher(PrefetcherConfig(**defaults))


def drive_stream(pf, start, count, step=1, hit=False):
    out = []
    for i in range(count):
        out.extend(pf.on_demand_access(start + i * step, hit=hit))
    return out


class TestTraining:
    def test_no_prefetch_before_confirmation(self):
        pf = make_pf()
        assert pf.on_demand_access(100, hit=False) == []
        # Second access establishes direction but needs train_threshold.
        assert pf.on_demand_access(101, hit=False) == []

    def test_ascending_stream_detected(self):
        pf = make_pf()
        issued = drive_stream(pf, 100, 6)
        assert issued
        assert all(line > 100 for line in issued)

    def test_descending_stream_detected(self):
        pf = make_pf()
        issued = drive_stream(pf, 200, 6, step=-1)
        assert issued
        assert all(line < 200 for line in issued)

    def test_prefetches_stay_within_distance(self):
        pf = make_pf(distance=8, degree=2)
        issued = drive_stream(pf, 100, 20)
        for i, line in enumerate(issued):
            assert line <= 100 + 20 + 8

    def test_no_duplicate_prefetches(self):
        pf = make_pf()
        issued = drive_stream(pf, 100, 30)
        assert len(issued) == len(set(issued))

    def test_degree_limits_burst(self):
        pf = make_pf(degree=2)
        drive_stream(pf, 100, 3)          # training
        burst = pf.on_demand_access(103, hit=False)
        assert len(burst) <= 2

    def test_random_accesses_do_not_stream(self):
        pf = make_pf()
        issued = []
        for line in (5, 9000, 12, 777_000, 34, 51_000):
            issued.extend(pf.on_demand_access(line, hit=False))
        assert issued == []

    def test_stream_table_capacity(self):
        pf = make_pf(num_streams=4)
        for k in range(10):
            pf.on_demand_access(k * 100_000, hit=False)
        assert len(pf.streams) <= 4


class TestFdp:
    def test_high_accuracy_scales_up(self):
        pf = make_pf(fdp_enabled=True, fdp_interval=16)
        level0 = pf._level
        drive_stream(pf, 0, 40)
        for _ in range(40):
            pf.record_useful()
        drive_stream(pf, 1000, 40)
        assert pf._level >= level0

    def test_low_accuracy_scales_down(self):
        pf = make_pf(fdp_enabled=True, fdp_interval=16)
        level0 = pf._level
        for round_index in range(4):
            drive_stream(pf, round_index * 100_000, 40)
            for _ in range(200):
                pf.record_unused_eviction()
        assert pf.stats.throttle_downs >= 1
        assert pf._level < level0

    def test_accuracy_stat(self):
        pf = make_pf()
        pf.record_useful()
        pf.record_useful()
        pf.record_unused_eviction()
        assert abs(pf.stats.accuracy - 2 / 3) < 1e-9

    def test_late_prefetches_counted(self):
        pf = make_pf()
        pf.record_useful(late=True)
        assert pf.stats.late == 1


class TestFdpWindowSemantics:
    """A feedback window closes only when BOTH enough prefetches were
    issued AND enough of them resolved; every interval counter then
    resets together.  Pre-fix the hold-steady path reset only
    ``_interval_issued``, so the next accuracy reading divided
    resolutions from one window by issues from another."""

    def make(self):
        return make_pf(fdp_enabled=True, fdp_interval=16,
                       fdp_high_accuracy=0.75, fdp_low_accuracy=0.40)

    def test_hold_steady_keeps_all_counters(self):
        pf = self.make()
        pf.record_issued(16)    # triggers _feedback: nothing resolved yet
        assert pf._level == 2   # held
        assert pf._interval_issued == 16    # window still open
        assert pf._interval_useful == 0
        assert pf._interval_unused == 0

    def test_window_extends_until_enough_resolved(self):
        """Once the in-flight prefetches resolve, the very next issue
        closes the still-open window — it does not start a fresh count
        of ``fdp_interval`` issues (the pre-fix behaviour)."""
        pf = self.make()
        pf.record_issued(16)    # hold-steady: only 0 of 16 resolved
        for _ in range(4):
            pf.record_useful()
        pf.record_issued(1)     # window: 17 issued, 4 resolved, 100% useful
        assert pf.stats.throttle_ups == 1
        assert pf._level == 3
        # The closed window reset every counter together.
        assert pf._interval_issued == 0
        assert pf._interval_useful == 0
        assert pf._interval_unused == 0

    def test_ladder_up_at_high_accuracy_boundary(self):
        pf = self.make()
        for _ in range(12):
            pf.record_useful()
        for _ in range(4):
            pf.record_unused_eviction()
        pf.record_issued(16)    # accuracy = 12/16 = 0.75, inclusive bound
        assert pf._level == 3
        assert pf.stats.throttle_ups == 1

    def test_ladder_down_below_low_accuracy(self):
        pf = self.make()
        for _ in range(6):
            pf.record_useful()
        for _ in range(10):
            pf.record_unused_eviction()
        pf.record_issued(16)    # accuracy = 6/16 = 0.375 < 0.40
        assert pf._level == 1
        assert pf.stats.throttle_downs == 1

    def test_ladder_holds_between_thresholds(self):
        pf = self.make()
        for _ in range(8):
            pf.record_useful()
        for _ in range(8):
            pf.record_unused_eviction()
        pf.record_issued(16)    # accuracy = 0.5: in the dead band
        assert pf._level == 2
        assert pf.stats.throttle_ups == 0
        assert pf.stats.throttle_downs == 0
        # The window still closed: counters reset for the next interval.
        assert pf._interval_issued == 0
        assert pf._interval_useful == 0
        assert pf._interval_unused == 0
