"""Out-of-order core correctness: architectural results must match the
in-order reference interpreter."""

import pytest

from repro import DataMemory, Interpreter, ProgramBuilder
from repro.config import default_system
from repro.core import Processor

from util import build_counted_loop, build_sum_array, make_memory_with_array


def run_both(program, memory_fn=lambda: DataMemory(), max_insts=50_000):
    """Run the OoO core and the interpreter to completion; return both."""
    proc = Processor(program, default_system(), memory=memory_fn())
    proc.run(max_insts)
    interp = Interpreter(program, memory_fn())
    for _ in interp.run(max_insts):
        pass
    return proc, interp


def assert_arch_state_matches(proc, interp):
    assert proc.halted == interp.halted
    assert proc.rename.arch_values() == interp.regs
    assert proc.memory.snapshot() == interp.memory.snapshot()


class TestBasicPrograms:
    def test_counted_loop(self):
        proc, interp = run_both(build_counted_loop(50))
        assert_arch_state_matches(proc, interp)
        assert proc.committed == interp.retired

    def test_sum_array(self):
        values = list(range(1, 33))
        program = build_sum_array(0x1000, len(values))
        mem_fn = lambda: make_memory_with_array(0x1000, values)
        proc, interp = run_both(program, mem_fn)
        assert_arch_state_matches(proc, interp)
        assert proc.rename.arch_values()[5] == sum(values)

    def test_stores_commit_in_order(self):
        b = ProgramBuilder()
        b.li("R1", 0x2000)
        for value in (10, 20, 30):
            b.li("R2", value)
            b.store("R2", "R1", 0)
        b.halt()
        proc, interp = run_both(b.build())
        assert_arch_state_matches(proc, interp)
        assert proc.memory.load(0x2000) == 30

    def test_store_to_load_forwarding(self):
        b = ProgramBuilder()
        b.li("R1", 0x3000)
        b.li("R2", 123)
        b.store("R2", "R1", 0)
        b.load("R3", "R1", 0)    # must forward from the in-flight store
        b.add("R4", "R3", "R3")
        b.halt()
        proc, interp = run_both(b.build())
        assert_arch_state_matches(proc, interp)
        assert proc.rename.arch_values()[4] == 246

    def test_branchy_code(self):
        def body(b):
            b.andi("R3", "R1", 1)
            b.beq("R3", "R0", "even")
            b.addi("R4", "R4", 1)
            b.jmp("join")
            b.label("even")
            b.addi("R5", "R5", 1)
            b.label("join")

        b = ProgramBuilder()
        b.li("R1", 0)
        b.li("R2", 64)
        b.label("loop")
        body(b)
        b.addi("R1", "R1", 1)
        b.bne("R1", "R2", "loop")
        b.halt()
        proc, interp = run_both(b.build())
        assert_arch_state_matches(proc, interp)
        assert proc.rename.arch_values()[4] == 32
        assert proc.rename.arch_values()[5] == 32

    def test_call_return(self):
        b = ProgramBuilder()
        b.li("R5", 0)
        b.li("R6", 10)
        b.label("loop")
        b.call("double")
        b.addi("R5", "R5", 1)
        b.bne("R5", "R6", "loop")
        b.halt()
        b.label("double")
        b.add("R7", "R7", "R5")
        b.ret()
        proc, interp = run_both(b.build())
        assert_arch_state_matches(proc, interp)

    def test_long_latency_ops(self):
        b = ProgramBuilder()
        b.li("R1", 1000)
        b.li("R2", 7)
        b.div("R3", "R1", "R2")
        b.mul("R4", "R3", "R2")
        b.fdiv("R5", "R1", "R2")
        b.halt()
        proc, interp = run_both(b.build())
        assert_arch_state_matches(proc, interp)

    def test_memory_dependent_loop(self):
        # Walk an initialised table: data-dependent addresses.
        values = [(i * 37) % 64 for i in range(64)]
        base = 0x8000

        def memory_fn():
            return make_memory_with_array(base, values)

        b2 = ProgramBuilder()
        b2.li("R1", 0)
        b2.li("R2", 40)
        b2.li("R3", base)
        b2.li("R7", 0)
        b2.li("R8", 3)
        b2.li("R9", 0)
        b2.label("loop")
        b2.shl("R4", "R1", "R8")
        b2.add("R4", "R4", "R3")
        b2.load("R1", "R4", 0)   # index = table[index] (dependent walk)
        b2.add("R7", "R7", "R1")
        b2.addi("R9", "R9", 1)
        b2.bne("R9", "R2", "loop")
        b2.halt()
        proc, interp = run_both(b2.build(), memory_fn)
        assert_arch_state_matches(proc, interp)


class TestPipelineBehaviour:
    def test_superscalar_ipc_exceeds_one(self):
        b = ProgramBuilder()
        b.li("R9", 0)
        b.li("R10", 2000)
        b.label("loop")
        for r in range(1, 7):
            b.addi(f"R{r}", f"R{r}", 1)
        b.addi("R9", "R9", 1)
        b.bne("R9", "R10", "loop")
        b.halt()
        proc = Processor(b.build(), default_system())
        stats = proc.run(100_000)
        assert stats.ipc > 1.5

    def test_mispredicts_recovered(self):
        # Data-dependent 50/50 branch on junk values: many mispredicts,
        # architecture must still be exact.
        b = ProgramBuilder()
        b.li("R1", 0x4000)
        b.li("R2", 64)
        b.li("R9", 0)
        b.label("loop")
        b.load("R3", "R1", 0)
        b.andi("R4", "R3", 1)
        b.beq("R4", "R0", "skip")
        b.addi("R5", "R5", 1)
        b.label("skip")
        b.addi("R1", "R1", 8)
        b.addi("R9", "R9", 1)
        b.bne("R9", "R2", "loop")
        b.halt()
        proc, interp = run_both(b.build())
        assert_arch_state_matches(proc, interp)
        assert proc.stats.squashed_uops > 0

    def test_max_cycles_cap(self):
        b = ProgramBuilder()
        b.label("spin")
        b.jmp("spin")
        proc = Processor(b.build(), default_system())
        stats = proc.run(10**9, max_cycles=500)
        assert stats.cycles <= 510
        assert not proc.halted

    def test_instruction_budget(self):
        b = ProgramBuilder()
        b.label("spin")
        b.addi("R1", "R1", 1)
        b.jmp("spin")
        proc = Processor(b.build(), default_system())
        stats = proc.run(1000)
        assert 1000 <= stats.committed_insts <= 1004

    def test_memstall_accounting_on_misses(self):
        program = build_sum_array(1 << 26, 512)
        proc = Processor(program, default_system())
        stats = proc.run(10_000)
        assert stats.memstall_cycles > 0
        assert stats.llc_demand_misses > 0

    def test_stats_dict_roundtrip(self):
        proc = Processor(build_counted_loop(10), default_system())
        stats = proc.run(1000)
        d = stats.to_dict()
        assert d["committed_insts"] == stats.committed_insts
        import json
        json.dumps(d)  # must be serializable
