"""Property test: architectural correctness is configuration-independent.

Whatever the microarchitecture — width, window sizes, latencies, runahead
mode — the out-of-order core must produce exactly the reference
interpreter's architectural results.  This catches bugs that only appear
under unusual resource pressure (1-wide cores, tiny ROBs, single-entry
queues, slow DRAM, aggressive runahead).
"""

from hypothesis import given, settings, strategies as st

from repro import DataMemory, Interpreter, ProgramBuilder
from repro.config import RunaheadMode, make_config
from repro.core import Processor


def reference_program():
    """A fixed mixed kernel: loads, stores, branches, long-latency ops."""
    b = ProgramBuilder()
    b.li("R1", 0x4000)
    b.li("R2", 96)
    b.li("R9", 0)
    b.li("R8", 0x9000)
    b.label("loop")
    b.load("R3", "R1", 0)
    b.andi("R4", "R3", 7)
    b.beq("R4", "R0", "skip")
    b.mul("R5", "R4", "R3")
    b.store("R5", "R8", 0)
    b.load("R6", "R8", 0)
    b.add("R7", "R7", "R6")
    b.label("skip")
    b.addi("R1", "R1", 8)
    b.addi("R8", "R8", 8)
    b.addi("R9", "R9", 1)
    b.bne("R9", "R2", "loop")
    b.halt()
    return b.build(name="fuzz_kernel")


PROGRAM = reference_program()


def golden_state():
    interp = Interpreter(PROGRAM, DataMemory())
    for _ in interp.run(100_000):
        pass
    return interp.regs, interp.memory.snapshot()


GOLDEN_REGS, GOLDEN_MEM = golden_state()


config_params = st.fixed_dictionaries({
    "width": st.integers(min_value=1, max_value=8),
    "rob_size": st.integers(min_value=16, max_value=256),
    "rs_size": st.integers(min_value=8, max_value=128),
    "lq": st.integers(min_value=4, max_value=64),
    "sq": st.integers(min_value=4, max_value=48),
    "mem_ports": st.integers(min_value=1, max_value=4),
    "l1_latency": st.integers(min_value=1, max_value=6),
    "llc_latency": st.integers(min_value=5, max_value=40),
    "cas": st.integers(min_value=10, max_value=120),
    "mode": st.sampled_from(list(RunaheadMode)),
    "buffer_uops": st.sampled_from([8, 16, 32]),
    "mshrs": st.integers(min_value=4, max_value=48),
})


@given(params=config_params)
@settings(max_examples=40, deadline=None)
def test_any_configuration_is_architecturally_exact(params):
    cfg = make_config(params["mode"],
                      buffer_uops=params["buffer_uops"],
                      max_chain_length=params["buffer_uops"])
    core = cfg.core
    core.width = params["width"]
    core.rob_size = max(params["rob_size"], params["width"])
    core.rs_size = params["rs_size"]
    core.load_queue_size = params["lq"]
    core.store_queue_size = params["sq"]
    core.mem_ports = params["mem_ports"]
    core.num_phys_regs = core.rob_size + 64
    cfg.l1d.latency = params["l1_latency"]
    cfg.l1i.latency = params["l1_latency"]
    cfg.llc.latency = params["llc_latency"]
    cfg.llc.mshrs = params["mshrs"]
    cfg.dram.t_cas = params["cas"]
    cfg.validate()

    proc = Processor(PROGRAM, cfg, memory=DataMemory())
    proc.run(100_000)

    assert proc.halted
    assert proc.rename.arch_values() == GOLDEN_REGS
    assert proc.memory.snapshot() == GOLDEN_MEM
