"""Configuration tests: Table 1 defaults, validation, named configs."""

import pytest

from repro.config import (
    CONFIG_BUILDERS,
    RunaheadMode,
    build_named_config,
    default_system,
    make_config,
)


class TestTable1Defaults:
    def test_core(self, system_config):
        core = system_config.core
        assert core.width == 4
        assert core.rob_size == 192
        assert core.rs_size == 92
        assert core.clock_ghz == pytest.approx(3.2)

    def test_caches(self, system_config):
        assert system_config.l1i.size_bytes == 32 * 1024
        assert system_config.l1d.size_bytes == 32 * 1024
        assert system_config.l1d.latency == 3
        assert system_config.llc.size_bytes == 1024 * 1024
        assert system_config.llc.latency == 18
        assert system_config.llc.assoc == 8

    def test_runahead_structures(self, system_config):
        ra = system_config.runahead
        assert ra.buffer_uops == 32
        assert ra.chain_cache_entries == 2
        assert ra.max_chain_length == 32
        assert ra.runahead_cache_bytes == 512
        assert ra.runahead_cache_assoc == 4
        assert ra.mode is RunaheadMode.NONE

    def test_storage_overhead_is_about_1_7kb(self, system_config):
        """The paper estimates 1.7 kB total storage for the RAB system."""
        ra = system_config.runahead
        buffer_bytes = ra.buffer_uops * 8
        chain_cache_bytes = ra.chain_cache_entries * 32 * 8
        rob_uop_bytes = 4 * system_config.core.rob_size
        bitvector = system_config.core.rob_size // 8
        srsl = 16 * 2
        total = (buffer_bytes + chain_cache_bytes + rob_uop_bytes
                 + bitvector + srsl)
        assert 1_400 <= total <= 2_000

    def test_dram(self, system_config):
        dram = system_config.dram
        assert dram.channels == 2
        assert dram.banks_per_channel == 8
        assert dram.row_bytes == 8192
        assert dram.queue_entries == 64
        # CAS 13.75 ns at 3.2 GHz = 44 core cycles.
        assert dram.t_cas == 44

    def test_prefetcher(self, system_config):
        pf = system_config.prefetcher
        assert not pf.enabled
        assert pf.num_streams == 32
        assert pf.distance == 32
        assert pf.degree == 2


class TestValidation:
    def test_default_validates(self, system_config):
        system_config.validate()

    def test_rejects_zero_width(self, system_config):
        system_config.core.width = 0
        with pytest.raises(ValueError):
            system_config.validate()

    def test_rejects_too_few_phys_regs(self, system_config):
        system_config.core.num_phys_regs = 100
        with pytest.raises(ValueError):
            system_config.validate()

    def test_rejects_chain_longer_than_buffer(self, system_config):
        system_config.runahead.max_chain_length = 64
        with pytest.raises(ValueError):
            system_config.validate()

    def test_rejects_bad_cache_geometry(self, system_config):
        system_config.llc.size_bytes = 1000  # not divisible into sets
        with pytest.raises(ValueError):
            system_config.validate()


class TestNamedConfigs:
    def test_all_builders_valid(self):
        for name in CONFIG_BUILDERS:
            cfg = build_named_config(name)
            cfg.validate()

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown config"):
            build_named_config("warp_drive")

    def test_pf_variants_enable_prefetcher(self):
        assert build_named_config("pf").prefetcher.enabled
        assert build_named_config("rab_cc_pf").prefetcher.enabled
        assert not build_named_config("rab_cc").prefetcher.enabled

    def test_modes(self):
        assert build_named_config("runahead").runahead.mode \
            is RunaheadMode.TRADITIONAL
        assert build_named_config("rab").runahead.mode is RunaheadMode.BUFFER
        assert build_named_config("rab_cc").runahead.mode \
            is RunaheadMode.BUFFER_CHAIN_CACHE
        assert build_named_config("hybrid").runahead.mode is RunaheadMode.HYBRID

    def test_enhancements_flag(self):
        assert build_named_config("runahead_enh").runahead.enhancements
        assert not build_named_config("runahead").runahead.enhancements

    def test_make_config_overrides(self):
        cfg = make_config(RunaheadMode.BUFFER, buffer_uops=16,
                          max_chain_length=16)
        assert cfg.runahead.buffer_uops == 16

    def test_make_config_rejects_invalid_override(self):
        with pytest.raises(ValueError):
            make_config(RunaheadMode.BUFFER, buffer_uops=8,
                        max_chain_length=32)

    def test_configs_are_independent(self):
        a = build_named_config("baseline")
        b = build_named_config("baseline")
        a.core.rob_size = 10
        assert b.core.rob_size == 192
