"""Analysis harness tests: metrics, matrix caching, figures, rendering."""

import json

import pytest

from repro.analysis import (
    ExperimentMatrix,
    Table,
    figures,
    gmean,
    gmean_percent_delta,
    percent_delta,
    render,
    write_report,
)


class TestMetrics:
    def test_gmean_basic(self):
        assert gmean([2, 8]) == pytest.approx(4.0)
        assert gmean([5]) == pytest.approx(5.0)

    def test_gmean_clamps_zero(self):
        assert gmean([0.0, 1.0]) > 0

    def test_gmean_empty_raises(self):
        with pytest.raises(ValueError):
            gmean([])

    def test_percent_delta(self):
        assert percent_delta(1.5, 1.0) == pytest.approx(50.0)
        assert percent_delta(1.0, 0.0) == 0.0

    def test_gmean_percent_delta(self):
        assert gmean_percent_delta([2, 2], [1, 1]) == pytest.approx(100.0)
        with pytest.raises(ValueError):
            gmean_percent_delta([1], [1, 2])


class TestTableRendering:
    def test_add_and_render(self):
        table = Table("Demo", ["name", "value"])
        table.add("alpha", 1.2345)
        table.notes.append("a note")
        text = render(table)
        assert "Demo" in text
        assert "alpha" in text
        assert "1.23" in text
        assert "a note" in text

    def test_wrong_arity_rejected(self):
        table = Table("Demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add(1)

    def test_column_and_row_map(self):
        table = Table("Demo", ["name", "value"])
        table.add("x", 1)
        table.add("y", 2)
        assert table.column("value") == [1, 2]
        assert table.row_map()["y"] == ("y", 2)

    def test_write_report(self, tmp_path):
        table = Table("Demo", ["a"])
        table.add(1)
        out = write_report(table, "demo.txt", directory=tmp_path)
        assert out.read_text().startswith("Demo")


class TestExperimentMatrix:
    def test_memoizes_in_memory(self, tmp_path):
        matrix = ExperimentMatrix(instructions=400, warmup=500,
                                  cache_path=tmp_path / "cache.json")
        first = matrix.get("calculix", "baseline")
        second = matrix.get("calculix", "baseline")
        assert first is second

    def test_disk_cache_roundtrip(self, tmp_path):
        path = tmp_path / "cache.json"
        m1 = ExperimentMatrix(instructions=400, warmup=500, cache_path=path)
        stats = m1.get("calculix", "baseline")
        m1.save()
        assert path.exists()
        m2 = ExperimentMatrix(instructions=400, warmup=500, cache_path=path)
        assert m2.get("calculix", "baseline") == stats

    def test_stale_model_version_discarded(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text(json.dumps({"model_version": -1, "results":
                                    {"bogus": {}}}))
        matrix = ExperimentMatrix(instructions=400, warmup=500,
                                  cache_path=path)
        assert matrix._results == {}

    def test_unknown_config_rejected(self, tmp_path):
        matrix = ExperimentMatrix(cache_path=tmp_path / "c.json")
        with pytest.raises(ValueError):
            matrix.get("mcf", "not_a_config")

    def test_speedup_helper(self, tmp_path):
        matrix = ExperimentMatrix(instructions=400, warmup=500,
                                  cache_path=None)
        delta = matrix.speedup_pct("calculix", "baseline")
        assert delta == pytest.approx(0.0)

    def test_chain_stats_cells_distinct(self, tmp_path):
        matrix = ExperimentMatrix(instructions=400, warmup=500,
                                  cache_path=None)
        plain = matrix.get("calculix", "baseline")
        chains = matrix.get("calculix", "baseline", chain_stats=True)
        assert plain is not chains

    def test_key_includes_budgets(self):
        matrix = ExperimentMatrix(instructions=400, warmup=500,
                                  cache_path=None)
        key = matrix._key("mcf", "baseline", False)
        assert "400" in key and "w500" in key
        matrix.warmup = 600
        assert matrix._key("mcf", "baseline", False) != key

    def test_multicore_cells_cached_and_disk_roundtripped(self, tmp_path):
        path = tmp_path / "cache.json"
        m1 = ExperimentMatrix(instructions=400, warmup=500, cache_path=path)
        first = m1.get_multicore(["calculix", "calculix"], "baseline")
        assert first is m1.get_multicore(["calculix", "calculix"],
                                         "baseline")
        assert len(first["per_core"]) == 2
        assert "contention" in first["shared"]
        m1.save()
        m2 = ExperimentMatrix(instructions=400, warmup=500, cache_path=path)
        assert m2.get_multicore(["calculix", "calculix"],
                                "baseline") == first
        # Distinct from the single-core cell of the same workload/config.
        assert not m2.is_cached("calculix", "baseline")

    def test_multicore_rejected_on_sampled_matrices(self, tmp_path):
        from repro.config import SamplingConfig
        plan = SamplingConfig(tier="two-level", ramp_instructions=100,
                              window_instructions=200,
                              stride_instructions=1000)
        matrix = ExperimentMatrix(instructions=5000, warmup=500,
                                  cache_path=None, sampling=plan)
        with pytest.raises(ValueError, match="detailed"):
            matrix.get_multicore(["mcf", "lbm"], "baseline")
        plain = ExperimentMatrix(instructions=400, warmup=500,
                                 cache_path=None)
        with pytest.raises(ValueError):
            plain.get_multicore(["mcf"], "baseline")  # N=1 → get()
        with pytest.raises(ValueError):
            plain.get_multicore(["mcf", "lbm"], "not_a_config")

    def test_changed_warmup_invalidates_cache(self, tmp_path, monkeypatch):
        path = tmp_path / "cache.json"
        m1 = ExperimentMatrix(instructions=400, warmup=500, cache_path=path)
        m1.get("calculix", "baseline")
        m1.save()
        from repro.core import simulate
        calls = []

        def spy(*args, **kwargs):
            calls.append(kwargs)
            return simulate(*args, **kwargs)

        monkeypatch.setattr("repro.analysis.experiments.simulate", spy)
        m2 = ExperimentMatrix(instructions=400, warmup=500, cache_path=path)
        m2.get("calculix", "baseline")
        assert not calls  # same warmup: served from cache
        m3 = ExperimentMatrix(instructions=400, warmup=700, cache_path=path)
        m3.get("calculix", "baseline")
        assert len(calls) == 1  # warmup changed: cell re-simulated
        assert calls[0]["warmup_instructions"] == 700

    def test_payload_persists_budgets_and_schema(self, tmp_path):
        from repro.analysis import KEY_SCHEMA, MODEL_VERSION
        path = tmp_path / "cache.json"
        matrix = ExperimentMatrix(instructions=400, warmup=500,
                                  cache_path=path)
        matrix.get("calculix", "baseline")
        matrix.save()
        payload = json.loads(path.read_text())
        assert payload["warmup"] == 500
        assert payload["instructions"] == 400
        assert payload["model_version"] == MODEL_VERSION
        assert payload["key_schema"] == KEY_SCHEMA

    def test_truncated_cache_recovered(self, tmp_path):
        path = tmp_path / "cache.json"
        m1 = ExperimentMatrix(instructions=400, warmup=500, cache_path=path)
        stats = m1.get("calculix", "baseline")
        m1.save()
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        m2 = ExperimentMatrix(instructions=400, warmup=500, cache_path=path)
        assert m2._results == {}
        assert m2.get("calculix", "baseline") == stats

    def test_save_is_atomic_on_failure(self, tmp_path):
        path = tmp_path / "cache.json"
        matrix = ExperimentMatrix(instructions=400, warmup=500,
                                  cache_path=path)
        matrix.get("calculix", "baseline")
        matrix.save()
        good = path.read_text()
        matrix.store("calculix", "baseline", True, {"bad": object()})
        with pytest.raises(TypeError):
            matrix.save()
        assert path.read_text() == good  # old cache untouched
        assert list(tmp_path.iterdir()) == [path]  # no temp litter

    def test_plain_get_falls_back_to_chains_superset(self, monkeypatch):
        matrix = ExperimentMatrix(instructions=400, warmup=500,
                                  cache_path=None)
        chains = matrix.get("calculix", "baseline", chain_stats=True)

        def boom(*args, **kwargs):
            raise AssertionError("plain cell should reuse +chains result")

        monkeypatch.setattr("repro.analysis.experiments.simulate", boom)
        assert matrix.get("calculix", "baseline") is chains
        assert matrix.is_cached("calculix", "baseline")


@pytest.fixture(scope="module")
def small_matrix():
    return ExperimentMatrix(instructions=800, warmup=1500, cache_path=None)


class TestFigureExtractors:
    def test_table1_matches_paper_column(self):
        table = figures.table1_configuration()
        for row in table.rows:
            assert row[1] == row[2], f"{row[0]} deviates from Table 1"

    def test_fig09_shape(self, small_matrix):
        table = figures.fig09_performance_nopf(small_matrix)
        assert table.headers[0] == "benchmark"
        assert table.rows[-1][0] == "GMean"
        assert len(table.rows) == 14  # 13 benchmarks + gmean

    def test_fig10_has_average(self, small_matrix):
        table = figures.fig10_mlp(small_matrix)
        assert table.rows[-1][0] == "Average"

    def test_fig16_traffic_nonnegative_for_pf(self, small_matrix):
        table = figures.fig16_memory_traffic(small_matrix)
        pf_col = list(table.headers).index("pf")
        gmean_row = table.rows[-1]
        assert gmean_row[pf_col] > 0  # the prefetcher adds traffic

    def test_headline_summary_renders(self, small_matrix):
        table = figures.headline_summary(small_matrix)
        text = render(table)
        assert "runahead perf %" in text


class TestComparisonExport:
    def test_export_comparison(self, small_matrix, tmp_path):
        out = figures.export_comparison(small_matrix,
                                        path=tmp_path / "cmp.json")
        payload = json.loads(out.read_text())
        assert "runahead perf %" in payload
        for entry in payload.values():
            assert set(entry) == {"measured", "paper", "direction_matches"}

    def test_paper_headline_registry_complete(self):
        table_metrics = set(figures.PAPER_HEADLINES)
        assert "rab_cc energy %" in table_metrics
        assert len(table_metrics) == 11


class TestConcurrentWriters:
    """ExperimentMatrix.save() must merge with cells a concurrent writer
    flushed since this matrix loaded the cache — plain read-once/
    write-whole persistence silently drops the loser's cells."""

    def _pair(self, tmp_path):
        path = tmp_path / "cache.json"
        a = ExperimentMatrix(instructions=400, warmup=500, cache_path=path)
        b = ExperimentMatrix(instructions=400, warmup=500, cache_path=path)
        return path, a, b

    def test_two_writers_disjoint_cells_both_survive(self, tmp_path):
        path, a, b = self._pair(tmp_path)
        a.store("calculix", "baseline", False, {"ipc": 1.0})
        b.store("calculix", "runahead", False, {"ipc": 2.0})
        a.save()
        b.save()  # loaded before a.save(): must merge, not overwrite
        merged = ExperimentMatrix(instructions=400, warmup=500,
                                  cache_path=path)
        assert merged._lookup("calculix", "baseline", False) == {"ipc": 1.0}
        assert merged._lookup("calculix", "runahead", False) == {"ipc": 2.0}

    def test_save_folds_peer_cells_into_memory_too(self, tmp_path):
        path, a, b = self._pair(tmp_path)
        a.store("calculix", "baseline", False, {"ipc": 1.0})
        a.save()
        b.store("calculix", "runahead", False, {"ipc": 2.0})
        b.save()
        # b's in-memory view now includes a's flushed cell as well.
        assert b._lookup("calculix", "baseline", False) == {"ipc": 1.0}

    def test_own_cell_wins_over_disk_on_conflict(self, tmp_path):
        path, a, b = self._pair(tmp_path)
        a.store("calculix", "baseline", False, {"ipc": 1.0})
        a.save()
        b.store("calculix", "baseline", False, {"ipc": 9.0})
        b.save()
        merged = ExperimentMatrix(instructions=400, warmup=500,
                                  cache_path=path)
        assert merged._lookup("calculix", "baseline", False) == {"ipc": 9.0}

    def test_merge_ignores_stale_schema_payloads(self, tmp_path):
        path = tmp_path / "cache.json"
        a = ExperimentMatrix(instructions=400, warmup=500, cache_path=path)
        a.store("calculix", "baseline", False, {"ipc": 1.0})
        path.write_text(json.dumps({"model_version": -1,
                                    "results": {"stale": {}}}))
        a.save()
        merged = ExperimentMatrix(instructions=400, warmup=500,
                                  cache_path=path)
        assert "stale" not in merged._results
        assert merged._lookup("calculix", "baseline", False) == {"ipc": 1.0}


class TestHostKeyScrub:
    """REPRO_FF_LANE (and the other host-environment knobs) must never
    leak into cell keys or cached payloads: lanes are byte-identical by
    the lane-identity gate, so cached cells must be lane-agnostic."""

    def _cache_bytes(self, tmp_path, monkeypatch, lane):
        from repro.config import SamplingConfig
        monkeypatch.setenv("REPRO_FF_LANE", lane)
        path = tmp_path / f"{lane}.json"
        plan = SamplingConfig(tier="two-level", ramp_instructions=100,
                              window_instructions=200,
                              stride_instructions=1000)
        matrix = ExperimentMatrix(instructions=3000, warmup=1000,
                                  cache_path=path, sampling=plan)
        matrix.get("calculix", "baseline")
        matrix.save()
        return path.read_bytes()

    def test_ff_lane_env_never_reaches_cache(self, tmp_path, monkeypatch):
        jit = self._cache_bytes(tmp_path, monkeypatch, "jit")
        interp = self._cache_bytes(tmp_path, monkeypatch, "interp")
        assert b"ff_lane" not in jit
        assert b"jit" not in jit.replace(b"calculix", b"")
        assert jit == interp  # byte-identical payload across lanes

    def test_ff_lane_env_never_reaches_cell_keys(self, monkeypatch):
        from repro.config import SamplingConfig
        plan = SamplingConfig(tier="two-level", ramp_instructions=100,
                              window_instructions=200,
                              stride_instructions=1000)
        keys = []
        for lane in ("jit", "interp"):
            monkeypatch.setenv("REPRO_FF_LANE", lane)
            matrix = ExperimentMatrix(instructions=3000, warmup=1000,
                                      cache_path=None, sampling=plan)
            keys.append(matrix._key("calculix", "baseline", False))
        assert keys[0] == keys[1]
        assert "lane" not in keys[0]

    def test_cacheable_sampling_scrubs_host_keys_recursively(self):
        from repro.analysis.experiments import _cacheable_sampling
        meta = {
            "windows": 3,
            "ff_lane": "jit",
            "ff_seconds": 1.25,
            "estimates": {"ipc": 0.5},
            "checkpoints": {"count": 2, "jobs": 4, "store_hits": 1,
                            "store_misses": 2, "checkpoint_seconds": 0.1},
        }
        assert _cacheable_sampling(meta) == {
            "windows": 3,
            "estimates": {"ipc": 0.5},
            "checkpoints": {"count": 2},
        }
