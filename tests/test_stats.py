"""SimStats derived-metric tests."""

import json

from repro.core.stats import ChainAnalysis, SimStats


def make_stats(**overrides):
    stats = SimStats()
    for key, value in overrides.items():
        setattr(stats, key, value)
    return stats


class TestDerivedMetrics:
    def test_ipc(self):
        assert make_stats(committed_insts=100, cycles=200).ipc == 0.5
        assert make_stats(cycles=0).ipc == 0.0

    def test_mpki(self):
        stats = make_stats(committed_insts=2000, llc_demand_misses=30)
        assert stats.mpki == 15.0
        assert make_stats().mpki == 0.0

    def test_memstall_fraction(self):
        stats = make_stats(cycles=100, memstall_cycles=40)
        assert stats.memstall_fraction == 0.4

    def test_branch_accuracy(self):
        stats = make_stats(cond_branches=100, cond_mispredicts=8)
        assert stats.branch_accuracy == 0.92
        assert make_stats().branch_accuracy == 1.0

    def test_dram_requests(self):
        assert make_stats(dram_reads=5, dram_writes=3).dram_requests == 8

    def test_runahead_cycle_fractions(self):
        stats = make_stats(cycles=100, cycles_in_rab=25,
                           cycles_in_traditional=25)
        assert stats.rab_cycle_fraction == 0.25
        assert stats.runahead_cycle_fraction == 0.5
        assert stats.hybrid_rab_share == 0.5

    def test_hybrid_share_without_runahead(self):
        assert make_stats().hybrid_rab_share == 0.0

    def test_chain_cache_metrics(self):
        stats = make_stats(chain_cache_hits=9, chain_cache_misses=1,
                           chain_cache_checked_hits=4,
                           chain_cache_exact_hits=3)
        assert stats.chain_cache_hit_rate == 0.9
        assert stats.chain_cache_exact_fraction == 0.75

    def test_misses_per_interval(self):
        stats = make_stats(runahead_intervals=4,
                           runahead_misses_generated=20)
        assert stats.misses_per_interval == 5.0
        assert make_stats().misses_per_interval == 0.0

    def test_total_energy_default(self):
        assert make_stats().total_energy_j == 0.0


class TestSerialization:
    def test_to_dict_contains_everything(self):
        stats = make_stats(workload="x", cycles=10, committed_insts=5)
        stats.chains = ChainAnalysis(misses_source_onchip=1)
        d = stats.to_dict()
        assert d["workload"] == "x"
        assert d["ipc"] == 0.5
        assert d["chains"]["misses_source_onchip"] == 1
        json.dumps(d)

    def test_dict_has_all_derived_fields(self):
        d = make_stats().to_dict()
        for key in ("ipc", "mpki", "memstall_fraction", "dram_requests",
                    "branch_accuracy", "rab_cycle_fraction",
                    "hybrid_rab_share", "chain_cache_hit_rate",
                    "misses_per_interval", "total_energy_j"):
            assert key in d
