"""Runahead policy state: entry filters and interval bookkeeping."""

import pytest

from repro.config import RunaheadConfig, RunaheadMode, make_config
from repro.core import Processor
from repro.runahead import RunaheadPolicyState
from repro.runahead.state import IntervalRecord
from repro.workloads import linked_list


def make_policy(**overrides):
    cfg = RunaheadConfig(mode=RunaheadMode.TRADITIONAL, enhancements=True,
                         **overrides)
    return RunaheadPolicyState(cfg)


class TestEnhancementFilters:
    def test_allows_fresh_miss(self):
        policy = make_policy()
        assert policy.enhancements_allow(committed_total=1000,
                                         miss_issue_retired=950)

    def test_policy1_blocks_stale_miss(self):
        """A miss issued >= 250 instructions ago: interval would be short."""
        policy = make_policy()
        assert not policy.enhancements_allow(committed_total=1000,
                                             miss_issue_retired=700)
        assert policy.entries_blocked_short == 1

    def test_policy1_threshold_configurable(self):
        policy = make_policy(enhancement_distance=500)
        assert policy.enhancements_allow(committed_total=1000,
                                         miss_issue_retired=700)

    def test_policy1_skipped_when_unknown(self):
        policy = make_policy()
        assert policy.enhancements_allow(committed_total=1000,
                                         miss_issue_retired=-1)

    def test_policy2_blocks_overlapping_interval(self):
        """Execution has not passed the last interval's furthest point."""
        policy = make_policy()
        policy.begin_interval("traditional", now=0)
        policy.end_interval(now=100, committed_total=1000, pseudo_retired=400)
        assert not policy.enhancements_allow(committed_total=1200,
                                             miss_issue_retired=1150)
        assert policy.entries_blocked_overlap == 1
        assert policy.enhancements_allow(committed_total=1500,
                                         miss_issue_retired=1450)


class TestIntervals:
    def test_interval_lifecycle(self):
        policy = make_policy()
        record = policy.begin_interval("buffer", now=10, chain_gen_cycles=3,
                                       used_chain_cache=True)
        record.misses_generated = 7
        policy.end_interval(now=60, committed_total=500, pseudo_retired=120)
        assert policy.current is None
        assert policy.interval_count() == 1
        assert policy.interval_count("buffer") == 1
        assert policy.interval_count("traditional") == 0
        assert policy.cycles_in("buffer") == 50
        assert policy.misses_per_interval("buffer") == 7.0

    def test_furthest_point_monotonic(self):
        policy = make_policy()
        policy.begin_interval("traditional", now=0)
        policy.end_interval(now=10, committed_total=100, pseudo_retired=300)
        policy.begin_interval("traditional", now=20)
        policy.end_interval(now=30, committed_total=150, pseudo_retired=10)
        assert policy.last_furthest_instruction == 400

    def test_program_distance_caps_furthest_point(self):
        """Buffer mode: the chain loop may pseudo-retire thousands of
        uops, but only genuine program-order progress advances Policy 2's
        furthest-point marker."""
        policy = make_policy()
        policy.begin_interval("buffer", now=0)
        policy.end_interval(now=100, committed_total=1000,
                            pseudo_retired=10_000, program_distance=50)
        assert policy.last_furthest_instruction == 1050
        # Progress past 1050 must be allowed again immediately.
        assert policy.enhancements_allow(committed_total=1051,
                                         miss_issue_retired=1050)

    def test_program_distance_defaults_to_pseudo_retired(self):
        """Traditional runahead: every drained uop is program-order."""
        policy = make_policy()
        policy.begin_interval("traditional", now=0)
        policy.end_interval(now=100, committed_total=1000, pseudo_retired=400)
        assert policy.last_furthest_instruction == 1400

    def test_inverted_interval_raises(self):
        """exit_cycle < entry_cycle is a core bug, not a 0-cycle interval."""
        record = IntervalRecord(kind="traditional", entry_cycle=100,
                                exit_cycle=40)
        with pytest.raises(ValueError, match="inverted"):
            record.cycles

    def test_end_without_begin_is_noop(self):
        policy = make_policy()
        policy.end_interval(now=10, committed_total=1, pseudo_retired=1)
        assert policy.interval_count() == 0

    def test_misses_per_interval_empty(self):
        policy = make_policy()
        assert policy.misses_per_interval() == 0.0


class TestPolicy2BufferVsTraditional:
    """Regression: buffer-mode chain loops must not inflate Policy 2.

    Pre-fix, ``end_interval`` credited every pseudo-retired uop —
    including the looped chain's repeated iterations — as program-order
    progress, so one buffer interval could push
    ``last_furthest_instruction`` thousands of instructions ahead and
    wrongly block every later entry that traditional runahead would have
    taken at the same point."""

    def _run(self, mode, insts=4000):
        wl = linked_list("t_policy2")
        cfg = make_config(mode, enhancements=True)
        proc = Processor(wl.program, cfg, memory=wl.memory)
        proc.warm_up(2000)
        proc.run(insts)
        return proc

    def test_buffer_counts_only_program_order_progress(self):
        proc = self._run(RunaheadMode.BUFFER)
        policy = proc.ra_policy
        assert policy.interval_count("buffer") > 0, "runahead never entered"
        # On the pointer chase each interval drains roughly one window of
        # program-order uops but pseudo-retires ~2x that including chain
        # iterations; the marker must reflect only the former.  Pre-fix
        # the last interval alone pushed the marker ~works past commit.
        window = proc.config.core.rob_size + proc.decode_queue_cap
        assert (policy.last_furthest_instruction
                <= proc.committed + window)

    def test_buffer_enters_more_intervals_than_traditional(self):
        trad = self._run(RunaheadMode.TRADITIONAL)
        buf = self._run(RunaheadMode.BUFFER)
        trad_count = trad.ra_policy.interval_count()
        buf_count = buf.ra_policy.interval_count()
        assert trad_count > 0
        # Buffer intervals cover less program-order distance than
        # traditional ones (the chain loop revisits the same PCs), so on
        # the pointer chase Policy 2 re-arms much sooner and buffer mode
        # takes well over twice as many intervals.  Pre-fix the looped
        # chain's pseudo-retirements inflated the furthest-point marker
        # to traditional-like distances, halving the entry count.
        assert buf_count >= 2 * trad_count, (
            f"buffer={buf_count} traditional={trad_count}: Policy 2 is "
            f"overcounting buffer-mode program-order progress")
