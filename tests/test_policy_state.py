"""Runahead policy state: entry filters and interval bookkeeping."""

from repro.config import RunaheadConfig, RunaheadMode
from repro.runahead import RunaheadPolicyState


def make_policy(**overrides):
    cfg = RunaheadConfig(mode=RunaheadMode.TRADITIONAL, enhancements=True,
                         **overrides)
    return RunaheadPolicyState(cfg)


class TestEnhancementFilters:
    def test_allows_fresh_miss(self):
        policy = make_policy()
        assert policy.enhancements_allow(committed_total=1000,
                                         miss_issue_retired=950)

    def test_policy1_blocks_stale_miss(self):
        """A miss issued >= 250 instructions ago: interval would be short."""
        policy = make_policy()
        assert not policy.enhancements_allow(committed_total=1000,
                                             miss_issue_retired=700)
        assert policy.entries_blocked_short == 1

    def test_policy1_threshold_configurable(self):
        policy = make_policy(enhancement_distance=500)
        assert policy.enhancements_allow(committed_total=1000,
                                         miss_issue_retired=700)

    def test_policy1_skipped_when_unknown(self):
        policy = make_policy()
        assert policy.enhancements_allow(committed_total=1000,
                                         miss_issue_retired=-1)

    def test_policy2_blocks_overlapping_interval(self):
        """Execution has not passed the last interval's furthest point."""
        policy = make_policy()
        policy.begin_interval("traditional", now=0)
        policy.end_interval(now=100, committed_total=1000, pseudo_retired=400)
        assert not policy.enhancements_allow(committed_total=1200,
                                             miss_issue_retired=1150)
        assert policy.entries_blocked_overlap == 1
        assert policy.enhancements_allow(committed_total=1500,
                                         miss_issue_retired=1450)


class TestIntervals:
    def test_interval_lifecycle(self):
        policy = make_policy()
        record = policy.begin_interval("buffer", now=10, chain_gen_cycles=3,
                                       used_chain_cache=True)
        record.misses_generated = 7
        policy.end_interval(now=60, committed_total=500, pseudo_retired=120)
        assert policy.current is None
        assert policy.interval_count() == 1
        assert policy.interval_count("buffer") == 1
        assert policy.interval_count("traditional") == 0
        assert policy.cycles_in("buffer") == 50
        assert policy.misses_per_interval("buffer") == 7.0

    def test_furthest_point_monotonic(self):
        policy = make_policy()
        policy.begin_interval("traditional", now=0)
        policy.end_interval(now=10, committed_total=100, pseudo_retired=300)
        policy.begin_interval("traditional", now=20)
        policy.end_interval(now=30, committed_total=150, pseudo_retired=10)
        assert policy.last_furthest_instruction == 400

    def test_end_without_begin_is_noop(self):
        policy = make_policy()
        policy.end_interval(now=10, committed_total=1, pseudo_retired=1)
        assert policy.interval_count() == 0

    def test_misses_per_interval_empty(self):
        policy = make_policy()
        assert policy.misses_per_interval() == 0.0
