"""Public `simulate()` API tests."""

import pytest

from repro import (
    ProgramBuilder,
    RunaheadMode,
    Workload,
    build_workload,
    make_config,
    simulate,
)


def test_simulate_by_name():
    result = simulate("calculix", make_config(), max_instructions=500,
                      warmup_instructions=500)
    assert result.stats.committed_insts >= 500
    assert result.ipc > 0
    assert result.stats.workload == "calculix"


def test_simulate_bare_program():
    b = ProgramBuilder()
    b.label("spin")
    b.addi("R1", "R1", 1)
    b.jmp("spin")
    result = simulate(b.build(name="spin"), max_instructions=300,
                      warmup_instructions=0)
    assert result.stats.committed_insts >= 300


def test_simulate_workload_object():
    workload = build_workload("mcf")
    assert isinstance(workload, Workload)
    result = simulate(workload, make_config(), max_instructions=400,
                      warmup_instructions=400)
    assert result.stats.committed_insts >= 400


def test_energy_report_attached():
    result = simulate("calculix", make_config(), max_instructions=400,
                      warmup_instructions=400)
    assert result.energy.total > 0
    assert result.stats.energy_report["total"] == result.energy.total


def test_config_name_recorded():
    result = simulate("calculix", make_config(), max_instructions=300,
                      warmup_instructions=0, config_name="baseline")
    assert result.stats.config_name == "baseline"


def test_default_config_is_baseline():
    result = simulate("calculix", max_instructions=300,
                      warmup_instructions=0)
    assert result.stats.runahead_intervals == 0


def test_runahead_mode_flows_through():
    result = simulate("mcf", make_config(RunaheadMode.BUFFER),
                      max_instructions=1500, warmup_instructions=2000)
    assert result.stats.rab_intervals > 0


def test_max_cycles_cap():
    result = simulate("mcf", make_config(), max_instructions=10**9,
                      warmup_instructions=0, max_cycles=2000)
    assert result.stats.cycles <= 2100
