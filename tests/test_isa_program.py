"""ProgramBuilder / Program tests."""

import pytest

from repro.isa import Opcode, Program, ProgramBuilder, Instruction


class TestProgramBuilder:
    def test_labels_resolve(self):
        b = ProgramBuilder()
        b.label("top")
        b.addi("R1", "R1", 1)
        b.jmp("top")
        program = b.build()
        assert program.instructions[1].target == 0

    def test_forward_labels(self):
        b = ProgramBuilder()
        b.beq("R1", "R0", "end")
        b.nop()
        b.label("end")
        b.halt()
        program = b.build()
        assert program.instructions[0].target == 2

    def test_undefined_label_raises(self):
        b = ProgramBuilder()
        b.jmp("nowhere")
        with pytest.raises(ValueError, match="undefined label"):
            b.build()

    def test_duplicate_label_raises(self):
        b = ProgramBuilder()
        b.label("x")
        with pytest.raises(ValueError, match="duplicate"):
            b.label("x")

    def test_entry_by_label(self):
        b = ProgramBuilder()
        b.nop()
        b.label("go")
        b.halt()
        program = b.build(entry="go")
        assert program.entry == 1

    def test_undefined_entry_label(self):
        b = ProgramBuilder()
        b.halt()
        with pytest.raises(ValueError, match="undefined entry"):
            b.build(entry="missing")

    def test_numeric_branch_target(self):
        b = ProgramBuilder()
        b.jmp(0)
        program = b.build()
        assert program.instructions[0].target == 0

    def test_pc_helper(self):
        b = ProgramBuilder()
        assert b.pc() == 0
        b.nop()
        assert b.pc() == 1

    def test_call_writes_link_register(self):
        b = ProgramBuilder()
        b.call(0)
        program = b.build()
        assert program.instructions[0].rd == 31

    def test_all_alu_emitters(self):
        b = ProgramBuilder()
        for emit in (b.add, b.sub, b.and_, b.or_, b.xor, b.shl, b.shr,
                     b.mul, b.div, b.fadd, b.fmul, b.fdiv):
            emit("R1", "R2", "R3")
        program = b.build()
        assert len(program) == 12
        assert all(i.rd == 1 and i.rs1 == 2 and i.rs2 == 3
                   for i in program.instructions)


class TestProgram:
    def test_fetch_out_of_range_returns_nop(self):
        program = Program([Instruction(Opcode.HALT)])
        assert program.fetch(99).opcode is Opcode.NOP
        assert program.fetch(-1).opcode is Opcode.NOP

    def test_in_range(self):
        program = Program([Instruction(Opcode.NOP)] * 3)
        assert program.in_range(0) and program.in_range(2)
        assert not program.in_range(3)

    def test_empty_program_rejected(self):
        with pytest.raises(ValueError):
            Program([])

    def test_bad_entry_rejected(self):
        with pytest.raises(ValueError):
            Program([Instruction(Opcode.NOP)], entry=5)


class TestInstruction:
    def test_sources_exclude_zero_register(self):
        inst = Instruction(Opcode.ADD, rd=1, rs1=0, rs2=5)
        assert inst.sources() == (5,)

    def test_dest_excludes_zero_register(self):
        inst = Instruction(Opcode.ADD, rd=0, rs1=1, rs2=2)
        assert inst.dest() is None

    def test_classification(self):
        load = Instruction(Opcode.LD, rd=1, rs1=2)
        store = Instruction(Opcode.ST, rs1=1, rs2=2)
        branch = Instruction(Opcode.BEQ, rs1=1, rs2=2, target=0)
        assert load.is_load and load.is_mem and not load.is_branch
        assert store.is_store and store.is_mem
        assert branch.is_branch and branch.is_conditional_branch

    def test_indirects(self):
        assert Instruction(Opcode.JR, rs1=1).is_indirect
        assert Instruction(Opcode.RET, rs1=31).is_return
        assert Instruction(Opcode.CALL, rd=31, target=0).is_call

    def test_key_identity(self):
        a = Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3)
        b = Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3)
        c = Instruction(Opcode.ADD, rd=1, rs1=2, rs2=4)
        assert a.key() == b.key()
        assert a.key() != c.key()
