"""CLI tests (``python -m repro``)."""

import pytest

from repro.cli import FIGURES, main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "mcf" in out
    assert "hybrid" in out
    assert "workloads" in out


def test_run(capsys):
    code = main(["run", "calculix", "--instructions", "500",
                 "--warmup", "500"])
    assert code == 0
    out = capsys.readouterr().out
    assert "ipc" in out
    assert "energy" in out


def test_run_with_runahead_config(capsys):
    code = main(["run", "mcf", "--config", "rab_cc",
                 "--instructions", "1500", "--warmup", "2000"])
    assert code == 0
    out = capsys.readouterr().out
    assert "runahead intervals" in out
    assert "chain cache" in out


def test_compare(capsys):
    code = main(["compare", "calculix", "--configs", "baseline", "runahead",
                 "--instructions", "500", "--warmup", "500"])
    assert code == 0
    out = capsys.readouterr().out
    assert "baseline" in out and "runahead" in out
    assert "speedup" in out


def test_compare_with_jobs_matches_serial(capsys):
    argv = ["compare", "calculix", "--configs", "baseline", "runahead",
            "--instructions", "500", "--warmup", "500"]
    assert main(argv) == 0
    serial = capsys.readouterr().out
    assert main(argv + ["--jobs", "2"]) == 0
    assert capsys.readouterr().out == serial


def test_unknown_workload_raises():
    with pytest.raises(ValueError):
        main(["run", "nonexistent", "--instructions", "100"])


def test_run_multicore(capsys, tmp_path):
    trace = tmp_path / "mc.perfetto.json"
    code = main(["run", "mcf,lbm", "--cores", "2", "--config",
                 "rab_cc,baseline", "--instructions", "1000",
                 "--warmup", "1500", "--perfetto", str(trace)])
    assert code == 0
    out = capsys.readouterr().out
    assert "core 0" in out and "core 1" in out
    assert "contention" in out
    assert "fairness" in out
    assert trace.exists()


def test_run_multicore_flag_misuse_rejected(capsys):
    # Comma lists and --perfetto are multicore-only spellings.
    assert main(["run", "mcf,lbm", "--instructions", "500"]) == 2
    capsys.readouterr()
    assert main(["run", "mcf", "--config", "rab_cc,baseline",
                 "--instructions", "500"]) == 2
    capsys.readouterr()
    assert main(["run", "mcf", "--perfetto", "out.json",
                 "--instructions", "500"]) == 2
    capsys.readouterr()
    assert main(["run", "mcf", "--cores", "2", "--tier", "two-level",
                 "--instructions", "500"]) == 2


def test_bad_config_rejected(capsys):
    # --config is a free string now (comma lists for --cores), so the
    # rejection moved from argparse choices to the command itself.
    code = main(["run", "mcf", "--config", "bogus"])
    assert code == 2
    err = capsys.readouterr().err
    assert "unknown config 'bogus'" in err
    assert "baseline" in err  # the error lists the valid names


def test_figure_table1(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    code = main(["figure", "table1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert (tmp_path / "results" / "figures"
            / "table1_configuration.txt").exists()


def test_figure_registry_complete():
    # Every evaluation figure and both tables are reachable from the CLI.
    for fig in ("1", "2", "3", "4", "5", "9", "10", "11", "12", "13",
                "14", "15", "16", "17", "18", "table1", "table2",
                "headline"):
        assert fig in FIGURES


def test_figure_with_tiny_budget(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    code = main(["figure", "table2", "--instructions", "400"])
    assert code == 0
    assert "Table 2" in capsys.readouterr().out


def test_trace_exports(capsys, tmp_path):
    perfetto = tmp_path / "out.perfetto.json"
    occupancy = tmp_path / "occ.csv"
    metrics = tmp_path / "metrics.json"
    code = main(["trace", "mcf", "--config", "hybrid",
                 "--instructions", "1500", "--warmup", "1500",
                 "--perfetto", str(perfetto),
                 "--occupancy", str(occupancy), "--stride", "32",
                 "--metrics", str(metrics)])
    assert code == 0
    out = capsys.readouterr().out
    assert "runahead_enter" in out and "dram" in out
    import json
    doc = json.loads(perfetto.read_text())
    assert doc["otherData"]["workload"] == "mcf"
    assert occupancy.read_text().startswith("cycle,mode,rob")
    assert "core.ipc" in json.loads(metrics.read_text())["metrics"]


def test_trace_event_filter(capsys):
    code = main(["trace", "mcf", "--config", "hybrid",
                 "--instructions", "1000", "--warmup", "1000",
                 "--events", "dram", "runahead_enter"])
    assert code == 0
    out = capsys.readouterr().out
    assert "dram" in out
    assert "chain_extract" not in out


def test_trace_bad_stride_rejected(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["trace", "mcf", "--stride", "0"])
    assert exc.value.code == 2
    assert "must be positive" in capsys.readouterr().err


def test_trace_unknown_event_kind_rejected(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["trace", "mcf", "--events", "bogus_kind"])
    assert exc.value.code == 2
    assert "invalid choice" in capsys.readouterr().err


def test_serve_rejects_bad_port():
    with pytest.raises(SystemExit):
        main(["serve", "--port", "lots"])


def test_sweep_remote_unreachable_raises():
    # Nothing listens on port 1; the client must surface the failure
    # instead of silently falling back to an in-process sweep.
    with pytest.raises(OSError):
        main(["sweep", "buffer-size", "--remote", "http://127.0.0.1:1"])


def test_suite_remote_rejects_bad_scheme():
    with pytest.raises(ValueError):
        main(["suite", "--remote", "ftp://example.com"])
