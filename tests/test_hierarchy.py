"""Memory hierarchy integration tests: levels, inclusion, MSHRs."""

from repro.config import default_system, make_config
from repro.memory import MemoryHierarchy


def make_hierarchy(prefetch=False):
    cfg = make_config(prefetcher=prefetch)
    return MemoryHierarchy(cfg)


class TestLoadPath:
    def test_cold_load_goes_to_dram(self):
        h = make_hierarchy()
        result = h.load(0x10000, now=0)
        assert result.level == "DRAM"
        assert result.done_cycle > h.l1d.latency + h.llc.latency
        assert h.llc.stats.misses == 1

    def test_warm_load_hits_l1(self):
        h = make_hierarchy()
        first = h.load(0x10000, now=0)
        second = h.load(0x10000, now=first.done_cycle + 1)
        assert second.level == "L1"
        assert second.done_cycle == first.done_cycle + 1 + h.l1d.latency

    def test_inflight_merge(self):
        h = make_hierarchy()
        first = h.load(0x10000, now=0)
        merged = h.load(0x10008, now=5)  # same 64B line, fill in flight
        assert merged.merged
        assert merged.done_cycle == first.done_cycle

    def test_llc_hit_after_l1_eviction(self):
        h = make_hierarchy()
        done = h.load(0x10000, now=0).done_cycle
        h.l1d.invalidate(h.line_of(0x10000))
        again = h.load(0x10000, now=done + 1)
        assert again.level == "LLC"

    def test_demand_miss_counting(self):
        h = make_hierarchy()
        h.load(0, now=0, kind="demand")
        h.load(1 << 20, now=0, kind="runahead")
        assert h.llc_misses["demand"] == 1
        assert h.llc_misses["runahead"] == 1
        assert h.demand_llc_misses() == 1


class TestInclusion:
    def test_llc_eviction_back_invalidates_l1(self):
        h = make_hierarchy()
        llc_lines = h.llc.num_sets * h.llc.assoc
        target = 0x40000000
        h.load(target, now=0)
        line = h.line_of(target)
        assert h.l1d.probe(line)
        # Fill enough conflicting lines to evict the target from the LLC.
        set_index = line % h.llc.num_sets
        for k in range(1, h.llc.assoc + 2):
            conflict = line + k * h.llc.num_sets
            h.llc.fill(conflict, 0)
        assert not h.llc.probe(line)
        assert not h.l1d.probe(line)
        del llc_lines, set_index


class TestMshrBackpressure:
    def test_speculative_requests_bounced_when_full(self):
        h = make_hierarchy()
        mshrs = h.config.llc.mshrs
        for i in range(mshrs):
            h.load(i * 64 + (1 << 24), now=0, kind="demand")
        result = h.load(1 << 26, now=0, kind="runahead")
        assert result.level == "RETRY"
        assert result.done_cycle > 0
        assert h.mshr_rejections == 1

    def test_demand_gets_reserved_mshrs(self):
        h = make_hierarchy()
        mshrs = h.config.llc.mshrs
        reserve = h._SPECULATIVE_RESERVE
        for i in range(mshrs - reserve):
            h.load(i * 64 + (1 << 24), now=0, kind="runahead")
        # Speculative is now rejected, demand still admitted.
        assert h.load(1 << 26, now=0, kind="runahead").level == "RETRY"
        assert h.load(2 << 26, now=0, kind="demand").level == "DRAM"

    def test_mshrs_free_over_time(self):
        h = make_hierarchy()
        mshrs = h.config.llc.mshrs
        dones = [h.load(i * 64 + (1 << 24), now=0).done_cycle
                 for i in range(mshrs)]
        late = max(dones) + 1
        assert h.load(1 << 26, now=late, kind="runahead").level == "DRAM"

    def test_fewer_mshrs_than_speculative_reserve(self):
        """A config with llc.mshrs <= the speculative reserve leaves no
        slot for speculative kinds; the request must bounce forward (not
        IndexError on the empty fill heap — found by the config fuzzer)."""
        cfg = make_config()
        cfg.llc.mshrs = MemoryHierarchy._SPECULATIVE_RESERVE
        h = MemoryHierarchy(cfg)
        result = h.load(1 << 24, now=7, kind="runahead")
        assert result.level == "RETRY"
        assert result.done_cycle > 7
        # Demand traffic is unaffected.
        assert h.load(1 << 26, now=7, kind="demand").level == "DRAM"

    def test_mshr_occupancy_is_non_mutating(self):
        h = make_hierarchy()
        done = h.load(1 << 24, now=0).done_cycle
        heap_before = list(h._fills)
        assert h.mshr_occupancy(0) == 1
        assert h.mshr_occupancy(done) == 0     # completed at `done`
        assert h._fills == heap_before          # observer left the heap alone
        assert h.mshr_occupancy(0) == 1         # ...so it can re-read the past


class TestStoresAndIfetch:
    def test_store_commit_marks_dirty(self):
        h = make_hierarchy()
        done = h.load(0x5000, now=0).done_cycle
        h.store_commit(0x5000, now=done + 1)
        line = h.l1d.lookup(h.line_of(0x5000), touch=False)
        assert line.dirty

    def test_store_miss_allocates(self):
        h = make_hierarchy()
        h.store_commit(0x7000, now=0)
        assert h.l1d.probe(h.line_of(0x7000))
        assert h.llc_misses["store"] == 1

    def test_ifetch_path(self):
        h = make_hierarchy()
        done = h.ifetch(0x100, now=0)
        assert done > 0
        assert h.ifetch_llc_misses == 1
        done2 = h.ifetch(0x100, now=done + 1)
        assert done2 == done + 1 + h.l1i.latency


class TestWarmup:
    def test_warm_load_installs_without_timing(self):
        h = make_hierarchy()
        h.warm_load(0x9000)
        result = h.load(0x9000, now=0)
        assert result.level == "L1"
        assert h.llc.stats.misses == 0

    def test_warm_ifetch(self):
        h = make_hierarchy()
        h.warm_ifetch(0x100)
        assert h.ifetch(0x104, now=0) == h.l1i.latency


class TestPrefetcherIntegration:
    def test_stream_prefetches_into_llc(self):
        h = make_hierarchy(prefetch=True)
        base = 1 << 24
        now = 0
        for i in range(8):
            result = h.load(base + i * 64, now=now, kind="demand")
            now = result.done_cycle + 1
        assert h.prefetcher.stats.issued > 0
        # Lines ahead of the stream should be resident or in flight.
        ahead = h.line_of(base + 9 * 64)
        assert h.llc.probe(ahead)

    def test_prefetched_lines_marked(self):
        h = make_hierarchy(prefetch=True)
        base = 1 << 24
        now = 0
        for i in range(8):
            now = h.load(base + i * 64, now=now).done_cycle + 1
        ahead = h.llc.lookup(h.line_of(base + 9 * 64), touch=False)
        assert ahead is not None and ahead.prefetched
