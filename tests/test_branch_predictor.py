"""Hybrid branch predictor tests: tables, BTB, RAS, repair."""

from repro.config import BranchPredictorConfig
from repro.frontend import BranchPredictor
from repro.isa import Instruction, Opcode


def make_bp(**overrides):
    return BranchPredictor(BranchPredictorConfig(**overrides))


COND = Instruction(Opcode.BNE, rs1=1, rs2=2, target=5)
JMP = Instruction(Opcode.JMP, target=9)
CALL = Instruction(Opcode.CALL, rd=31, target=20)
RET = Instruction(Opcode.RET, rs1=31)
JR = Instruction(Opcode.JR, rs1=3)


class TestConditional:
    def test_learns_always_taken(self):
        bp = make_bp()
        for _ in range(8):
            taken, target = bp.predict(10, COND)
            bp.update(10, COND, True, 5, mispredicted=not taken)
        taken, target = bp.predict(10, COND)
        assert taken and target == 5

    def test_learns_never_taken(self):
        bp = make_bp()
        for _ in range(8):
            taken, _ = bp.predict(10, COND)
            bp.update(10, COND, False, 11, mispredicted=taken)
        taken, target = bp.predict(10, COND)
        assert not taken and target == 11

    def test_gshare_learns_alternating_pattern(self):
        bp = make_bp()
        # Strict T/N alternation is captured by 1 bit of history.
        outcome = True
        mispredicts = 0
        for i in range(200):
            ghr_at_predict = bp.ghr
            taken, _ = bp.predict(10, COND)
            if taken != outcome:
                mispredicts += 1
                # Mispredict: repair speculative history as the core does.
                bp.ghr = ((ghr_at_predict << 1) | int(outcome)) \
                    & bp._history_mask
            bp.update(10, COND, outcome, 5 if outcome else 11,
                      taken != outcome, ghr=ghr_at_predict)
            outcome = not outcome
        # After warmup the pattern should be predicted nearly perfectly.
        assert mispredicts < 40

    def test_warmup_training_without_predict_learns_pattern(self):
        bp = make_bp()
        outcome = True
        for _ in range(100):
            bp.update(10, COND, outcome, 5 if outcome else 11, False)
            outcome = not outcome
        # Now predictions should follow the alternation.
        hits = 0
        for _ in range(20):
            ghr = bp.ghr
            taken, _ = bp.predict(10, COND)
            hits += taken == outcome
            bp.update(10, COND, outcome, 5 if outcome else 11,
                      taken != outcome, ghr=ghr)
            if taken != outcome:
                bp.ghr = ((ghr << 1) | int(outcome)) & bp._history_mask
            outcome = not outcome
        assert hits >= 15

    def test_accuracy_stat(self):
        bp = make_bp()
        for _ in range(10):
            taken, _ = bp.predict(10, COND)
            bp.update(10, COND, True, 5, mispredicted=not taken)
        assert 0.0 <= bp.stats.accuracy <= 1.0


class TestUnconditional:
    def test_jmp_always_taken_with_target(self):
        bp = make_bp()
        taken, target = bp.predict(0, JMP)
        assert taken and target == 9

    def test_jr_unknown_without_btb(self):
        bp = make_bp()
        taken, target = bp.predict(0, JR)
        assert taken and target is None
        assert bp.stats.btb_misses == 1

    def test_jr_uses_btb_after_training(self):
        bp = make_bp()
        bp.update(0, JR, True, 1234, mispredicted=True)
        taken, target = bp.predict(0, JR)
        assert target == 1234

    def test_btb_capacity_bounded(self):
        bp = make_bp(btb_entries=4)
        for pc in range(10):
            bp.update(pc, JMP, True, pc + 100, mispredicted=False)
        assert len(bp._btb) <= 4


class TestRas:
    def test_call_return_pairing(self):
        bp = make_bp()
        bp.predict(7, CALL)
        taken, target = bp.predict(20, RET)
        assert taken and target == 8

    def test_nested_calls(self):
        bp = make_bp()
        bp.predict(1, CALL)
        bp.predict(2, CALL)
        assert bp.predict(30, RET)[1] == 3
        assert bp.predict(31, RET)[1] == 2
        assert bp.stats.ras_predictions == 2


class TestSnapshots:
    def test_snapshot_restores_history(self):
        bp = make_bp()
        snap = bp.snapshot()
        bp.predict(10, COND)
        bp.predict(10, COND)
        assert bp.ghr != snap.ghr or True  # history may change
        bp.restore(snap)
        assert bp.ghr == snap.ghr

    def test_repair_reapplies_actual_outcome(self):
        bp = make_bp()
        snap = bp.snapshot()
        bp.predict(10, COND)        # speculative update (maybe wrong)
        bp.repair(10, COND, taken=True, snapshot=snap)
        assert bp.ghr == ((snap.ghr << 1) | 1) & bp._history_mask

    def test_repair_call_restores_ras(self):
        bp = make_bp()
        snap = bp.snapshot()
        bp.predict(7, CALL)
        bp.repair(7, CALL, taken=True, snapshot=snap)
        assert bp.predict(20, RET)[1] == 8

    def test_full_checkpoint_roundtrip(self):
        bp = make_bp()
        bp.predict(1, CALL)
        checkpoint = bp.checkpoint_full()
        bp.predict(2, CALL)
        bp.predict(30, RET)
        bp.predict(10, COND)
        bp.restore_full(checkpoint)
        assert bp.predict(30, RET)[1] == 2
