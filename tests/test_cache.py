"""Set-associative cache model tests."""

from collections import OrderedDict

from hypothesis import given, settings, strategies as st

from repro.config import CacheConfig
from repro.memory import Cache


def make_cache(size=1024, assoc=2, line=64, latency=3):
    return Cache(CacheConfig("T", size, assoc, line, latency))


class TestBasics:
    def test_geometry(self):
        cache = make_cache(size=1024, assoc=2, line=64)
        assert cache.num_sets == 8

    def test_fill_then_lookup(self):
        cache = make_cache()
        cache.fill(5, ready_cycle=10)
        line = cache.lookup(5)
        assert line is not None
        assert line.ready_cycle == 10

    def test_miss_returns_none(self):
        cache = make_cache()
        assert cache.lookup(5) is None

    def test_probe_does_not_touch_lru(self):
        cache = make_cache(assoc=2)
        sets = cache.num_sets
        a, b, c = 0, sets, 2 * sets  # same set
        cache.fill(a, 0)
        cache.fill(b, 0)
        cache.probe(a)          # must NOT refresh a
        cache.fill(c, 0)        # evicts a (LRU), not b
        assert not cache.probe(a)
        assert cache.probe(b)


class TestLru:
    def test_lookup_refreshes_lru(self):
        cache = make_cache(assoc=2)
        sets = cache.num_sets
        a, b, c = 0, sets, 2 * sets
        cache.fill(a, 0)
        cache.fill(b, 0)
        cache.lookup(a)         # refresh a
        cache.fill(c, 0)        # evicts b
        assert cache.probe(a)
        assert not cache.probe(b)

    def test_eviction_returns_victim(self):
        cache = make_cache(assoc=1)
        sets = cache.num_sets
        cache.fill(0, 0)
        victim = cache.fill(sets, 0)
        assert victim is not None and victim[0] == 0
        assert cache.stats.evictions == 1


class TestDirtyAndWriteback:
    def test_dirty_eviction_counts_writeback(self):
        cache = make_cache(assoc=1)
        sets = cache.num_sets
        cache.fill(0, 0)
        cache.mark_dirty(0)
        cache.fill(sets, 0)
        assert cache.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        cache = make_cache(assoc=1)
        sets = cache.num_sets
        cache.fill(0, 0)
        cache.fill(sets, 0)
        assert cache.stats.writebacks == 0


class TestFillMerge:
    def test_refill_lowers_ready_time(self):
        cache = make_cache()
        cache.fill(7, ready_cycle=100)
        cache.fill(7, ready_cycle=50)
        assert cache.lookup(7).ready_cycle == 50

    def test_refill_does_not_raise_ready_time(self):
        cache = make_cache()
        cache.fill(7, ready_cycle=50)
        cache.fill(7, ready_cycle=100)
        assert cache.lookup(7).ready_cycle == 50


class TestInvalidation:
    def test_invalidate(self):
        cache = make_cache()
        cache.fill(3, 0)
        line = cache.invalidate(3)
        assert line is not None
        assert not cache.probe(3)
        assert cache.stats.invalidations == 1

    def test_invalidate_missing_is_noop(self):
        cache = make_cache()
        assert cache.invalidate(3) is None
        assert cache.stats.invalidations == 0

    def test_eviction_hook_fires(self):
        cache = make_cache(assoc=1)
        evicted = []
        cache.eviction_hook = lambda addr, line: evicted.append(addr)
        cache.fill(0, 0)
        cache.fill(cache.num_sets, 0)
        assert evicted == [0]


class TestOccupancy:
    def test_resident_lines_and_clear(self):
        cache = make_cache()
        for i in range(5):
            cache.fill(i, 0)
        assert cache.resident_lines() == 5
        cache.clear()
        assert cache.resident_lines() == 0

    @given(addrs=st.lists(st.integers(min_value=0, max_value=4096),
                          min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_never_exceeds_capacity(self, addrs):
        cache = make_cache(size=512, assoc=2, line=64)  # 8 lines total
        for addr in addrs:
            cache.fill(addr, 0)
        assert cache.resident_lines() <= 8
        # And every set respects associativity.
        for cache_set in cache._sets:
            assert len(cache_set) <= 2

    @given(addrs=st.lists(st.integers(min_value=0, max_value=256),
                          min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_most_recent_fill_always_present(self, addrs):
        cache = make_cache(size=512, assoc=2, line=64)
        for addr in addrs:
            cache.fill(addr, 0)
            assert cache.probe(addr)


class TestMruFastPath:
    """The MRU shortcut must be invisible: same lines, same LRU order."""

    def test_repeat_lookup_returns_same_line(self):
        cache = make_cache()
        cache.fill(5, 0)
        first = cache.lookup(5)
        assert cache.lookup(5) is first

    def test_repeat_lookup_keeps_lru_exact(self):
        cache = make_cache(assoc=2)
        sets = cache.num_sets
        a, b, c = 0, sets, 2 * sets
        cache.fill(a, 0)
        cache.fill(b, 0)
        for _ in range(3):
            cache.lookup(a)     # first touch is slow-path, the rest MRU
        cache.fill(c, 0)        # evicts b: a is most recently used
        assert cache.probe(a)
        assert not cache.probe(b)

    def test_fill_merge_on_mru_line(self):
        cache = make_cache()
        cache.fill(7, ready_cycle=100)
        cache.lookup(7)               # 7 is now the tracked MRU line
        cache.fill(7, ready_cycle=50)
        assert cache.lookup(7).ready_cycle == 50
        cache.fill(7, ready_cycle=200)  # merge must never raise ready time
        assert cache.lookup(7).ready_cycle == 50

    def test_invalidate_clears_mru(self):
        cache = make_cache()
        cache.fill(5, 0)
        cache.lookup(5)
        cache.invalidate(5)
        assert not cache.probe(5)
        assert cache.lookup(5) is None

    def test_evicting_the_mru_line_clears_it(self):
        cache = make_cache(assoc=1)
        sets = cache.num_sets
        cache.fill(0, 0)
        cache.lookup(0)
        cache.fill(sets, 0)     # 1-way set: evicts the tracked line
        assert not cache.probe(0)
        assert cache.lookup(0) is None
        assert cache.probe(sets)

    def test_clear_resets_mru(self):
        cache = make_cache()
        cache.fill(5, 0)
        cache.lookup(5)
        cache.clear()
        assert not cache.probe(5)
        assert cache.lookup(5) is None

    @given(ops=st.lists(
        st.tuples(st.sampled_from(["fill", "lookup", "probe", "invalidate"]),
                  st.integers(min_value=0, max_value=64)),
        min_size=1, max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_matches_plain_lru_reference(self, ops):
        # Differential check: replay the same ops against a reference that
        # has no fast path, then compare per-set contents *and order*.
        cache = make_cache(size=512, assoc=2, line=64)
        ref = [OrderedDict() for _ in range(cache.num_sets)]
        for op, addr in ops:
            rset = ref[addr % cache.num_sets]
            if op == "fill":
                cache.fill(addr, 0)
                if addr in rset:
                    rset.move_to_end(addr)
                else:
                    if len(rset) >= cache.assoc:
                        rset.popitem(last=False)
                    rset[addr] = True
            elif op == "lookup":
                hit = cache.lookup(addr) is not None
                assert hit == (addr in rset)
                if hit:
                    rset.move_to_end(addr)
            elif op == "probe":
                assert cache.probe(addr) == (addr in rset)
            else:
                cache.invalidate(addr)
                rset.pop(addr, None)
        for cache_set, rset in zip(cache._sets, ref):
            assert list(cache_set) == list(rset)
