"""Differential verification subsystem tests (``repro.verify``).

Covers the fuzz generator's determinism and termination guarantees, the
retirement-stream differ, the per-cycle invariant checker (both that it
passes on a healthy core and that it actually catches seeded
corruption), the greedy reproducer minimizer, and the ``repro verify``
CLI plumbing.
"""

import pytest

from repro.cli import main
from repro.config import build_named_config
from repro.core import Processor
from repro.verify import (
    DEFAULT_CONFIGS,
    Divergence,
    InvariantError,
    attach_invariant_checker,
    build_fuzz_program,
    diff_run,
    oracle_stream,
    processor_stream,
    rebuild,
    render_divergence,
    run_verify,
    verify_seed,
)
from repro.verify.differential import diff_streams
from repro.verify.harness import minimize


class TestFuzzGenerator:
    def test_deterministic(self):
        a = build_fuzz_program(7, target_insts=4000)
        b = build_fuzz_program(7, target_insts=4000)
        assert a.spec == b.spec
        assert ([i.key() for i in a.program.instructions]
                == [i.key() for i in b.program.instructions])

    def test_seeds_differ(self):
        a = build_fuzz_program(1, target_insts=4000)
        b = build_fuzz_program(2, target_insts=4000)
        assert a.spec != b.spec

    @pytest.mark.parametrize("seed", range(6))
    def test_terminates_within_budget(self, seed):
        fp = build_fuzz_program(seed, target_insts=4000)
        records, interp = oracle_stream(fp, 8000)
        assert interp.halted, "fuzz program must HALT within 2x its target"
        assert len(records) > 100

    def test_memory_fresh_per_call(self):
        fp = build_fuzz_program(3, target_insts=2000)
        m1, m2 = fp.memory(), fp.memory()
        assert m1 is not m2
        assert m1.snapshot() == m2.snapshot()

    def test_rebuild_subset_still_halts(self):
        fp = build_fuzz_program(5, target_insts=4000)
        sub = rebuild(fp.spec, blocks=fp.spec.blocks[:1],
                      outer_iterations=1)
        assert len(sub.spec.blocks) == 1
        _, interp = oracle_stream(sub, 8000)
        assert interp.halted


class TestDifferential:
    def test_streams_match_on_baseline(self):
        fp = build_fuzz_program(0, target_insts=3000)
        oracle, interp = oracle_stream(fp, 6000)
        actual, proc = processor_stream(fp, "baseline", 6000)
        assert diff_streams(oracle, actual) is None
        assert interp.halted == proc.halted

    def test_diff_streams_pinpoints_first_mismatch(self):
        fp = build_fuzz_program(0, target_insts=3000)
        oracle, _ = oracle_stream(fp, 6000)
        mutated = list(oracle)
        index = len(mutated) // 2
        from dataclasses import replace
        mutated[index] = replace(
            mutated[index],
            dest_value=0xDEAD, next_pc=mutated[index].next_pc + 1)
        found = diff_streams(oracle, mutated)
        assert found is not None
        where, fields = found
        assert where == index
        assert "dest_value" in fields and "next_pc" in fields

    @pytest.mark.parametrize("config", DEFAULT_CONFIGS)
    def test_no_divergence_across_modes(self, config):
        fp = build_fuzz_program(11, target_insts=3000)
        assert diff_run(fp, config, 6000, config_name=config) is None

    def test_render_includes_replay_command(self):
        fp = build_fuzz_program(4, target_insts=2000)
        div = Divergence(kind="stream", seed=4, config="rab", index=17,
                         fields=("dest_value",), detail="boom")
        report = render_divergence(div, fp, 4000)
        assert "--seed-start 4" in report
        assert "--configs rab" in report
        assert "program listing:" in report


class TestInvariantChecker:
    def _proc(self, seed=0):
        fp = build_fuzz_program(seed, target_insts=2000)
        return Processor(fp.program, build_named_config("rab_cc"),
                         memory=fp.memory())

    def test_clean_run_passes(self):
        proc = self._proc()
        checker = attach_invariant_checker(proc)
        proc.run(3000)
        assert checker.cycles_checked > 0

    def test_no_hook_means_no_step_shadow(self):
        proc = self._proc()
        assert "_step" not in proc.__dict__
        attach_invariant_checker(proc)
        assert "_step" in proc.__dict__

    def test_catches_counter_drift(self):
        proc = self._proc()
        checker = attach_invariant_checker(proc)
        proc.run(200)
        proc.rs_used += 1
        with pytest.raises(InvariantError, match="rs_used"):
            checker.check_now()

    def test_catches_store_queue_desync(self):
        from repro.backend import InFlightUop
        from repro.isa import Instruction, Opcode

        proc = self._proc()
        checker = attach_invariant_checker(proc)
        proc.run(200)
        stray = InFlightUop(10 ** 9, 0, Instruction(Opcode.ST, rs1=1, rs2=2))
        proc.store_queue.entries.append(stray)
        with pytest.raises(InvariantError, match="store queue"):
            checker.check_now()

    def test_catches_free_list_duplicate(self):
        proc = self._proc()
        checker = attach_invariant_checker(proc)
        proc.run(200)
        proc.rename.free_list.append(proc.rename.free_list[0])
        with pytest.raises(InvariantError, match="duplicate"):
            checker.check_now()

    def test_catches_inverted_interval(self):
        proc = self._proc()
        checker = attach_invariant_checker(proc)
        proc.run(200)
        proc.ra_policy.begin_interval("traditional", now=100)
        proc.ra_policy.end_interval(now=100, committed_total=0,
                                    pseudo_retired=0)
        proc.ra_policy.intervals[-1].exit_cycle = 40
        with pytest.raises(InvariantError, match="inverted"):
            checker.check_now()

    def test_every_n_skips_cycles(self):
        proc = self._proc()
        checker = attach_invariant_checker(proc, every=50)
        proc.run(1000)
        assert 0 < checker.cycles_checked < proc.now

    def test_refuses_core_on_shared_hierarchy(self):
        """Regression for the multi-core refactor: the checker's verdict
        is read as whole-run soundness, but on a shared hierarchy
        co-runners mutate LLC/MSHR state between the checked core's
        cycles — attaching must be an explicit, scoped decision."""
        from repro.multicore import CoreSpec, System
        system = System([CoreSpec("mcf"), CoreSpec("lbm")],
                        share="llc,dram")
        with pytest.raises(ValueError, match="shared"):
            attach_invariant_checker(system.cores[0])
        # Explicit opt-in scopes the verdict to core-local structures.
        checker = attach_invariant_checker(system.cores[0],
                                           allow_shared=True)
        system.warm_up(2_000)
        system.run(500)
        assert checker.cycles_checked > 0


class TestHarness:
    def test_verify_seed_clean(self):
        outcome = verify_seed(0, insts=4000, configs=("baseline", "rab_cc"))
        assert outcome.ok
        assert outcome.divergences == []

    def test_minimize_shrinks_reproducer(self):
        """Against a synthetic failure predicate (any program containing
        an 'alias' block diverges), the greedy minimizer must shrink the
        reproducer to a single block and a single outer iteration."""
        seed = next(
            s for s in range(50)
            if sum(b.kind == "alias"
                   for b in build_fuzz_program(s, 4000).spec.blocks) == 1
            and len(build_fuzz_program(s, 4000).spec.blocks) > 2
        )
        fp = build_fuzz_program(seed, 4000)
        div = Divergence(kind="stream", seed=seed, config="rab")

        import repro.verify.harness as harness_mod

        real_diff_run = harness_mod.diff_run

        def fake_diff_run(candidate, config, max_insts, config_name="",
                          invariants=False):
            if any(b.kind == "alias" for b in candidate.spec.blocks):
                return Divergence(kind="stream", seed=seed, config=config)
            return None

        harness_mod.diff_run = fake_diff_run
        try:
            small, small_div = minimize(fp, "rab", 4000, div)
        finally:
            harness_mod.diff_run = real_diff_run
        assert small_div.kind == "stream"
        assert len(small.spec.blocks) == 1
        assert small.spec.blocks[0].kind == "alias"
        assert small.spec.outer_iterations == 1

    def test_run_verify_writes_reports_on_failure(self, tmp_path):
        import repro.verify.harness as harness_mod

        real_verify_seed = harness_mod.verify_seed
        fp = build_fuzz_program(0, 2000)

        def fake_verify_seed(seed, **kwargs):
            from repro.verify.harness import VerifyOutcome
            outcome = VerifyOutcome(seed=seed, insts=2000,
                                    configs=("rab",))
            outcome.divergences.append(
                Divergence(kind="stream", seed=seed, config="rab",
                           index=3, fields=("pc",), detail="synthetic"))
            outcome.reproducers.append(fp)
            return outcome

        harness_mod.verify_seed = fake_verify_seed
        try:
            summary = run_verify(seeds=2, insts=2000, configs=("rab",),
                                 report_dir=str(tmp_path))
        finally:
            harness_mod.verify_seed = real_verify_seed
        assert len(summary["failures"]) == 2
        assert len(summary["reports"]) == 2
        for path in summary["reports"]:
            text = open(path).read()
            assert "DIVERGENCE" in text
            assert "replay:" in text


class TestVerifyCli:
    def test_verify_clean_exit_zero(self, capsys, tmp_path):
        code = main(["verify", "--seeds", "2", "--insts", "2000",
                     "--configs", "baseline", "rab_cc",
                     "--report-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "0 divergence(s)" in out

    def test_verify_replay_flags_accepted(self, capsys, tmp_path):
        code = main(["verify", "--seeds", "1", "--seed-start", "5",
                     "--insts", "2000", "--invariants",
                     "--invariant-every", "10", "--configs", "rab",
                     "--report-dir", str(tmp_path)])
        assert code == 0
        assert "seed     5" in capsys.readouterr().out
