"""Multi-core system tests: determinism, single-core equivalence,
scaling, contention accounting, and runahead fairness.

The determinism gate is the load-bearing test: a multi-core run's
per-core fingerprints must be byte-identical across reruns (the heap
scheduler breaks ties by core index and nothing anywhere is random), so
any nondeterminism introduced into the shared LLC/DRAM path fails here
first.  The N=1 test pins the stronger property the golden grid relies
on: one core behind the port/shared-complex graph is *bit-identical* to
the legacy single-core path, not merely close.
"""

from __future__ import annotations

import pytest

from repro import simulate, simulate_multicore
from repro.config import (assert_shared_geometry, build_named_config,
                          validate_share)
from repro.multicore import CoreSpec, System

INSTS = 2_000
WARMUP = 3_000


def _small_llc_config(name: str, size_bytes: int = 16 * 1024):
    """A named config with the LLC shrunk so mixed workloads actually
    collide in it at test budgets (the default 1 MB LLC holds both
    synthetic footprints without conflict)."""
    config = build_named_config(name)
    config.llc.size_bytes = size_bytes
    return config


def _run(workloads, configs, share="llc,dram", **kwargs):
    return simulate_multicore(workloads, cores=len(workloads),
                              configs=configs, share=share,
                              max_instructions=INSTS,
                              warmup_instructions=WARMUP, **kwargs)


# -- determinism gate --------------------------------------------------------


def test_determinism_reruns_are_byte_identical():
    runs = [_run(["mcf", "lbm"], ["rab_cc", "rab_cc"]) for _ in range(2)]
    fp_a = runs[0].system.fingerprints()
    fp_b = runs[1].system.fingerprints()
    assert fp_a == fp_b
    assert runs[0].shared == runs[1].shared
    assert [s.to_dict() for s in runs[0].per_core] == \
        [s.to_dict() for s in runs[1].per_core]


# -- N=1 equivalence ---------------------------------------------------------


@pytest.mark.parametrize("config_name", ["baseline", "rab_cc"])
def test_single_core_system_is_bit_identical(config_name):
    single = simulate("mcf", build_named_config(config_name),
                      max_instructions=INSTS, warmup_instructions=WARMUP,
                      config_name=config_name)
    multi = _run(["mcf"], [config_name])
    assert multi.per_core[0].to_dict() == single.stats.to_dict()


# -- scaling smoke -----------------------------------------------------------


@pytest.mark.parametrize("cores", [1, 2, 4])
def test_scaling_smoke(cores):
    result = simulate_multicore("mcf", cores=cores,
                                configs=["rab_cc"] * cores,
                                max_instructions=INSTS,
                                warmup_instructions=WARMUP)
    assert len(result.per_core) == cores
    assert result.shared["cores"] == cores
    for stats in result.per_core:
        assert stats.committed_insts >= INSTS
        assert stats.ipc > 0
    assert len(result.shared["fairness"]) == cores
    assert len(result.energy) == cores


# -- shared-LLC contention ---------------------------------------------------


def test_contention_counters_fire_under_a_small_llc():
    configs = [_small_llc_config("rab_cc"), _small_llc_config("rab_cc")]
    result = _run(["mcf", "lbm"], configs)
    contention = result.shared["contention"]
    assert contention["cross_core_evictions"] > 0
    per_core = result.shared["per_core"]
    assert len(per_core) == 2
    assert all(acct["accesses"] > 0 for acct in per_core)
    # Per-core DRAM attribution covers the controller's read total.
    dram_reads = result.shared["dram"]["reads"]
    assert sum(acct["dram_reads"] for acct in per_core) == dram_reads


def test_mshr_contention_is_reported():
    result = _run(["mcf", "lbm"], ["rab_cc", "rab_cc"])
    contention = result.shared["contention"]
    assert contention["mshr_contended_rejections"] > 0
    assert contention["spec_cap_rejections"] >= 0


def test_dram_only_share_splits_traffic_per_core():
    result = _run(["mcf", "lbm"], ["rab_cc", "rab_cc"], share="dram")
    # Private LLCs: no cross-core eviction pressure by construction.
    assert result.shared["contention"]["cross_core_evictions"] == 0
    per_core = result.shared["per_core"]
    assert sum(acct["dram_reads"] for acct in per_core) == \
        result.shared["dram"]["reads"]
    assert all(acct["dram_reads"] > 0 for acct in per_core)


# -- fairness ----------------------------------------------------------------


def test_runahead_core_does_not_starve_corunner():
    """A runahead-buffer core sharing the LLC/MSHRs with a plain
    pointer-chasing baseline core must not starve it: both finish their
    budgets and neither collapses to a sliver of total progress."""
    result = _run(["lbm", "mcf"], ["rab_cc", "baseline"])
    fairness = result.shared["fairness"]
    assert all(f["committed"] >= INSTS for f in fairness)
    shares = [f["progress_share"] for f in fairness]
    assert min(shares) > 0.15
    # The rab core actually exercised runahead against the shared pool.
    rab = fairness[0]["runahead"]
    assert rab["intervals"] > 0
    assert rab["runahead_cycles"] > 0
    assert fairness[1]["runahead"]["intervals"] == 0


# -- construction guards -----------------------------------------------------


def test_share_level_is_validated():
    with pytest.raises(ValueError):
        validate_share("llc")
    assert validate_share(" llc , dram ") == "llc,dram"


def test_llc_share_requires_matching_geometry():
    big = build_named_config("rab_cc")
    small = _small_llc_config("rab_cc")
    with pytest.raises(ValueError):
        assert_shared_geometry([big, small], "llc,dram")
    # Private LLCs may differ; DRAM must still match.
    assert_shared_geometry([big, small], "dram")
    with pytest.raises(ValueError):
        System([CoreSpec("mcf", big), CoreSpec("lbm", small)],
               share="llc,dram")


def test_workload_count_must_match_cores():
    with pytest.raises(ValueError):
        simulate_multicore(["mcf", "lbm"], cores=3,
                           configs=["rab_cc"] * 3,
                           max_instructions=INSTS,
                           warmup_instructions=WARMUP)
