"""Warm-state checkpoints and the live-point engine (repro.fastpath.checkpoint).

Five concerns:

* snapshot/restore round-trips — every component (caches, predictor,
  prefetcher, DRAM controller, hierarchy, whole processor) restores to a
  byte-identical canonical serialization, including *mid-episode*
  snapshots taken at runahead-adjacent points (sync_architectural runs
  inside snapshot(), so a processor paused inside a runahead interval
  still round-trips);
* the content-addressed store — save/load, corrupt-entry-as-miss,
  key sensitivity (program content, geometry, base digest, stream
  distance) and key *insensitivity* (runahead configuration, so sweep
  cells share warm state);
* the byte-identity contract — serial (jobs=1) and parallel (jobs=2)
  checkpointed runs, and cold-store vs warm-store runs, produce equal
  ``stats_fingerprint``s (this is the property the CI gate enforces);
* warm-store reuse — a second run over a populated store restores
  instead of re-fast-forwarding (ff_seconds collapses, hits == chain
  length);
* plan plumbing — degenerate plans are rejected or clamped, detailed
  tiers refuse checkpoints, and live-point estimates stay inside
  ``SAMPLING_TOLERANCES``.
"""

from __future__ import annotations

import pickle

import pytest

from repro.config import SamplingConfig, build_named_config
from repro.core.processor import Processor
from repro.core.sim import simulate
from repro.fastpath import (
    CKPT_SCHEMA,
    CheckpointPlan,
    CheckpointStore,
    check_sampling_error,
    checkpoint_key,
    make_checkpoint_plan,
    merge_window_stats,
    resolve_checkpoint_dir,
    restore_or_warm_up,
    run_two_tier,
    snapshot_bytes,
    snapshot_digest,
    stats_fingerprint,
)
from repro.workloads import build_workload

PLAN = SamplingConfig(tier="two-level", ramp_instructions=300,
                      window_instructions=900, stride_instructions=5_000)


def _processor(workload: str = "mcf", config_name: str = "rab_cc"):
    built = build_workload(workload)
    return Processor(built.program, build_named_config(config_name),
                     memory=built.memory, init_regs=built.init_regs)


def _fresh_pair(workload: str = "mcf", config_name: str = "rab_cc"):
    return (_processor(workload, config_name),
            _processor(workload, config_name))


# ---------------------------------------------------------------------------
# Snapshot / restore round-trips
# ---------------------------------------------------------------------------

class TestRoundTrip:
    def test_component_snapshots_round_trip(self):
        """Each hierarchy component restores onto a fresh instance to the
        exact snapshot it was saved from."""
        proc = _processor("mcf", "rab_cc_pf")   # _pf: prefetcher enabled
        proc.warm_up(20_000)
        proc.run(3_000)
        proc.sync_architectural()
        fresh = _processor("mcf", "rab_cc_pf")
        for name, src, dst in (
            ("l1d", proc.hierarchy.l1d, fresh.hierarchy.l1d),
            ("l1i", proc.hierarchy.l1i, fresh.hierarchy.l1i),
            ("llc", proc.hierarchy.llc, fresh.hierarchy.llc),
            ("controller", proc.hierarchy.controller,
             fresh.hierarchy.controller),
            ("prefetcher", proc.hierarchy.prefetcher,
             fresh.hierarchy.prefetcher),
        ):
            snap = src.snapshot()
            dst.restore(snap)
            assert dst.snapshot() == snap, f"{name} round-trip diverged"
        pred = proc.predictor.snapshot_state()
        fresh.predictor.restore_state(pred)
        assert fresh.predictor.snapshot_state() == pred

    def test_processor_snapshot_round_trips_bytewise(self):
        proc = _processor()
        proc.warm_up(20_000)
        snap = proc.snapshot()
        fresh = _processor()
        fresh.restore(snap)
        assert snapshot_bytes(fresh.snapshot()) == snapshot_bytes(snap)
        assert snapshot_digest(fresh.snapshot()) == snapshot_digest(snap)

    def test_restored_processor_behaves_identically(self):
        """Restore is behavioral, not just structural: both processors run
        the next detailed burst to identical warm-state bytes."""
        proc = _processor()
        proc.warm_up(20_000)
        snap = proc.snapshot()
        twin = _processor()
        twin.restore(snap)
        proc.run(2_000)
        twin.run(2_000)
        assert proc.now == twin.now
        assert proc.committed == twin.committed
        assert snapshot_bytes(proc.snapshot()) == snapshot_bytes(
            twin.snapshot())

    def test_mid_episode_snapshot_at_runahead_adjacent_point(self):
        """Satellite gate: snapshot() mid-run — after detailed execution
        that enters/exits runahead episodes — collapses to the
        architectural point and still round-trips byte-identically, and
        the continuation matches a processor that never round-tripped."""
        proc = _processor("mcf", "rab_cc")
        proc.warm_up(12_000)
        proc.run(4_000)   # long enough to cross runahead entries on mcf
        ref = _processor("mcf", "rab_cc")
        ref.warm_up(12_000)
        ref.run(4_000)
        snap = proc.snapshot()
        twin = _processor("mcf", "rab_cc")
        twin.restore(snap)
        assert snapshot_bytes(twin.snapshot()) == snapshot_bytes(snap)
        # sync_architectural inside snapshot() must not have perturbed the
        # source processor's forward path relative to the reference.
        ref.sync_architectural()
        assert snapshot_bytes(ref.snapshot()) == snapshot_bytes(snap)
        twin.fast_forward(5_000)
        proc.fast_forward(5_000)
        assert snapshot_bytes(twin.snapshot()) == snapshot_bytes(
            proc.snapshot())

    def test_snapshot_excludes_run_statistics(self):
        proc = _processor()
        proc.warm_up(12_000)
        proc.run(2_000)
        twin = _processor()
        twin.restore(proc.snapshot())
        assert twin.stats.committed_insts == 0
        assert twin.committed == proc.committed  # position, not stats


# ---------------------------------------------------------------------------
# Shared hierarchies don't checkpoint
# ---------------------------------------------------------------------------

class TestSharedHierarchyRejection:
    """Regression for the multi-core refactor: a core whose hierarchy is
    shared cannot snapshot or restore.  Its warm state spans co-runners
    (one LLC array, one MSHR pool, one DRAM controller), so a per-core
    snapshot would silently capture — and restore would silently
    clobber — other cores' state.  Both must refuse loudly instead."""

    def _shared_core(self):
        from repro.multicore import CoreSpec, System
        system = System([CoreSpec("mcf"), CoreSpec("lbm")],
                        share="llc,dram")
        return system.cores[0]

    def test_snapshot_raises(self):
        from repro.memory import SharedHierarchyError
        with pytest.raises(SharedHierarchyError):
            self._shared_core().snapshot()

    def test_restore_raises(self):
        from repro.memory import SharedHierarchyError
        donor = _processor()
        donor.warm_up(8_000)
        snap = donor.snapshot()
        with pytest.raises(SharedHierarchyError):
            self._shared_core().restore(snap)

    def test_dram_only_share_is_rejected_too(self):
        # Private LLCs don't help: the DRAM controller (row-buffer and
        # queue state) is still cross-core.
        from repro.memory import SharedHierarchyError
        from repro.multicore import CoreSpec, System
        system = System([CoreSpec("mcf"), CoreSpec("lbm")], share="dram")
        with pytest.raises(SharedHierarchyError):
            system.cores[0].snapshot()

    def test_schema_records_the_stream_core_field(self):
        # CKPT_SCHEMA v2: stream-prefetcher entries carry the training
        # core, so v1 stores can never alias v2 snapshots.
        assert CKPT_SCHEMA == 2


# ---------------------------------------------------------------------------
# Content-addressed store
# ---------------------------------------------------------------------------

class TestStore:
    def _snap(self):
        proc = _processor()
        proc.warm_up(8_000)
        return proc, proc.snapshot()

    def test_save_load_round_trip(self, tmp_path):
        proc, snap = self._snap()
        store = CheckpointStore(tmp_path)
        key = checkpoint_key(proc.program, proc.config, "base", 8_000)
        store.save(key, snap)
        assert (tmp_path / "SCHEMA").read_text().strip() == str(CKPT_SCHEMA)
        loaded = CheckpointStore(tmp_path).load(key)
        assert snapshot_bytes(loaded) == snapshot_bytes(snap)
        assert store.saves == 1 and store.bytes_written > 0

    def test_absent_key_is_a_miss(self, tmp_path):
        store = CheckpointStore(tmp_path)
        assert store.load("0" * 64) is None
        assert (store.hits, store.misses) == (0, 1)

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        proc, snap = self._snap()
        store = CheckpointStore(tmp_path)
        key = checkpoint_key(proc.program, proc.config, "base", 8_000)
        store.save(key, snap)
        path = store._path(key)
        path.write_bytes(b"not a pickle")
        assert store.load(key) is None
        assert not path.exists()

    def test_wrong_schema_entry_is_a_miss_and_removed(self, tmp_path):
        proc, snap = self._snap()
        store = CheckpointStore(tmp_path)
        key = checkpoint_key(proc.program, proc.config, "base", 8_000)
        path = store._path(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(pickle.dumps(
            (CheckpointStore._MAGIC, CKPT_SCHEMA + 1, snap)))
        assert store.load(key) is None
        assert not path.exists()

    def test_key_sensitivity_and_runahead_insensitivity(self):
        proc = _processor("mcf", "baseline")
        base = checkpoint_key(proc.program, proc.config, "d" * 64, 40_000)
        # Sensitive: stream distance, base digest, program content.
        assert checkpoint_key(proc.program, proc.config,
                              "d" * 64, 80_000) != base
        assert checkpoint_key(proc.program, proc.config,
                              "e" * 64, 40_000) != base
        other = build_workload("lbm")
        assert checkpoint_key(other.program, proc.config,
                              "d" * 64, 40_000) != base
        # Insensitive: runahead mode (the cross-cell reuse property).
        rab = _processor("mcf", "rab_cc")
        assert checkpoint_key(rab.program, rab.config,
                              "d" * 64, 40_000) == base
        # Sensitive: cache geometry.
        small = build_named_config("baseline")
        small.llc.size_bytes //= 2
        assert checkpoint_key(proc.program, small, "d" * 64, 40_000) != base


# ---------------------------------------------------------------------------
# Plan plumbing
# ---------------------------------------------------------------------------

class TestPlanPlumbing:
    def test_make_checkpoint_plan_disengaged_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CKPT_DIR", raising=False)
        assert make_checkpoint_plan() is None
        assert resolve_checkpoint_dir() is None

    def test_make_checkpoint_plan_from_jobs(self, monkeypatch):
        monkeypatch.delenv("REPRO_CKPT_DIR", raising=False)
        plan = make_checkpoint_plan(jobs=4)
        assert plan.jobs == 4 and plan.store is None

    def test_checkpoint_dir_precedence(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CKPT_DIR", str(tmp_path / "env"))
        assert resolve_checkpoint_dir() == str(tmp_path / "env")
        assert resolve_checkpoint_dir(str(tmp_path / "cli")) == \
            str(tmp_path / "cli")
        plan = make_checkpoint_plan()
        assert str(plan.store.root) == str(tmp_path / "env")

    def test_degenerate_plan_window_ge_stride_rejected(self):
        plan = SamplingConfig(tier="two-level", ramp_instructions=500,
                              window_instructions=5_000,
                              stride_instructions=5_000)
        with pytest.raises(ValueError):
            run_two_tier(_processor(), plan, 50_000,
                         checkpoints=CheckpointPlan())

    def test_degenerate_budget_window_clamped_to_remaining(self):
        """A final boundary whose ramp+window exceeds the remaining budget
        clamps rather than overrunning max_instructions."""
        proc = _processor()
        proc.warm_up(12_000)
        meta = run_two_tier(proc, PLAN, 6_000,  # 2 boundaries, short tail
                            checkpoints=CheckpointPlan())
        assert meta["windows"] == 2
        assert meta["instructions_advanced"] == 6_000
        # Second burst had only 1000 insts of budget past its boundary.
        assert meta["detailed_instructions"] <= (300 + 900) + 1_000 + 16

    def test_simulate_rejects_checkpoints_on_detailed_tier(self):
        with pytest.raises(ValueError):
            simulate("mcf", build_named_config("baseline"),
                     max_instructions=5_000, warmup_instructions=1_000,
                     checkpoints=CheckpointPlan())

    def test_restore_or_warm_up_falls_back_after_execution(self, tmp_path):
        """The store only ever holds pure fast-forward state: a processor
        with detailed history takes the plain warm_up path."""
        store = CheckpointStore(tmp_path)
        proc = _processor()
        proc.run(500)
        out = restore_or_warm_up(proc, 4_000, store=store)
        assert not out["restored"]
        assert store.saves == 0 and store.hits == 0 and store.misses == 0


# ---------------------------------------------------------------------------
# Byte-identity and warm-store reuse (the CI-gate properties)
# ---------------------------------------------------------------------------

def _run_checkpointed(ckpt, max_instructions: int = 25_000):
    proc = _processor()
    proc.warm_up(12_000)
    meta = run_two_tier(proc, PLAN, max_instructions, checkpoints=ckpt)
    return proc.stats.to_dict(), meta


class TestByteIdentity:
    def test_serial_equals_parallel(self):
        stats1, meta1 = _run_checkpointed(CheckpointPlan(jobs=1))
        stats2, meta2 = _run_checkpointed(CheckpointPlan(jobs=2))
        assert meta2["checkpoints"]["jobs"] == 2
        assert stats_fingerprint(stats1, meta1) == \
            stats_fingerprint(stats2, meta2)
        assert stats1 == stats2  # stats carry no host keys at all

    def test_cold_equals_warm_store(self, tmp_path):
        store = CheckpointStore(tmp_path)
        stats_cold, meta_cold = _run_checkpointed(CheckpointPlan(store=store))
        assert meta_cold["checkpoints"]["store_hits"] == 0
        assert store.saves > 0
        stats_warm, meta_warm = _run_checkpointed(CheckpointPlan(store=store))
        hits = meta_warm["checkpoints"]["store_hits"]
        assert hits == meta_cold["checkpoints"]["count"] - 1  # entry is free
        assert meta_warm["checkpoints"]["store_misses"] == 0
        assert stats_fingerprint(stats_cold, meta_cold) == \
            stats_fingerprint(stats_warm, meta_warm)

    def test_warm_store_eliminates_fast_forward(self, tmp_path):
        """The perf claim the bench section records: a warm store turns
        the engine's fast-forward phase into restores."""
        store = CheckpointStore(tmp_path)
        _, cold = _run_checkpointed(CheckpointPlan(store=store))
        _, warm = _run_checkpointed(CheckpointPlan(store=store))
        assert warm["fast_forward_seconds"] == 0.0
        assert cold["fast_forward_seconds"] > 0.0

    def test_store_shared_across_runahead_modes(self, tmp_path):
        """Sweep-cell reuse: a store populated by a baseline run serves a
        rab_cc run of the same workload at full hit rate."""
        store = CheckpointStore(tmp_path)
        base = _processor("mcf", "baseline")
        base.warm_up(12_000)
        run_two_tier(base, PLAN, 25_000,
                     checkpoints=CheckpointPlan(store=store))
        rab = _processor("mcf", "rab_cc")
        rab.warm_up(12_000)
        meta = run_two_tier(rab, PLAN, 25_000,
                            checkpoints=CheckpointPlan(store=store))
        assert meta["checkpoints"]["store_misses"] == 0
        assert meta["checkpoints"]["store_hits"] > 0

    def test_warmup_chain_restores_through_store(self, tmp_path):
        store = CheckpointStore(tmp_path)
        cold = _processor()
        out = restore_or_warm_up(cold, 12_000, store=store)
        assert not out["restored"] and out["ff_seconds"] > 0
        warm = _processor()
        out2 = restore_or_warm_up(warm, 12_000, store=store)
        assert out2["restored"] and out2["ff_seconds"] == 0.0
        assert snapshot_bytes(warm.snapshot()) == snapshot_bytes(
            cold.snapshot())


# ---------------------------------------------------------------------------
# Accuracy: live-points inherit the sampled tier's error contract
# ---------------------------------------------------------------------------

class TestAccuracy:
    def test_live_point_estimates_within_tolerances(self):
        detailed = simulate("mcf", build_named_config("rab_cc"),
                            max_instructions=100_000,
                            warmup_instructions=12_000)
        live = simulate("mcf", build_named_config("rab_cc"),
                        max_instructions=100_000,
                        warmup_instructions=12_000,
                        sampling=SamplingConfig(tier="two-level",
                                                ramp_instructions=500,
                                                window_instructions=1_500,
                                                stride_instructions=10_000),
                        checkpoints=CheckpointPlan(jobs=1))
        failures = check_sampling_error(detailed.stats.to_dict(),
                                        live.sampling["estimates"])
        assert not failures, "; ".join(failures)
        assert live.sampling["checkpoints"]["count"] == 10
        assert live.sampling["windows"] == 10


# ---------------------------------------------------------------------------
# Window-stats merge
# ---------------------------------------------------------------------------

class TestMerge:
    def _payload(self, **over):
        from repro.core.stats import SimStats
        stats = SimStats()
        payload = {name: getattr(stats, name)
                   for name in SimStats.__dataclass_fields__}
        payload.update(over)
        return payload

    def test_counters_sum_and_dicts_merge(self):
        merged = merge_window_stats([
            self._payload(cycles=10, committed_insts=5,
                          llc_misses_by_kind={"demand": 2},
                          workload="mcf"),
            self._payload(cycles=7, committed_insts=3,
                          llc_misses_by_kind={"demand": 1, "prefetch": 4},
                          workload=""),
        ])
        assert merged.cycles == 17
        assert merged.committed_insts == 8
        assert merged.llc_misses_by_kind == {"demand": 3, "prefetch": 4}
        assert merged.workload == "mcf"

    def test_merge_is_order_independent_for_counters(self):
        a = self._payload(cycles=10, squashed_uops=2)
        b = self._payload(cycles=7, squashed_uops=5)
        ab, ba = merge_window_stats([a, b]), merge_window_stats([b, a])
        assert ab.cycles == ba.cycles and ab.squashed_uops == ba.squashed_uops


# ---------------------------------------------------------------------------
# Eviction under concurrency (--window-jobs workers sharing a store)
# ---------------------------------------------------------------------------

class TestEvictionRace:
    """Corrupt-entry eviction must use claim-by-rename missing-file-is-a-
    miss semantics: with parallel window jobs, a bare unlink can race a
    peer's atomic rewrite and destroy the *valid* entry (lost update),
    and two evictors can race each other on the delete."""

    def _entry(self, tmp_path):
        proc = _processor()
        proc.warm_up(8_000)
        snap = proc.snapshot()
        store = CheckpointStore(tmp_path)
        key = checkpoint_key(proc.program, proc.config, "base", 8_000)
        return store, key, snap

    def test_eviction_preserves_concurrent_valid_rewrite(self, tmp_path):
        store, key, snap = self._entry(tmp_path)
        store.save(key, snap)
        path = store._path(key)
        # The moment under test: this process read corrupt bytes and
        # decided to evict, but a peer's save() already replaced the
        # file with a fresh valid entry.  The eviction must recover the
        # peer's entry, not delete it.
        recovered = store._evict(path)
        assert recovered is not None
        assert snapshot_bytes(recovered) == snapshot_bytes(snap)
        assert path.exists()
        assert CheckpointStore(tmp_path).load(key) is not None

    def test_racing_evictors_miss_quietly(self, tmp_path):
        store, key, snap = self._entry(tmp_path)
        store.save(key, snap)
        path = store._path(key)
        path.write_bytes(b"corrupt")
        winner = CheckpointStore(tmp_path)
        loser = CheckpointStore(tmp_path)
        assert winner.load(key) is None          # claims and removes
        assert not path.exists()
        assert loser.load(key) is None           # entry gone: plain miss
        assert loser.misses == 1
        # The slot is reusable immediately after.
        store.save(key, snap)
        assert store.load(key) is not None

    def test_concurrent_eviction_stress(self, tmp_path):
        """Many workers loading/saving/corrupting one key concurrently:
        no exceptions, no lingering claim files, and the surviving entry
        (if any) is valid."""
        import threading

        store, key, snap = self._entry(tmp_path)
        store.save(key, snap)
        path = store._path(key)
        errors = []

        def hammer(worker: int) -> None:
            local = CheckpointStore(tmp_path)
            try:
                for i in range(30):
                    if worker == 0 and i % 3 == 0:
                        try:
                            path.write_bytes(b"corrupt")
                        except OSError:
                            pass
                    elif worker == 1 and i % 5 == 0:
                        local.save(key, snap)
                    loaded = local.load(key)
                    if loaded is not None:
                        assert snapshot_bytes(loaded) == snapshot_bytes(snap)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(n,))
                   for n in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        assert errors == []
        leftovers = [p for p in path.parent.iterdir()
                     if ".evict." in p.name or ".tmp." in p.name]
        assert leftovers == []
        final = CheckpointStore(tmp_path)
        final.save(key, snap)
        assert snapshot_bytes(final.load(key)) == snapshot_bytes(snap)
