"""Tests for architectural register naming/indexing."""

import pytest

from repro.isa import LINK_REG, NUM_ARCH_REGS, ZERO_REG, reg_index, reg_name


def test_register_count():
    assert NUM_ARCH_REGS == 32


def test_zero_and_link_registers():
    assert ZERO_REG == 0
    assert LINK_REG == 31


def test_reg_index_accepts_names():
    assert reg_index("R0") == 0
    assert reg_index("R31") == 31
    assert reg_index("r7") == 7  # case-insensitive


def test_reg_index_accepts_integers():
    for i in range(NUM_ARCH_REGS):
        assert reg_index(i) == i


def test_reg_index_rejects_unknown_name():
    with pytest.raises(ValueError):
        reg_index("R32")
    with pytest.raises(ValueError):
        reg_index("X5")


def test_reg_index_rejects_out_of_range():
    with pytest.raises(ValueError):
        reg_index(32)
    with pytest.raises(ValueError):
        reg_index(-1)


def test_reg_name_roundtrip():
    for i in range(NUM_ARCH_REGS):
        assert reg_index(reg_name(i)) == i


def test_reg_name_out_of_range():
    with pytest.raises(ValueError):
        reg_name(32)
