"""Suite-wide correctness sweep: every SPEC06-like workload, under every
runahead mode, must commit exactly the reference interpreter's path.

This is the heavyweight end-to-end guarantee behind the evaluation: no
figure is built on a simulation whose architectural semantics drifted.
A representative subset runs by default (full suite x modes would take
minutes); the subset covers every kernel family.
"""

import pytest

from repro.config import RunaheadMode, make_config
from repro.core import Processor
from repro.isa import Interpreter
from repro.workloads import build_workload

# One representative per kernel family + the paper's star benchmarks.
REPRESENTATIVES = (
    "mcf",          # gather + store
    "libquantum",   # pure stream + store
    "zeusmp",       # segmented stencil
    "omnetpp",      # hash probe, long chains, data-dependent branches
    "sphinx3",      # dependent walk
    "gcc",          # branchy compute with occasional far misses
)

MODES = (
    RunaheadMode.TRADITIONAL,
    RunaheadMode.BUFFER,
    RunaheadMode.HYBRID,
)


@pytest.mark.parametrize("workload_name", REPRESENTATIVES)
@pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
def test_workload_commits_reference_path(workload_name, mode):
    workload = build_workload(workload_name)
    processor = Processor(workload.program, make_config(mode),
                          memory=workload.memory)
    processor.warm_up(2_000)

    processor.run(1_500)

    reference = build_workload(workload_name)
    interp = Interpreter(reference.program, reference.memory)
    # Replay the warm-up plus exactly the committed instructions.
    for _ in interp.run(2_000 + processor.committed):
        pass

    assert processor.rename.arch_values() == interp.regs
    assert processor.memory.snapshot() == interp.memory.snapshot()
