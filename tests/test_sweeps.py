"""Sensitivity-sweep machinery tests."""

import pytest

from repro.analysis.sweeps import (
    CANNED_SWEEPS,
    SweepPoint,
    buffer_size_sweep,
    run_named_sweep,
    run_sweep,
    sweep_table,
)
from repro.config import RunaheadMode, make_config


def test_run_sweep_structure():
    points = run_sweep(
        lambda n: make_config(RunaheadMode.BUFFER, buffer_uops=n,
                              max_chain_length=n),
        values=[16, 32],
        benches=("mcf",),
        instructions=1200,
        warmup=2000,
    )
    assert len(points) == 2
    assert all(isinstance(p, SweepPoint) for p in points)
    assert points[0].value == 16
    assert "mcf" in points[0].per_bench


def test_sweep_table_rendering():
    points = [SweepPoint(8, 10.0, {"mcf": 10.0}),
              SweepPoint(16, 12.0, {"mcf": 12.0})]
    table = sweep_table("demo", "size", points)
    assert table.headers == ["size", "gmean_pct", "mcf"]
    assert len(table.rows) == 2


def test_buffer_size_sweep_positive_gains():
    points = buffer_size_sweep(sizes=(32,), benches=("mcf",),
                               instructions=1500, warmup=2000)
    assert points[0].speedup_pct > 0


def test_run_named_sweep():
    table = run_named_sweep("runahead-cache", benches=("mcf",),
                            instructions=1200, warmup=2000, jobs=1)
    assert len(table.rows) == 2


def test_unknown_sweep_rejected():
    with pytest.raises(ValueError, match="unknown sweep"):
        run_named_sweep("voltage")


def test_canned_registry():
    for name in ("buffer-size", "chain-cache", "search-bandwidth",
                 "rob-size", "runahead-cache"):
        assert name in CANNED_SWEEPS
