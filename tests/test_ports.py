"""Port-protocol contract tests for the core↔memory seam.

The component-graph refactor (docs/simulator.md, "Multi-core & shared
memory") replaced the hierarchy's direct method calls into the LLC with
an explicit can/send/has/recv port.  These tests pin the protocol
contract itself — no send past backpressure, no receive without a
response, single delivery, retry-cycle latching — against both a
scripted mock endpoint (so violations cannot hide behind real LLC
behaviour) and the real :class:`~repro.memory.SharedLLC` endpoint (so
the contract holds where it matters).
"""

from __future__ import annotations

import pytest

from repro.config import default_system
from repro.memory import (DirectLink, MemRequest, MemResponse,
                          MemoryHierarchy, ProtocolError, SharedLLC)


class RecordingEndpoint:
    """Scripted endpoint: fixed admission verdict, records every serve."""

    def __init__(self, retry_at: int = 0) -> None:
        self.retry_at = retry_at
        self.served: list[MemRequest] = []

    def accept_at(self, req: MemRequest) -> int:
        return self.retry_at

    def serve(self, req: MemRequest) -> MemResponse:
        self.served.append(req)
        return MemResponse(req.cycle + 100, "dram")


def _req(line: int = 0x40, cycle: int = 10, kind: str = "load",
         gated: bool = True) -> MemRequest:
    return MemRequest(line, cycle, kind, core=0, gate_cycle=cycle,
                      gated=gated)


# -- mock endpoint: the protocol in isolation --------------------------------


class TestDirectLinkProtocol:
    def test_recv_without_response_raises(self):
        port = DirectLink(RecordingEndpoint())
        assert not port.has_resp()
        with pytest.raises(ProtocolError):
            port.recv()

    def test_send_delivers_exactly_once(self):
        endpoint = RecordingEndpoint()
        port = DirectLink(endpoint)
        req = _req()
        assert port.try_send(req)
        assert len(endpoint.served) == 1 and endpoint.served[0] is req
        assert port.has_resp()
        resp = port.recv()
        assert resp.done_cycle == req.cycle + 100
        # Single delivery: the response is gone after one recv.
        assert not port.has_resp()
        with pytest.raises(ProtocolError):
            port.recv()
        assert len(endpoint.served) == 1

    def test_send_with_undrained_response_raises(self):
        endpoint = RecordingEndpoint()
        port = DirectLink(endpoint)
        assert port.try_send(_req())
        with pytest.raises(ProtocolError):
            port.try_send(_req(line=0x80))
        # The violating send must not have reached the endpoint.
        assert len(endpoint.served) == 1

    def test_can_accept_false_while_response_pending(self):
        port = DirectLink(RecordingEndpoint())
        assert port.try_send(_req())
        assert not port.can_accept(_req(line=0x80))
        port.recv()
        assert port.can_accept(_req(line=0x80))

    def test_refusal_latches_retry_cycle_without_serving(self):
        endpoint = RecordingEndpoint(retry_at=55)
        port = DirectLink(endpoint)
        req = _req()
        assert not port.can_accept(req)
        assert port.retry_at == 55
        assert not port.try_send(req)
        assert port.retry_at == 55
        # A refused request never reaches serve() and leaves no response.
        assert endpoint.served == []
        assert not port.has_resp()

    def test_can_accept_does_not_consume_the_slot(self):
        endpoint = RecordingEndpoint()
        port = DirectLink(endpoint)
        req = _req()
        assert port.can_accept(req)
        assert endpoint.served == []  # admission check only, no serve
        assert port.try_send(req)
        assert len(endpoint.served) == 1


# -- real endpoint: SharedLLC behind the same port ---------------------------


@pytest.fixture
def hierarchy():
    return MemoryHierarchy(default_system())


class TestRealEndpoint:
    def test_hierarchy_is_port_connected(self, hierarchy):
        assert isinstance(hierarchy.port, DirectLink)
        assert isinstance(hierarchy.shared, SharedLLC)
        assert hierarchy.port.endpoint is hierarchy.shared

    def test_load_roundtrip(self, hierarchy):
        port = hierarchy.port
        req = _req(line=0x1000, cycle=20)
        assert port.try_send(req)
        resp = port.recv()
        assert resp.done_cycle >= req.cycle
        assert isinstance(resp.level, str) and resp.level
        with pytest.raises(ProtocolError):
            port.recv()

    def test_full_mshr_pool_backpressures_gated_loads(self, hierarchy):
        shared = hierarchy.shared
        drain_cycle = 10_000
        for _ in range(shared._mshr_limit):
            shared._register_fill(drain_cycle)
        port = hierarchy.port
        req = _req(line=0x2000, cycle=10)
        assert not port.can_accept(req)
        assert port.retry_at == drain_cycle
        assert not port.try_send(req)
        assert port.retry_at == drain_cycle
        assert not port.has_resp()

    def test_ungated_requests_bypass_the_mshr_gate(self, hierarchy):
        # Stores and instruction fetches are not subject to MSHR
        # backpressure (nothing in the core waits on them the same way).
        shared = hierarchy.shared
        for _ in range(shared._mshr_limit):
            shared._register_fill(10_000)
        port = hierarchy.port
        store = _req(line=0x3000, cycle=10, kind="store", gated=False)
        assert port.try_send(store)
        assert port.recv().done_cycle >= store.cycle

    def test_retry_cycle_frees_the_request(self, hierarchy):
        # Retrying at the latched cycle (when the blocking fills drain)
        # must succeed — the contract callers rely on for progress.
        shared = hierarchy.shared
        drain_cycle = 5_000
        for _ in range(shared._mshr_limit):
            shared._register_fill(drain_cycle)
        port = hierarchy.port
        refused = _req(line=0x4000, cycle=10)
        assert not port.try_send(refused)
        retry = MemRequest(0x4000, port.retry_at, "load", core=0,
                           gate_cycle=port.retry_at, gated=True)
        assert port.try_send(retry)
        assert port.recv().done_cycle >= retry.cycle
