"""Farm HTTP server + client tests.

Each test spins the server on an ephemeral port inside ``asyncio.run``
and drives the blocking :class:`FarmClient` from the default thread
executor (the client must never run on the service loop).  Fake runners
keep most tests instant; the byte-identity tests run the real
``simulate_cell`` on tiny budgets.
"""

import asyncio
import json
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.analysis.experiments import ExperimentMatrix
from repro.analysis.parallel import CellSpec, simulate_cell
from repro.farm import (FarmClient, FarmClientError, FarmServer, FarmService,
                        ResultStore, decode_spec, spec_cell_key)
from repro.farm.http import HttpError

SPEC = CellSpec("calculix", "baseline", False, 400, 500)
SPEC2 = CellSpec("calculix", "runahead", False, 400, 500)


def _fake_runner(spec):
    return {"workload": spec.workload, "config_name": spec.config_name,
            "ipc": 1.0}


def _with_server(body, service=None, runner=_fake_runner, **server_kwargs):
    """Run ``body(client, service)`` in a worker thread against a live
    server; returns whatever ``body`` returns."""

    async def main():
        svc = service if service is not None else FarmService(
            runner=runner, executor_factory=lambda: ThreadPoolExecutor(2))
        server = FarmServer(svc, port=0, instructions=400, warmup=500,
                            **server_kwargs)
        await server.start()
        loop = asyncio.get_running_loop()
        try:
            client = FarmClient(server.url, timeout=120)
            return await loop.run_in_executor(None, body, client, svc)
        finally:
            await server.close()

    return asyncio.run(main())


def _fingerprint(stats) -> str:
    return json.dumps(stats, sort_keys=True)


# ---------------------------------------------------------------------------
# Basic endpoints
# ---------------------------------------------------------------------------

class TestEndpoints:
    def test_healthz_meta_and_metrics(self):
        def body(client, svc):
            assert client.healthz()
            meta = client.meta()
            stats = client.fetch_cells([SPEC])[0]
            metrics = client.metrics()
            return meta, stats, metrics

        meta, stats, metrics = _with_server(body)
        assert meta["key_schema"] >= 3
        assert "calculix" in meta["workloads"]
        assert stats["workload"] == "calculix"
        assert metrics["farm.requests"] == 1
        assert metrics["farm.completed"] == 1

    def test_job_submit_poll_and_event_stream(self):
        def body(client, svc):
            job_id = client.submit([SPEC, SPEC2])
            events = list(client.stream_events(job_id))
            doc = client.job(job_id)
            return job_id, events, doc

        job_id, events, doc = _with_server(body)
        assert doc["ok"] and doc["done"]
        assert doc["cells"] == [spec_cell_key(SPEC), spec_cell_key(SPEC2)]
        assert len(doc["results"]) == 2
        kinds = [e["event"] for e in events]
        assert kinds[-1] == "farm.job_done"
        assert kinds.count("farm.done") == 2

    def test_unknown_job_and_route_are_404(self):
        def body(client, svc):
            statuses = []
            for call in (lambda: client.job("job-999"),
                         lambda: client._request("GET", "/v1/nothing")):
                with pytest.raises(FarmClientError) as err:
                    call()
                statuses.append(err.value.status)
            return statuses

        assert _with_server(body) == [404, 404]

    def test_bad_cell_specs_are_400(self):
        def body(client, svc):
            statuses = []
            for payload in ({"cells": []},
                            {"cells": [{"workload": "nope",
                                        "config_name": "baseline",
                                        "instructions": 400,
                                        "warmup": 500}]},
                            {"cells": [{"workload": "calculix",
                                        "config_name": "baseline",
                                        "instructions": 400,
                                        "warmup": 500,
                                        "bogus_field": 1}]}):
                with pytest.raises(FarmClientError) as err:
                    client._request("POST", "/v1/cells", payload)
                statuses.append(err.value.status)
            return statuses

        assert _with_server(body) == [400, 400, 400]

    def test_figure_endpoint_serves_table(self):
        def body(client, svc):
            return client.figure("table1")

        doc = _with_server(body)
        assert doc["figure"] == "table1"
        assert doc["rows"] and doc["headers"]
        assert doc["title"].startswith("Table 1")
        assert "\n" in doc["text"]

    def test_trace_endpoint_serves_perfetto_json(self):
        def body(client, svc):
            return client.trace("calculix", "baseline",
                                instructions=400, warmup=500)

        doc = _with_server(body)
        assert "traceEvents" in doc
        assert any(e.get("name") == "process_name"
                   for e in doc["traceEvents"])


class TestDecodeSpec:
    def test_live_point_fields_forced_off(self):
        spec = decode_spec({"workload": "calculix",
                            "config_name": "baseline",
                            "instructions": 400, "warmup": 500,
                            "window_jobs": 8,
                            "checkpoint_dir": "/tmp/somewhere"})
        assert spec.window_jobs == 0
        assert spec.checkpoint_dir == ""
        assert not spec_cell_key(spec).endswith(".lp")

    def test_rejects_bad_types_and_plans(self):
        base = {"workload": "calculix", "config_name": "baseline",
                "instructions": 400, "warmup": 500}
        for broken in ({**base, "chain_stats": 1},
                       {**base, "instructions": "400"},
                       {**base, "instructions": 0},
                       {**base, "tier": "bogus"},
                       {**base, "tier": "two-level", "ramp": 100,
                        "window": 200, "stride": 250},
                       "not a dict"):
            with pytest.raises(HttpError):
                decode_spec(broken)

    def test_multicore_specs_validated(self):
        spec = decode_spec({"workload": "", "config_name": "rab_cc",
                            "instructions": 400, "warmup": 500,
                            "cores": 2, "workloads": "mcf,lbm"})
        assert spec.cores == 2 and spec.share == "llc,dram"
        base = {"workload": "mcf", "config_name": "rab_cc",
                "instructions": 400, "warmup": 500}
        for broken in ({**base, "cores": 0},
                       {**base, "cores": 9},
                       {**base, "cores": 2},                  # no workloads
                       {**base, "cores": 2, "workloads": "mcf"},
                       {**base, "cores": 2, "workloads": "mcf,nope"},
                       {**base, "cores": 2, "workloads": "mcf,lbm",
                        "share": "bogus"},
                       {**base, "cores": 2, "workloads": "mcf,lbm",
                        "chain_stats": True},
                       {**base, "cores": 2, "workloads": "mcf,lbm",
                        "tier": "two-level", "ramp": 100, "window": 200,
                        "stride": 1000},
                       {**base, "workloads": "mcf,lbm"}):     # cores == 1
            with pytest.raises(HttpError):
                decode_spec(broken)


# ---------------------------------------------------------------------------
# The acceptance-criteria paths
# ---------------------------------------------------------------------------

class TestConcurrentClients:
    def test_two_clients_same_uncached_cell_one_execution(self):
        """Two concurrent clients requesting the same uncached cell must
        trigger exactly one simulation and receive byte-identical stats."""
        started = threading.Event()
        release = threading.Event()
        calls = []

        def gated_runner(spec):
            calls.append(spec)
            started.set()
            assert release.wait(60)
            return simulate_cell(spec)

        def body(client, svc):
            results = []

            def fetch():
                results.append(client.fetch_cells([SPEC])[0])

            first = threading.Thread(target=fetch)
            second = threading.Thread(target=fetch)
            first.start()
            assert started.wait(60)          # first request is executing
            second.start()
            deadline = time.monotonic() + 30
            while svc.coalesced < 1:         # second request coalesced
                assert time.monotonic() < deadline
                time.sleep(0.01)
            release.set()
            first.join(120)
            second.join(120)
            return results

        results = _with_server(body, runner=gated_runner)
        assert len(calls) == 1
        assert len(results) == 2
        fingerprints = {_fingerprint(r) for r in results}
        assert len(fingerprints) == 1
        # And it is a real simulation payload, not a placeholder.
        assert results[0]["ipc"] > 0

    def test_rerequest_hits_store_after_service_restart(self, tmp_path):
        def body(client, svc):
            return client.fetch_cells([SPEC])[0]

        first = _with_server(
            body, service=FarmService(
                runner=_fake_runner, store=ResultStore(tmp_path),
                executor_factory=lambda: ThreadPoolExecutor(2)))
        svc2 = FarmService(runner=_fake_runner, store=ResultStore(tmp_path),
                           executor_factory=lambda: ThreadPoolExecutor(2))

        def body2(client, svc):
            stats = client.fetch_cells([SPEC])[0]
            return stats, client.metrics()

        second, metrics = _with_server(body2, service=svc2)
        assert _fingerprint(first) == _fingerprint(second)
        assert metrics["farm.store_hits"] == 1
        assert metrics["farm.completed"] == 0    # nothing re-simulated

    def test_client_disconnect_mid_stream_keeps_run_alive(self):
        release = threading.Event()

        def gated_runner(spec):
            assert release.wait(60)
            return _fake_runner(spec)

        def body(client, svc):
            job_id = client.submit([SPEC])
            # Raw-socket stream: read one event line, then hang up.
            with socket.create_connection((client.host, client.port),
                                          timeout=30) as raw:
                raw.sendall(f"GET /v1/jobs/{job_id}/events HTTP/1.1\r\n"
                            f"Host: x\r\n\r\n".encode())
                buffered = b""
                while b"\n" not in buffered.split(b"\r\n\r\n", 1)[-1]:
                    buffered += raw.recv(4096)
            # Socket closed mid-stream; the shared run must finish.
            release.set()
            deadline = time.monotonic() + 30
            while not client.job(job_id)["done"]:
                assert time.monotonic() < deadline
                time.sleep(0.02)
            return client.job(job_id)

        doc = _with_server(body, runner=gated_runner)
        assert doc["ok"]
        assert doc["results"][0]["workload"] == "calculix"


class TestRemoteMatrix:
    CELLS = [("calculix", "baseline", False), ("calculix", "runahead", False)]

    def test_remote_suite_prefetch_byte_identical_to_local(self, tmp_path):
        """``repro suite --remote`` cells must byte-match the in-process
        path: same stats, same cache file."""
        local_path = tmp_path / "local.json"
        local = ExperimentMatrix(instructions=400, warmup=500,
                                 cache_path=local_path)
        assert local.prefetch(self.CELLS, jobs=1) == 2

        remote_path = tmp_path / "remote.json"

        def body(client, svc):
            remote = ExperimentMatrix(instructions=400, warmup=500,
                                      cache_path=remote_path)
            progress = []
            count = client.prefetch_matrix(
                remote, self.CELLS,
                progress=lambda spec, done, total: progress.append(
                    (done, total)))
            return count, progress

        count, progress = _with_server(body, runner=simulate_cell)
        assert count == 2
        assert progress[-1] == (2, 2)
        assert local_path.read_bytes() == remote_path.read_bytes()

    def test_prefetch_matrix_noop_when_cached(self, tmp_path):
        path = tmp_path / "cache.json"
        matrix = ExperimentMatrix(instructions=400, warmup=500,
                                  cache_path=path)
        for workload, config_name, chains in self.CELLS:
            matrix.store(workload, config_name, chains, {"ipc": 1.0})

        def body(client, svc):
            return client.prefetch_matrix(matrix, self.CELLS)

        assert _with_server(body) == 0

    def test_prefetch_matrix_rejects_live_point_matrices(self, tmp_path):
        from repro.config import SamplingConfig
        matrix = ExperimentMatrix(
            instructions=5000, warmup=500, cache_path=None,
            sampling=SamplingConfig(tier="two-level", ramp_instructions=100,
                                    window_instructions=200,
                                    stride_instructions=1000),
            window_jobs=2)

        def body(client, svc):
            with pytest.raises(ValueError):
                client.prefetch_matrix(matrix, self.CELLS)
            return True

        assert _with_server(body)
