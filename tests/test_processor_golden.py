"""Property-based golden test: for randomly generated programs, the
out-of-order core's architectural results must equal the in-order
reference interpreter's — register file and memory, bit for bit.

Programs are generated with forward-only control flow (plus an optional
counted outer loop) so termination is guaranteed; they still exercise
renaming, forwarding, disambiguation, mispredict recovery, and every
ALU/memory opcode.
"""

from hypothesis import given, settings, strategies as st

from repro import DataMemory, Interpreter, ProgramBuilder
from repro.config import default_system
from repro.core import Processor

REGS = [f"R{i}" for i in range(1, 12)]
BASE = 0x10000


@st.composite
def straightline_ops(draw, max_ops=40):
    """A list of op descriptors for a forward-only random program."""
    n = draw(st.integers(min_value=1, max_value=max_ops))
    ops = []
    for _ in range(n):
        kind = draw(st.sampled_from(
            ["alu", "alu", "alu", "imm", "load", "store", "branch", "mul"]
        ))
        rd = draw(st.sampled_from(REGS))
        rs1 = draw(st.sampled_from(REGS))
        rs2 = draw(st.sampled_from(REGS))
        imm = draw(st.integers(min_value=-64, max_value=64))
        skip = draw(st.integers(min_value=1, max_value=3))
        alu = draw(st.sampled_from(["add", "sub", "xor", "and_", "or_"]))
        ops.append((kind, rd, rs1, rs2, imm, skip, alu))
    return ops


def build_program(ops):
    b = ProgramBuilder()
    # Give registers deterministic non-zero seeds.
    for i, reg in enumerate(REGS):
        b.li(reg, (i + 1) * 1001)
    b.li("R12", BASE)
    label_count = 0
    pending_labels = []  # (emit_at_pc, label)
    for index, (kind, rd, rs1, rs2, imm, skip, alu) in enumerate(ops):
        # Place any labels that are due.
        if kind == "alu":
            getattr(b, alu)(rd, rs1, rs2)
        elif kind == "imm":
            b.addi(rd, rs1, imm)
        elif kind == "load":
            # Constrain the address to a small window near BASE.
            b.andi(rd, rs1, 0xF8)
            b.add(rd, rd, "R12")
            b.load(rd, rd, 0)
        elif kind == "store":
            b.andi("R13", rs1, 0xF8)
            b.add("R13", "R13", "R12")
            b.store(rs2, "R13", 0)
        elif kind == "mul":
            b.mul(rd, rs1, rs2)
        elif kind == "branch":
            label = f"fwd{label_count}"
            label_count += 1
            b.bne(rs1, rs2, label)
            # skip 1-3 filler ops, then land.
            for _ in range(skip):
                b.addi("R13", "R13", 1)
            b.label(label)
    b.halt()
    return b.build(name="random")


@given(ops=straightline_ops())
@settings(max_examples=60, deadline=None)
def test_random_program_equivalence(ops):
    program = build_program(ops)

    interp = Interpreter(program, DataMemory())
    for _ in interp.run(10_000):
        pass

    proc = Processor(program, default_system(), memory=DataMemory())
    proc.run(10_000)

    assert proc.halted and interp.halted
    assert proc.rename.arch_values() == interp.regs
    assert proc.memory.snapshot() == interp.memory.snapshot()


@given(ops=straightline_ops(max_ops=20),
       iterations=st.integers(min_value=2, max_value=8))
@settings(max_examples=25, deadline=None)
def test_random_loop_equivalence(ops, iterations):
    """The same random body inside a counted loop (re-renaming, branch
    training, repeated store/load patterns)."""
    b = ProgramBuilder()
    for i, reg in enumerate(REGS):
        b.li(reg, (i + 1) * 777)
    b.li("R12", BASE)
    b.li("R14", 0)
    b.li("R15", iterations)
    b.label("outer")
    label_count = [0]
    for kind, rd, rs1, rs2, imm, skip, alu in ops:
        if kind == "alu":
            getattr(b, alu)(rd, rs1, rs2)
        elif kind == "imm":
            b.addi(rd, rs1, imm)
        elif kind == "load":
            b.andi(rd, rs1, 0xF8)
            b.add(rd, rd, "R12")
            b.load(rd, rd, 0)
        elif kind == "store":
            b.andi("R13", rs1, 0xF8)
            b.add("R13", "R13", "R12")
            b.store(rs2, "R13", 0)
        elif kind == "mul":
            b.mul(rd, rs1, rs2)
        elif kind == "branch":
            label = f"fw{label_count[0]}"
            label_count[0] += 1
            b.bne(rs1, rs2, label)
            for _ in range(skip):
                b.addi("R13", "R13", 1)
            b.label(label)
    b.addi("R14", "R14", 1)
    b.bne("R14", "R15", "outer")
    b.halt()
    program = b.build(name="random_loop")

    interp = Interpreter(program, DataMemory())
    for _ in interp.run(50_000):
        pass
    proc = Processor(program, default_system(), memory=DataMemory())
    proc.run(50_000)

    assert proc.halted and interp.halted
    assert proc.rename.arch_values() == interp.regs
    assert proc.memory.snapshot() == interp.memory.snapshot()
