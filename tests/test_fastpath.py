"""Two-tier simulation tests (``repro.fastpath`` + its wiring).

Four concerns, mirroring the structure of tests/test_shape_regression.py:

* engine mechanics — window/stride bookkeeping, halt and cycle-budget
  termination, the metadata contract;
* detailed-tier purity — ``tier="detailed"`` (or no sampling at all)
  must be byte-identical to the pre-sampling simulator;
* the sampled tier's documented error bounds — the default plan must
  reproduce detailed IPC / MPKI / runahead share within
  ``SAMPLING_TOLERANCES`` on a small reference grid, and each tolerance
  gate is shown to *bite* on perturbed fixtures;
* cache keying — sampled cells must never collide with detailed cells
  in the experiment matrix (KEY_SCHEMA 3).
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.analysis.experiments import KEY_SCHEMA, ExperimentMatrix
from repro.analysis.parallel import CellSpec
from repro.config import SamplingConfig, build_named_config
from repro.core.processor import Processor
from repro.core.sim import simulate
from repro.fastpath import (SAMPLING_TOLERANCES, check_sampling_error,
                            run_two_tier, runahead_share)
from repro.verify.fuzz import build_fuzz_program
from repro.workloads import build_workload


def _processor(workload: str, config_name: str, warmup: int = 12_000):
    built = build_workload(workload)
    proc = Processor(built.program, build_named_config(config_name),
                     memory=built.memory, init_regs=built.init_regs)
    if warmup:
        proc.warm_up(warmup)
    return proc


# ---------------------------------------------------------------------------
# SamplingConfig validation
# ---------------------------------------------------------------------------

class TestSamplingConfig:
    def test_defaults_validate(self):
        SamplingConfig().validate()
        SamplingConfig(tier="two-level").validate()

    def test_detailed_share(self):
        assert SamplingConfig().detailed_share == 1.0
        plan = SamplingConfig(tier="two-level", ramp_instructions=500,
                              window_instructions=1_500,
                              stride_instructions=40_000)
        assert plan.detailed_share == pytest.approx(0.05)

    @pytest.mark.parametrize("kwargs", [
        {"tier": "sampled"},
        {"tier": "two-level", "window_instructions": 0},
        {"tier": "two-level", "ramp_instructions": -1},
        {"tier": "two-level", "ramp_instructions": 500,
         "window_instructions": 1_500, "stride_instructions": 2_000},
    ])
    def test_invalid_plans_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SamplingConfig(**kwargs).validate()


# ---------------------------------------------------------------------------
# Engine mechanics
# ---------------------------------------------------------------------------

class TestEngine:
    def test_window_and_stride_bookkeeping(self):
        proc = _processor("mcf", "baseline")
        plan = SamplingConfig(tier="two-level", ramp_instructions=100,
                              window_instructions=200,
                              stride_instructions=1_000)
        meta = run_two_tier(proc, plan, 5_000)
        assert meta["tier"] == "two-level"
        assert meta["windows"] == 5
        assert meta["instructions_advanced"] == 5_000
        assert (meta["detailed_instructions"]
                + meta["fast_forward_instructions"]) == 5_000
        # Detailed bursts can overshoot by up to commit-width - 1 insts.
        assert meta["detailed_fraction"] == pytest.approx(0.3, rel=0.05)
        assert meta["detailed_seconds"] > 0
        assert meta["fast_forward_seconds"] > 0
        assert meta["estimated_total_cycles"] > proc.stats.cycles
        est = meta["estimates"]
        assert est["ipc"] > 0
        assert est["mpki"] >= 0
        assert 0.0 <= est["runahead_share"] <= 1.0

    def test_stops_at_halt_inside_gap(self):
        fuzz = build_fuzz_program(5, target_insts=2_000)
        workload = SimpleNamespace(program=fuzz.program, memory=fuzz.memory(),
                                   init_regs=None)
        proc = Processor(fuzz.program, build_named_config("baseline"),
                         memory=workload.memory)
        plan = SamplingConfig(tier="two-level", ramp_instructions=50,
                              window_instructions=100,
                              stride_instructions=1_000)
        meta = run_two_tier(proc, plan, 50_000)
        assert proc.halted
        assert meta["instructions_advanced"] < 50_000

    def test_stops_when_cycle_budget_exhausted(self):
        proc = _processor("mcf", "baseline", warmup=0)
        plan = SamplingConfig(tier="two-level")
        meta = run_two_tier(proc, plan, 100_000, max_cycles=50)
        assert meta["windows"] == 1
        assert meta["instructions_advanced"] < 100_000

    def test_validates_plan(self):
        proc = _processor("mcf", "baseline", warmup=0)
        with pytest.raises(ValueError):
            run_two_tier(proc, SamplingConfig(tier="nope"), 1_000)


# ---------------------------------------------------------------------------
# Detailed-tier purity
# ---------------------------------------------------------------------------

class TestDetailedTierPurity:
    def test_detailed_sampling_config_is_identity(self):
        plain = simulate("mcf", build_named_config("rab_cc"),
                         max_instructions=8_000, warmup_instructions=6_000)
        tiered = simulate("mcf", build_named_config("rab_cc"),
                          max_instructions=8_000, warmup_instructions=6_000,
                          sampling=SamplingConfig(tier="detailed"))
        assert tiered.sampling is None
        assert tiered.stats.to_dict() == plain.stats.to_dict()

    def test_two_level_result_carries_metadata(self):
        result = simulate("mcf", build_named_config("baseline"),
                          max_instructions=50_000,
                          warmup_instructions=6_000,
                          sampling=SamplingConfig(tier="two-level"))
        assert result.sampling is not None
        assert result.sampling["instructions_advanced"] == 50_000
        # Stats describe the detailed bursts only.
        assert (result.stats.committed_insts
                == result.sampling["detailed_instructions"])


# ---------------------------------------------------------------------------
# Error bounds: the sampled tier's accuracy contract
# ---------------------------------------------------------------------------

ERROR_BOUND_INSTS = 200_000
ERROR_BOUND_CELLS = [("mcf", "rab_cc"), ("mcf", "baseline"),
                     ("lbm", "rab_cc"), ("lbm", "baseline")]


class TestSampledErrorBounds:
    @pytest.mark.parametrize("workload,config_name", ERROR_BOUND_CELLS,
                             ids=[f"{w}-{c}" for w, c in ERROR_BOUND_CELLS])
    def test_default_plan_within_tolerances(self, workload, config_name):
        detailed = simulate(workload, build_named_config(config_name),
                            max_instructions=ERROR_BOUND_INSTS,
                            warmup_instructions=12_000)
        sampled = simulate(workload, build_named_config(config_name),
                           max_instructions=ERROR_BOUND_INSTS,
                           warmup_instructions=12_000,
                           sampling=SamplingConfig(tier="two-level"))
        failures = check_sampling_error(detailed.stats.to_dict(),
                                        sampled.sampling["estimates"])
        assert not failures, "; ".join(failures)


class TestGateBites:
    """Each tolerance gate must actually reject an out-of-bound estimate
    (mirrors tests/test_shape_regression.py's perturbed-fixture style)."""

    DETAILED = {
        "ipc": 1.0,
        "mpki": 20.0,
        "runahead_cycle_fraction": 0.30,
        "rab_cycle_fraction": 0.18,
    }

    def _estimates(self, **overrides):
        base = {"ipc": 1.0, "mpki": 20.0, "runahead_share": 0.30}
        base.update(overrides)
        return base

    def test_in_bound_estimates_pass(self):
        assert check_sampling_error(self.DETAILED, self._estimates()) == []

    def test_ipc_gate_bites(self):
        bad = 1.0 * (1 + SAMPLING_TOLERANCES["ipc_rel"] + 0.01)
        failures = check_sampling_error(self.DETAILED,
                                        self._estimates(ipc=bad))
        assert len(failures) == 1 and failures[0].startswith("ipc")

    def test_mpki_gate_bites(self):
        bad = 20.0 + SAMPLING_TOLERANCES["mpki_abs"] + 0.01
        failures = check_sampling_error(self.DETAILED,
                                        self._estimates(mpki=bad))
        assert len(failures) == 1 and failures[0].startswith("mpki")

    def test_share_gate_bites(self):
        bad = 0.30 + SAMPLING_TOLERANCES["runahead_share_abs"] + 0.01
        failures = check_sampling_error(
            self.DETAILED, self._estimates(runahead_share=bad))
        assert len(failures) == 1
        assert failures[0].startswith("runahead share")

    def test_tolerance_overrides(self):
        slightly_off = self._estimates(ipc=1.05)
        assert check_sampling_error(self.DETAILED, slightly_off) == []
        failures = check_sampling_error(self.DETAILED, slightly_off,
                                        tolerances={"ipc_rel": 0.01})
        assert len(failures) == 1 and failures[0].startswith("ipc")

    def test_runahead_share_reads_both_shapes(self):
        assert runahead_share(self.DETAILED) == pytest.approx(0.30)
        assert runahead_share({"runahead_share": 0.4}) == pytest.approx(0.4)


# ---------------------------------------------------------------------------
# Cache keying (KEY_SCHEMA 3): sampled cells never collide with detailed
# ---------------------------------------------------------------------------

PLAN = SamplingConfig(tier="two-level", ramp_instructions=500,
                      window_instructions=1_500, stride_instructions=40_000)


class TestCacheKeying:
    def test_key_schema_bumped(self):
        assert KEY_SCHEMA == 3

    def test_detailed_key_format_unchanged(self):
        # The whole persisted grid (and tests/test_shape_regression.py)
        # addresses detailed cells with the schema-2 key shape; the tier
        # suffix must only appear on non-detailed cells.
        matrix = ExperimentMatrix(instructions=5_000, warmup=12_000,
                                  cache_path=None)
        assert matrix._key("mcf", "baseline", False) == \
            "mcf/baseline/5000/w12000"
        assert matrix._key("mcf", "rab_cc", True) == \
            "mcf/rab_cc+chains/5000/w12000"

    def test_sampled_key_embeds_tier_and_plan(self):
        matrix = ExperimentMatrix(instructions=5_000, warmup=12_000,
                                  cache_path=None, sampling=PLAN)
        key = matrix._key("mcf", "baseline", False)
        assert key == "mcf/baseline/5000/w12000/two-level.r500.w1500.s40000"

    def test_window_and_stride_address_different_cells(self):
        keys = set()
        for window, stride in ((1_500, 40_000), (1_000, 40_000),
                               (1_500, 20_000)):
            plan = SamplingConfig(tier="two-level", ramp_instructions=500,
                                  window_instructions=window,
                                  stride_instructions=stride)
            matrix = ExperimentMatrix(instructions=5_000, warmup=12_000,
                                      cache_path=None, sampling=plan)
            keys.add(matrix._key("mcf", "baseline", False))
        assert len(keys) == 3

    def test_sampled_results_do_not_leak_into_detailed_matrix(self, tmp_path):
        cache = tmp_path / "experiments.json"
        sampled = ExperimentMatrix(instructions=5_000, warmup=12_000,
                                   cache_path=cache, sampling=PLAN)
        sampled.store("mcf", "baseline", False, {"ipc": 0.5})
        sampled.save()
        detailed = ExperimentMatrix(instructions=5_000, warmup=12_000,
                                    cache_path=cache)
        assert not detailed.is_cached("mcf", "baseline")
        same_plan = ExperimentMatrix(instructions=5_000, warmup=12_000,
                                     cache_path=cache, sampling=PLAN)
        assert same_plan.is_cached("mcf", "baseline")

    def test_cellspec_defaults_stay_detailed(self):
        spec = CellSpec("mcf", "baseline", False, 5_000, 12_000)
        assert spec.tier == "detailed"
        assert spec.label == "mcf/baseline"
        sampled = CellSpec("mcf", "baseline", False, 5_000, 12_000,
                           "two-level", 500, 1_500, 40_000)
        assert "two-level" in sampled.label

    def test_prefetch_specs_carry_tier(self, monkeypatch):
        captured = {}

        def fake_simulate_cells(specs, jobs=None, progress=None):
            captured["specs"] = list(specs)
            return [{"ipc": 1.0} for _ in specs]

        import repro.analysis.parallel as parallel_mod
        monkeypatch.setattr(parallel_mod, "simulate_cells",
                            fake_simulate_cells)
        matrix = ExperimentMatrix(instructions=5_000, warmup=12_000,
                                  cache_path=None, sampling=PLAN)
        matrix.prefetch([("mcf", "baseline", False)])
        (spec,) = captured["specs"]
        assert spec.tier == "two-level"
        assert (spec.ramp, spec.window, spec.stride) == (500, 1_500, 40_000)
        assert matrix.is_cached("mcf", "baseline")
