"""Fetch unit tests: groups, redirects, I-cache stalls, halting."""

from repro.config import default_system
from repro.frontend import BranchPredictor, FetchUnit
from repro.isa import ProgramBuilder
from repro.memory import MemoryHierarchy


def make_fetch(program, warm=True):
    cfg = default_system()
    hierarchy = MemoryHierarchy(cfg)
    predictor = BranchPredictor(cfg.branch)
    fetch = FetchUnit(program, predictor, hierarchy, cfg.core)
    if warm:
        for pc in range(len(program)):
            hierarchy.warm_ifetch(pc * 4)
    return fetch, predictor


def straight_line(n):
    b = ProgramBuilder()
    for _ in range(n):
        b.addi("R1", "R1", 1)
    b.halt()
    return b.build()


def test_fetches_up_to_width():
    fetch, _ = make_fetch(straight_line(20))
    group = fetch.fetch_cycle(now=0)
    assert len(group) == 4
    assert [u.pc for u in group] == [0, 1, 2, 3]


def test_budget_limits_group():
    fetch, _ = make_fetch(straight_line(20))
    assert len(fetch.fetch_cycle(now=0, budget=2)) == 2


def test_taken_branch_ends_group():
    b = ProgramBuilder()
    b.jmp("target")
    b.nop()
    b.label("target")
    b.nop()
    b.halt()
    fetch, _ = make_fetch(b.build())
    group = fetch.fetch_cycle(now=0)
    assert len(group) == 1
    assert group[0].predicted_next_pc == 2
    assert fetch.pc == 2


def test_halt_stops_fetch():
    fetch, _ = make_fetch(straight_line(1))
    group = fetch.fetch_cycle(now=0)
    assert group[-1].inst.is_halt
    assert fetch.halted
    assert fetch.fetch_cycle(now=1) == []


def test_redirect_resumes_fetch():
    fetch, _ = make_fetch(straight_line(10))
    fetch.halted = True
    fetch.redirect(5, at_cycle=10)
    assert fetch.fetch_cycle(now=9) == []   # still stalled
    group = fetch.fetch_cycle(now=10)
    assert group[0].pc == 5


def test_cold_icache_stalls_fetch():
    fetch, _ = make_fetch(straight_line(20), warm=False)
    assert fetch.fetch_cycle(now=0) == []
    assert fetch.stalled_until > 0
    ready = fetch.stalled_until
    assert len(fetch.fetch_cycle(now=ready)) > 0


def test_unknown_indirect_waits_for_redirect():
    b = ProgramBuilder()
    b.jr("R5")
    b.halt()
    fetch, _ = make_fetch(b.build())
    group = fetch.fetch_cycle(now=0)
    assert group[-1].predicted_next_pc == -1
    assert fetch.wait_for_redirect
    assert fetch.fetch_cycle(now=1) == []
    fetch.redirect(1, at_cycle=2)
    assert not fetch.wait_for_redirect


def test_wrong_path_fetch_is_real_instructions():
    # Predicted-taken branch leads fetch to decode the real instructions
    # at the target, whatever they are.
    b = ProgramBuilder()
    b.bne("R1", "R2", "far")
    b.addi("R3", "R3", 1)
    b.label("far")
    b.addi("R4", "R4", 1)
    b.halt()
    fetch, predictor = make_fetch(b.build())
    # Train the predictor taken.
    inst = b._instructions[0]
    for _ in range(8):
        predictor.update(0, inst, True, 2, mispredicted=False)
    group = fetch.fetch_cycle(now=0)
    assert group[0].predicted_taken
    assert fetch.pc == 2


def test_snapshot_attached_to_branches():
    b = ProgramBuilder()
    b.bne("R1", "R2", 0)
    b.halt()
    fetch, _ = make_fetch(b.build())
    group = fetch.fetch_cycle(now=0)
    assert group[0].snapshot is not None


def test_line_ready_map_is_bounded_lru():
    # Walk fetch across three I-cache lines with a cap of two: the map
    # must stay bounded and evict the *oldest* line, not a recent one.
    fetch, _ = make_fetch(straight_line(16 * 4))
    fetch._line_ready_cap = 2
    now = 0
    while fetch.pc < 16 * 2 + 1:   # lines 0, 1 and 2 all touched
        fetch.fetch_cycle(now)
        now += 1
    assert len(fetch._line_ready) <= 2
    assert set(fetch._line_ready) == {1, 2}


def test_line_ready_retouch_refreshes_lru():
    # Re-touching a cached line moves it to the recent end, so the cap
    # evicts the least-recently used line instead.
    fetch, _ = make_fetch(straight_line(16 * 4))
    fetch._line_ready_cap = 2
    fetch._icache_ready(0, now=0)    # line 0
    fetch._icache_ready(16, now=0)   # line 1
    fetch._icache_ready(0, now=0)    # line 0 again: now most recent
    fetch._icache_ready(32, now=0)   # line 2 evicts line 1
    assert set(fetch._line_ready) == {0, 2}


def test_redirect_clears_line_ready():
    fetch, _ = make_fetch(straight_line(40))
    fetch.fetch_cycle(now=0)
    assert fetch._line_ready and fetch._last_line != -1
    fetch.redirect(0, at_cycle=5)
    assert not fetch._line_ready
    assert fetch._last_line == -1


def test_flush_clears_line_ready():
    fetch, _ = make_fetch(straight_line(40))
    fetch.fetch_cycle(now=0)
    fetch.flush()
    assert not fetch._line_ready
    assert fetch._last_line == -1


def test_redirect_reprobes_icache():
    # After a redirect the cached ready cycles are stale; the next fetch
    # must consult the cache hierarchy again rather than the cleared map.
    fetch, _ = make_fetch(straight_line(40))
    fetch.fetch_cycle(now=0)
    before = fetch.hierarchy.l1i.stats.accesses
    fetch.redirect(0, at_cycle=1)
    fetch.fetch_cycle(now=1)
    assert fetch.hierarchy.l1i.stats.accesses > before
