"""Workload suite tests: registry, determinism, kernel structure."""

import pytest

from repro.isa import Interpreter
from repro.workloads import (
    build_workload,
    compute,
    dependent_walk,
    gather,
    hash_probe,
    intensity_of,
    linked_list,
    medium_high_names,
    names_by_intensity,
    region_base,
    streaming,
    workload_names,
)

PAPER_HIGH = {"mcf", "libquantum", "bwaves", "lbm", "sphinx3", "omnetpp",
              "milc", "soplex", "leslie3d", "GemsFDTD"}
PAPER_MEDIUM = {"zeusmp", "cactusADM", "wrf"}


class TestRegistry:
    def test_suite_has_29_benchmarks(self):
        assert len(workload_names()) == 29

    def test_table2_membership(self):
        assert set(names_by_intensity("high")) == PAPER_HIGH
        assert set(names_by_intensity("medium")) == PAPER_MEDIUM
        assert len(names_by_intensity("low")) == 16

    def test_medium_high_is_13(self):
        assert len(medium_high_names()) == 13

    def test_unknown_workload(self):
        with pytest.raises(ValueError, match="unknown workload"):
            build_workload("specjbb")

    def test_every_workload_builds_and_runs(self):
        for name in workload_names():
            wl = build_workload(name)
            interp = Interpreter(wl.program, wl.memory)
            for _ in interp.run(500):
                pass
            assert interp.retired == 500, name
            assert not interp.halted, name  # kernels loop forever

    def test_builds_are_independent(self):
        a = build_workload("mcf")
        b = build_workload("mcf")
        a.memory.store(0, 42)
        assert b.memory.load(0) != 42 or b.memory.load(0) == a.memory.load(0)
        assert a.memory is not b.memory

    def test_determinism(self):
        for name in ("mcf", "omnetpp", "libquantum"):
            runs = []
            for _ in range(2):
                wl = build_workload(name)
                interp = Interpreter(wl.program, wl.memory)
                trace = [op.mem_addr for op in interp.run(2000)
                         if op.mem_addr is not None]
                runs.append(trace)
            assert runs[0] == runs[1], name

    def test_intensity_of(self):
        assert intensity_of("mcf") == "high"
        assert intensity_of("zeusmp") == "medium"
        assert intensity_of("calculix") == "low"


class TestKernelStructure:
    def test_region_bases_disjoint(self):
        assert region_base(1) - region_base(0) >= 32 << 20

    def test_streaming_touches_sequential_lines(self):
        wl = streaming("t", num_arrays=1, array_bytes=1 << 20)
        interp = Interpreter(wl.program, wl.memory)
        addrs = [op.mem_addr for op in interp.run(200)
                 if op.inst.is_load and op.mem_addr is not None]
        deltas = {b - a for a, b in zip(addrs, addrs[1:])}
        assert deltas == {8}

    def test_streaming_segments_jump(self):
        wl = streaming("t", num_arrays=1, segment_elems=16,
                       segment_gap_bytes=4096)
        interp = Interpreter(wl.program, wl.memory)
        addrs = [op.mem_addr for op in interp.run(600)
                 if op.inst.is_load and op.mem_addr is not None]
        deltas = {b - a for a, b in zip(addrs, addrs[1:])}
        assert 8 in deltas
        assert 8 + 4096 in deltas

    def test_gather_dereferences_land_in_data_region(self):
        wl = gather("t", data_region_bytes=1 << 20)
        interp = Interpreter(wl.program, wl.memory)
        derefs = [op.mem_addr for op in interp.run(300)
                  if op.inst.is_load and op.mem_addr is not None
                  and op.mem_addr >= region_base(1)]
        assert derefs
        for addr in derefs:
            assert region_base(1) <= addr < region_base(1) + (1 << 20)

    def test_gather_validates_depth(self):
        with pytest.raises(ValueError):
            gather("t", deref_depth=0)

    def test_dependent_walk_levels(self):
        wl = dependent_walk("t", depth=2,
                            data_region_bytes=[1 << 16, 1 << 20])
        interp = Interpreter(wl.program, wl.memory)
        for _ in interp.run(300):
            pass

    def test_dependent_walk_region_count_mismatch(self):
        with pytest.raises(ValueError):
            dependent_walk("t", depth=2, data_region_bytes=[1 << 16])

    def test_hash_probe_round_cap(self):
        with pytest.raises(ValueError):
            hash_probe("t", hash_rounds=17)

    def test_hash_probe_addresses_in_table(self):
        wl = hash_probe("t", table_bytes=1 << 20)
        interp = Interpreter(wl.program, wl.memory)
        loads = [op.mem_addr for op in interp.run(500)
                 if op.inst.is_load and op.mem_addr is not None]
        assert loads
        for addr in loads:
            assert region_base(0) <= addr < region_base(0) + (1 << 20)

    def test_compute_small_working_set(self):
        wl = compute("t", working_set_bytes=4096)
        interp = Interpreter(wl.program, wl.memory)
        addrs = {op.mem_addr for op in interp.run(5000)
                 if op.mem_addr is not None}
        span = max(addrs) - min(addrs)
        assert span <= 4096

    def test_linked_list_is_circular_permutation(self):
        wl = linked_list("t", num_nodes=64, node_stride=128)
        # Walk the list functionally: must visit all 64 nodes then repeat.
        interp = Interpreter(wl.program, wl.memory)
        visited = []
        for op in interp.run(64 * 4 + 8):  # 4 uops per node
            if op.inst.is_load and op.inst.rd == 1:
                visited.append(op.mem_addr)
        assert len(set(visited)) == 64
        assert len(visited) > 64  # wrapped around (circular)

    def test_streaming_validates_array_count(self):
        with pytest.raises(ValueError):
            streaming("t", num_arrays=0)
        with pytest.raises(ValueError):
            streaming("t", num_arrays=6)

    def test_streaming_validates_segment_power_of_two(self):
        with pytest.raises(ValueError):
            streaming("t", segment_elems=100)
