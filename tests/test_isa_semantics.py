"""Functional semantics tests, including 64-bit wrap-around properties."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import (
    MASK64,
    DataMemory,
    Instruction,
    Opcode,
    alu_result,
    branch_taken,
    branch_target,
    mem_address,
    to_signed,
    to_unsigned,
)

u64 = st.integers(min_value=0, max_value=MASK64)


def _alu(op, a=0, b=0, imm=0):
    return alu_result(Instruction(op, rd=1, rs1=2, rs2=3, imm=imm), a, b)


class TestAluSemantics:
    def test_add_wraps(self):
        assert _alu(Opcode.ADD, MASK64, 1) == 0

    def test_sub_wraps(self):
        assert _alu(Opcode.SUB, 0, 1) == MASK64

    def test_logic_ops(self):
        assert _alu(Opcode.AND, 0b1100, 0b1010) == 0b1000
        assert _alu(Opcode.OR, 0b1100, 0b1010) == 0b1110
        assert _alu(Opcode.XOR, 0b1100, 0b1010) == 0b0110

    def test_shifts_mask_amount(self):
        assert _alu(Opcode.SHL, 1, 64) == 1     # shift amount is mod 64
        assert _alu(Opcode.SHL, 1, 4) == 16
        assert _alu(Opcode.SHR, 256, 4) == 16

    def test_immediates(self):
        assert _alu(Opcode.ADDI, 5, imm=7) == 12
        assert _alu(Opcode.ANDI, 0xFF, imm=0x0F) == 0x0F
        assert _alu(Opcode.LI, imm=42) == 42

    def test_mov(self):
        assert _alu(Opcode.MOV, 99) == 99

    def test_mul_wraps(self):
        assert _alu(Opcode.MUL, 1 << 63, 2) == 0

    def test_div_signed(self):
        minus_six = to_unsigned(-6)
        assert to_signed(_alu(Opcode.DIV, minus_six, 2)) == -3

    def test_div_by_zero_yields_zero(self):
        assert _alu(Opcode.DIV, 10, 0) == 0

    def test_fp_ops_evaluate_as_integers(self):
        assert _alu(Opcode.FADD, 2, 3) == 5
        assert _alu(Opcode.FMUL, 2, 3) == 6

    def test_non_alu_opcode_rejected(self):
        with pytest.raises(ValueError):
            _alu(Opcode.LD)

    @given(a=u64, b=u64)
    def test_results_always_64bit(self, a, b):
        for op in (Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.XOR,
                   Opcode.SHL, Opcode.SHR):
            assert 0 <= _alu(op, a, b) <= MASK64

    @given(a=u64)
    def test_signed_unsigned_roundtrip(self, a):
        assert to_unsigned(to_signed(a)) == a


class TestBranches:
    def _branch(self, op, a, b):
        return branch_taken(Instruction(op, rs1=1, rs2=2, target=9), a, b)

    def test_beq_bne(self):
        assert self._branch(Opcode.BEQ, 4, 4)
        assert not self._branch(Opcode.BEQ, 4, 5)
        assert self._branch(Opcode.BNE, 4, 5)

    def test_blt_bge_are_signed(self):
        minus_one = to_unsigned(-1)
        assert self._branch(Opcode.BLT, minus_one, 0)
        assert self._branch(Opcode.BGE, 0, minus_one)

    def test_target_taken_and_fallthrough(self):
        inst = Instruction(Opcode.BEQ, rs1=1, rs2=2, target=40)
        assert branch_target(inst, 10, 0, taken=True) == 40
        assert branch_target(inst, 10, 0, taken=False) == 11

    def test_indirect_target(self):
        inst = Instruction(Opcode.JR, rs1=1)
        assert branch_target(inst, 10, 1234, taken=True) == 1234

    def test_jmp_and_call_target(self):
        for op in (Opcode.JMP, Opcode.CALL):
            inst = Instruction(op, rd=31, target=7)
            assert branch_target(inst, 0, 0, taken=True) == 7


class TestMemAddress:
    def test_offset(self):
        inst = Instruction(Opcode.LD, rd=1, rs1=2, imm=16)
        assert mem_address(inst, 100) == 116

    def test_negative_offset_wraps(self):
        inst = Instruction(Opcode.LD, rd=1, rs1=2, imm=-8)
        assert mem_address(inst, 0) == MASK64 - 7


class TestDataMemory:
    def test_store_load_roundtrip(self):
        mem = DataMemory()
        mem.store(0x1000, 42)
        assert mem.load(0x1000) == 42

    def test_word_aligned(self):
        mem = DataMemory()
        mem.store(0x1000, 42)
        # Any address within the same 8-byte word reads the same value.
        assert mem.load(0x1003) == 42
        assert mem.load(0x1007) == 42

    def test_uninitialized_is_deterministic_junk(self):
        a = DataMemory()
        b = DataMemory()
        assert a.load(0x5000) == b.load(0x5000)
        assert a.load(0x5000) != a.load(0x5008)

    def test_zero_fill_mode(self):
        mem = DataMemory(default_fill="zero")
        assert mem.load(0x9999) == 0

    def test_bad_fill_mode(self):
        with pytest.raises(ValueError):
            DataMemory(default_fill="random")

    def test_values_masked_to_64bit(self):
        mem = DataMemory()
        mem.store(0, 1 << 70)
        assert mem.load(0) == ((1 << 70) & MASK64)

    @given(addr=st.integers(min_value=0, max_value=2**48), value=u64)
    def test_roundtrip_property(self, addr, value):
        mem = DataMemory()
        mem.store(addr, value)
        assert mem.load(addr) == value

    def test_len_and_snapshot(self):
        mem = DataMemory()
        mem.store(0, 1)
        mem.store(64, 2)
        assert len(mem) == 2
        assert mem.snapshot() == {0: 1, 8: 2}
