"""Lane-identity gate: sampled runs must not care which fast-forward
lane warmed the gaps.

``simulate(..., ff_lane="interp")`` and ``ff_lane="jit"`` must hand the
detailed bursts exactly the same warmed state, so ``SimStats`` — every
counter, the estimates, the energy report — comes out byte-identical.
This is the CI gate for the lane contract; the instruction-level
differential lives in ``test_warmup_parity.py``.
"""

from __future__ import annotations

import json

import pytest

from repro.config import SamplingConfig, build_named_config
from repro.core.sim import simulate

# A plan with several fast-forward gaps inside the budget, so lane
# divergence anywhere (caches, predictor, memory, architectural state)
# would desynchronize a later burst and show up in the stats.
PLAN = SamplingConfig(tier="two-level", ramp_instructions=300,
                      window_instructions=900, stride_instructions=6_000)

CELLS = [
    ("mcf", "baseline"),
    ("mcf", "rab_cc"),
    ("milc", "baseline"),
    ("milc", "rab_cc"),
    ("libquantum", "baseline"),
    ("lbm", "rab_cc"),
]


def _stats_blob(workload, config_name, lane):
    result = simulate(workload, build_named_config(config_name),
                      max_instructions=30_000, warmup_instructions=8_000,
                      sampling=PLAN, ff_lane=lane)
    # Wall-clock fields are the only legitimately lane-dependent part of
    # the run; everything else must match to the byte.
    sampling = {k: v for k, v in result.sampling.items()
                if "seconds" not in k and k != "ff_lane"}
    return json.dumps({"stats": result.stats.to_dict(),
                       "sampling": sampling},
                      sort_keys=True)


@pytest.mark.parametrize("workload,config_name", CELLS,
                         ids=[f"{w}-{c}" for w, c in CELLS])
def test_sampled_stats_identical_across_lanes(workload, config_name):
    interp = _stats_blob(workload, config_name, "interp")
    jit = _stats_blob(workload, config_name, "jit")
    assert interp == jit
