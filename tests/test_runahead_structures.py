"""Runahead cache, chain cache, and runahead buffer tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import Instruction, Opcode
from repro.runahead import ChainCache, ChainUop, RunaheadBuffer, RunaheadCache


def chain_of(n, opcode=Opcode.ADDI):
    return tuple(
        ChainUop(pc, Instruction(opcode, rd=1, rs1=1, imm=pc))
        for pc in range(n)
    )


class TestRunaheadCache:
    def test_write_read_roundtrip(self):
        rc = RunaheadCache()
        rc.write(0x1000, 42)
        assert rc.read(0x1000) == 42
        assert rc.hits == 1

    def test_miss(self):
        rc = RunaheadCache()
        assert rc.read(0x1000) is None
        assert rc.misses == 1

    def test_word_granularity(self):
        rc = RunaheadCache()
        rc.write(0x1000, 1)
        rc.write(0x1008, 2)
        assert rc.read(0x1000) == 1
        assert rc.read(0x1008) == 2

    def test_capacity_by_set(self):
        rc = RunaheadCache(size_bytes=64, assoc=2, line_bytes=8)
        # 4 sets x 2 ways; 3 conflicting words in one set evict the LRU.
        rc.write(0 * 8, 10)      # set 0
        rc.write(4 * 8, 20)      # set 0
        rc.write(8 * 8, 30)      # set 0 -> evicts word 0
        assert rc.read(0) is None
        assert rc.read(4 * 8) == 20
        assert rc.read(8 * 8) == 30

    def test_clear(self):
        rc = RunaheadCache()
        rc.write(0x1000, 42)
        rc.clear()
        assert rc.read(0x1000) is None

    def test_overwrite(self):
        rc = RunaheadCache()
        rc.write(0x1000, 1)
        rc.write(0x1000, 2)
        assert rc.read(0x1000) == 2

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            RunaheadCache(size_bytes=8, assoc=4, line_bytes=8)

    @given(writes=st.lists(
        st.tuples(st.integers(0, 1023), st.integers(0, 2**32)),
        min_size=1, max_size=64))
    @settings(max_examples=40, deadline=None)
    def test_read_never_returns_stale_garbage(self, writes):
        """A hit must return the most recent write to that word."""
        rc = RunaheadCache()
        latest = {}
        for addr, value in writes:
            rc.write(addr, value)
            latest[addr >> 3] = value
        for addr, _ in writes:
            got = rc.read(addr)
            if got is not None:
                assert got == latest[addr >> 3]


class TestChainCache:
    def test_insert_lookup(self):
        cc = ChainCache(entries=2)
        chain = chain_of(4)
        cc.insert(100, chain)
        assert cc.lookup(100) == chain
        assert cc.hits == 1

    def test_miss(self):
        cc = ChainCache()
        assert cc.lookup(5) is None
        assert cc.misses == 1

    def test_lru_eviction(self):
        cc = ChainCache(entries=2)
        cc.insert(1, chain_of(1))
        cc.insert(2, chain_of(2))
        cc.lookup(1)                  # refresh 1
        cc.insert(3, chain_of(3))     # evicts 2
        assert cc.lookup(2) is None
        assert cc.lookup(1) is not None
        assert cc.lookup(3) is not None

    def test_no_path_associativity(self):
        """One chain per PC: a new insert replaces the old chain."""
        cc = ChainCache(entries=2)
        cc.insert(7, chain_of(2))
        cc.insert(7, chain_of(5))
        assert len(cc) == 1
        assert len(cc.lookup(7)) == 5

    def test_hit_rate(self):
        cc = ChainCache()
        cc.insert(1, chain_of(1))
        cc.lookup(1)
        cc.lookup(2)
        assert cc.hit_rate == pytest.approx(0.5)

    def test_zero_entries_rejected(self):
        with pytest.raises(ValueError):
            ChainCache(entries=0)


class TestRunaheadBuffer:
    def test_load_and_loop(self):
        rab = RunaheadBuffer(capacity_uops=8)
        chain = chain_of(3)
        rab.load_chain(chain)
        out = rab.next_uops(7)
        expected = [chain[i % 3] for i in range(7)]
        assert out == expected
        assert rab.iterations_started == 3

    def test_peek_does_not_advance(self):
        rab = RunaheadBuffer()
        rab.load_chain(chain_of(2))
        first = rab.peek()
        assert rab.peek() == first
        assert rab.next_uops(1)[0] == first

    def test_capacity_enforced(self):
        rab = RunaheadBuffer(capacity_uops=4)
        with pytest.raises(ValueError):
            rab.load_chain(chain_of(5))

    def test_empty_chain_rejected(self):
        rab = RunaheadBuffer()
        with pytest.raises(ValueError):
            rab.load_chain(())

    def test_deactivate(self):
        rab = RunaheadBuffer()
        rab.load_chain(chain_of(2))
        rab.deactivate()
        assert not rab.active
        assert rab.next_uops(4) == []

    def test_peek_empty_raises(self):
        rab = RunaheadBuffer()
        with pytest.raises(RuntimeError):
            rab.peek()

    def test_reload_resets_cursor(self):
        rab = RunaheadBuffer()
        rab.load_chain(chain_of(3))
        rab.next_uops(2)
        rab.load_chain(chain_of(2))
        assert rab.peek().pc == 0
