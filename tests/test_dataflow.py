"""Dataflow tracker unit tests (the analytics behind Figs 2-5)."""

from repro.core.dataflow import DataflowTracker
from repro.core.stats import ChainAnalysis


def note(tracker, seq, pc, producers=(), miss=False, runahead=False):
    tracker.note_exec(seq, pc, tuple(producers), miss, runahead)


class TestFig2Classification:
    def test_independent_miss_is_onchip(self):
        t = DataflowTracker()
        note(t, 0, 10)            # an ALU producer
        note(t, 1, 11, producers=[0], miss=True)
        assert t.classify_demand_miss(1, (0,))
        assert t.analysis.misses_source_onchip == 1

    def test_miss_dependent_miss_is_offchip(self):
        t = DataflowTracker()
        note(t, 0, 10, miss=True)          # a missing load
        note(t, 1, 11, producers=[0])      # address math from its data
        assert not t.classify_demand_miss(2, (1,))
        assert t.analysis.misses_source_offchip == 1

    def test_deep_slice_traversal(self):
        t = DataflowTracker()
        note(t, 0, 1, miss=True)
        for seq in range(1, 10):
            note(t, seq, seq + 1, producers=[seq - 1])
        assert not t.classify_demand_miss(10, (9,))

    def test_unknown_producers_ignored(self):
        t = DataflowTracker()
        assert t.classify_demand_miss(5, (-1, 999))


class TestIntervalChains:
    def _interval_with_two_misses(self):
        t = DataflowTracker()
        t.begin_interval()
        # Iteration 1: induction (pc 0) -> load (pc 1, miss).
        note(t, 0, 0, runahead=True)
        note(t, 1, 1, producers=[0], miss=True, runahead=True)
        # Filler not on any chain.
        note(t, 2, 5, runahead=True)
        # Iteration 2: same static chain.
        note(t, 3, 0, producers=[0], runahead=True)
        note(t, 4, 1, producers=[3], miss=True, runahead=True)
        t.end_interval()
        return t.analysis

    def test_repeated_chain_detected(self):
        analysis = self._interval_with_two_misses()
        assert analysis.unique_chains == 1
        assert analysis.repeated_chains == 1
        assert analysis.repeated_fraction == 0.5

    def test_chain_length_is_one_loop_body(self):
        analysis = self._interval_with_two_misses()
        assert analysis.mean_chain_length == 2.0

    def test_ops_on_chain_fraction(self):
        analysis = self._interval_with_two_misses()
        # 4 of 5 executed ops are on some chain (the filler is not).
        assert analysis.runahead_ops_executed == 5
        assert analysis.runahead_ops_on_chains == 4
        assert abs(analysis.chain_op_fraction - 0.8) < 1e-9

    def test_slice_stops_at_repeated_static_pc(self):
        t = DataflowTracker()
        t.begin_interval()
        # A long induction history: pc 0 executed 10 times.
        note(t, 0, 0, runahead=True)
        for seq in range(1, 10):
            note(t, seq, 0, producers=[seq - 1], runahead=True)
        note(t, 10, 1, producers=[9], miss=True, runahead=True)
        t.end_interval()
        # Chain = miss + ONE induction instance, not all ten.
        assert t.analysis.mean_chain_length == 2.0

    def test_non_runahead_ops_excluded(self):
        t = DataflowTracker()
        t.begin_interval()
        note(t, 0, 0, runahead=False)   # normal-mode op
        note(t, 1, 1, miss=True, runahead=True)
        t.end_interval()
        assert t.analysis.runahead_ops_executed == 1

    def test_end_without_begin_is_noop(self):
        t = DataflowTracker()
        t.end_interval()
        assert t.analysis.chain_count == 0

    def test_window_bounded(self):
        t = DataflowTracker()
        for seq in range(10_000):
            note(t, seq, seq % 7)
        assert len(t._records) <= 8192


class TestChainAnalysisDerived:
    def test_empty_defaults(self):
        a = ChainAnalysis()
        assert a.source_onchip_fraction == 1.0
        assert a.chain_op_fraction == 0.0
        assert a.repeated_fraction == 0.0
        assert a.mean_chain_length == 0.0

    def test_to_dict(self):
        a = ChainAnalysis(misses_source_onchip=3, misses_source_offchip=1)
        d = a.to_dict()
        assert d["source_onchip_fraction"] == 0.75
