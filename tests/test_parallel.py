"""Process-parallel runner tests: fan-out, merging, determinism."""

import json
from types import SimpleNamespace

import pytest

from repro.analysis import ExperimentMatrix
from repro.analysis.parallel import (
    CellSpec,
    SimSpec,
    resolve_jobs,
    simulate_cells,
    simulate_configs,
)
from repro.config import make_config

WORKLOADS = ["calculix", "mcf"]
CONFIGS = ["baseline", "runahead"]
BUDGET = dict(instructions=400, warmup=500)


class TestResolveJobs:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_JOBS", "5")
        assert resolve_jobs() == 5

    def test_defaults_to_at_least_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_JOBS", raising=False)
        assert resolve_jobs() >= 1
        assert resolve_jobs(0) == 1
        assert resolve_jobs(-4) == 1


class TestFanOut:
    def test_simulate_cells_matches_matrix_get(self):
        spec = CellSpec("calculix", "baseline", False, 400, 500)
        (stats,) = simulate_cells([spec], jobs=1)
        matrix = ExperimentMatrix(cache_path=None, **BUDGET)
        assert stats == matrix.get("calculix", "baseline")

    def test_pool_preserves_submission_order(self):
        specs = [SimSpec(name, make_config(), 400, 500, name)
                 for name in WORKLOADS]
        parallel = simulate_configs(specs, jobs=2)
        serial = simulate_configs(specs, jobs=1)
        assert parallel == serial

    def test_progress_callback_fires_per_cell(self):
        specs = [CellSpec(w, "baseline", False, 400, 500) for w in WORKLOADS]
        seen = []
        simulate_cells(specs, jobs=1,
                       progress=lambda spec, done, total:
                       seen.append((spec.label, done, total)))
        assert seen == [("calculix/baseline", 1, 2), ("mcf/baseline", 2, 2)]


class TestMatrixPrefetch:
    def test_serial_and_parallel_results_byte_identical(self, tmp_path):
        serial = ExperimentMatrix(cache_path=tmp_path / "serial.json",
                                  **BUDGET)
        serial.run_suite(CONFIGS, workloads=WORKLOADS, jobs=1)
        parallel = ExperimentMatrix(cache_path=tmp_path / "parallel.json",
                                    **BUDGET)
        parallel.run_suite(CONFIGS, workloads=WORKLOADS, jobs=2)
        assert (json.dumps(serial._results, sort_keys=True)
                == json.dumps(parallel._results, sort_keys=True))

    def test_prefetch_skips_cached_cells(self, tmp_path):
        matrix = ExperimentMatrix(cache_path=tmp_path / "c.json", **BUDGET)
        assert matrix.prefetch([("calculix", "baseline", False)]) == 1
        assert matrix.prefetch([("calculix", "baseline", False)]) == 0

    def test_prefetch_flushes_cache_once(self, tmp_path):
        path = tmp_path / "c.json"
        matrix = ExperimentMatrix(cache_path=path, **BUDGET)
        matrix.prefetch([("calculix", "baseline", False)])
        reloaded = ExperimentMatrix(cache_path=path, **BUDGET)
        assert reloaded.is_cached("calculix", "baseline")

    def test_missing_cells_drops_plain_when_chains_requested(self):
        matrix = ExperimentMatrix(cache_path=None, **BUDGET)
        missing = matrix.missing_cells([
            ("calculix", "baseline", False),
            ("calculix", "baseline", True),
            ("calculix", "baseline", False),
        ])
        assert missing == [("calculix", "baseline", True)]

    def test_missing_cells_respects_chain_superset_in_cache(self):
        matrix = ExperimentMatrix(cache_path=None, **BUDGET)
        matrix.store("calculix", "baseline", True, {"ipc": 1.0})
        assert matrix.missing_cells([("calculix", "baseline", False)]) == []
        assert matrix.missing_cells([("mcf", "baseline", False)]) == [
            ("mcf", "baseline", False)]


class TestSweepParallel:
    def _fake_simulate(self, calls):
        def fake(workload, config, max_instructions=0,
                 warmup_instructions=0, config_name=""):
            calls.append((workload, max_instructions, warmup_instructions))
            stats = SimpleNamespace(to_dict=lambda: {"ipc": 1.0})
            return SimpleNamespace(stats=stats)
        return fake

    def test_run_sweep_honors_env_budgets(self, monkeypatch):
        from repro.analysis.sweeps import run_sweep
        monkeypatch.setenv("REPRO_BENCH_INSTS", "123")
        monkeypatch.setenv("REPRO_BENCH_WARMUP", "45")
        calls = []
        monkeypatch.setattr("repro.core.simulate",
                            self._fake_simulate(calls))
        run_sweep(lambda n: make_config(), [1, 2], benches=("mcf",), jobs=1)
        assert calls  # baseline + one run per value
        assert all(insts == 123 and warmup == 45
                   for _, insts, warmup in calls)

    def test_run_sweep_explicit_budgets_beat_env(self, monkeypatch):
        from repro.analysis.sweeps import run_sweep
        monkeypatch.setenv("REPRO_BENCH_INSTS", "123")
        monkeypatch.setenv("REPRO_BENCH_WARMUP", "45")
        calls = []
        monkeypatch.setattr("repro.core.simulate",
                            self._fake_simulate(calls))
        run_sweep(lambda n: make_config(), [1], benches=("mcf",),
                  instructions=77, warmup=88, jobs=1)
        assert calls == [("mcf", 77, 88), ("mcf", 77, 88)]
