"""Commit trace and interval timeline tests."""

import pytest

from repro.config import RunaheadMode, default_system, make_config
from repro.core import CommitTrace, Processor, render_interval_timeline
from repro.runahead import IntervalRecord
from repro.workloads import gather

from util import build_counted_loop


class TestCommitTrace:
    def test_records_commits_in_order(self):
        proc = Processor(build_counted_loop(10), default_system())
        trace = CommitTrace(capacity=1000)
        proc.commit_hook = trace.on_commit
        stats = proc.run(1000)
        assert trace.total_commits == stats.committed_insts
        seqs = [op.seq for op in trace.entries]
        assert seqs == sorted(seqs)

    def test_capacity_bounded(self):
        proc = Processor(build_counted_loop(100), default_system())
        trace = CommitTrace(capacity=16)
        proc.commit_hook = trace.on_commit
        proc.run(10_000)
        assert len(trace) == 16
        assert trace.total_commits > 16

    def test_trace_is_architectural_path_only(self):
        """Squashed wrong-path uops must never appear in the trace."""
        wl = gather("t_trace", deref_depth=1)
        proc = Processor(wl.program, make_config(RunaheadMode.BUFFER),
                         memory=wl.memory)
        trace = CommitTrace(capacity=100_000)
        proc.commit_hook = trace.on_commit
        stats = proc.run(1500)
        assert stats.rab_intervals > 0
        # Committed PCs must all be real program PCs on the committed path;
        # compare against the reference interpreter.
        from repro.isa import Interpreter
        ref = gather("t_trace", deref_depth=1)
        interp = Interpreter(ref.program, ref.memory)
        ref_pcs = [op.pc for op in interp.run(trace.total_commits)]
        assert trace.pcs() == ref_pcs[-len(trace.entries):]

    def test_format(self):
        proc = Processor(build_counted_loop(5), default_system())
        trace = CommitTrace()
        proc.commit_hook = trace.on_commit
        proc.run(100)
        text = trace.format(5)
        assert "cycle" in text
        assert "ADDI" in text or "BNE" in text

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            CommitTrace(capacity=0)

    def test_capacity_one_keeps_latest_commit(self):
        proc = Processor(build_counted_loop(50), default_system())
        trace = CommitTrace(capacity=1)
        proc.commit_hook = trace.on_commit
        stats = proc.run(500)
        assert len(trace) == 1
        assert trace.total_commits == stats.committed_insts
        # The surviving entry is the newest one, and every accessor
        # agrees on the single-element view.
        (op,) = trace.entries
        assert op.seq == max(op.seq for op in trace.last(100))
        assert trace.pcs() == [op.pc]
        assert trace.format(5).count("\n") == 1  # header + one row

    def test_rollover_keeps_most_recent_window(self):
        proc = Processor(build_counted_loop(100), default_system())
        small = CommitTrace(capacity=8)
        proc.commit_hook = small.on_commit
        proc.run(2000)
        proc2 = Processor(build_counted_loop(100), default_system())
        full = CommitTrace(capacity=100_000)
        proc2.commit_hook = full.on_commit
        proc2.run(2000)
        assert small.total_commits == full.total_commits
        assert [op.seq for op in small.entries] == \
            [op.seq for op in full.entries][-8:]

    def test_last_n(self):
        proc = Processor(build_counted_loop(20), default_system())
        trace = CommitTrace()
        proc.commit_hook = trace.on_commit
        proc.run(1000)
        assert len(trace.last(3)) == 3


class TestIntervalTimeline:
    def _record(self, kind, entry, exit_cycle, misses=0):
        r = IntervalRecord(kind=kind, entry_cycle=entry)
        r.exit_cycle = exit_cycle
        r.misses_generated = misses
        return r

    def test_marks_modes(self):
        timeline = render_interval_timeline(
            [self._record("buffer", 0, 100),
             self._record("traditional", 500, 600)],
            total_cycles=1000, width=40)
        lane = timeline.split("\n")[1]
        assert "B" in lane and "T" in lane and "." in lane

    def test_empty_run(self):
        assert render_interval_timeline([], 0) == "(empty run)"

    def test_zero_intervals_with_cycles(self):
        """A real run that never entered runahead: all-normal lane."""
        timeline = render_interval_timeline([], total_cycles=500, width=40)
        lane = timeline.split("\n")[1]
        assert lane == "." * 40
        assert "0 intervals (0 buffer, 0 traditional)" in timeline

    def test_single_cycle_interval(self):
        """entry == exit must render one mark, not crash or mark nothing."""
        timeline = render_interval_timeline(
            [self._record("buffer", 250, 250)], total_cycles=1000, width=40)
        lane = timeline.split("\n")[1]
        assert lane.count("B") == 1
        assert "cycles 250..250 (0)" in timeline

    def test_interval_at_final_cycle_stays_in_lane(self):
        timeline = render_interval_timeline(
            [self._record("traditional", 999, 1000)],
            total_cycles=1000, width=40)
        lane = timeline.split("\n")[1]
        assert lane[-1] == "T"
        assert len(lane) == 40

    def test_summary_counts(self):
        timeline = render_interval_timeline(
            [self._record("buffer", 0, 10),
             self._record("buffer", 20, 30),
             self._record("traditional", 40, 50)],
            total_cycles=100)
        assert "3 intervals (2 buffer, 1 traditional)" in timeline

    def test_interval_details_listed(self):
        timeline = render_interval_timeline(
            [self._record("buffer", 5, 25, misses=7)], total_cycles=100)
        assert "misses=7" in timeline
