"""Observability-layer suite: zero cost when off, cycle-identical when on.

Three guarantees:

* **Overhead guard** — an untraced processor carries *none* of the
  tracer's instance-attribute shadows, so the flattened hot path never
  consults observability code; and a fully-traced run (every event kind
  plus a stride-1 occupancy sampler) produces bit-identical SimStats to
  an untraced run on a workload x config grid.
* **Schema** — every emitted event validates against
  ``repro.obs.EVENT_SCHEMAS``, and every seam actually fires.
* **Snapshots** — the Perfetto export and occupancy CSV for one pinned
  run match golden files (regenerate intentionally with
  ``REPRO_REGEN_GOLDEN=1``).
"""

from __future__ import annotations

import io
import json
import os
from pathlib import Path

import pytest

from repro.config import build_named_config
from repro.core import Processor, simulate
from repro.obs import (
    EVENT_KINDS,
    EVENT_SCHEMAS,
    EventTrace,
    MetricsRegistry,
    OccupancySampler,
    TraceEvent,
    Tracer,
    default_registry,
    export_perfetto,
    run_traced,
    validate_event,
)
from repro.workloads import build_workload

GOLDEN_DIR = Path(__file__).parent / "golden"
REGEN = os.environ.get("REPRO_REGEN_GOLDEN") == "1"

INSTRUCTIONS = 2_000
WARMUP = 1_500

# Derived floats and free-form metadata, as in test_cycle_equivalence.
_SKIP_KEYS = frozenset({
    "workload", "config_name", "energy_report", "ipc", "mpki",
    "memstall_fraction", "branch_accuracy", "rab_cycle_fraction",
    "runahead_cycle_fraction", "hybrid_rab_share", "chain_cache_hit_rate",
    "chain_cache_exact_fraction", "misses_per_interval", "total_energy_j",
})


def _canonical(stats) -> dict:
    return {k: v for k, v in stats.to_dict().items() if k not in _SKIP_KEYS}


def _traced(workload: str, config: str, **kwargs):
    return run_traced(workload, config, max_instructions=INSTRUCTIONS,
                      warmup_instructions=WARMUP, **kwargs)


# ---------------------------------------------------------------------------
# Overhead guard
# ---------------------------------------------------------------------------

# mcf exercises runahead + chain cache + DRAM heavily; the _pf config
# additionally exercises the prefetcher seams.
IDENTITY_GRID = [
    ("mcf", "runahead"),
    ("mcf", "rab_cc"),
    ("mcf", "hybrid"),
    ("mcf", "hybrid_pf"),
    ("omnetpp", "hybrid"),
]


@pytest.mark.parametrize("workload,config", IDENTITY_GRID)
def test_traced_run_cycle_identical(workload, config):
    plain = simulate(workload, build_named_config(config),
                     max_instructions=INSTRUCTIONS,
                     warmup_instructions=WARMUP)
    traced = _traced(workload, config, occupancy_stride=1)
    assert _canonical(traced.stats) == _canonical(plain.stats), \
        f"tracing perturbed the simulation of {workload}/{config}"
    assert traced.trace.total_emitted > 0
    assert len(traced.samples) > 0


def test_untraced_processor_carries_no_obs_attributes():
    """The zero-cost claim: without a tracer, none of the methods the
    tracer would shadow exist in any instance ``__dict__`` — attribute
    lookup goes straight to the class, exactly as before repro.obs."""
    built = build_workload("mcf")
    proc = Processor(built.program, build_named_config("hybrid_pf"),
                     memory=built.memory, init_regs=built.init_regs)
    shadow_points = [
        (proc, ("_step", "_enter_traditional", "_enter_rab",
                "_exit_runahead", "_generate_chain",
                "_ff_translate_hook", "_ckpt_hook")),
        (proc.fetch, ("redirect",)),
        (proc.chain_cache, ("lookup",)),
        (proc.hierarchy, ("_issue_prefetches",)),
        (proc.hierarchy.controller, ("request",)),
        (proc.hierarchy.prefetcher, ("record_useful",
                                     "record_unused_eviction", "_feedback")),
    ]
    for obj, names in shadow_points:
        for name in names:
            assert name not in vars(obj), \
                f"{type(obj).__name__}.{name} shadowed without a tracer"


def test_detach_restores_untraced_state():
    built = build_workload("mcf")
    proc = Processor(built.program, build_named_config("hybrid_pf"),
                     memory=built.memory, init_regs=built.init_regs)
    tracer = Tracer(sampler=OccupancySampler(8))
    tracer.attach(proc)
    assert "_exit_runahead" in vars(proc)
    assert "_step" in vars(proc)
    with pytest.raises(RuntimeError):
        tracer.attach(proc)  # double attach
    tracer.detach()
    assert "redirect" not in vars(proc.fetch)
    for name in ("_step", "_exit_runahead", "_generate_chain",
                 "_enter_traditional", "_enter_rab", "_ff_translate_hook",
                 "_ckpt_hook"):
        assert name not in vars(proc)
    assert "request" not in vars(proc.hierarchy.controller)
    assert "_feedback" not in vars(proc.hierarchy.prefetcher)


# ---------------------------------------------------------------------------
# Event semantics and schemas
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def hybrid_run():
    return _traced("mcf", "hybrid", occupancy_stride=16)


def test_every_event_validates(hybrid_run):
    hybrid_run.trace.validate()  # raises on any schema violation
    pf_run = _traced("mcf", "hybrid_pf")
    pf_run.trace.validate()


def test_core_seams_fire(hybrid_run):
    counts = hybrid_run.trace.counts
    for kind in ("fetch_redirect", "runahead_enter", "runahead_exit",
                 "chain_extract", "chain_cache", "dram"):
        assert counts[kind] > 0, f"no {kind} events on mcf/hybrid"
    # Enter/exit pair up and agree with the model's own interval count.
    assert counts["runahead_enter"] == counts["runahead_exit"]
    assert counts["runahead_exit"] == hybrid_run.stats.runahead_intervals


def test_prefetch_seams_fire():
    run = _traced("mcf", "hybrid_pf")
    assert run.trace.counts["prefetch_issue"] > 0
    assert run.trace.counts["prefetch_resolve"] > 0
    assert run.trace.counts["prefetch_issue"] == run.stats.prefetches_issued


def test_fdp_window_seam():
    """The FDP feedback seam is rarely hit in tiny runs; drive the shadow
    directly through the attached instance to pin its payload."""
    built = build_workload("mcf")
    proc = Processor(built.program, build_named_config("hybrid_pf"),
                     memory=built.memory, init_regs=built.init_regs)
    tracer = Tracer(kinds=["fdp_window"])
    tracer.attach(proc)
    prefetcher = proc.hierarchy.prefetcher
    # A closed window with perfect accuracy: throttle up.
    prefetcher._interval_issued = prefetcher.config.fdp_interval
    prefetcher._interval_useful = prefetcher.config.fdp_interval
    prefetcher._feedback()
    (event,) = tracer.trace.events("fdp_window")
    validate_event(event)
    assert event.data["action"] == "up"
    assert event.data["accuracy"] == 1.0
    # An open window (too few resolved): hold.
    prefetcher._interval_issued = prefetcher.config.fdp_interval
    prefetcher._feedback()
    assert tracer.trace.events("fdp_window")[-1].data["action"] == "hold"


def test_ff_block_translate_seam():
    """Jit fast-forward translations emit through the tracer seam.

    ``warmup_instructions=0`` so the first translations happen inside
    the traced two-level run rather than in pre-attach warm-up."""
    from repro.config import SamplingConfig

    plan = SamplingConfig(tier="two-level", ramp_instructions=300,
                          window_instructions=900,
                          stride_instructions=4_000)
    tracer = Tracer(kinds=["ff.block_translate"])
    result = simulate("mcf", build_named_config("hybrid"),
                      max_instructions=20_000, warmup_instructions=0,
                      attach=tracer.attach, sampling=plan, ff_lane="jit")
    events = tracer.trace.events("ff.block_translate")
    assert events, "no translation events from a cold two-level run"
    program_len = len(build_workload("mcf").program.instructions)
    for event in events:
        validate_event(event)
        assert 0 <= event.data["pc"] < program_len
        assert event.data["length"] >= 1
    # mcf is one hot loop: at least one region is loop-shaped.
    assert any(e.data["loop"] for e in events)
    # One event per translation, not per execution: far fewer events
    # than fast-forwarded instructions.
    assert len(events) < 50
    assert result.sampling["translate_seconds"] > 0.0
    tracer.detach()


def test_ff_block_translate_silent_on_interp_lane():
    from repro.config import SamplingConfig

    plan = SamplingConfig(tier="two-level", ramp_instructions=300,
                          window_instructions=900,
                          stride_instructions=4_000)
    tracer = Tracer(kinds=["ff.block_translate"])
    simulate("mcf", build_named_config("hybrid"),
             max_instructions=20_000, warmup_instructions=0,
             attach=tracer.attach, sampling=plan, ff_lane="interp")
    assert tracer.trace.counts["ff.block_translate"] == 0
    tracer.detach()


def test_ckpt_seams_fire(tmp_path):
    """The live-point engine's checkpoint hook emits one ckpt.save per
    stride boundary on a cold store and one ckpt.restore per boundary on
    a warm one."""
    from repro.config import SamplingConfig
    from repro.fastpath import CheckpointPlan, CheckpointStore

    plan = SamplingConfig(tier="two-level", ramp_instructions=300,
                          window_instructions=900,
                          stride_instructions=4_000)
    store = CheckpointStore(tmp_path)

    cold = Tracer(kinds=["ckpt.save", "ckpt.restore"])
    simulate("mcf", build_named_config("hybrid"),
             max_instructions=20_000, warmup_instructions=1_000,
             attach=cold.attach, sampling=plan,
             checkpoints=CheckpointPlan(store=store))
    saves = cold.trace.events("ckpt.save")
    for event in saves:
        validate_event(event)
    assert [e.data["position"] for e in saves] == \
        [0, 4_000, 8_000, 12_000, 16_000]
    assert saves[0].data["store"] is False  # entry snapshot: free, not stored
    assert all(e.data["store"] for e in saves[1:])
    assert cold.trace.counts["ckpt.restore"] == 0
    cold.detach()

    warm = Tracer(kinds=["ckpt.save", "ckpt.restore"])
    simulate("mcf", build_named_config("hybrid"),
             max_instructions=20_000, warmup_instructions=1_000,
             attach=warm.attach, sampling=plan,
             checkpoints=CheckpointPlan(store=store))
    restores = warm.trace.events("ckpt.restore")
    for event in restores:
        validate_event(event)
    assert [e.data["position"] for e in restores] == \
        [4_000, 8_000, 12_000, 16_000]
    assert all(e.data["store"] for e in restores)
    assert warm.trace.counts["ckpt.save"] == 1  # only the entry snapshot
    warm.detach()


def test_ckpt_kind_selection():
    """Each ckpt kind is gated independently; drive the hook directly to
    pin the per-kind flags (as test_fdp_window_seam does for FDP)."""
    built = build_workload("mcf")
    proc = Processor(built.program, build_named_config("hybrid"),
                     memory=built.memory, init_regs=built.init_regs)
    tracer = Tracer(kinds=["ckpt.restore"])
    tracer.attach(proc)
    proc._ckpt_hook("save", 0, False)
    proc._ckpt_hook("restore", 4_000, True)
    assert set(tracer.trace.counts) == {"ckpt.restore"}
    tracer.detach()
    saver = Tracer(kinds=["ckpt.save"])
    saver.attach(proc)
    proc._ckpt_hook("save", 0, True)
    proc._ckpt_hook("restore", 4_000, True)
    assert set(saver.trace.counts) == {"ckpt.save"}
    saver.detach()


def test_perfetto_ckpt_instants():
    trace = EventTrace()
    trace.emit("ckpt.save", 0, position=0, store=False)
    trace.emit("ckpt.restore", 0, position=4_000, store=True)
    doc = export_perfetto(trace)
    instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
    assert [e["name"] for e in instants] == ["ckpt_save", "ckpt_restore"]
    assert instants[1]["args"]["position"] == 4_000


def test_runahead_exit_payload(hybrid_run):
    for event in hybrid_run.trace.events("runahead_exit"):
        assert event.data["entry_cycle"] <= event.cycle
        assert event.data["mode"] in ("traditional", "buffer")
    total = sum(e.data["misses_generated"]
                for e in hybrid_run.trace.events("runahead_exit"))
    assert total == hybrid_run.stats.runahead_misses_generated


def test_dram_payload(hybrid_run):
    config = build_named_config("hybrid")
    for event in hybrid_run.trace.events("dram"):
        assert event.data["done_cycle"] > event.cycle
        assert 0 <= event.data["channel"] < config.dram.channels
        assert 0 <= event.data["bank"] < config.dram.banks_per_channel
        assert 0 <= event.data["queue"] <= config.dram.queue_entries


def test_validate_event_rejects_bad_payloads():
    ok = TraceEvent("prefetch_issue", 5, {"line": 7})
    validate_event(ok)
    with pytest.raises(ValueError, match="unknown event kind"):
        validate_event(TraceEvent("nonsense", 0, {}))
    with pytest.raises(ValueError, match="missing"):
        validate_event(TraceEvent("prefetch_issue", 5, {}))
    with pytest.raises(ValueError, match="extra"):
        validate_event(TraceEvent("prefetch_issue", 5,
                                  {"line": 7, "bogus": 1}))
    # bool is an int subclass; exact-type matching must reject it.
    with pytest.raises(ValueError, match="expected int"):
        validate_event(TraceEvent("prefetch_issue", 5, {"line": True}))
    with pytest.raises(ValueError, match="bad cycle"):
        validate_event(TraceEvent("prefetch_issue", -1, {"line": 7}))


def test_event_kind_selection_and_errors():
    with pytest.raises(ValueError, match="unknown event kind"):
        Tracer(kinds=["dram", "bogus"])
    run = _traced("mcf", "hybrid", kinds=["dram"])
    assert set(run.trace.counts) == {"dram"}


def test_ring_buffer_rollover():
    run = _traced("mcf", "hybrid", capacity=16)
    trace = run.trace
    assert trace.total_emitted > 16
    assert len(trace) == 16
    assert trace.dropped == trace.total_emitted - 16
    assert sum(trace.counts.values()) == trace.total_emitted
    # The buffer keeps the most recent window: the same run with an
    # unbounded buffer must end with exactly these 16 events.
    full = _traced("mcf", "hybrid").trace
    assert trace.events() == full.events()[-16:]
    assert "dropped" in trace.summary()
    with pytest.raises(ValueError):
        EventTrace(capacity=0)


# ---------------------------------------------------------------------------
# Occupancy sampler
# ---------------------------------------------------------------------------

def test_sampler_stride_semantics(hybrid_run):
    samples = hybrid_run.samples
    assert samples, "no occupancy samples collected"
    cycles = [s.cycle for s in samples]
    assert cycles == sorted(cycles)
    assert all(b - a >= 16 for a, b in zip(cycles, cycles[1:]))
    config = build_named_config("hybrid")
    for s in samples:
        assert 0 <= s.rob <= config.core.rob_size
        assert 0 <= s.rs <= config.core.rs_size
        assert s.mode in ("normal", "runahead", "rab")
    assert any(s.mode != "normal" for s in samples), \
        "sampler never observed a runahead interval on mcf/hybrid"
    with pytest.raises(ValueError):
        OccupancySampler(stride=0)


# ---------------------------------------------------------------------------
# Golden snapshots (Perfetto JSON + occupancy CSV)
# ---------------------------------------------------------------------------

def _golden_compare(name: str, text: str) -> None:
    path = GOLDEN_DIR / name
    if REGEN:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        return
    if not path.exists():
        pytest.skip(f"{name} missing; regenerate with REPRO_REGEN_GOLDEN=1")
    assert text == path.read_text(), (
        f"{name} drifted from the pinned snapshot; if the change is "
        f"intentional, regenerate with REPRO_REGEN_GOLDEN=1 and commit"
    )


@pytest.fixture(scope="module")
def snapshot_run():
    return _traced("mcf", "hybrid", occupancy_stride=64)


def test_perfetto_golden(snapshot_run, tmp_path):
    out = tmp_path / "trace.perfetto.json"
    snapshot_run.write_perfetto(out)
    _golden_compare("obs_perfetto.json", out.read_text())


def test_occupancy_golden(snapshot_run):
    buffer = io.StringIO()
    snapshot_run.tracer.sampler.write_csv(buffer)
    _golden_compare("obs_occupancy.csv", buffer.getvalue())


def test_perfetto_structure(snapshot_run, tmp_path):
    """The export must be loadable Chrome/Perfetto trace JSON carrying
    runahead-interval, chain-extraction and DRAM events."""
    out = tmp_path / "trace.perfetto.json"
    snapshot_run.write_perfetto(out)
    doc = json.loads(out.read_text())
    events = doc["traceEvents"]
    assert doc["otherData"]["workload"] == "mcf"
    named = {}
    for event in events:
        assert {"ph", "pid"} <= set(event)
        if event["ph"] != "M":
            assert "ts" in event and "tid" in event
        named.setdefault(event["ph"], []).append(event)
    # Metadata names the process and every used track.
    metas = {e["name"] for e in named["M"]}
    assert "process_name" in metas and "thread_name" in metas
    # Complete slices for runahead intervals, chain extraction and DRAM.
    slice_names = {e["name"] for e in named["X"]}
    assert slice_names & {"traditional", "buffer"}, \
        "no runahead-interval slices in the export"
    assert any(n.startswith("chain") for n in slice_names), \
        "no chain-extraction slices in the export"
    assert slice_names & {"demand", "store", "runahead", "writeback",
                          "ifetch"}, "no DRAM slices in the export"
    for event in named["X"]:
        assert event["dur"] >= 0
    # Occupancy counters rode along.
    assert any(e["name"] == "occupancy" for e in named.get("C", []))


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------

def test_default_registry_collect(hybrid_run):
    registry = default_registry()
    values = registry.collect(hybrid_run.stats)
    assert values["core.cycles"] == hybrid_run.stats.cycles
    assert values["core.ipc"] == pytest.approx(hybrid_run.stats.ipc)
    assert values["runahead.intervals"] == hybrid_run.stats.runahead_intervals
    assert values["energy.total_j"] > 0
    # Every registered metric is documented.
    for name in registry.names():
        assert registry.get(name).description
    # The SimStats convenience forwards here.
    assert hybrid_run.stats.metrics() == values
    subset = hybrid_run.stats.metrics(names=["core.ipc"])
    assert set(subset) == {"core.ipc"}


def test_registry_errors_and_exports(hybrid_run, tmp_path):
    registry = MetricsRegistry()
    registry.counter("core.cycles", "cycles", "total cycles")
    with pytest.raises(ValueError, match="already registered"):
        registry.counter("core.cycles", "cycles", "again")
    with pytest.raises(KeyError):
        registry.collect(hybrid_run.stats, names=["nope"])

    full = default_registry()
    json_path = full.write_json(hybrid_run.stats, tmp_path / "metrics.json")
    doc = json.loads(json_path.read_text())
    assert doc["workload"] == "mcf"
    assert doc["metrics"]["core.cycles"] == hybrid_run.stats.cycles
    assert set(doc["units"]) == set(doc["metrics"])

    csv_path = tmp_path / "metrics.csv"
    full.write_csv([hybrid_run.stats], csv_path)
    lines = csv_path.read_text().splitlines()
    assert lines[0].startswith("workload,config")
    assert lines[1].startswith("mcf,")


# ---------------------------------------------------------------------------
# Analysis integration
# ---------------------------------------------------------------------------

def test_experiment_matrix_persists_traces(tmp_path):
    from repro.analysis.experiments import ExperimentMatrix

    traced = ExperimentMatrix(instructions=INSTRUCTIONS, warmup=WARMUP,
                              cache_path=None, trace_dir=tmp_path / "traces")
    stats = traced.get("mcf", "hybrid")
    (trace_file,) = sorted((tmp_path / "traces").iterdir())
    assert trace_file.name == \
        f"mcf_hybrid_{INSTRUCTIONS}_w{WARMUP}.perfetto.json"
    doc = json.loads(trace_file.read_text())
    assert doc["otherData"]["cell"] == f"mcf/hybrid/{INSTRUCTIONS}/w{WARMUP}"
    assert any(e.get("ph") == "X" for e in doc["traceEvents"])
    # Tracing a cell must not change its stats (cache compatibility).
    plain = ExperimentMatrix(instructions=INSTRUCTIONS, warmup=WARMUP,
                             cache_path=None)
    assert stats == plain.get("mcf", "hybrid")
    # Cached cells are never re-simulated, hence never re-traced.
    trace_file.unlink()
    traced.get("mcf", "hybrid")
    assert not list((tmp_path / "traces").iterdir())


def test_export_perfetto_validates(hybrid_run):
    bogus = EventTrace()
    bogus.emit("prefetch_issue", 1, line="not an int")
    with pytest.raises(ValueError):
        export_perfetto(bogus)
    assert EVENT_KINDS == tuple(sorted(EVENT_SCHEMAS))
