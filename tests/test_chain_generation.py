"""Algorithm 1 (dependence-chain generation) tests over a synthetic ROB."""

from repro.backend import InFlightUop, StoreQueue
from repro.isa import Instruction, Opcode
from repro.runahead import chain_signature, generate_chain


def uop(seq, pc, inst, dest_phys=None, src1=None, src2=None,
        mem_addr=None):
    u = InFlightUop(seq, pc, inst)
    u.dest_phys = dest_phys
    u.src1_phys = src1
    u.src2_phys = src2
    if mem_addr is not None:
        u.mem_addr = mem_addr
        u.addr_known = True
    return u


LD = lambda rd, rs: Instruction(Opcode.LD, rd=rd, rs1=rs)
ADDI = lambda rd, rs, imm: Instruction(Opcode.ADDI, rd=rd, rs1=rs, imm=imm)
ADD = lambda rd, a, b: Instruction(Opcode.ADD, rd=rd, rs1=a, rs2=b)
ST = lambda rs1, rs2: Instruction(Opcode.ST, rs1=rs1, rs2=rs2)


def make_gather_rob():
    """A mcf-like ROB snapshot: blocking deref at the head, one younger
    iteration in flight.

    PC  program                  iteration k (head)  iteration k+1
    0   ADDI R1, R1, 8           retired             seq 2 (P40->P44)
    1   LD   R2 <- [R1]          retired             seq 3 (P45)
    2   LD   R3 <- [R2]          seq 0 (blocking)    seq 4 (P46)
    3   ADD  R4, R4, R3          seq 1               seq 5
    """
    blocking = uop(0, 2, LD(3, 2), dest_phys=41, src1=30)
    rob = [
        blocking,
        uop(1, 3, ADD(4, 4, 3), dest_phys=42, src1=43, src2=41),
        uop(2, 0, ADDI(1, 1, 8), dest_phys=44, src1=40),
        uop(3, 1, LD(2, 1), dest_phys=45, src1=44),
        uop(4, 2, LD(3, 2), dest_phys=46, src1=45),
        uop(5, 3, ADD(4, 4, 3), dest_phys=47, src1=42, src2=46),
    ]
    return rob, blocking


class TestGatherChain:
    def test_finds_oldest_other_instance(self):
        rob, blocking = make_gather_rob()
        result = generate_chain(rob, blocking, None)
        assert result.found_pc
        assert result.usable

    def test_chain_is_the_filtered_slice(self):
        rob, blocking = make_gather_rob()
        result = generate_chain(rob, blocking, None)
        # Chain: ADDI (pc0), LD (pc1), LD (pc2) — NOT the ADD accumulator.
        pcs = [c.pc for c in result.chain]
        assert pcs == [0, 1, 2]
        opcodes = [c.inst.opcode for c in result.chain]
        assert Opcode.ADD not in opcodes

    def test_walk_terminates_at_retirement_boundary(self):
        rob, blocking = make_gather_rob()
        result = generate_chain(rob, blocking, None)
        # P40 (older iteration's ADDI) is retired: not in the chain.
        assert len(result.chain) == 3
        assert not result.hit_cap

    def test_cycle_cost_accounting(self):
        rob, blocking = make_gather_rob()
        result = generate_chain(rob, blocking, None,
                                reg_searches_per_cycle=2, readout_width=4)
        # 1 (PC CAM) + ceil(searches/2) + ceil(3/4).
        assert result.cycles == 1 + -(-result.reg_searches // 2) + 1
        assert result.reg_searches >= 2


class TestNoMatch:
    def test_no_other_instance(self):
        blocking = uop(0, 2, LD(3, 2), dest_phys=41, src1=30)
        rob = [blocking, uop(1, 3, ADD(4, 4, 3), dest_phys=42, src1=43,
                             src2=41)]
        result = generate_chain(rob, blocking, None)
        assert not result.found_pc
        assert not result.usable
        assert result.chain == ()


class TestLengthCap:
    def test_long_chain_hits_cap(self):
        # A serial ADDI chain longer than the cap, ending in the load.
        blocking = uop(0, 99, LD(1, 2), dest_phys=10, src1=9)
        rob = [blocking]
        phys = 20
        n = 40
        for i in range(n):
            rob.append(uop(1 + i, i, ADDI(1, 1, 1), dest_phys=phys + i + 1,
                           src1=phys + i))
        rob.append(uop(n + 1, 99, LD(1, 2), dest_phys=phys + n + 1,
                       src1=phys + n))
        result = generate_chain(rob, blocking, None, max_length=32)
        assert result.hit_cap
        assert len(result.chain) <= 32

    def test_cap_respected_exactly(self):
        blocking = uop(0, 99, LD(1, 2), dest_phys=10, src1=9)
        rob = [blocking]
        for i in range(50):
            rob.append(uop(1 + i, i, ADDI(1, 1, 1), dest_phys=21 + i,
                           src1=20 + i))
        rob.append(uop(51, 99, LD(1, 2), dest_phys=99, src1=70))
        result = generate_chain(rob, blocking, None, max_length=8)
        assert len(result.chain) <= 8


class TestStoreQueueInclusion:
    def test_forwarding_store_joins_chain(self):
        """A chain load fed by a store (register spill/fill) pulls the
        store and its sources into the chain."""
        blocking = uop(0, 5, LD(3, 2), dest_phys=41, src1=30)
        store = uop(2, 1, ST(1, 7), dest_phys=None, src1=50, src2=51,
                    mem_addr=0x800)
        store.data_known = True
        spill_load = uop(3, 2, LD(2, 1), dest_phys=52, src1=50,
                         mem_addr=0x800)
        deref = uop(4, 5, LD(3, 2), dest_phys=53, src1=52)
        rob = [blocking, store, spill_load, deref]
        sq = StoreQueue(8)
        sq.push(store)
        result = generate_chain(rob, blocking, sq)
        pcs = {c.pc for c in result.chain}
        assert 1 in pcs          # the store joined
        assert result.sq_searches >= 1


class TestCapEdgeCases:
    def test_store_dropped_at_cap_sets_hit_cap(self):
        """A producing store rejected because the chain is already at
        ``max_length`` truncates the chain even when the SRSL then
        drains — ``hit_cap`` must say so (hybrid mode trusts it to fall
        back to traditional runahead)."""
        blocking = uop(0, 5, LD(3, 2), dest_phys=41, src1=30)
        store = uop(2, 1, ST(1, 7), dest_phys=None, src1=50, src2=51,
                    mem_addr=0x800)
        store.data_known = True
        # Spill load addressed off R0: no sources, so the SRSL drains
        # right after the store is (not) appended.
        spill_load = uop(3, 2, LD(2, 0), dest_phys=52, src1=None,
                         mem_addr=0x800)
        deref = uop(4, 5, LD(3, 2), dest_phys=53, src1=52)
        rob = [blocking, store, spill_load, deref]
        sq = StoreQueue(8)
        sq.push(store)
        result = generate_chain(rob, blocking, sq, max_length=2)
        assert len(result.chain) == 2
        assert 1 not in {c.pc for c in result.chain}  # store was dropped
        assert result.hit_cap

    def test_duplicate_srsl_entries_add_producer_once(self):
        """src1 == src2 pushes the same physical register twice; the
        producer must enter the chain once, but both CAM searches are
        still paid for."""
        blocking = uop(0, 9, LD(5, 3), dest_phys=60, src1=30)
        doubler = uop(2, 1, ADD(3, 2, 2), dest_phys=44, src1=43, src2=43)
        feeder = uop(3, 0, ADDI(2, 2, 1), dest_phys=43, src1=42)
        other = uop(4, 9, LD(5, 3), dest_phys=61, src1=44)
        rob = [blocking, doubler, feeder, other]
        result = generate_chain(rob, blocking, None)
        assert sorted(result.chain_seqs) == [2, 3, 4]
        assert len(set(result.chain_seqs)) == len(result.chain_seqs)
        # P44 once, P43 twice (the duplicate), P42 once = 4 searches.
        assert result.reg_searches == 4
        assert not result.hit_cap

    def test_only_other_instance_squashed(self):
        """A squashed duplicate of the blocking PC is not a usable
        template: generation must report no match, not extract a chain
        from a wrong-path uop."""
        rob, blocking = make_gather_rob()
        rob[4].squashed = True      # the younger LD at the blocking PC
        result = generate_chain(rob, blocking, None)
        assert not result.found_pc
        assert not result.usable
        assert result.chain == ()


class TestSignature:
    def test_signature_identity(self):
        rob, blocking = make_gather_rob()
        a = generate_chain(rob, blocking, None).chain
        b = generate_chain(rob, blocking, None).chain
        assert chain_signature(a) == chain_signature(b)

    def test_signature_differs_for_different_chains(self):
        rob, blocking = make_gather_rob()
        a = generate_chain(rob, blocking, None).chain
        assert chain_signature(a) != chain_signature(a[:-1])

    def test_squashed_uops_ignored(self):
        rob, blocking = make_gather_rob()
        for u in rob[1:]:
            u.squashed = True
        result = generate_chain(rob, blocking, None)
        assert not result.found_pc
