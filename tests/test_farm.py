"""Farm service and result-store tests (no HTTP).

Concurrency is driven deterministically: the service runs on a plain
``asyncio.run`` loop with an injected runner and a ThreadPoolExecutor,
so coalescing, crash-requeue, and cancellation interleavings are
arranged with events/gathers rather than timing.
"""

import asyncio
import json
import threading
from concurrent.futures import BrokenExecutor, ThreadPoolExecutor

import pytest

from repro.analysis.experiments import (ExperimentMatrix, KEY_SCHEMA,
                                        MODEL_VERSION)
from repro.analysis.parallel import CellSpec
from repro.config import SamplingConfig
from repro.farm import FarmError, FarmService, ResultStore, spec_cell_key
from repro.obs import FARM_EVENT_KINDS, farm_registry, validate_farm_event

SPEC = CellSpec("calculix", "baseline", False, 400, 500)
SPEC2 = CellSpec("calculix", "runahead", False, 400, 500)


class CountingRunner:
    """Thread-safe fake cell runner with scriptable failures."""

    def __init__(self, fail_first: int = 0, exc=BrokenExecutor,
                 gate: threading.Event = None):
        self.calls = []
        self.lock = threading.Lock()
        self.fail_first = fail_first
        self.exc = exc
        self.gate = gate

    def __call__(self, spec):
        with self.lock:
            self.calls.append(spec)
            n = len(self.calls)
        if self.gate is not None:
            assert self.gate.wait(10)
        if n <= self.fail_first:
            raise self.exc(f"boom {n}")
        return {"workload": spec.workload, "config_name": spec.config_name,
                "chain_stats": spec.chain_stats, "call": n}


def _service(runner, **kwargs) -> FarmService:
    return FarmService(runner=runner,
                       executor_factory=lambda: ThreadPoolExecutor(2),
                       **kwargs)


def _fingerprint(stats) -> str:
    return json.dumps(stats, sort_keys=True)


# ---------------------------------------------------------------------------
# Cell keys
# ---------------------------------------------------------------------------

class TestSpecCellKey:
    def test_matches_matrix_key_detailed(self):
        matrix = ExperimentMatrix(instructions=400, warmup=500,
                                  cache_path=None)
        assert spec_cell_key(SPEC) == matrix._key("calculix", "baseline",
                                                  False)
        chains = SPEC._replace(chain_stats=True)
        assert spec_cell_key(chains) == matrix._key("calculix", "baseline",
                                                    True)

    def test_matches_matrix_key_two_level(self):
        plan = SamplingConfig(tier="two-level", ramp_instructions=100,
                              window_instructions=200,
                              stride_instructions=1000)
        matrix = ExperimentMatrix(instructions=5000, warmup=500,
                                  cache_path=None, sampling=plan)
        spec = CellSpec("calculix", "baseline", False, 5000, 500,
                        tier="two-level", ramp=100, window=200, stride=1000)
        assert spec_cell_key(spec) == matrix._key("calculix", "baseline",
                                                  False)

    def test_live_point_fields_append_lp_suffix(self):
        spec = CellSpec("calculix", "baseline", False, 5000, 500,
                        tier="two-level", ramp=100, window=200, stride=1000,
                        window_jobs=4)
        assert spec_cell_key(spec).endswith(".lp")
        assert not spec_cell_key(
            spec._replace(window_jobs=0)).endswith(".lp")

    def test_multicore_specs_append_mc_suffix(self):
        spec = CellSpec("", "rab_cc", False, 2000, 3000,
                        cores=2, share="llc,dram", workloads="mcf,lbm")
        key = spec_cell_key(spec)
        assert key == "mcf/rab_cc/2000/w3000/mc2.llc+dram.mcf+lbm"
        # Core order is semantic: permuted workloads address a new cell.
        swapped = spec._replace(workloads="lbm,mcf")
        assert spec_cell_key(swapped) != key
        # Single-core specs are untouched by the new fields' defaults.
        single = CellSpec("mcf", "rab_cc", False, 2000, 3000)
        assert spec_cell_key(single) == "mcf/rab_cc/2000/w3000"


# ---------------------------------------------------------------------------
# Result store
# ---------------------------------------------------------------------------

class TestResultStore:
    def test_roundtrip_and_counters(self, tmp_path):
        store = ResultStore(tmp_path)
        cell = spec_cell_key(SPEC)
        assert store.get(cell) is None
        assert store.put(cell, {"ipc": 1.5}) is True
        assert ResultStore(tmp_path).get(cell) == {"ipc": 1.5}
        assert (store.hits, store.misses, store.puts) == (0, 1, 1)

    def test_entries_are_write_once(self, tmp_path):
        store = ResultStore(tmp_path)
        cell = spec_cell_key(SPEC)
        assert store.put(cell, {"ipc": 1.5}) is True
        assert store.put(cell, {"ipc": 9.9}) is False
        assert store.get(cell) == {"ipc": 1.5}

    def test_version_dir_partitions_by_model_and_schema(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(spec_cell_key(SPEC), {"ipc": 1.0})
        assert store.version_dir.name == f"v{MODEL_VERSION}.{KEY_SCHEMA}"
        assert store.version_dir.is_dir()

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        store = ResultStore(tmp_path)
        cell = spec_cell_key(SPEC)
        store.put(cell, {"ipc": 1.0})
        path = store._path(cell)
        path.write_text("not json {")
        assert store.get(cell) is None
        assert not path.exists()
        # A rewrite after eviction works.
        assert store.put(cell, {"ipc": 2.0}) is True
        assert store.get(cell) == {"ipc": 2.0}

    def test_foreign_cell_payload_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        cell = spec_cell_key(SPEC)
        store.put(cell, {"ipc": 1.0})
        path = store._path(cell)
        path.write_text(json.dumps({"cell": "someone/else", "stats": {}}))
        assert store.get(cell) is None

    def test_eviction_preserves_concurrent_valid_rewrite(self, tmp_path):
        # The lost-update race: an evictor that read corrupt bytes must
        # not destroy a valid entry a peer wrote in the meantime.
        store = ResultStore(tmp_path)
        cell = spec_cell_key(SPEC)
        store.put(cell, {"ipc": 1.0})
        path = store._path(cell)
        recovered = store._evict(path, cell)
        assert recovered == {"ipc": 1.0}
        assert path.exists()
        assert ResultStore(tmp_path).get(cell) == {"ipc": 1.0}


# ---------------------------------------------------------------------------
# Coalescing and the cell path
# ---------------------------------------------------------------------------

class TestCoalescing:
    def test_identical_concurrent_requests_execute_once(self):
        runner = CountingRunner()

        async def main():
            svc = _service(runner)
            results = await asyncio.gather(*(svc.cell(SPEC)
                                             for _ in range(8)))
            await svc.close()
            return svc, results

        svc, results = asyncio.run(main())
        assert len(runner.calls) == 1
        assert svc.admitted == 1
        assert svc.coalesced == 7
        assert svc.completed == 1
        assert svc.inflight == 0
        assert len({_fingerprint(r) for r in results}) == 1

    def test_burst_of_distinct_cells_admits_as_one_batch(self):
        runner = CountingRunner()
        specs = [SPEC, SPEC2, SPEC._replace(instructions=800)]

        async def main():
            svc = _service(runner)
            await asyncio.gather(*(svc.cell(s) for s in specs))
            await svc.close()
            return svc

        svc = asyncio.run(main())
        assert svc.admitted == 3
        assert svc.batches == 1

    def test_memo_serves_repeat_requests(self):
        runner = CountingRunner()

        async def main():
            svc = _service(runner)
            first = await svc.cell(SPEC)
            second = await svc.cell(SPEC)
            await svc.close()
            return svc, first, second

        svc, first, second = asyncio.run(main())
        assert len(runner.calls) == 1
        assert svc.memo_hits == 1
        assert first is second

    def test_chains_superset_serves_plain_requests(self):
        runner = CountingRunner()
        chains = SPEC._replace(chain_stats=True)

        async def main():
            svc = _service(runner)
            await svc.cell(chains)
            await svc.cell(SPEC)
            await svc.close()
            return svc

        svc = asyncio.run(main())
        assert len(runner.calls) == 1
        assert svc.memo_hits == 1

    def test_store_round_trip_across_service_restarts(self, tmp_path):
        runner = CountingRunner()
        store = ResultStore(tmp_path)

        async def run_once():
            svc = _service(runner, store=ResultStore(tmp_path))
            stats = await svc.cell(SPEC)
            await svc.close()
            return svc, stats

        svc1, stats1 = asyncio.run(run_once())
        svc2, stats2 = asyncio.run(run_once())
        assert len(runner.calls) == 1            # second service never ran
        assert svc2.store_hits == 1
        assert svc2.completed == 0
        assert _fingerprint(stats1) == _fingerprint(stats2)


# ---------------------------------------------------------------------------
# Failure paths
# ---------------------------------------------------------------------------

class TestFailurePaths:
    def test_worker_crash_requeues_and_recovers(self):
        runner = CountingRunner(fail_first=1)

        async def main():
            svc = _service(runner)
            events = svc.subscribe()
            stats = await svc.cell(SPEC)
            await svc.close()
            drained = []
            while not events.empty():
                drained.append(events.get_nowait())
            return svc, stats, drained

        svc, stats, events = asyncio.run(main())
        assert len(runner.calls) == 2
        assert svc.requeues == 1
        assert svc.completed == 1
        assert svc.failures == 0
        assert svc.inflight == 0                 # no wedged entry
        kinds = [e["event"] for e in events]
        assert kinds.count("farm.requeued") == 1
        done = [e for e in events if e["event"] == "farm.done"]
        assert done[0]["attempts"] == 2

    def test_worker_crashes_exhaust_attempts_then_fail(self):
        runner = CountingRunner(fail_first=99)

        async def main():
            svc = _service(runner, max_attempts=2)
            with pytest.raises(FarmError):
                await svc.cell(SPEC)
            inflight_after_failure = svc.inflight
            # The key is not wedged: a later request retries fresh.
            runner.fail_first = len(runner.calls)
            stats = await svc.cell(SPEC)
            await svc.close()
            return svc, inflight_after_failure, stats

        svc, inflight_after_failure, stats = asyncio.run(main())
        assert inflight_after_failure == 0
        assert svc.failures == 1
        assert svc.requeues == 1                 # attempt 1 -> 2 only
        assert stats["workload"] == "calculix"

    def test_deterministic_failure_fails_fast_without_retry(self):
        runner = CountingRunner(fail_first=99, exc=ValueError)

        async def main():
            svc = _service(runner)
            with pytest.raises(ValueError):
                await svc.cell(SPEC)
            await svc.close()
            return svc

        svc = asyncio.run(main())
        assert len(runner.calls) == 1
        assert svc.requeues == 0
        assert svc.failures == 1
        assert svc.inflight == 0

    def test_cancelled_waiter_does_not_cancel_shared_run(self):
        gate = threading.Event()
        runner = CountingRunner(gate=gate)

        async def main():
            svc = _service(runner)
            first = asyncio.create_task(svc.cell(SPEC))
            await asyncio.sleep(0.05)            # first admitted + running
            second = asyncio.create_task(svc.cell(SPEC))
            await asyncio.sleep(0.05)            # second coalesced
            second.cancel()
            await asyncio.sleep(0)
            gate.set()
            stats = await first
            await svc.close()
            return svc, stats, second

        svc, stats, second = asyncio.run(main())
        assert second.cancelled()
        assert len(runner.calls) == 1
        assert svc.completed == 1
        assert stats["workload"] == "calculix"


# ---------------------------------------------------------------------------
# Jobs and events
# ---------------------------------------------------------------------------

class TestJobs:
    def test_job_streams_events_and_collects_results(self):
        runner = CountingRunner()

        async def main():
            svc = _service(runner)
            job = svc.submit_job([SPEC, SPEC2])
            events = []
            while True:
                event = await asyncio.wait_for(job.queue.get(), timeout=10)
                events.append(event)
                if event["event"] == "farm.job_done":
                    break
            await svc.close()
            return job, events

        job, events = asyncio.run(main())
        assert job.ok
        assert len(job.results) == 2
        kinds = [e["event"] for e in events]
        assert kinds.count("farm.queued") == 2
        assert kinds.count("farm.done") == 2
        assert kinds[-1] == "farm.job_done"
        assert events[-1] == {"event": "farm.job_done", "job": job.id,
                              "cells": 2, "ok": True}

    def test_failed_job_reports_error(self):
        runner = CountingRunner(fail_first=99, exc=ValueError)

        async def main():
            svc = _service(runner)
            job = svc.submit_job([SPEC])
            await job.task
            await svc.close()
            return job

        job = asyncio.run(main())
        assert job.done and not job.ok
        assert "boom" in job.error


# ---------------------------------------------------------------------------
# Observability plumbing
# ---------------------------------------------------------------------------

class TestFarmObs:
    def test_registry_collects_every_counter(self):
        runner = CountingRunner()

        async def main():
            svc = _service(runner)
            await svc.cell(SPEC)
            await svc.close()
            return svc

        svc = asyncio.run(main())
        values = farm_registry().collect(svc)
        assert values["farm.requests"] == 1
        assert values["farm.admitted"] == 1
        assert values["farm.completed"] == 1
        assert values["farm.inflight"] == 0
        assert set(values) == set(farm_registry().names())

    def test_validate_farm_event_enforces_schema(self):
        validate_farm_event({"event": "farm.queued", "cell": "a/b/1/w2"})
        with pytest.raises(ValueError):
            validate_farm_event({"event": "farm.unknown", "cell": "x"})
        with pytest.raises(ValueError):
            validate_farm_event({"event": "farm.queued"})          # missing
        with pytest.raises(ValueError):
            validate_farm_event({"event": "farm.queued",
                                 "cell": "x", "extra": 1})         # extra
        with pytest.raises(ValueError):
            validate_farm_event({"event": "farm.done", "cell": "x",
                                 "attempts": True})                # bool!=int

    def test_every_schema_kind_is_exported(self):
        assert "farm.queued" in FARM_EVENT_KINDS
        assert "farm.job_done" in FARM_EVENT_KINDS


class TestDefaultExecutor:
    def test_default_pool_uses_spawn_context(self):
        """The default worker pool must use the spawn start method.

        Pool workers are created lazily — while client sockets are
        open.  A fork'd worker inherits duplicates of every accepted
        connection fd and holds them for the pool's lifetime, so the
        server's FIN after ``Connection: close`` never reaches a
        streaming client (it hangs until its timeout).  spawn'd
        workers exec a fresh interpreter and inherit no sockets.
        """
        async def main():
            svc = FarmService(jobs=1)
            try:
                executor = svc._get_executor()
                return executor._mp_context.get_start_method()
            finally:
                await svc.close()

        assert asyncio.run(main()) == "spawn"
