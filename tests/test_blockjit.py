"""Block-jit unit tests (``repro.fastpath.blockjit``).

The differential heavy-lifting — compiled lane vs ``run_warm`` over the
fuzz corpus and the real kernels — lives in ``test_warmup_parity.py``.
This file pins the pieces individually: lane resolution, block/region
discovery, generated source shape, content-addressed code sharing, the
driver's fallback rules, the batched branch trainer, and the flattened
warm-path helpers in ``repro.memory.hierarchy``.
"""

from __future__ import annotations

import random

import pytest

from repro.config import build_named_config
from repro.fastpath import blockjit
from repro.fastpath.blockjit import (FF_LANES, WarmTargets, jit_program,
                                     program_translate_seconds,
                                     resolve_ff_lane)
from repro.frontend.branch_predictor import BranchPredictor
from repro.isa import Interpreter, ProgramBuilder
from repro.isa.blocks import (BRANCH, HALT, LOOP, REGION, STRAIGHT,
                              discover_block, discover_region)
from repro.memory.hierarchy import MemoryHierarchy


# ---------------------------------------------------------------------------
# Lane resolution
# ---------------------------------------------------------------------------

class TestResolveFFLane:
    def test_default_is_jit(self, monkeypatch):
        monkeypatch.delenv("REPRO_FF_LANE", raising=False)
        assert resolve_ff_lane() == "jit"

    def test_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_FF_LANE", "interp")
        assert resolve_ff_lane() == "interp"

    def test_session_default_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FF_LANE", "interp")
        assert resolve_ff_lane(None, "jit") == "jit"

    def test_explicit_beats_everything(self, monkeypatch):
        monkeypatch.setenv("REPRO_FF_LANE", "interp")
        assert resolve_ff_lane("jit", "interp") == "jit"

    @pytest.mark.parametrize("bad", ["turbo", "JIT"])
    def test_unknown_lane_rejected(self, bad):
        with pytest.raises(ValueError, match="lane"):
            resolve_ff_lane(bad)

    def test_empty_string_is_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_FF_LANE", raising=False)
        assert resolve_ff_lane("", "") == "jit"

    def test_lane_tuple(self):
        assert FF_LANES == ("interp", "jit")


# ---------------------------------------------------------------------------
# Discovery
# ---------------------------------------------------------------------------

def _loop_program():
    """r1 counts down from 100; BNE closes the loop."""
    b = ProgramBuilder()
    b.li("R1", 100)
    b.label("top")
    b.addi("R1", "R1", -1)
    b.bne("R1", "R0", "top")
    b.halt()
    return b.build()


def _chain_program():
    """Two conditional blocks feeding each other, then a halt block."""
    b = ProgramBuilder()
    b.label("a")
    b.addi("R1", "R1", 1)
    b.beq("R1", "R2", "b")
    b.label("b")
    b.addi("R3", "R3", 1)
    b.bne("R3", "R4", "a")
    b.halt()
    return b.build()


class TestDiscovery:
    def test_block_kinds(self):
        program = _loop_program()
        assert discover_block(program, 0).kind == BRANCH  # LI..BNE, not a self-loop
        assert discover_block(program, 1).kind == LOOP    # ADDI..BNE back to 1
        assert discover_block(program, 3).kind == HALT

    def test_straight_block_at_program_end(self):
        b = ProgramBuilder()
        b.addi("R1", "R1", 1)
        b.addi("R2", "R2", 2)
        program = b.build()
        blk = discover_block(program, 0)
        assert blk.kind == STRAIGHT
        assert len(blk.instructions) == 2

    def test_region_grows_over_branch_blocks(self):
        program = _chain_program()
        region = discover_region(program, 0)
        assert region.entries() == {0, 2}
        assert region.total_instructions() == 4

    def test_region_does_not_swallow_halt(self):
        program = _chain_program()
        region = discover_region(program, 0)
        assert all(b.kind in (BRANCH, LOOP) for b in region.blocks)

    def test_singleton_region_for_halt_block(self):
        program = _loop_program()
        region = discover_region(program, 3)
        assert len(region.blocks) == 1
        assert region.blocks[0].kind == HALT

    def test_region_block_cap(self):
        program = _chain_program()
        region = discover_region(program, 0, max_blocks=1)
        assert len(region.blocks) == 1


# ---------------------------------------------------------------------------
# Codegen + code cache
# ---------------------------------------------------------------------------

class TestCodegen:
    def test_source_deterministic(self):
        program = _loop_program()
        blk = discover_block(program, 1)
        s1 = blockjit.generate_source(blk, "events", cb_mask=7)
        s2 = blockjit.generate_source(blk, "events", cb_mask=7)
        assert s1 == s2

    def test_events_mask_gates_callbacks(self):
        program = _loop_program()
        blk = discover_block(program, 1)
        full = blockjit.generate_source(blk, "events", cb_mask=7)
        silent = blockjit.generate_source(blk, "events", cb_mask=0)
        assert "on_ifetch(" in full and "on_branch(" in full
        assert "on_ifetch(" not in silent and "on_branch(" not in silent

    def test_compiled_block_executes(self):
        program = _loop_program()
        interp = Interpreter(program)
        assert interp.run_warm_jit(10 ** 6) == 202  # LI + 100*(ADDI+BNE) + HALT
        assert interp.halted
        ref = Interpreter(program)
        ref.run_warm(10 ** 6)
        assert interp.regs == ref.regs
        assert interp.retired == ref.retired

    def test_code_cache_shared_across_equal_programs(self):
        def build():
            b = ProgramBuilder()
            b.li("R1", 77)
            b.label("top")
            b.addi("R1", "R1", -1)
            b.bne("R1", "R0", "top")
            b.halt()
            return b.build()

        p1, p2 = build(), build()
        jp1 = jit_program(p1, "events", cb_mask=0)
        jp1.entry_at(1)
        before = len(blockjit._CODE_CACHE)
        jp2 = jit_program(p2, "events", cb_mask=0)
        jp2.entry_at(1)
        assert len(blockjit._CODE_CACHE) == before  # content-addressed hit
        # Same compiled code object underneath, distinct bound functions.
        assert jp1.entries[1].fn.__code__ is jp2.entries[1].fn.__code__

    def test_translate_accounting(self):
        program = _loop_program()
        jp = jit_program(program, "events", cb_mask=0)
        jp.entry_at(1)
        assert jp.translate_count == 1
        assert jp.translate_seconds > 0.0
        assert program_translate_seconds(program) == pytest.approx(
            jp.translate_seconds)

    def test_translate_hook_fires_once_per_translation(self):
        program = _loop_program()
        calls: list[tuple[int, int, bool]] = []
        interp = Interpreter(program)
        interp.run_warm_jit(50, translate_hook=lambda *a: calls.append(a))
        first = list(calls)
        assert first, "hook never fired"
        for pc, length, loop in first:
            assert program.in_range(pc)
            assert length >= 1
            assert isinstance(loop, bool)
        # The region at pc 0 contains the loop, so its translation is
        # reported as loop-shaped.
        assert first[0][0] == 0 and first[0][2] is True
        # Second run on the same program: everything is served from the
        # per-program entry cache, so the hook stays silent.
        interp2 = Interpreter(program)
        interp2.run_warm_jit(50, translate_hook=lambda *a: calls.append(a))
        assert calls == first


# ---------------------------------------------------------------------------
# Driver fallback rules
# ---------------------------------------------------------------------------

class TestDriverFallbacks:
    def test_halted_is_inert(self):
        program = _loop_program()
        interp = Interpreter(program)
        interp.run_warm_jit(10 ** 6)
        assert interp.halted
        assert interp.run_warm_jit(100) == 0

    def test_nonpositive_budget(self):
        interp = Interpreter(_loop_program())
        assert interp.run_warm_jit(0) == 0
        assert interp.run_warm_jit(-5) == 0

    def test_unclean_regs_fall_back_to_interp(self):
        program = _loop_program()
        interp = Interpreter(program)
        interp.regs[5] = -3          # 64-bit-unclean: jit lane must punt
        ref = Interpreter(program)
        ref.regs[5] = -3
        assert interp.run_warm_jit(50) == ref.run_warm(50)
        assert interp.regs == ref.regs
        assert interp.pc == ref.pc

    def test_out_of_range_pc_falls_back(self):
        # No HALT: execution runs off the end into NOP padding, which
        # only the interpreter models.
        b = ProgramBuilder()
        b.addi("R1", "R1", 1)
        b.addi("R2", "R2", 2)
        program = b.build()
        interp = Interpreter(program)
        ref = Interpreter(program)
        assert interp.run_warm_jit(10) == ref.run_warm(10)
        assert interp.regs == ref.regs
        assert interp.pc == ref.pc

    def test_budget_tail_is_exact(self):
        # Budget ends mid-block: the per-op fallback must stop exactly.
        program = _loop_program()
        for budget in (1, 2, 3, 4, 7, 50):
            interp = Interpreter(program)
            ref = Interpreter(program)
            assert interp.run_warm_jit(budget) == ref.run_warm(budget)
            assert interp.pc == ref.pc
            assert interp.regs == ref.regs


# ---------------------------------------------------------------------------
# Batched branch trainer
# ---------------------------------------------------------------------------

class TestWarmUpdateVector:
    def test_matches_sequential_update(self):
        program = _loop_program()
        inst = program.instructions[2]  # the BNE
        rng = random.Random(42)
        for trial in range(20):
            outcomes = [rng.random() < 0.7 for _ in range(rng.randint(1, 60))]
            cfg = build_named_config("baseline").branch
            seq, vec = BranchPredictor(cfg), BranchPredictor(cfg)
            prev_seq: dict[int, bool] = {}
            for taken in outcomes:
                mispred = prev_seq.get(2, False) != taken
                seq.update(2, inst, taken, 1, mispred)
                prev_seq[2] = taken
            prev_vec: dict[int, bool] = {}
            vec.warm_update_vector(2, inst, outcomes, 1, prev_vec)
            assert bytes(seq._gshare) == bytes(vec._gshare)
            assert bytes(seq._bimodal) == bytes(vec._bimodal)
            assert bytes(seq._chooser) == bytes(vec._chooser)
            assert seq.ghr == vec.ghr
            assert dict(seq._btb) == dict(vec._btb)
            assert seq.stats.cond_mispredicts == vec.stats.cond_mispredicts
            assert prev_seq == prev_vec


# ---------------------------------------------------------------------------
# Flattened warm-path helpers (jit lane only)
# ---------------------------------------------------------------------------

def _l1d_cache_state(cache):
    return ([[(k, (ln.ready_cycle, ln.dirty)) for k, ln in s.items()]
             for s in cache._sets], cache._mru_key)


def _stats(cache):
    s = cache.stats
    return (s.hits, s.misses, s.fill_hits, s.evictions, s.writebacks,
            s.invalidations)


class TestFlatWarmHelpers:
    """``warm_load_miss``/``warm_ifetch_line`` vs the reference
    ``warm_load``/``warm_ifetch`` over a random address stream long
    enough to exercise L1 and LLC evictions and the back-invalidate."""

    def _pair(self):
        cfg = build_named_config("baseline")
        return MemoryHierarchy(cfg), MemoryHierarchy(cfg)

    def test_load_path(self):
        ref, jit = self._pair()
        shift = ref._line_shift
        l1d = jit.l1d
        rng = random.Random(7)
        lines = [rng.randrange(1 << 16) for _ in range(30_000)]
        # Mix in reuse so hit, MRU and move_to_end paths all fire.
        lines += [rng.choice(lines[:2_000]) for _ in range(10_000)]
        for line in lines:
            addr = line << shift
            ref.warm_load(addr)
            # Generated-code caller contract for the jit side.
            if line != l1d._mru_key:
                s = l1d._sets[line % l1d.num_sets]
                ln = s.get(line)
                if ln is None:
                    jit.warm_load_miss(line)
                else:
                    s.move_to_end(line)
                    l1d._mru_key = line
                    l1d._mru_line = ln
        for lvl in ("l1d", "l1i", "llc"):
            assert _l1d_cache_state(getattr(ref, lvl)) == \
                _l1d_cache_state(getattr(jit, lvl)), lvl
            assert _stats(getattr(ref, lvl)) == _stats(getattr(jit, lvl)), lvl

    def test_ifetch_path(self):
        ref, jit = self._pair()
        shift = ref._line_shift
        l1i = jit.l1i
        rng = random.Random(8)
        lines = [rng.randrange(1 << 15) for _ in range(20_000)]
        lines += [rng.choice(lines[:500]) for _ in range(10_000)]
        for line in lines:
            addr = line << shift
            ref.warm_ifetch(addr)
            # Generated-code caller contract: MRU guard, then the inline
            # resident-and-ready fast path, then the flat helper.
            if line != l1i._mru_key or l1i._mru_line.ready_cycle > 0:
                s = l1i._sets[line % l1i.num_sets]
                ln = s.get(line)
                if ln is None or ln.ready_cycle > 0:
                    jit.warm_ifetch_line(line)
                else:
                    s.move_to_end(line)
                    l1i._mru_key = line
                    l1i._mru_line = ln
        for lvl in ("l1d", "l1i", "llc"):
            assert _l1d_cache_state(getattr(ref, lvl)) == \
                _l1d_cache_state(getattr(jit, lvl)), lvl
            assert _stats(getattr(ref, lvl)) == _stats(getattr(jit, lvl)), lvl

    def test_mixed_load_and_ifetch_share_llc(self):
        ref, jit = self._pair()
        shift = ref._line_shift
        rng = random.Random(9)
        for _ in range(25_000):
            line = rng.randrange(1 << 15)
            addr = line << shift
            if rng.random() < 0.5:
                ref.warm_load(addr)
                l1d = jit.l1d
                if line != l1d._mru_key:
                    s = l1d._sets[line % l1d.num_sets]
                    ln = s.get(line)
                    if ln is None:
                        jit.warm_load_miss(line)
                    else:
                        s.move_to_end(line)
                        l1d._mru_key = line
                        l1d._mru_line = ln
            else:
                ref.warm_ifetch(addr)
                l1i = jit.l1i
                if line != l1i._mru_key or l1i._mru_line.ready_cycle > 0:
                    s = l1i._sets[line % l1i.num_sets]
                    ln = s.get(line)
                    if ln is None or ln.ready_cycle > 0:
                        jit.warm_ifetch_line(line)
                    else:
                        s.move_to_end(line)
                        l1i._mru_key = line
                        l1i._mru_line = ln
        for lvl in ("l1d", "l1i", "llc"):
            assert _l1d_cache_state(getattr(ref, lvl)) == \
                _l1d_cache_state(getattr(jit, lvl)), lvl
            assert _stats(getattr(ref, lvl)) == _stats(getattr(jit, lvl)), lvl


# ---------------------------------------------------------------------------
# Warm lane smoke (the full differential lives in test_warmup_parity.py)
# ---------------------------------------------------------------------------

def test_warm_targets_drive_hierarchy_and_predictor():
    program = _loop_program()
    cfg = build_named_config("baseline")
    interp = Interpreter(program)
    hierarchy = MemoryHierarchy(cfg)
    pred = BranchPredictor(cfg.branch)
    prev: dict[int, bool] = {}
    shift = ((hierarchy.l1i.line_bytes.bit_length() - 1)
             - (blockjit.INST_BYTES.bit_length() - 1))
    warm = WarmTargets(hierarchy=hierarchy, predictor=pred,
                       prev_taken=prev, pc_line_shift=shift)
    executed = interp.run_warm_jit(10 ** 6, warm=warm)
    assert interp.halted and executed == 202
    assert hierarchy.l1i._mru_key != -1          # I-lines warmed
    assert 2 in pred._btb                        # loop branch trained
    assert prev == {2: False}                    # final not-taken recorded
