"""Processor corner cases: resource backpressure, retries, indirect flow,
halting inside runahead, and bookkeeping invariants."""

import pytest

from repro import DataMemory, Interpreter, ProgramBuilder
from repro.config import RunaheadMode, default_system, make_config
from repro.core import Processor
from repro.isa import NUM_ARCH_REGS
from repro.workloads import gather

from util import build_counted_loop


class TestResourceInvariants:
    def test_physical_registers_never_leak(self):
        """After a long branchy run, every non-architectural register is
        either free or mapped — the free-list count is consistent."""
        b = ProgramBuilder()
        b.li("R1", 0x4000)
        b.li("R9", 0)
        b.li("R2", 500)
        b.label("loop")
        b.load("R3", "R1", 0)
        b.andi("R4", "R3", 1)
        b.beq("R4", "R0", "skip")
        b.addi("R5", "R5", 1)
        b.label("skip")
        b.addi("R1", "R1", 8)
        b.addi("R9", "R9", 1)
        b.bne("R9", "R2", "loop")
        b.halt()
        proc = Processor(b.build(), default_system())
        proc.run(50_000)
        in_flight_dests = sum(
            1 for u in proc.rob if u.dest_phys is not None and not u.squashed
        )
        mapped = NUM_ARCH_REGS  # committed mappings
        free = proc.rename.free_count()
        total = proc.config.core.num_phys_regs
        # mapped + free + in-flight (+ old mappings held by in-flight
        # writers) must cover the file; at halt the pipeline is drained.
        assert proc.halted
        assert free + mapped + in_flight_dests >= total - 1
        assert free <= total - mapped

    def test_rob_never_exceeds_capacity(self):
        wl = gather("t_cap", deref_depth=1)
        proc = Processor(wl.program, make_config(RunaheadMode.BUFFER),
                         memory=wl.memory)
        limit = proc.config.core.rob_size
        proc.warm_up(1000)
        for _ in range(5000):
            proc._step()
            assert len(proc.rob) <= limit

    def test_store_queue_bounded(self):
        b = ProgramBuilder()
        b.li("R1", 0x8000)
        b.label("loop")
        for k in range(8):
            b.store("R2", "R1", 8 * k)
        b.addi("R1", "R1", 64)
        b.jmp("loop")
        proc = Processor(b.build(), default_system())
        cap = proc.config.core.store_queue_size
        for _ in range(3000):
            proc._step()
            assert len(proc.store_queue) <= cap


class TestMshrRetryPath:
    def test_load_retries_when_mshrs_full(self):
        """A burst of independent misses beyond the MSHR count must all
        eventually complete (retry heap drains)."""
        b = ProgramBuilder()
        b.li("R1", 1 << 26)
        b.li("R2", 1 << 16)  # stride: every load a new line/bank/row
        b.li("R9", 0)
        b.li("R10", 64)
        b.label("loop")
        b.load("R3", "R1", 0)
        b.add("R1", "R1", "R2")
        b.addi("R9", "R9", 1)
        b.bne("R9", "R10", "loop")
        b.halt()
        proc = Processor(b.build(), default_system())
        stats = proc.run(10_000)
        assert proc.halted
        assert stats.llc_demand_misses >= 32


class TestIndirectControlFlow:
    def test_jr_through_btb_pipeline(self):
        """An indirect jump repeatedly taken: first resolve stalls fetch,
        later iterations use the BTB."""
        b = ProgramBuilder()
        b.li("R5", 0)
        b.li("R6", 50)
        b.li("R7", 5)          # pc of the "land" label below
        b.label("loop")
        b.jr("R7")             # pc 3
        b.nop()                # pc 4, never executed
        b.label("land")        # pc 5
        b.addi("R5", "R5", 1)
        b.bne("R5", "R6", "loop")
        b.halt()
        program = b.build()
        assert program.instructions[3].opcode.name == "JR"
        proc = Processor(program, default_system())
        proc.run(10_000)
        interp = Interpreter(program, DataMemory())
        for _ in interp.run(10_000):
            pass
        assert proc.halted
        assert proc.rename.arch_values() == interp.regs

    def test_ret_uses_ras_across_depth(self):
        b = ProgramBuilder()
        b.li("R5", 0)
        b.li("R6", 30)
        b.label("loop")
        b.call("f1")
        b.addi("R5", "R5", 1)
        b.bne("R5", "R6", "loop")
        b.halt()
        b.label("f1")
        b.mov("R20", "R31")     # preserve link
        b.call("f2")
        b.mov("R31", "R20")
        b.ret()
        b.label("f2")
        b.addi("R7", "R7", 1)
        b.ret()
        proc = Processor(b.build(), default_system())
        proc.run(10_000)
        assert proc.halted
        assert proc.rename.arch_values()[7] == 30


class TestRunaheadEdgeCases:
    def test_instruction_budget_hit_inside_runahead(self):
        """Stopping mid-interval must still produce consistent stats and
        a closed interval record."""
        wl = gather("t_stop", deref_depth=1)
        proc = Processor(wl.program, make_config(RunaheadMode.BUFFER),
                         memory=wl.memory)
        stats = proc.run(300)   # small budget: likely stops mid-interval
        assert proc.ra_policy.current is None
        assert stats.cycles_in_rab <= stats.cycles

    def test_runahead_disabled_never_enters(self):
        wl = gather("t_off", deref_depth=1)
        proc = Processor(wl.program, make_config(RunaheadMode.NONE),
                         memory=wl.memory)
        stats = proc.run(2000)
        assert stats.runahead_intervals == 0
        assert stats.cycles_in_rab == 0
        assert stats.cycles_in_traditional == 0

    def test_back_to_back_intervals(self):
        wl = gather("t_b2b", deref_depth=1)
        proc = Processor(wl.program,
                         make_config(RunaheadMode.BUFFER_CHAIN_CACHE),
                         memory=wl.memory)
        proc.warm_up(1000)
        stats = proc.run(4000)
        assert stats.rab_intervals >= 3
        records = proc.ra_policy.intervals
        for earlier, later in zip(records, records[1:]):
            assert later.entry_cycle >= earlier.exit_cycle

    def test_halt_reached_with_runahead_enabled(self):
        program = build_counted_loop(200)
        proc = Processor(program, make_config(RunaheadMode.HYBRID))
        stats = proc.run(50_000)
        assert proc.halted
        interp = Interpreter(program, DataMemory())
        for _ in interp.run(50_000):
            pass
        assert proc.rename.arch_values() == interp.regs


class TestDecodeBackpressure:
    def test_decode_queue_bounded(self):
        wl = gather("t_dq", deref_depth=1)
        proc = Processor(wl.program, default_system(), memory=wl.memory)
        for _ in range(3000):
            proc._step()
            assert len(proc.decode_queue) <= proc.decode_queue_cap


class TestWatchdog:
    def test_watchdog_raises_on_livelock(self):
        proc = Processor(build_counted_loop(5), default_system())
        proc.run(10_000)
        assert proc.halted
        # Simulate a livelock: force the clock far past the last progress.
        proc.halted = False
        proc.fetch.halted = True
        proc._last_progress = 0
        proc.now = 2_000_000
        with pytest.raises(RuntimeError, match="no forward progress"):
            proc.run(10)
