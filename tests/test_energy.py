"""Energy model tests: arithmetic, breakdown, calibration properties."""

import pytest

from repro.config import EnergyConfig, default_system, make_config
from repro.core import simulate
from repro.energy import EnergyModel, EnergyReport


def make_model():
    return EnergyModel(EnergyConfig(), clock_ghz=3.2)


class TestArithmetic:
    def test_zero_events_zero_cycles(self):
        report = make_model().compute({}, cycles=0)
        assert report.total == 0.0

    def test_leakage_scales_with_time(self):
        model = make_model()
        one = model.compute({}, cycles=3_200_000_000)  # one second
        assert one.core_leakage == pytest.approx(EnergyConfig().core_leakage_w)
        assert one.dram_background == pytest.approx(
            EnergyConfig().dram_background_w)

    def test_event_energy_accumulates(self):
        model = make_model()
        cfg = EnergyConfig()
        report = model.compute({"fetch": 1000}, cycles=0)
        assert report.frontend_dynamic == pytest.approx(
            1000 * cfg.fetch_pj * 1e-12)

    def test_unknown_events_ignored(self):
        report = make_model().compute({"quantum_flux": 10**9}, cycles=0)
        assert report.total == 0.0

    def test_breakdown_sums_to_total(self):
        events = {"fetch": 100, "decode": 100, "rename": 100, "alu": 50,
                  "l1d_access": 30, "dram_access": 5, "pc_cam": 2}
        report = make_model().compute(events, cycles=10_000)
        parts = (report.frontend_dynamic + report.backend_dynamic
                 + report.runahead_dynamic + report.cache_dynamic
                 + report.dram_dynamic + report.core_leakage
                 + report.dram_background)
        assert report.total == pytest.approx(parts)

    def test_to_dict_fields(self):
        report = make_model().compute({"fetch": 1}, cycles=100)
        d = report.to_dict()
        for key in ("total", "frontend_dynamic", "core_dynamic",
                    "exec_seconds"):
            assert key in d


class TestCalibration:
    def test_frontend_fraction_near_40pct(self):
        """The paper's calibration point: front-end ~40% of core dynamic
        power on a typical baseline run."""
        result = simulate("milc", make_config(), max_instructions=3000)
        report = result.energy
        fraction = report.frontend_fraction_of_core_dynamic
        assert 0.25 <= fraction <= 0.55

    def test_rab_spends_less_frontend_energy_than_runahead(self):
        from repro.config import RunaheadMode
        ra = simulate("mcf", make_config(RunaheadMode.TRADITIONAL),
                      max_instructions=3000)
        rab = simulate("mcf", make_config(RunaheadMode.BUFFER),
                       max_instructions=3000)
        assert rab.energy.frontend_dynamic < ra.energy.frontend_dynamic

    def test_runahead_buffer_pays_cam_energy(self):
        from repro.config import RunaheadMode
        rab = simulate("mcf", make_config(RunaheadMode.BUFFER),
                       max_instructions=3000)
        assert rab.energy.runahead_dynamic > 0
        events = rab.stats.energy_events
        assert events.get("pc_cam", 0) > 0
        assert events.get("destreg_cam", 0) > 0
        assert events.get("rab_read", 0) > 0

    def test_chain_cache_events_counted(self):
        from repro.config import RunaheadMode
        cc = simulate("mcf", make_config(RunaheadMode.BUFFER_CHAIN_CACHE),
                      max_instructions=3000)
        assert cc.stats.energy_events.get("chain_cache_read", 0) > 0
