"""Setup shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation`` needs PEP 660 support that the
pinned offline toolchain lacks; this shim lets pip fall back to the
legacy ``setup.py develop`` editable path.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
