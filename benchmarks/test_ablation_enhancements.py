"""Ablation: the ISCA'05 runahead enhancements applied to the buffer.

Paper (§4.6): the short/overlapping-interval filters matter a lot for
traditional runahead's energy but "do not noticeably effect energy
consumption for the runahead buffer policies".
"""

import pytest

from repro.analysis import Table, gmean
from repro.config import RunaheadMode, make_config
from repro.core import simulate

BENCHES = ("mcf", "milc", "libquantum", "zeusmp")


@pytest.fixture(scope="module")
def results():
    out = {}
    for label, mode, enh in (
        ("runahead", RunaheadMode.TRADITIONAL, False),
        ("runahead_enh", RunaheadMode.TRADITIONAL, True),
        ("rab", RunaheadMode.BUFFER, False),
        ("rab_enh", RunaheadMode.BUFFER, True),
    ):
        ratios = []
        for name in BENCHES:
            base = simulate(name, make_config(), max_instructions=3000)
            run = simulate(name, make_config(mode, enhancements=enh),
                           max_instructions=3000)
            ratios.append(run.energy.total / base.energy.total)
        out[label] = 100.0 * (gmean(ratios) - 1.0)
    return out


def test_enhancements_matter_less_for_the_buffer(results, publish,
                                                 benchmark):
    table = Table("Ablation: ISCA'05 enhancements (gmean % energy vs "
                  "baseline)", ["config", "energy_pct"])
    for label, value in results.items():
        table.add(label, value)
    publish(table, "ablation_enhancements.txt")
    benchmark(lambda: dict(results))

    effect_on_runahead = results["runahead"] - results["runahead_enh"]
    effect_on_rab = abs(results["rab"] - results["rab_enh"])
    # The buffer's energy moves less than traditional runahead's, and the
    # buffer is cheaper than traditional runahead either way.
    assert results["rab"] < results["runahead"]
    assert effect_on_rab < max(6.0, abs(effect_on_runahead) + 6.0)
