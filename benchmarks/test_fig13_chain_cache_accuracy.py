"""Fig. 13: % of chain-cache hits exactly matching the ROB-generated chain.

Paper claim: ~53% of chain-cache hits exactly match the chain that would
have been generated from the ROB at that moment — a hit is deliberate
speculation that an old chain is better than paying generation latency.
"""

from repro.analysis import figures


def test_fig13_chain_cache_accuracy(matrix, publish, benchmark):
    table = figures.fig13_chain_cache_accuracy(matrix)
    publish(table, "fig13_chain_cache_accuracy.txt")
    benchmark(lambda: figures.fig13_chain_cache_accuracy(matrix))

    rows = table.row_map()
    measured = {n: r[1] for n, r in rows.items()
                if n != "Average" and isinstance(r[2], int) and r[2] >= 5}
    assert measured, "no benchmark produced enough checked hits"

    # Exact-match fractions are meaningful percentages, and the stable
    # single-chain gathers match nearly always.
    for name, pct in measured.items():
        assert 0.0 <= pct <= 100.0
    for name in ("mcf", "milc"):
        if name in measured:
            assert measured[name] > 50.0
