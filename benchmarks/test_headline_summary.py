"""The abstract's headline numbers, measured against the paper.

This is the one-stop summary EXPERIMENTS.md quotes; it asserts only the
claims DESIGN.md promises to preserve (who wins, directions, rough
factors), not absolute numbers.
"""

from repro.analysis import figures


def test_headline_summary(matrix, publish, benchmark):
    table = figures.headline_summary(matrix)
    publish(table, "headline_summary.txt")
    benchmark(lambda: figures.headline_summary(matrix))

    measured = {row[0]: row[1] for row in table.rows}

    # Performance: every runahead flavour gains; hybrid >= buffer >= none.
    assert measured["runahead perf %"] > 5.0
    assert measured["rab_cc perf %"] > 5.0
    assert measured["hybrid perf %"] >= measured["rab_cc perf %"] - 2.0

    # Energy: traditional runahead costs, the buffer is ~neutral-to-saving,
    # the enhancements cut traditional runahead's bill.
    assert measured["runahead energy %"] > 5.0
    assert measured["runahead_enh energy %"] <= measured["runahead energy %"]
    assert measured["rab_cc energy %"] < measured["runahead energy %"] - 8.0
    assert measured["hybrid energy %"] < measured["runahead energy %"]
