"""Fig. 10: memory accesses generated per runahead interval.

Paper claims: the runahead buffer generates ~2x the cache misses of
traditional runahead per interval (it runs further ahead on the filtered
chain); adding a stream prefetcher reduces the MLP both schemes generate
(it prefetches some of the same addresses), yet the buffer retains a
large advantage.
"""

from repro.analysis import figures


def test_fig10_mlp(matrix, publish, benchmark):
    table = figures.fig10_mlp(matrix)
    publish(table, "fig10_mlp.txt")
    benchmark(lambda: figures.fig10_mlp(matrix))

    avg = table.row_map()["Average"]
    ra, rab, ra_pf, rab_pf = avg[1], avg[2], avg[3], avg[4]

    # The buffer generates well over the paper's ~2x more MLP on average.
    assert rab > 1.5 * ra

    # Prefetching eats part of both schemes' MLP.
    assert rab_pf < rab
    # The buffer keeps a clear advantage even with the prefetcher.
    assert rab_pf > ra_pf

    # Per-benchmark: the big-body stencils show the largest gaps
    # (paper: zeusmp, cactus, milc, bwaves, mcf).
    rows = table.row_map()
    big_gaps = sum(rows[n][2] > 2 * max(rows[n][1], 0.5)
                   for n in ("zeusmp", "cactusADM", "milc", "bwaves", "mcf"))
    assert big_gaps >= 3
