"""Table 2: SPEC06 classification by memory intensity (MPKI).

High: MPKI >= 10; medium: 2 < MPKI < 10; low: MPKI <= 2.  The measured
class of every synthetic benchmark must match the paper's Table 2
membership (a small tolerance band absorbs run-length noise).
"""

from repro.analysis import figures
from repro.workloads import intensity_of, workload_names


def test_table2_mpki_classes(matrix, publish, benchmark):
    table = figures.table2_mpki_classes(matrix)
    publish(table, "table2_mpki_classes.txt")
    benchmark(lambda: figures.table2_mpki_classes(matrix))

    mismatches = []
    for name, mpki, measured, registered in table.rows:
        if measured != registered:
            # Tolerance: within 25% of a class boundary.
            near_boundary = (abs(mpki - 10) < 2.5) or (abs(mpki - 2) < 0.5)
            if not near_boundary:
                mismatches.append((name, mpki, measured, registered))
    assert not mismatches, f"class mismatches: {mismatches}"

    # Spot-check the paper's anchors.
    rows = table.row_map()
    assert rows["mcf"][1] >= 10
    assert rows["libquantum"][1] >= 10
    assert 2 < rows["zeusmp"][1] < 12
    assert rows["calculix"][1] <= 2
    assert intensity_of("mcf") == "high"
    assert len(workload_names()) == len(table.rows)
