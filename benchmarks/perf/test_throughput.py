"""Simulator-throughput (KIPS) benchmark harness.

Run directly for a quick reading::

    PYTHONPATH=src python -m pytest benchmarks/perf -q -s

The full tracked measurement lives in ``repro bench-throughput`` (see
``BENCH_sim_throughput.json`` at the repo root); this harness is the
pytest-facing smoke version: a reduced grid that asserts the measurement
machinery works and — when a committed baseline exists — reports the
current reading against it.  Budgets follow ``REPRO_PERF_INSTS`` /
``REPRO_PERF_WARMUP``.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.analysis import bench

INSTS = int(os.environ.get("REPRO_PERF_INSTS", "5000"))
WARMUP = int(os.environ.get("REPRO_PERF_WARMUP", "3000"))

BASELINE = Path(__file__).resolve().parents[2] / "BENCH_sim_throughput.json"


def test_throughput_normal_mode():
    cell = bench.measure_cell("mcf", "normal", INSTS, WARMUP, reps=1)
    assert cell["committed"] >= INSTS
    assert cell["kips"] > 0
    print(f"\nmcf normal: {cell['kips']:.1f} KIPS")


def test_throughput_rab_mode():
    cell = bench.measure_cell("mcf", "rab", INSTS, WARMUP, reps=1)
    assert cell["committed"] >= INSTS
    assert cell["kips"] > 0
    print(f"\nmcf rab: {cell['kips']:.1f} KIPS")


def test_report_against_committed_baseline():
    """Informational: print the current geomean next to the committed one.

    The hard >30% gate runs in CI on the ``repro bench-throughput
    --check`` path with full budgets; unit-test budgets are too small to
    gate on without flakiness.
    """
    if not BASELINE.exists():
        return
    doc = bench.run_benchmark(workloads=("mcf",), instructions=INSTS,
                              warmup=WARMUP, reps=1)
    committed = bench.load_results(BASELINE)
    print("\ncurrent geomean KIPS:", doc["geomean_kips"])
    print("committed geomean KIPS:", committed.get("geomean_kips"))
