"""Fig. 17: normalized energy, no prefetching.

Paper claims (gmean): traditional runahead +44% energy (front-end active
through every interval); with the ISCA'05 enhancements +9%; the runahead
buffer saves energy (-4.4%, -6.7% with the chain cache); the hybrid is
in between (-2.3%) because it spends some cycles in the less efficient
traditional mode.
"""

from repro.analysis import figures


def test_fig17_energy_nopf(matrix, publish, benchmark):
    table = figures.fig17_energy_nopf(matrix)
    publish(table, "fig17_energy_nopf.txt")
    benchmark(lambda: figures.fig17_energy_nopf(matrix))

    gmean = table.row_map()["GMean"]
    runahead, runahead_enh, rab, rab_cc, hybrid = gmean[1:6]

    # Traditional runahead costs energy; the enhancements reduce the cost.
    assert runahead > 5.0
    assert runahead_enh <= runahead + 1.0

    # The runahead buffer is far cheaper than traditional runahead and
    # lands near/below break-even (paper: -4.4%/-6.7%).
    assert rab < runahead - 8.0
    assert rab_cc <= rab + 1.5
    assert rab_cc < 8.0

    # Hybrid stays close to the buffer's efficiency.
    assert hybrid < runahead - 8.0
