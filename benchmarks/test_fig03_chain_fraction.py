"""Fig. 3: fraction of runahead-executed ops on miss dependence chains.

Paper claim: for most applications only a minority of the operations
traditional runahead executes are needed to generate cache misses (mcf:
36%) — the rest is wasted front-end/back-end energy, the motivation for
the filtered runahead buffer.
"""

from repro.analysis import figures


def test_fig03_chain_fraction(matrix, publish, benchmark):
    table = figures.fig03_chain_fraction(matrix)
    publish(table, "fig03_chain_fraction.txt")
    benchmark(lambda: figures.fig03_chain_fraction(matrix))

    rows = {r[0]: r for r in table.rows}
    measured = {n: row[1] for n, row in rows.items() if row[2] > 100}

    # Most benchmarks: well under half the executed ops are on chains.
    minority = [n for n, pct in measured.items() if pct < 50.0]
    assert len(minority) >= len(measured) // 2

    # omnetpp is the paper's outlier: almost all executed ops are on the
    # (very long) chains.
    if "omnetpp" in measured:
        assert measured["omnetpp"] > 50.0

    # Stencils with big FP bodies waste the most.
    for name in ("zeusmp", "cactusADM"):
        if name in measured:
            assert measured[name] < 30.0
