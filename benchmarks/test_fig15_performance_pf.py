"""Fig. 15: performance with a stream prefetcher.

Paper claims (gmean over the no-PF baseline): pf +37.5%, runahead+pf
+48.3%, buffer+pf +47.1%, buffer+cc+pf +48.2%, hybrid+pf +51.5%.
Runahead modes do well where the prefetcher does not (zeusmp, cactus,
mcf).  Known deviation of this reproduction (see EXPERIMENTS.md): on the
synthetic pure-stream kernels the prefetcher is closer to perfect than on
real SPEC streams, so the buffer+pf combinations trail pf-alone instead
of leading it; traditional runahead + pf preserves the paper's ordering.
"""

from repro.analysis import figures


def test_fig15_performance_pf(matrix, publish, benchmark):
    table = figures.fig15_performance_pf(matrix)
    publish(table, "fig15_performance_pf.txt")
    benchmark(lambda: figures.fig15_performance_pf(matrix))

    rows = table.row_map()
    gmean = rows["GMean"]
    pf, ra_pf = gmean[1], gmean[2]

    # The prefetcher alone is a large win (paper +37.5%).
    assert pf > 20.0
    # Traditional runahead composes with the prefetcher (paper +48.3%).
    assert ra_pf > pf - 2.0

    # Runahead modes add the most where the prefetcher is weakest
    # (paper: zeusmp, cactus, mcf).
    helped = sum(
        max(rows[n][2], rows[n][4], rows[n][5]) > rows[n][1]
        for n in ("mcf", "milc", "soplex", "sphinx3")
    )
    assert helped >= 2

    # All runahead+pf configurations still improve on the no-PF baseline.
    for col in range(1, 6):
        assert gmean[col] > 10.0
