"""Ablation: chain cache size and chain-generation search bandwidth.

The paper argues the chain cache must stay *small* so stale chains age
out (§4.4), and models 2 destination-register CAM searches per cycle
(§5).  These sweeps quantify both choices.
"""

import pytest

from repro.analysis import Table, gmean
from repro.config import RunaheadMode, make_config
from repro.core import simulate

BENCHES = ("mcf", "milc", "soplex")


def _gmean_speedup(**cfg_kwargs):
    ratios = []
    for name in BENCHES:
        base = simulate(name, make_config(), max_instructions=3000).stats
        rab = simulate(
            name,
            make_config(RunaheadMode.BUFFER_CHAIN_CACHE, **cfg_kwargs),
            max_instructions=3000,
        ).stats
        ratios.append(rab.ipc / base.ipc)
    return 100.0 * (gmean(ratios) - 1.0)


@pytest.fixture(scope="module")
def cache_sweep():
    return {n: _gmean_speedup(chain_cache_entries=n) for n in (1, 2, 4, 8)}


def test_chain_cache_size_sweep(cache_sweep, publish, benchmark):
    table = Table("Ablation: chain cache entries (gmean % IPC vs baseline)",
                  ["entries", "speedup_pct"])
    for n, v in cache_sweep.items():
        table.add(n, v)
    publish(table, "ablation_chain_cache.txt")
    benchmark(lambda: dict(cache_sweep))

    # The tiny cache already captures the benefit (stable blocking PCs);
    # growing it further changes little.
    assert all(v > 0 for v in cache_sweep.values())
    assert abs(cache_sweep[8] - cache_sweep[2]) < max(
        10.0, 0.5 * abs(cache_sweep[2]))


@pytest.fixture(scope="module")
def search_sweep():
    return {n: _gmean_speedup(reg_searches_per_cycle=n) for n in (1, 2, 4)}


def test_search_bandwidth_sweep(search_sweep, publish, benchmark):
    table = Table(
        "Ablation: dest-reg CAM searches/cycle (gmean % IPC vs baseline)",
        ["searches_per_cycle", "speedup_pct"])
    for n, v in search_sweep.items():
        table.add(n, v)
    publish(table, "ablation_search_bandwidth.txt")
    benchmark(lambda: dict(search_sweep))

    # Chain generation latency is tiny relative to an interval, and the
    # chain cache removes most generations: bandwidth barely matters.
    values = list(search_sweep.values())
    assert max(values) - min(values) < max(10.0, 0.5 * abs(values[-1]))
