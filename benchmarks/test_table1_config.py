"""Table 1: the simulated system configuration must match the paper."""

from repro.analysis import figures


def test_table1_configuration(publish, benchmark):
    table = benchmark(figures.table1_configuration)
    publish(table, "table1_configuration.txt")
    for parameter, value, paper in table.rows:
        assert value == paper, f"{parameter}: {value} != paper {paper}"
