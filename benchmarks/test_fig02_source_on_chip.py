"""Fig. 2: % of cache misses with source data available on chip.

Paper claim: the large majority of misses have all the data needed to
compute their addresses on chip — these are the misses runahead can
target.  The dependent-walk benchmark (sphinx3) is the main exception.
"""

from repro.analysis import figures
from repro.workloads import medium_high_names


def test_fig02_source_on_chip(matrix, publish, benchmark):
    table = figures.fig02_source_on_chip(matrix)
    publish(table, "fig02_source_on_chip.txt")
    benchmark(lambda: figures.fig02_source_on_chip(matrix))

    rows = table.row_map()
    analyzed = {n: rows[n][2] for n in medium_high_names()}
    onchip = {n: rows[n][1] for n in medium_high_names() if analyzed[n] > 10}

    # Majority of misses targetable by runahead for most benchmarks.
    mostly_onchip = [n for n, pct in onchip.items() if pct >= 70.0]
    assert len(mostly_onchip) >= len(onchip) - 2

    # The serially-dependent walk has a large off-chip-source fraction.
    if analyzed.get("sphinx3", 0) > 10:
        assert onchip["sphinx3"] < 75.0

    # Pure streams compute every address from on-chip data.
    for name in ("libquantum", "bwaves"):
        if analyzed.get(name, 0) > 10:
            assert onchip[name] > 90.0
