"""Fig. 18: normalized energy with prefetching.

Paper claims (gmean vs the no-PF baseline): pf -19.5%; runahead+pf -1.7%
(i.e. it gives back most of the prefetcher's saving); enhancements+pf
-15.4%; buffer+pf -20.8%; buffer+cc+pf -22.5%; hybrid+pf -19.9%.  The
robust orderings: the buffer variants are the most efficient runahead
schemes, and traditional runahead+pf is the least efficient.
"""

from repro.analysis import figures


def test_fig18_energy_pf(matrix, publish, benchmark):
    table = figures.fig18_energy_pf(matrix)
    publish(table, "fig18_energy_pf.txt")
    benchmark(lambda: figures.fig18_energy_pf(matrix))

    gmean = table.row_map()["GMean"]
    pf, ra_pf, ra_enh_pf, rab_pf, rab_cc_pf, hybrid_pf = gmean[1:7]

    # The prefetcher saves energy by cutting execution time.
    assert pf < 0.0
    # Traditional runahead spends back a chunk of that saving.
    assert ra_pf > pf + 3.0
    # The enhancements recover part of it.
    assert ra_enh_pf <= ra_pf + 1.0
    # The buffer variants stay cheaper than traditional runahead + pf.
    assert rab_cc_pf < ra_pf + 2.0
    assert rab_pf < ra_pf + 4.0
    assert hybrid_pf < ra_pf + 4.0
