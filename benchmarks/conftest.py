"""Benchmark fixtures: the shared experiment matrix.

Every ``benchmarks/test_figNN_*.py`` target reproduces one figure/table of
the paper from the same cached (workload x configuration) matrix.  The
first run populates ``results/experiments.json`` (a few minutes of
simulation); later runs re-use it.  Budgets are controlled by
``REPRO_BENCH_INSTS`` / ``REPRO_BENCH_WARMUP``.

Rendered figure reproductions are written to ``results/figures/``.
"""

from __future__ import annotations

import pytest

from repro.analysis import ExperimentMatrix, render, write_report


@pytest.fixture(scope="session")
def matrix():
    m = ExperimentMatrix()
    yield m
    m.save()


@pytest.fixture
def publish(matrix):
    """Render a figure table, persist it, and echo it to the log."""

    def _publish(table, filename):
        path = write_report(table, filename)
        print()
        print(render(table))
        matrix.save()
        return path

    return _publish
