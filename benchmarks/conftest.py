"""Benchmark fixtures: the shared experiment matrix.

Every ``benchmarks/test_figNN_*.py`` target reproduces one figure/table of
the paper from the same cached (workload x configuration) matrix.  The
session fixture pre-populates every cell the figure suite reads in one
process-parallel fan-out (``repro.analysis.parallel``) and persists
``results/experiments.json``; later runs re-use it and individual tests
only read the cache.  Budgets are controlled by ``REPRO_BENCH_INSTS`` /
``REPRO_BENCH_WARMUP``; worker count by ``REPRO_BENCH_JOBS``
(default: all cores).

Rendered figure reproductions are written to ``results/figures/``.
"""

from __future__ import annotations

import pytest

from repro.analysis import ExperimentMatrix, figures, render, write_report
from repro.analysis.parallel import print_progress


@pytest.fixture(scope="session")
def matrix():
    m = ExperimentMatrix()
    simulated = m.prefetch(figures.figure_matrix_cells(),
                           progress=print_progress)
    if simulated:
        print(f"matrix: simulated {simulated} missing cells")
    yield m
    m.save()


@pytest.fixture
def publish(matrix):
    """Render a figure table, persist it, and echo it to the log."""

    def _publish(table, filename):
        path = write_report(table, filename)
        print()
        print(render(table))
        matrix.save()
        return path

    return _publish
