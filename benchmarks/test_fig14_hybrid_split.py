"""Fig. 14: % of runahead cycles spent in the buffer under the hybrid.

Paper claim: the hybrid policy favours the runahead buffer (71% of
runahead cycles on average) but falls back to traditional runahead on
the chain-hostile benchmarks (omnetpp most of the time).
"""

from repro.analysis import figures


def test_fig14_hybrid_split(matrix, publish, benchmark):
    table = figures.fig14_hybrid_split(matrix)
    publish(table, "fig14_hybrid_split.txt")
    benchmark(lambda: figures.fig14_hybrid_split(matrix))

    rows = table.row_map()
    # The hybrid favours the buffer overall (paper: 71%).
    assert rows["Average"][1] > 50.0

    # omnetpp executes mostly (paper: majority) in traditional mode.
    assert rows["omnetpp"][1] < 50.0

    # The short-chain gathers essentially always use the buffer.
    for name in ("mcf", "milc", "soplex"):
        assert rows[name][1] > 80.0
