"""Fig. 11: % of total cycles spent in runahead-buffer mode.

Paper claim: on average 47% of execution cycles are spent in runahead
buffer mode — cycles during which the front-end is clock-gated, the
source of the buffer's dynamic-energy savings.
"""

from repro.analysis import figures


def test_fig11_rab_cycles(matrix, publish, benchmark):
    table = figures.fig11_rab_cycles(matrix)
    publish(table, "fig11_rab_cycles.txt")
    benchmark(lambda: figures.fig11_rab_cycles(matrix))

    rows = table.row_map()
    average = rows["Average"][1]
    # A large fraction of cycles, in the paper's ballpark (47%).
    assert 15.0 <= average <= 70.0

    # Memory-bound gathers spend the most time in buffer mode.
    assert rows["mcf"][1] > 20.0
    # Fractions are sane percentages.
    for name, row in rows.items():
        assert 0.0 <= row[1] <= 100.0
