"""Fig. 12: chain cache hit rate.

Paper claim: benchmarks that benefit most from the chain cache show very
high hit rates (>95% for mcf/soplex class); the cache is tiny (2 entries)
so benchmarks whose blocking PCs rotate across many static loads miss.
"""

from repro.analysis import figures


def test_fig12_chain_cache_hits(matrix, publish, benchmark):
    table = figures.fig12_chain_cache_hits(matrix)
    publish(table, "fig12_chain_cache_hits.txt")
    benchmark(lambda: figures.fig12_chain_cache_hits(matrix))

    rows = table.row_map()
    # The single-delinquent-load gathers hit nearly always.
    for name in ("mcf", "milc", "soplex"):
        hits = rows[name][2]
        if isinstance(hits, int) and hits + rows[name][3] >= 5:
            assert rows[name][1] > 60.0, name

    for name, row in rows.items():
        if name == "Average":
            continue
        assert 0.0 <= row[1] <= 100.0
