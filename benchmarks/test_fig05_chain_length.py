"""Fig. 5: average dependence-chain length in uops.

Paper claim: with the exception of omnetpp (~70 uops), memory-intensive
applications have average chain lengths under 32 uops — hence the 32-uop
runahead buffer; mcf/libquantum/bwaves/soplex are under 20.
"""

from repro.analysis import figures


def test_fig05_chain_length(matrix, publish, benchmark):
    table = figures.fig05_chain_length(matrix)
    publish(table, "fig05_chain_length.txt")
    benchmark(lambda: figures.fig05_chain_length(matrix))

    rows = {r[0]: r for r in table.rows}
    measured = {n: row[1] for n, row in rows.items()
                if n != "Average" and row[2] >= 10}
    assert measured

    # All but omnetpp fit inside the 32-uop runahead buffer.
    for name, length in measured.items():
        if name != "omnetpp":
            assert length <= 32.0, f"{name} chain too long: {length}"

    # omnetpp's chains exceed the buffer cap (paper: ~70 uops).
    if "omnetpp" in measured:
        assert measured["omnetpp"] > 30.0

    # The paper's short-chain set.
    for name in ("mcf", "libquantum", "bwaves", "soplex"):
        if name in measured:
            assert measured[name] < 20.0
