"""Fig. 16: additional DRAM requests vs the no-PF baseline.

Paper claims: traditional runahead is nearly free (+4% requests — it
replays the program's own accurate addresses); the runahead buffer costs
more (+12%, with inaccurate outliers omnetpp/sphinx); the hybrid reduces
that (+9%); the stream prefetcher is by far the most traffic-hungry
(+38%) even with FDP throttling.
"""

from repro.analysis import figures


def test_fig16_memory_traffic(matrix, publish, benchmark):
    table = figures.fig16_memory_traffic(matrix)
    publish(table, "fig16_memory_traffic.txt")
    benchmark(lambda: figures.fig16_memory_traffic(matrix))

    rows = table.row_map()
    gmean = rows["GMean"]
    runahead, rab, rab_cc, hybrid, pf = gmean[1:6]

    # Traditional runahead barely moves traffic.
    assert abs(runahead) < 15.0
    # The prefetcher is the most traffic-hungry scheme.
    assert pf > runahead + 10.0
    assert pf > hybrid
    # The buffer costs more traffic than traditional runahead...
    assert rab >= runahead - 3.0
    # ...and the hybrid does not exceed the prefetcher.
    assert hybrid <= pf

    # The paper's inaccurate-request outliers add real traffic under the
    # buffer.
    assert rows["sphinx3"][2] > rows["sphinx3"][1]
