"""Fig. 1: % of cycles stalled waiting for memory, whole suite.

Paper claim: memory-intensive applications (right of GemsFDTD) spend over
half their cycles stalled on memory and largely run at IPC < 1; the
low-intensity applications barely stall.
"""

from repro.analysis import figures
from repro.workloads import names_by_intensity


def test_fig01_memory_stalls(matrix, publish, benchmark):
    table = figures.fig01_memory_stalls(matrix)
    publish(table, "fig01_memory_stalls.txt")
    benchmark(lambda: figures.fig01_memory_stalls(matrix))

    rows = table.row_map()
    high = names_by_intensity("high")
    low = names_by_intensity("low")

    # High-intensity: majority of cycles stalled on memory, IPC mostly < 1.
    high_stalls = [rows[n][2] for n in high]
    assert sum(s > 50.0 for s in high_stalls) >= len(high) - 2
    high_ipcs = [rows[n][3] for n in high]
    assert sum(i < 1.2 for i in high_ipcs) >= len(high) - 2

    # Low-intensity: little memory stalling.
    low_stalls = [rows[n][2] for n in low]
    assert max(low_stalls) < 30.0

    # Stall time grows with memory intensity on average.
    assert (sum(high_stalls) / len(high_stalls)
            > 3 * sum(low_stalls) / len(low_stalls) if sum(low_stalls)
            else True)
