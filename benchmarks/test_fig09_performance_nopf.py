"""Fig. 9: performance of the runahead configurations, no prefetching.

Paper claims (medium+high gmean over the no-PF baseline):
  runahead +14.3%, runahead buffer +14.4%, +chain cache +17.2%,
  hybrid +21.0%.  Key per-benchmark shapes: the buffer beats traditional
  runahead on mcf/milc/zeusmp/cactus; omnetpp strongly prefers
  traditional runahead; the hybrid never loses badly to either.
"""

from repro.analysis import figures


def test_fig09_performance_nopf(matrix, publish, benchmark):
    table = figures.fig09_performance_nopf(matrix)
    publish(table, "fig09_performance_nopf.txt")
    benchmark(lambda: figures.fig09_performance_nopf(matrix))

    rows = table.row_map()
    gmean = rows["GMean"]
    runahead, rab, rab_cc, hybrid = gmean[1], gmean[2], gmean[3], gmean[4]

    # Everything helps on average, and the paper's ordering holds:
    # runahead <= rab <= rab_cc <= hybrid (with slack for noise).
    assert runahead > 5.0
    assert rab > 5.0
    assert rab_cc >= rab - 2.0
    assert hybrid >= rab_cc - 2.0
    assert hybrid >= runahead - 2.0

    # The runahead buffer's best cases (paper: mcf, milc, zeusmp, cactus).
    wins = sum(rows[n][2] > rows[n][1]
               for n in ("mcf", "milc", "zeusmp", "cactusADM"))
    assert wins >= 3

    # omnetpp prefers traditional runahead; the hybrid follows it there.
    assert rows["omnetpp"][1] > rows["omnetpp"][2] + 5.0
    assert rows["omnetpp"][4] >= rows["omnetpp"][1] - 2.0
