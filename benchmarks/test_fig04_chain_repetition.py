"""Fig. 4: unique vs repeated dependence chains within runahead intervals.

Paper claim: most chains leading to misses in a runahead interval are
repeats of chains already seen in that interval — the speculation the
runahead buffer is built on.
"""

from repro.analysis import figures


def test_fig04_chain_repetition(matrix, publish, benchmark):
    table = figures.fig04_chain_repetition(matrix)
    publish(table, "fig04_chain_repetition.txt")
    benchmark(lambda: figures.fig04_chain_repetition(matrix))

    rows = {r[0]: r for r in table.rows}
    # Only judge benchmarks with a meaningful number of chains.
    measured = {n: row[1] for n, row in rows.items()
                if row[2] + row[3] >= 20}
    assert measured, "no benchmark produced enough chains"

    repeated_majority = [n for n, pct in measured.items() if pct >= 50.0]
    assert len(repeated_majority) >= max(1, int(0.6 * len(measured)))

    # The gather kernels (mcf/milc/soplex) are highly repetitive.
    for name in ("mcf", "milc", "soplex"):
        if name in measured:
            assert measured[name] > 60.0
