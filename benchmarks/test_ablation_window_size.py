"""Ablation: runahead benefit vs out-of-order window (ROB) size.

Runahead exists to *virtually* extend the instruction window (the paper's
§1: "runahead targets cache misses that ... cannot be issued by the core
due to limitations on the size of the reorder buffer").  The corollary
this sweep checks: the bigger the real window, the less runahead is worth
— and the runahead buffer's advantage persists across window sizes.
"""

import pytest

from repro.analysis import Table, gmean
from repro.config import RunaheadMode, make_config
from repro.core import simulate

BENCHES = ("mcf", "milc", "soplex")
ROB_SIZES = (96, 192, 384)


def _config(mode, rob):
    cfg = make_config(mode)
    cfg.core.rob_size = rob
    cfg.core.num_phys_regs = rob + 160
    cfg.validate()
    return cfg


@pytest.fixture(scope="module")
def sweep():
    out = {}
    for rob in ROB_SIZES:
        ratios_ra, ratios_rab = [], []
        for name in BENCHES:
            base = simulate(name, _config(RunaheadMode.NONE, rob),
                            max_instructions=3000).stats
            ra = simulate(name, _config(RunaheadMode.TRADITIONAL, rob),
                          max_instructions=3000).stats
            rab = simulate(name, _config(RunaheadMode.BUFFER, rob),
                           max_instructions=3000).stats
            ratios_ra.append(ra.ipc / base.ipc)
            ratios_rab.append(rab.ipc / base.ipc)
        out[rob] = (100.0 * (gmean(ratios_ra) - 1.0),
                    100.0 * (gmean(ratios_rab) - 1.0))
    return out


def test_window_size_sweep(sweep, publish, benchmark):
    table = Table("Ablation: ROB size vs runahead benefit "
                  "(gmean % IPC over same-ROB baseline)",
                  ["rob_size", "runahead_pct", "rab_pct"])
    for rob in ROB_SIZES:
        table.add(rob, *sweep[rob])
    publish(table, "ablation_window_size.txt")
    benchmark(lambda: dict(sweep))

    # Runahead helps at every window size on the gather set.
    for rob in ROB_SIZES:
        assert sweep[rob][1] > 0.0

    # The benefit shrinks as the real window grows.
    assert sweep[384][1] < sweep[96][1] + 5.0
