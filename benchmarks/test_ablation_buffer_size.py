"""Ablation (beyond the paper's figures): runahead buffer size sweep.

The paper states 32 uops was chosen through sensitivity analysis (§5).
This sweep regenerates that analysis: small buffers truncate chains
(can't hold one loop body), very large ones add nothing because chains
are short (Fig. 5).
"""

import pytest

from repro.analysis import gmean
from repro.config import RunaheadMode, make_config
from repro.core import simulate

BENCHES = ("mcf", "milc", "soplex", "omnetpp")
SIZES = (8, 16, 32, 64)


@pytest.fixture(scope="module")
def sweep():
    results = {}
    for size in SIZES:
        cfg_kwargs = dict(buffer_uops=size, max_chain_length=size)
        ratios = []
        for name in BENCHES:
            base = simulate(name, make_config(), max_instructions=3000).stats
            rab = simulate(
                name,
                make_config(RunaheadMode.BUFFER, **cfg_kwargs),
                max_instructions=3000,
            ).stats
            ratios.append(rab.ipc / base.ipc)
        results[size] = 100.0 * (gmean(ratios) - 1.0)
    return results


def test_buffer_size_sweep(sweep, publish, benchmark):
    from repro.analysis import Table
    table = Table("Ablation: runahead buffer size (gmean % IPC vs baseline)",
                  ["buffer_uops", "speedup_pct"])
    for size in SIZES:
        table.add(size, sweep[size])
    publish(table, "ablation_buffer_size.txt")
    benchmark(lambda: dict(sweep))

    # The paper's operating point is a sensible choice: 32 is at least as
    # good as the small buffers, and 64 adds little beyond 32.
    assert sweep[32] >= sweep[8] - 2.0
    assert abs(sweep[64] - sweep[32]) < max(10.0, 0.5 * abs(sweep[32]))
    # All sizes produce positive gains on the gather set.
    assert all(v > 0 for v in sweep.values())
