"""Per-cycle occupancy sampling of the core's queuing structures.

The simulator's main loop skips provably idle stretches in bulk, so a
"per-cycle" sampler cannot naively fire every ``stride`` host calls:
``Processor.now`` may jump.  The sampler instead records one sample each
time the clock crosses the next stride boundary — exact, because by
construction nothing changes during a skipped stretch.

Samples feed a CSV (one row per sample) and the Perfetto exporter's
counter tracks.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import IO

SAMPLE_FIELDS = (
    "cycle", "mode", "rob", "rs", "load_queue", "store_queue",
    "mshr", "decode_queue", "ready",
)


@dataclass(frozen=True, slots=True)
class OccupancySample:
    """Fill levels of the core's structures at one cycle."""

    cycle: int
    mode: str           # "normal" | "runahead" | "rab"
    rob: int
    rs: int
    load_queue: int
    store_queue: int
    mshr: int
    decode_queue: int
    ready: int

    def row(self) -> tuple:
        return (self.cycle, self.mode, self.rob, self.rs, self.load_queue,
                self.store_queue, self.mshr, self.decode_queue, self.ready)


class OccupancySampler:
    """Collects :class:`OccupancySample` rows at a cycle stride."""

    def __init__(self, stride: int = 64) -> None:
        if stride < 1:
            raise ValueError("stride must be >= 1")
        self.stride = stride
        self.samples: list[OccupancySample] = []
        self._next_cycle = 0

    def on_cycle(self, proc) -> None:
        """Cycle hook: sample when the clock crosses the next boundary."""
        now = proc.now
        if now < self._next_cycle:
            return
        self._next_cycle = now + self.stride
        self.samples.append(OccupancySample(
            cycle=now,
            mode=proc.mode,
            rob=len(proc.rob),
            rs=proc.rs_used,
            load_queue=proc.load_queue_used,
            store_queue=len(proc.store_queue),
            mshr=proc.hierarchy.mshr_occupancy(now),
            decode_queue=len(proc.decode_queue),
            ready=len(proc.ready),
        ))

    # -- export ----------------------------------------------------------------

    def write_csv(self, target: str | Path | IO[str]) -> None:
        if hasattr(target, "write"):
            self._write(target)
            return
        path = Path(target)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", newline="") as handle:
            self._write(handle)

    def _write(self, handle: IO[str]) -> None:
        writer = csv.writer(handle, lineterminator="\n")
        writer.writerow(SAMPLE_FIELDS)
        for sample in self.samples:
            writer.writerow(sample.row())
