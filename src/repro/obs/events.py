"""Typed simulation events and the ring-buffered event trace.

The observability layer records *semantic* events — mode transitions,
chain extractions, DRAM requests — rather than raw per-cycle state.
Every event is a :class:`TraceEvent` whose payload is validated against
the per-kind schema in :data:`EVENT_SCHEMAS`, so exporters (Perfetto,
JSON) and tests can rely on field names and types being stable.

The :class:`EventTrace` is a bounded ring buffer: when full, the oldest
events are dropped (and counted), so tracing a long run keeps the most
recent window instead of exhausting memory.  Per-kind counts cover the
whole run, including dropped events.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Any, Iterator, Mapping

# Per-kind payload schemas: field name -> allowed type(s).  These are the
# contract between the tracer (producer) and the exporters/tests
# (consumers); ``validate_event`` enforces them.
EVENT_SCHEMAS: dict[str, dict[str, tuple[type, ...]]] = {
    # Front-end.
    "fetch_redirect": {
        "target_pc": (int,),        # new fetch PC
        "resume_cycle": (int,),     # first cycle fetch may proceed
    },
    # Runahead interval lifecycle.
    "runahead_enter": {
        "mode": (str,),             # "traditional" | "buffer"
        "blocking_pc": (int,),      # PC of the load blocking the ROB
    },
    "runahead_exit": {
        "mode": (str,),
        "blocking_pc": (int,),
        "entry_cycle": (int,),
        "misses_generated": (int,),
        "pseudo_retired": (int,),
        "used_chain_cache": (bool,),
    },
    # Algorithm 1 chain extraction from the ROB.
    "chain_extract": {
        "pc": (int,),               # blocking PC the chain targets
        "length": (int,),           # uops in the generated chain
        "hit_cap": (bool,),         # dropped a uop at max_length
        "found_pc": (bool,),        # walk reached the blocking PC again
        "usable": (bool,),
        "gen_cycles": (int,),       # modelled generation latency
    },
    # Chain-cache consultation (§4.4).
    "chain_cache": {
        "pc": (int,),
        "hit": (bool,),
        "length": (int,),           # cached chain length (0 on miss)
    },
    # One DRAM line transfer, issue through data return.
    "dram": {
        "line": (int,),             # line address
        "kind": (str,),             # demand/store/runahead/prefetch/...
        "write": (bool,),
        "done_cycle": (int,),       # data-return cycle
        "channel": (int,),
        "bank": (int,),
        "row": (int,),
        "queue": (int,),            # memory-queue occupancy at issue
    },
    # Stream-prefetcher activity.
    "prefetch_issue": {
        "line": (int,),
    },
    "prefetch_resolve": {
        "useful": (bool,),          # demand-hit before eviction
        "late": (bool,),            # demand arrived while fill in flight
    },
    # Feedback-directed prefetching window close (HPCA'07 throttle).
    "fdp_window": {
        "accuracy": (float,),
        "issued": (int,),
        "resolved": (int,),
        "action": (str,),           # "up" | "down" | "steady" | "hold"
        "level": (int,),            # aggressiveness-ladder index after
    },
    # One fast-forward region translation (jit lane, once per region).
    "ff.block_translate": {
        "pc": (int,),               # region entry PC
        "length": (int,),           # instructions covered by the region
        "loop": (bool,),            # region closes a back edge
    },
    # Live-point checkpointing (two-level tier with a CheckpointPlan).
    "ckpt.save": {
        "position": (int,),         # stride boundary (instructions from entry)
        "store": (bool,),           # persisted to the on-disk store
    },
    "ckpt.restore": {
        "position": (int,),
        "store": (bool,),           # True: store hit; False: in-memory reuse
    },
    # Multi-core shared-memory interference (repro.multicore): emitted by
    # the SharedLLC complex via its mc_hook, onto the shared trace.
    "mc.cross_evict": {
        "line": (int,),             # evicted line address
        "evictor_core": (int,),     # core whose fill caused the eviction
        "owner_core": (int,),       # core that had inserted the line
        "kind": (str,),             # request kind of the evicting fill
    },
    "mc.mshr_reject": {
        "core": (int,),             # rejected core
        "kind": (str,),             # rejected request kind
        "contended": (bool,),       # True: other cores held the pool /
                                    # the per-core speculative cap hit
    },
}

EVENT_KINDS: tuple[str, ...] = tuple(sorted(EVENT_SCHEMAS))

# Farm service events (repro.farm): the serving-layer counterpart of the
# simulation schemas above.  These are host-side lifecycle events — they
# carry no simulated-cycle timestamp and never enter an EventTrace; the
# farm streams them to clients over the progress endpoint and validates
# every emission against this table so the wire format stays stable.
FARM_EVENT_SCHEMAS: dict[str, dict[str, tuple[type, ...]]] = {
    # Cell lifecycle (cell = the KEY_SCHEMA cell key being served).
    "farm.queued": {"cell": (str,)},        # new work, awaiting admission
    "farm.coalesced": {"cell": (str,)},     # joined an in-flight run
    "farm.hit": {"cell": (str,), "source": (str,)},  # "store" | "memo"
    "farm.admitted": {"cell": (str,), "batch": (int,)},
    "farm.requeued": {"cell": (str,), "attempt": (int,)},  # worker crash
    "farm.done": {"cell": (str,), "attempts": (int,)},
    "farm.error": {"cell": (str,), "message": (str,)},
    # Job lifecycle (job = one client request, possibly many cells).
    "farm.job_done": {"job": (str,), "cells": (int,), "ok": (bool,)},
}

FARM_EVENT_KINDS: tuple[str, ...] = tuple(sorted(FARM_EVENT_SCHEMAS))


def validate_farm_event(event: Mapping[str, Any]) -> None:
    """Raise ``ValueError`` unless a farm event dict (``{"event": kind,
    **payload}``) matches its kind's schema exactly."""
    kind = event.get("event")
    schema = FARM_EVENT_SCHEMAS.get(kind)
    if schema is None:
        raise ValueError(f"unknown farm event kind {kind!r}")
    payload = {k: v for k, v in event.items() if k != "event"}
    missing = schema.keys() - payload.keys()
    extra = payload.keys() - schema.keys()
    if missing or extra:
        raise ValueError(
            f"{kind}: payload fields mismatch "
            f"(missing={sorted(missing)}, extra={sorted(extra)})"
        )
    for field_name, types in schema.items():
        value = payload[field_name]
        if type(value) not in types:
            raise ValueError(
                f"{kind}.{field_name}: expected "
                f"{'/'.join(t.__name__ for t in types)}, "
                f"got {type(value).__name__} ({value!r})"
            )


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One recorded simulation event."""

    kind: str
    cycle: int
    data: Mapping[str, Any]

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "cycle": self.cycle, **self.data}


def validate_event(event: TraceEvent) -> None:
    """Raise ``ValueError`` unless ``event`` matches its kind's schema."""
    schema = EVENT_SCHEMAS.get(event.kind)
    if schema is None:
        raise ValueError(f"unknown event kind {event.kind!r}")
    if not isinstance(event.cycle, int) or event.cycle < 0:
        raise ValueError(f"{event.kind}: bad cycle {event.cycle!r}")
    missing = schema.keys() - event.data.keys()
    extra = event.data.keys() - schema.keys()
    if missing or extra:
        raise ValueError(
            f"{event.kind}: payload fields mismatch "
            f"(missing={sorted(missing)}, extra={sorted(extra)})"
        )
    for field_name, types in schema.items():
        value = event.data[field_name]
        # bool is an int subclass; require exact-type matches so an int
        # never slips into a bool field or vice versa.
        if type(value) not in types:
            raise ValueError(
                f"{event.kind}.{field_name}: expected "
                f"{'/'.join(t.__name__ for t in types)}, "
                f"got {type(value).__name__} ({value!r})"
            )


class EventTrace:
    """Bounded ring buffer of :class:`TraceEvent` with per-kind counts."""

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self.counts: Counter[str] = Counter()
        self.total_emitted = 0

    # -- producer side --------------------------------------------------------

    # kind/cycle are positional-only: payload fields may legitimately be
    # named "kind" (e.g. the dram event's request kind).
    def emit(self, kind: str, cycle: int, /, **data: Any) -> None:
        self._events.append(TraceEvent(kind, cycle, data))
        self.counts[kind] += 1
        self.total_emitted += 1

    # -- consumer side --------------------------------------------------------

    @property
    def dropped(self) -> int:
        """Events evicted by the ring buffer."""
        return self.total_emitted - len(self._events)

    def events(self, kind: str | None = None) -> list[TraceEvent]:
        if kind is None:
            return list(self._events)
        return [e for e in self._events if e.kind == kind]

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def validate(self) -> None:
        """Schema-check every buffered event (tests / exporters)."""
        for event in self._events:
            validate_event(event)

    def summary(self) -> str:
        lines = [f"{self.total_emitted} events "
                 f"({len(self)} buffered, {self.dropped} dropped)"]
        for kind in sorted(self.counts):
            lines.append(f"  {kind:18s} {self.counts[kind]}")
        return "\n".join(lines)
