"""Structured observability: event tracing, Perfetto export, occupancy
sampling, and the metrics registry.

Everything here is opt-in and zero-cost when unused: a processor only
pays for tracing after :meth:`Tracer.attach` installs its
instance-method shadows (see :mod:`repro.obs.tracer`), and a traced run
is cycle-identical to an untraced one.

Quick start::

    from repro.obs import run_traced
    run = run_traced("mcf", "hybrid", max_instructions=5_000)
    print(run.tracer.trace.summary())
    run.write_perfetto("mcf_hybrid.perfetto.json")
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional

from .events import EVENT_KINDS, EVENT_SCHEMAS, FARM_EVENT_KINDS, \
    FARM_EVENT_SCHEMAS, EventTrace, TraceEvent, validate_event, \
    validate_farm_event
from .metrics import Metric, MetricsRegistry, default_registry, farm_registry
from .perfetto import (export_perfetto, export_perfetto_multicore,
                       write_perfetto)
from .sampler import OccupancySample, OccupancySampler
from .tracer import Tracer

__all__ = [
    "EVENT_KINDS",
    "EVENT_SCHEMAS",
    "EventTrace",
    "FARM_EVENT_KINDS",
    "FARM_EVENT_SCHEMAS",
    "Metric",
    "MetricsRegistry",
    "OccupancySample",
    "OccupancySampler",
    "TraceEvent",
    "TracedRun",
    "Tracer",
    "default_registry",
    "export_perfetto",
    "export_perfetto_multicore",
    "farm_registry",
    "run_traced",
    "validate_event",
    "validate_farm_event",
    "write_perfetto",
]


@dataclass
class TracedRun:
    """A simulation result bundled with its trace."""

    result: object          # repro.core.SimulationResult
    tracer: Tracer

    @property
    def stats(self):
        return self.result.stats

    @property
    def trace(self) -> EventTrace:
        return self.tracer.trace

    @property
    def samples(self) -> list[OccupancySample]:
        sampler = self.tracer.sampler
        return sampler.samples if sampler is not None else []

    def write_perfetto(self, path: str | Path) -> Path:
        return write_perfetto(
            path, self.trace, self.samples,
            metadata={"workload": self.stats.workload,
                      "config": self.stats.config_name},
        )

    def write_occupancy(self, path: str | Path) -> Path:
        sampler = self.tracer.sampler
        if sampler is None:
            raise ValueError("run was traced without an occupancy sampler")
        sampler.write_csv(path)
        return Path(path)

    def write_metrics(self, path: str | Path) -> Path:
        return default_registry().write_json(self.stats, path)


def run_traced(
    workload,
    config=None,
    max_instructions: int = 20_000,
    warmup_instructions: int = 12_000,
    kinds: Optional[Iterable[str]] = None,
    capacity: int = 65536,
    occupancy_stride: Optional[int] = None,
    config_name: str = "",
) -> TracedRun:
    """Simulate one workload with a tracer attached (after warm-up).

    ``config`` may be a :class:`~repro.config.SystemConfig` or a named
    configuration string; ``kinds`` selects the event kinds to record
    (default: all); ``occupancy_stride`` additionally samples structure
    occupancy every N cycles.
    """
    from ..config import build_named_config
    from ..core import simulate

    if isinstance(config, str):
        config_name = config_name or config
        config = build_named_config(config)
    sampler = (OccupancySampler(occupancy_stride)
               if occupancy_stride is not None else None)
    tracer = Tracer(kinds=kinds, capacity=capacity, sampler=sampler)
    result = simulate(
        workload, config,
        max_instructions=max_instructions,
        warmup_instructions=warmup_instructions,
        config_name=config_name,
        attach=tracer.attach,
    )
    return TracedRun(result=result, tracer=tracer)
