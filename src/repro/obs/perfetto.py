"""Chrome trace-event / Perfetto export of an :class:`EventTrace`.

Produces the JSON object format consumed by ``ui.perfetto.dev`` and
``chrome://tracing``: one process ("repro-sim") with one thread track
per pipeline structure —

* **front-end** — fetch redirects, chain extractions, chain-cache probes;
* **runahead** — one slice per interval (``traditional`` / ``buffer``)
  plus entry instants;
* **prefetcher** — stream-prefetch issues, accuracy resolutions, FDP
  window closes;
* **dram c{channel}b{bank}** — one track per DRAM bank, one slice per
  line transfer from issue to data return;

plus an ``occupancy`` counter track fed by the
:class:`~repro.obs.sampler.OccupancySampler` (ROB/RS/LSQ/MSHR fill
levels render as stacked series).

Timestamps are simulated cycles, exported 1 cycle = 1 us (the trace
format's native unit); durations likewise.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Optional

from .events import EventTrace, TraceEvent, validate_event
from .sampler import OccupancySample

PID = 1
TID_FRONTEND = 1
TID_RUNAHEAD = 2
TID_PREFETCH = 3
TID_SHARED = 4              # mc.* interference events (multicore export)
_TID_DRAM_BASE = 10
_DRAM_CHANNEL_STRIDE = 64   # banks per channel never approaches this

#: Process id of the shared-memory track group in a multicore export
#: (cores are pids 1..N).
_PID_SHARED = 1000

_THREAD_NAMES = {
    TID_FRONTEND: "front-end",
    TID_RUNAHEAD: "runahead",
    TID_PREFETCH: "prefetcher",
    TID_SHARED: "interference",
}


def _dram_tid(channel: int, bank: int) -> int:
    return _TID_DRAM_BASE + channel * _DRAM_CHANNEL_STRIDE + bank


def _meta(name: str, args: dict[str, Any], tid: int = 0) -> dict[str, Any]:
    return {"ph": "M", "pid": PID, "tid": tid, "name": name, "args": args}


def _instant(tid: int, name: str, ts: int,
             args: dict[str, Any]) -> dict[str, Any]:
    return {"ph": "i", "pid": PID, "tid": tid, "name": name, "ts": ts,
            "s": "t", "args": args}


def _slice(tid: int, name: str, ts: int, dur: int,
           args: dict[str, Any]) -> dict[str, Any]:
    return {"ph": "X", "pid": PID, "tid": tid, "name": name, "ts": ts,
            "dur": dur, "args": args}


def _convert(event: TraceEvent) -> Optional[dict[str, Any]]:
    kind, cycle, data = event.kind, event.cycle, dict(event.data)
    if kind == "fetch_redirect":
        return _instant(TID_FRONTEND, "redirect", cycle, data)
    if kind == "chain_extract":
        return _slice(TID_FRONTEND, "chain_extract", cycle,
                      data.pop("gen_cycles"), data)
    if kind == "chain_cache":
        name = "chain_cache_hit" if data["hit"] else "chain_cache_miss"
        return _instant(TID_FRONTEND, name, cycle, data)
    if kind == "runahead_enter":
        return _instant(TID_RUNAHEAD, f"enter:{data['mode']}", cycle, data)
    if kind == "runahead_exit":
        entry = data.pop("entry_cycle")
        return _slice(TID_RUNAHEAD, data.pop("mode"), entry,
                      cycle - entry, data)
    if kind == "dram":
        tid = _dram_tid(data["channel"], data["bank"])
        return _slice(tid, data.pop("kind"), cycle,
                      data.pop("done_cycle") - cycle, data)
    if kind == "prefetch_issue":
        return _instant(TID_PREFETCH, "issue", cycle, data)
    if kind == "prefetch_resolve":
        name = "useful" if data["useful"] else "unused"
        return _instant(TID_PREFETCH, name, cycle, data)
    if kind == "fdp_window":
        return _instant(TID_PREFETCH, f"fdp:{data['action']}", cycle, data)
    if kind == "ff.block_translate":
        # Translation costs host time, not simulated cycles, so it
        # renders as an instant at the gap's cycle position.
        return _instant(TID_FRONTEND, "ff_translate", cycle, data)
    if kind in ("ckpt.save", "ckpt.restore"):
        # Checkpointing is host work between segments; render as an
        # instant labelled with the stride position.
        name = "ckpt_save" if kind == "ckpt.save" else "ckpt_restore"
        return _instant(TID_FRONTEND, name, cycle, data)
    if kind == "mc.cross_evict":
        name = ("pollution_evict" if data["kind"] == "prefetch"
                else "cross_evict")
        return _instant(TID_SHARED, name, cycle, data)
    if kind == "mc.mshr_reject":
        name = ("mshr_reject_contended" if data["contended"]
                else "mshr_reject")
        return _instant(TID_SHARED, name, cycle, data)
    return None  # unknown kinds are skipped, not fatal


def export_perfetto(
    trace: EventTrace,
    samples: Iterable[OccupancySample] = (),
    metadata: Optional[dict[str, Any]] = None,
) -> dict[str, Any]:
    """Render the trace (+ occupancy samples) as a trace-event document.

    Every event is schema-checked first (``validate_event``): a payload
    that drifted from :data:`~repro.obs.events.EVENT_SCHEMAS` fails the
    export instead of producing a silently malformed trace.
    """
    events: list[dict[str, Any]] = [
        _meta("process_name", {"name": "repro-sim"}),
    ]
    used_tids: set[int] = set()
    body: list[dict[str, Any]] = []
    for event in trace:
        validate_event(event)
        converted = _convert(event)
        if converted is not None:
            body.append(converted)
            used_tids.add(converted["tid"])
    for tid in sorted(used_tids):
        name = _THREAD_NAMES.get(tid)
        if name is None:
            channel, bank = divmod(tid - _TID_DRAM_BASE,
                                   _DRAM_CHANNEL_STRIDE)
            name = f"dram c{channel}b{bank}"
        events.append(_meta("thread_name", {"name": name}, tid=tid))
    events.extend(body)
    for sample in samples:
        events.append({
            "ph": "C", "pid": PID, "tid": 0, "name": "occupancy",
            "ts": sample.cycle,
            "args": {"rob": sample.rob, "rs": sample.rs,
                     "load_queue": sample.load_queue,
                     "store_queue": sample.store_queue,
                     "mshr": sample.mshr},
        })
    doc: dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"tool": "repro.obs",
                      "clock": "1 trace us = 1 core cycle"},
    }
    if metadata:
        doc["otherData"].update(metadata)
    return doc


def write_perfetto(
    path: str | Path,
    trace: EventTrace,
    samples: Iterable[OccupancySample] = (),
    metadata: Optional[dict[str, Any]] = None,
) -> Path:
    """Write the trace-event JSON; returns the path."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    doc = export_perfetto(trace, samples, metadata)
    out.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    return out


def export_perfetto_multicore(
    core_traces: list[EventTrace],
    shared_trace: EventTrace,
    path: str | Path,
    metadata: Optional[dict[str, Any]] = None,
) -> Path:
    """Multi-core trace-event export: one process group per core
    (``core0`` … ``coreN``, pids 1..N, each with the usual per-core
    thread tracks) plus a ``shared-memory`` process carrying the DRAM
    bank tracks and the ``mc.*`` interference instants.  Written to
    ``path``; returns it.
    """
    events: list[dict[str, Any]] = []
    body: list[dict[str, Any]] = []

    def add_trace(trace: EventTrace, pid: int, process: str) -> None:
        events.append({**_meta("process_name", {"name": process}),
                       "pid": pid})
        used_tids: set[int] = set()
        for event in trace:
            validate_event(event)
            converted = _convert(event)
            if converted is not None:
                converted["pid"] = pid
                body.append(converted)
                used_tids.add(converted["tid"])
        for tid in sorted(used_tids):
            name = _THREAD_NAMES.get(tid)
            if name is None:
                channel, bank = divmod(tid - _TID_DRAM_BASE,
                                       _DRAM_CHANNEL_STRIDE)
                name = f"dram c{channel}b{bank}"
            events.append({**_meta("thread_name", {"name": name}, tid=tid),
                           "pid": pid})

    for core, trace in enumerate(core_traces):
        add_trace(trace, core + 1, f"core{core}")
    add_trace(shared_trace, _PID_SHARED, "shared-memory")
    events.extend(body)

    doc: dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"tool": "repro.obs",
                      "clock": "1 trace us = 1 core cycle"},
    }
    if metadata:
        doc["otherData"].update(metadata)
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    return out
