"""Event tracer: attaches the observability layer to a live processor.

The tracer follows the zero-cost hook pattern established by
``Processor.set_cycle_hook``: every instrumentation point is an
*instance-attribute shadow* of a method that the simulator calls through
``self`` (or through a sub-component reference).  A processor without a
tracer attached carries none of these attributes, so the flattened hot
path never consults any observability code — and a traced run executes
the exact same model code in the exact same order, making it
cycle-identical to an untraced run (enforced by
``tests/test_obs.py``).

Instrumented seams (all off the per-cycle hot path):

=================  ========================================================
event kind         shadowed method
=================  ========================================================
fetch_redirect     ``FetchUnit.redirect``
runahead_enter     ``Processor._enter_traditional`` / ``_enter_rab``
runahead_exit      ``Processor._exit_runahead``
chain_extract      ``Processor._generate_chain``
chain_cache        ``ChainCache.lookup``
dram               ``MemoryController.request``
prefetch_issue     ``MemoryHierarchy._issue_prefetches``
prefetch_resolve   ``StreamPrefetcher.record_useful`` /
                   ``record_unused_eviction``
fdp_window         ``StreamPrefetcher._feedback``
ff.block_translate ``Processor._ff_translate_hook`` (plain attribute: the
                   jit fast-forward lane looks it up with ``getattr``
                   and passes it to the translator)
ckpt.save /        ``Processor._ckpt_hook`` (plain attribute: the
ckpt.restore       live-point engine looks it up with ``getattr`` and
                   fires it at each stride-boundary snapshot or restore)
=================  ========================================================

Occupancy sampling additionally installs a cycle hook via
``Processor.set_cycle_hook`` (mutually exclusive with the invariant
checker of :mod:`repro.verify`, which uses the same hook).
"""

from __future__ import annotations

from typing import Iterable, Optional

from .events import EVENT_KINDS, EventTrace
from .sampler import OccupancySampler


class Tracer:
    """Records typed events (and optional occupancy samples) from one
    :class:`~repro.core.Processor`."""

    def __init__(
        self,
        kinds: Optional[Iterable[str]] = None,
        capacity: int = 65536,
        sampler: Optional[OccupancySampler] = None,
    ) -> None:
        selected = set(EVENT_KINDS) if kinds is None else set(kinds)
        unknown = selected - set(EVENT_KINDS)
        if unknown:
            raise ValueError(
                f"unknown event kind(s) {sorted(unknown)}; "
                f"choose from {list(EVENT_KINDS)}"
            )
        self.kinds = selected
        self.trace = EventTrace(capacity)
        self.sampler = sampler
        self.proc = None
        self._shadowed: list[tuple[object, str]] = []

    # -- lifecycle -------------------------------------------------------------

    def attach(self, proc) -> None:
        """Install the instance-method shadows on ``proc``.

        Attach *after* warm-up: functional warm-up replays redirects and
        cache fills that are not part of the timed run.
        """
        if self.proc is not None:
            raise RuntimeError("tracer is already attached")
        self.proc = proc
        kinds = self.kinds
        emit = self.trace.emit

        if "fetch_redirect" in kinds:
            fetch = proc.fetch
            orig_redirect = fetch.redirect

            def redirect(pc: int, at_cycle: int) -> None:
                orig_redirect(pc, at_cycle)
                emit("fetch_redirect", proc.now,
                     target_pc=pc, resume_cycle=at_cycle)

            self._shadow(fetch, "redirect", redirect)

        if "runahead_enter" in kinds:
            orig_trad = proc._enter_traditional
            orig_rab = proc._enter_rab

            def enter_traditional(head, now: int) -> None:
                orig_trad(head, now)
                emit("runahead_enter", now,
                     mode="traditional", blocking_pc=head.pc)

            def enter_rab(head, chain, gen_cycles: int, used_cc: bool,
                          now: int) -> None:
                orig_rab(head, chain, gen_cycles, used_cc, now)
                emit("runahead_enter", now,
                     mode="buffer", blocking_pc=head.pc)

            self._shadow(proc, "_enter_traditional", enter_traditional)
            self._shadow(proc, "_enter_rab", enter_rab)

        if "runahead_exit" in kinds:
            orig_exit = proc._exit_runahead

            def exit_runahead(now: int) -> None:
                mode = "buffer" if proc.mode == "rab" else "traditional"
                blocking_pc = proc._blocking_pc
                orig_exit(now)
                record = proc.ra_policy.last_interval
                assert record is not None
                emit("runahead_exit", now, mode=mode,
                     blocking_pc=blocking_pc,
                     entry_cycle=record.entry_cycle,
                     misses_generated=record.misses_generated,
                     pseudo_retired=record.uops_executed,
                     used_chain_cache=record.used_chain_cache)

            self._shadow(proc, "_exit_runahead", exit_runahead)

        if "chain_extract" in kinds:
            orig_generate = proc._generate_chain

            def generate(head):
                result = orig_generate(head)
                emit("chain_extract", proc.now, pc=head.pc,
                     length=len(result.chain), hit_cap=result.hit_cap,
                     found_pc=result.found_pc, usable=result.usable,
                     gen_cycles=result.cycles)
                return result

            self._shadow(proc, "_generate_chain", generate)

        if "chain_cache" in kinds and proc.chain_cache is not None:
            chain_cache = proc.chain_cache
            orig_lookup = chain_cache.lookup

            def lookup(pc: int):
                cached = orig_lookup(pc)
                emit("chain_cache", proc.now, pc=pc,
                     hit=cached is not None,
                     length=len(cached) if cached is not None else 0)
                return cached

            self._shadow(chain_cache, "lookup", lookup)

        if "dram" in kinds:
            controller = proc.hierarchy.controller
            dram = controller.dram
            orig_request = controller.request

            def request(line_addr: int, now: int, is_write: bool = False,
                        kind: str = "demand") -> int:
                # occupancy() drains exactly the completed entries the
                # request itself would drain, so timing is unchanged.
                queue = controller.occupancy(now)
                done = orig_request(line_addr, now, is_write=is_write,
                                    kind=kind)
                channel, bank, row = dram.map_address(line_addr)
                emit("dram", now, line=line_addr, kind=kind, write=is_write,
                     done_cycle=done, channel=channel, bank=bank, row=row,
                     queue=queue)
                return done

            self._shadow(controller, "request", request)

        prefetcher = proc.hierarchy.prefetcher
        if prefetcher is not None:
            if "prefetch_issue" in kinds:
                hierarchy = proc.hierarchy
                orig_issue = hierarchy._issue_prefetches

                def issue_prefetches(lines: list[int], now: int) -> None:
                    orig_issue(lines, now)
                    for line in lines:
                        emit("prefetch_issue", now, line=line)

                self._shadow(hierarchy, "_issue_prefetches",
                             issue_prefetches)

            if "prefetch_resolve" in kinds:
                orig_useful = prefetcher.record_useful
                orig_unused = prefetcher.record_unused_eviction

                def record_useful(late: bool = False) -> None:
                    orig_useful(late=late)
                    emit("prefetch_resolve", proc.now,
                         useful=True, late=late)

                def record_unused_eviction() -> None:
                    orig_unused()
                    emit("prefetch_resolve", proc.now,
                         useful=False, late=False)

                self._shadow(prefetcher, "record_useful", record_useful)
                self._shadow(prefetcher, "record_unused_eviction",
                             record_unused_eviction)

            if "fdp_window" in kinds:
                orig_feedback = prefetcher._feedback

                def feedback() -> None:
                    issued, useful, unused = prefetcher.interval_snapshot()
                    level_before = prefetcher._level
                    orig_feedback()
                    resolved = useful + unused
                    if prefetcher.interval_snapshot()[0] != 0:
                        action = "hold"   # too few resolved: window open
                    elif prefetcher._level > level_before:
                        action = "up"
                    elif prefetcher._level < level_before:
                        action = "down"
                    else:
                        action = "steady"
                    emit("fdp_window", proc.now,
                         accuracy=useful / resolved if resolved else 0.0,
                         issued=issued, resolved=resolved, action=action,
                         level=prefetcher._level)

                self._shadow(prefetcher, "_feedback", feedback)

        if "ff.block_translate" in kinds:
            # Not a method shadow: fast_forward fetches this attribute
            # with getattr(..., None) each gap and hands it to the jit
            # translator, which fires it once per newly compiled region.
            # Absent attribute == tracing off == zero cost.
            def block_translate(pc: int, length: int, loop: bool) -> None:
                emit("ff.block_translate", proc.now,
                     pc=pc, length=length, loop=loop)

            self._shadow(proc, "_ff_translate_hook", block_translate)

        if "ckpt.save" in kinds or "ckpt.restore" in kinds:
            # Same plain-attribute pattern as the translate hook: the
            # live-point engine fetches this with getattr(..., None) and
            # fires it once per stride-boundary snapshot/restore.
            save_on = "ckpt.save" in kinds
            restore_on = "ckpt.restore" in kinds

            def ckpt(action: str, position: int, store: bool) -> None:
                if action == "save":
                    if save_on:
                        emit("ckpt.save", proc.now,
                             position=position, store=store)
                elif restore_on:
                    emit("ckpt.restore", proc.now,
                         position=position, store=store)

            self._shadow(proc, "_ckpt_hook", ckpt)

        if self.sampler is not None:
            proc.set_cycle_hook(self.sampler.on_cycle)
            self._shadowed.append((proc, "_step"))

    def detach(self) -> None:
        """Remove every shadow, restoring the untraced processor."""
        for obj, name in reversed(self._shadowed):
            delattr(obj, name)
        self._shadowed.clear()
        self.proc = None

    def _shadow(self, obj, name: str, wrapper) -> None:
        setattr(obj, name, wrapper)
        self._shadowed.append((obj, name))
