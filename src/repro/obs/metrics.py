"""Metrics registry: the named, documented face of ``SimStats``.

``SimStats`` accumulated ad-hoc counters figure by figure; downstream
consumers (figures, benchmarks, dashboards) each hard-coded the subset
they read.  The registry gives every exported number a stable dotted
name, a one-line description and a unit, and renders any ``SimStats``
to JSON/CSV without the consumer knowing the dataclass layout.

Usage::

    from repro.obs import default_registry
    registry = default_registry()
    values = registry.collect(result.stats)       # {"core.ipc": ..., ...}
    registry.write_json(result.stats, "metrics.json")

``SimStats.metrics()`` is a shorthand for
``default_registry().collect(stats)``.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, IO, Iterable


@dataclass(frozen=True)
class Metric:
    """One named, documented simulation metric."""

    name: str                      # dotted path, e.g. "core.ipc"
    description: str
    unit: str                      # "count" | "cycles" | "ratio" | ...
    extract: Callable[[Any], Any]  # SimStats -> value


class MetricsRegistry:
    """Ordered collection of :class:`Metric` with exporters."""

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    # -- registration ---------------------------------------------------------

    def register(self, name: str, description: str, unit: str,
                 extract: Callable[[Any], Any]) -> Metric:
        if name in self._metrics:
            raise ValueError(f"metric {name!r} already registered")
        metric = Metric(name, description, unit, extract)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, attr: str, description: str,
                unit: str = "count") -> Metric:
        """Register a metric that reads one ``SimStats`` attribute."""
        return self.register(name, description, unit,
                             lambda stats, _a=attr: getattr(stats, _a))

    # -- access ----------------------------------------------------------------

    def names(self) -> list[str]:
        return list(self._metrics)

    def get(self, name: str) -> Metric:
        try:
            return self._metrics[name]
        except KeyError:
            raise KeyError(
                f"unknown metric {name!r}; see registry.describe()"
            ) from None

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def describe(self) -> str:
        """Human-readable metric catalogue."""
        width = max(len(n) for n in self._metrics) if self._metrics else 0
        lines = []
        for metric in self._metrics.values():
            lines.append(f"{metric.name:{width}s}  [{metric.unit}] "
                         f"{metric.description}")
        return "\n".join(lines)

    # -- collection / export ---------------------------------------------------

    def collect(self, stats, names: Iterable[str] | None = None
                ) -> dict[str, Any]:
        selected = self.names() if names is None else list(names)
        return {name: self.get(name).extract(stats) for name in selected}

    def write_json(self, stats, path: str | Path) -> Path:
        out = Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "workload": stats.workload,
            "config": stats.config_name,
            "metrics": self.collect(stats),
            "units": {m.name: m.unit for m in self._metrics.values()},
        }
        out.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        return out

    def write_csv(self, stats_list: Iterable[Any],
                  target: str | Path | IO[str]) -> None:
        """One row per ``SimStats`` (workload/config prefix the metrics)."""
        if hasattr(target, "write"):
            self._write_csv(stats_list, target)
            return
        path = Path(target)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", newline="") as handle:
            self._write_csv(stats_list, handle)

    def _write_csv(self, stats_list: Iterable[Any], handle: IO[str]) -> None:
        writer = csv.writer(handle, lineterminator="\n")
        writer.writerow(["workload", "config"] + self.names())
        for stats in stats_list:
            values = self.collect(stats)
            writer.writerow([stats.workload, stats.config_name]
                            + [values[n] for n in self.names()])


def farm_registry() -> MetricsRegistry:
    """The experiment-farm serving metrics (collected from a
    :class:`repro.farm.FarmService`): request outcomes — store hit,
    in-memory hit, coalesced onto an in-flight run, or admitted for
    simulation — plus queue/batch/retry accounting and the
    content-addressed result store's own counters.  Served over
    ``GET /v1/metrics`` by ``repro serve``."""
    r = MetricsRegistry()
    c = r.counter
    c("farm.requests", "requests", "cell requests received")
    c("farm.memo_hits", "memo_hits", "requests served from the in-memory memo")
    c("farm.store_hits", "store_hits",
      "requests served from the result store")
    c("farm.coalesced", "coalesced",
      "requests coalesced onto an in-flight run")
    c("farm.admitted", "admitted", "cells admitted for simulation")
    c("farm.batches", "batches", "admission batches (thundering-herd size)")
    c("farm.requeues", "requeues", "cells requeued after a worker crash")
    c("farm.completed", "completed", "cells simulated to completion")
    c("farm.failures", "failures", "cells that failed permanently")
    c("farm.inflight", "inflight", "cells currently being simulated")
    c("farm.store.hits", "result_store_hits", "result-store lookup hits")
    c("farm.store.misses", "result_store_misses",
      "result-store lookup misses")
    c("farm.store.puts", "result_store_puts", "result-store entries written")
    return r


def default_registry() -> MetricsRegistry:
    """The standard catalogue covering every ``SimStats`` counter the
    paper's figures consume, plus the derived ratios."""
    r = MetricsRegistry()
    c = r.counter
    # Core progress.
    c("core.cycles", "cycles", "simulated cycles", unit="cycles")
    c("core.committed_insts", "committed_insts",
      "architecturally committed instructions")
    c("core.fetched_uops", "fetched_uops", "uops fetched")
    c("core.dispatched_uops", "dispatched_uops", "uops renamed/dispatched")
    c("core.issued_uops", "issued_uops", "uops issued to execution")
    c("core.squashed_uops", "squashed_uops",
      "uops squashed (mispredict/flush)")
    r.register("core.ipc", "committed instructions per cycle", "ratio",
               lambda s: s.ipc)
    # Stall / mode accounting.
    c("stall.memstall_cycles", "memstall_cycles",
      "cycles the ROB head waited on DRAM", unit="cycles")
    r.register("stall.memstall_fraction",
               "fraction of cycles stalled on memory (Fig. 1)", "ratio",
               lambda s: s.memstall_fraction)
    c("stall.frontend_idle_cycles", "frontend_idle_cycles",
      "cycles the front-end fetched nothing (incl. clock-gated RAB mode)",
      unit="cycles")
    # Branches.
    c("branch.cond_branches", "cond_branches",
      "conditional branches resolved")
    c("branch.cond_mispredicts", "cond_mispredicts",
      "conditional branches mispredicted")
    r.register("branch.accuracy", "conditional-branch prediction accuracy",
               "ratio", lambda s: s.branch_accuracy)
    # Caches.
    c("cache.l1d_accesses", "l1d_accesses", "L1D lookups")
    c("cache.l1d_misses", "l1d_misses", "L1D misses")
    c("cache.llc_accesses", "llc_accesses", "LLC lookups")
    c("cache.llc_hits", "llc_hits", "LLC hits")
    c("cache.llc_demand_misses", "llc_demand_misses",
      "LLC misses on the demand path (MPKI numerator)")
    r.register("cache.mpki", "LLC demand misses per kilo-instruction",
               "ratio", lambda s: s.mpki)
    # DRAM.
    c("dram.reads", "dram_reads", "DRAM line reads")
    c("dram.writes", "dram_writes", "DRAM line writes (writebacks)")
    r.register("dram.requests", "total DRAM line transfers (Fig. 16)",
               "count", lambda s: s.dram_requests)
    c("dram.row_hits", "dram_row_hits", "row-buffer hits")
    c("dram.row_conflicts", "dram_row_conflicts", "row-buffer conflicts")
    c("dram.activates", "dram_activates", "row activates (energy)")
    # Prefetcher.
    c("prefetch.issued", "prefetches_issued", "stream prefetches issued")
    c("prefetch.useful", "prefetches_useful",
      "prefetched lines later hit by demand")
    # Runahead.
    c("runahead.intervals", "runahead_intervals",
      "runahead intervals entered (all modes)")
    c("runahead.rab_intervals", "rab_intervals", "buffer-mode intervals")
    c("runahead.traditional_intervals", "traditional_intervals",
      "traditional-mode intervals")
    c("runahead.cycles_traditional", "cycles_in_traditional",
      "cycles in traditional runahead", unit="cycles")
    c("runahead.cycles_rab", "cycles_in_rab",
      "cycles in runahead-buffer mode (Fig. 11)", unit="cycles")
    c("runahead.pseudo_retired", "runahead_pseudo_retired",
      "uops pseudo-retired during runahead")
    c("runahead.misses_generated", "runahead_misses_generated",
      "DRAM misses prefetched by runahead (MLP, Fig. 10)")
    r.register("runahead.misses_per_interval",
               "misses generated per interval (Fig. 10)", "ratio",
               lambda s: s.misses_per_interval)
    c("runahead.inv_ops", "inv_ops", "poisoned (INV) uops during runahead")
    c("runahead.chain_generations", "chain_generations",
      "Algorithm 1 chain extractions")
    c("runahead.chain_gen_cycles", "chain_gen_cycles",
      "cycles spent generating chains", unit="cycles")
    c("runahead.chain_cache_hits", "chain_cache_hits",
      "chain-cache hits (Fig. 12)")
    c("runahead.chain_cache_misses", "chain_cache_misses",
      "chain-cache misses (Fig. 12)")
    r.register("runahead.hybrid_rab_share",
               "fraction of runahead cycles in buffer mode (Fig. 14)",
               "ratio", lambda s: s.hybrid_rab_share)
    # Energy.
    r.register("energy.total_j", "total energy (core + DRAM)", "joules",
               lambda s: s.total_energy_j)
    r.register("energy.frontend_j", "front-end dynamic energy", "joules",
               lambda s: s.energy_report.get("frontend_dynamic", 0.0))
    return r
