"""Opt-in per-cycle invariant checking for the out-of-order core.

The checker attaches to a :class:`~repro.core.Processor` through
``Processor.set_cycle_hook`` — a debug shadow of ``_step`` that exists
only on instances with a hook installed, so the production hot loop is
untouched when checking is off.  After every simulated cycle it
validates the structural invariants whose violation would otherwise
corrupt results *silently*:

* **ROB order** — sequence numbers strictly increase head to tail, and
  no squashed uop lingers in the window;
* **Store-queue/ROB consistency** — the store queue holds exactly the
  in-flight stores of the ROB, in program order, within capacity;
* **Resource counters** — ``load_queue_used`` / ``rs_used`` equal what
  the ROB actually contains (a drifted counter deadlocks or over-issues
  long after the bug that moved it);
* **Rename sanity** — the free list has no duplicates and never overlaps
  the speculative RAT (nor, in normal mode, the commit RAT);
* **No runahead state after exit** — in normal mode there is no
  checkpoint, the runahead buffer is inactive, no ROB uop carries
  runahead/poison provenance, and no RAT- or commit-RAT-visible physical
  register has its poison bit set;
* **Interval sanity** — a runahead mode implies an open interval record
  whose ``entry_cycle <= now``, with the scheduled exit no earlier than
  the entry (``exit_cycle >= entry_cycle``, the inversion that
  ``IntervalRecord.cycles`` used to clamp away).
"""

from __future__ import annotations

from ..core import Processor


class InvariantError(AssertionError):
    """A per-cycle structural invariant of the core was violated."""


class InvariantChecker:
    """Validates core invariants after each cycle (or every ``every``-th)."""

    def __init__(self, processor: Processor, every: int = 1) -> None:
        if every < 1:
            raise ValueError("every must be >= 1")
        self.proc = processor
        self.every = every
        self.cycles_checked = 0
        self._countdown = 0

    # -- hook ----------------------------------------------------------------

    def on_cycle(self, proc: Processor) -> None:
        self._countdown -= 1
        if self._countdown <= 0:
            self._countdown = self.every
            self.check_now()

    def _fail(self, message: str) -> None:
        proc = self.proc
        raise InvariantError(
            f"invariant violated at cycle {proc.now} "
            f"(mode={proc.mode}, committed={proc.committed}): {message}"
        )

    # -- the checks ----------------------------------------------------------

    def check_now(self) -> None:
        self.cycles_checked += 1
        proc = self.proc

        # ROB order, flags, and derived resource counts.
        last_seq = -1
        loads = 0
        unissued = 0
        rob_stores = []
        for uop in proc.rob:
            if uop.squashed:
                self._fail(f"squashed uop {uop!r} still in the ROB")
            if uop.seq <= last_seq:
                self._fail(
                    f"ROB seq not strictly increasing: {uop.seq} after "
                    f"{last_seq}")
            last_seq = uop.seq
            inst = uop.inst
            if inst.is_load:
                loads += 1
            elif inst.is_store:
                rob_stores.append(uop)
            if not uop.issued:
                unissued += 1
        if proc.load_queue_used != loads:
            self._fail(
                f"load_queue_used={proc.load_queue_used} but the ROB holds "
                f"{loads} loads")
        if proc.rs_used != unissued:
            self._fail(
                f"rs_used={proc.rs_used} but the ROB holds {unissued} "
                f"un-issued uops")

        # Store-queue/ROB consistency.
        sq = proc.store_queue
        if len(sq.entries) > sq.capacity:
            self._fail(f"store queue over capacity: {len(sq.entries)} > "
                       f"{sq.capacity}")
        if sq.entries != rob_stores:
            self._fail(
                f"store queue out of sync with the ROB: sq holds "
                f"{[u.seq for u in sq.entries]}, ROB stores are "
                f"{[u.seq for u in rob_stores]}")

        # Rename sanity.
        rename = proc.rename
        free = rename.free_list
        free_set = set(free)
        if len(free_set) != len(free):
            self._fail("duplicate physical register on the free list")
        overlap = free_set.intersection(rename.rat)
        if overlap:
            self._fail(f"RAT maps free physical registers {sorted(overlap)}")

        mode = proc.mode
        in_ra = mode != "normal"
        if in_ra != proc._in_ra:
            self._fail(f"_in_ra={proc._in_ra} inconsistent with mode={mode}")

        current = proc.ra_policy.current
        if not in_ra:
            # No runahead-poisoned state may be visible after exit.
            if proc._checkpoint is not None:
                self._fail("checkpoint still held in normal mode")
            if proc.rab.active:
                self._fail("runahead buffer active in normal mode")
            overlap = free_set.intersection(rename.commit_rat)
            if overlap:
                self._fail(
                    f"commit RAT maps free physical registers "
                    f"{sorted(overlap)}")
            for uop in proc.rob:
                if uop.runahead or uop.from_rab:
                    self._fail(f"runahead-provenance uop {uop!r} in the ROB "
                               f"in normal mode")
                if uop.poisoned:
                    self._fail(f"poisoned uop {uop!r} in the ROB in normal "
                               f"mode")
            poison = proc.prf.poison
            for arch in range(len(rename.rat)):
                if poison[rename.rat[arch]]:
                    self._fail(f"RAT-visible poisoned register R{arch}")
                if poison[rename.commit_rat[arch]]:
                    self._fail(f"commit-RAT-visible poisoned register "
                               f"R{arch}")
        else:
            # Interval accounting sanity.
            if current is None:
                self._fail("in a runahead mode with no open interval record")
            if current.entry_cycle > proc.now:
                self._fail(
                    f"interval entry_cycle={current.entry_cycle} is in the "
                    f"future")
            if proc._exit_cycle < current.entry_cycle:
                self._fail(
                    f"scheduled exit_cycle={proc._exit_cycle} precedes "
                    f"entry_cycle={current.entry_cycle}")
            if proc._checkpoint is None:
                self._fail("in a runahead mode without a checkpoint")

        intervals = proc.ra_policy.intervals
        if intervals:
            record = intervals[-1]
            if record.exit_cycle < record.entry_cycle:
                self._fail(
                    f"recorded interval inverted: exit={record.exit_cycle} "
                    f"< entry={record.entry_cycle}")


def attach_invariant_checker(processor: Processor, every: int = 1,
                             allow_shared: bool = False) -> InvariantChecker:
    """Create a checker and install it as the processor's cycle hook.

    A core on a shared hierarchy is refused by default: the checker's
    invariants are core-local and hold per core, but its verdicts are
    conventionally read as whole-run soundness — and co-runners mutate
    the shared LLC/MSHR state underneath the checked core between its
    cycles.  Pass ``allow_shared=True`` to attach anyway, scoping the
    verdict to this core's structures only.
    """
    if processor.hierarchy.is_shared and not allow_shared:
        raise ValueError(
            "refusing to attach an invariant checker to a core on a "
            "shared hierarchy: its verdict covers core-local structures "
            "only (pass allow_shared=True to attach with that scope)")
    checker = InvariantChecker(processor, every=every)
    processor.set_cycle_hook(checker.on_cycle)
    return checker
