"""Seed-sweep driver for the differential fuzz harness.

``verify_seed`` builds one fuzz program and differentially executes it
against every requested core configuration.  On a divergence it greedily
minimizes the reproducer — dropping whole blocks, then shrinking the
outer trip count, as long as the divergence (same kind, same config)
persists — so the report ends with the smallest program that still
fails.  ``run_verify`` sweeps a seed range, writes one report file per
failure, and returns an aggregate summary for the CLI / CI job.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from .differential import Divergence, diff_run, render_divergence
from .fuzz import FuzzProgram, build_fuzz_program, rebuild

#: Every named config the golden grid covers — each exercises a distinct
#: mode of the core (no-runahead, traditional, buffer, buffer+chain
#: cache, hybrid).
DEFAULT_CONFIGS = ("baseline", "runahead", "rab", "rab_cc", "hybrid")


@dataclass
class VerifyOutcome:
    """Result of differentially executing one seed on all configs."""

    seed: int
    insts: int
    configs: tuple[str, ...]
    divergences: list[Divergence] = field(default_factory=list)
    #: Minimized reproducer per failing config, parallel to divergences.
    reproducers: list[FuzzProgram] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences


def _same_failure(a: Divergence, b: Optional[Divergence]) -> bool:
    return b is not None and a.kind == b.kind


def minimize(
    fp: FuzzProgram,
    config: str,
    max_insts: int,
    divergence: Divergence,
    invariants: bool = False,
) -> tuple[FuzzProgram, Divergence]:
    """Greedy shrink: drop blocks, then halve the outer trip count,
    keeping each change only while the same kind of divergence remains."""
    spec = fp.spec

    def still_fails(candidate: FuzzProgram) -> Optional[Divergence]:
        div = diff_run(candidate, config, max_insts, config_name=config,
                       invariants=invariants)
        return div if _same_failure(divergence, div) else None

    # Pass 1..n: drop one block at a time until no single drop preserves
    # the failure.
    blocks = spec.blocks
    shrunk = True
    while shrunk and len(blocks) > 1:
        shrunk = False
        for i in range(len(blocks)):
            candidate_blocks = blocks[:i] + blocks[i + 1:]
            candidate = rebuild(spec, blocks=candidate_blocks)
            div = still_fails(candidate)
            if div is not None:
                blocks = candidate_blocks
                fp, divergence = candidate, div
                shrunk = True
                break

    # Shrink the outer loop trip count.
    iters = fp.spec.outer_iterations
    while iters > 1:
        candidate = rebuild(spec, blocks=blocks,
                            outer_iterations=max(1, iters // 2))
        div = still_fails(candidate)
        if div is None:
            break
        fp, divergence = candidate, div
        iters = fp.spec.outer_iterations

    return fp, divergence


def verify_seed(
    seed: int,
    insts: int = 20_000,
    configs: Sequence[str] = DEFAULT_CONFIGS,
    invariants: bool = False,
    invariant_every: int = 1,
    do_minimize: bool = True,
) -> VerifyOutcome:
    """Differentially execute one fuzz seed on every config."""
    fp = build_fuzz_program(seed, target_insts=insts // 2)
    outcome = VerifyOutcome(seed=seed, insts=insts, configs=tuple(configs))
    for name in configs:
        div = diff_run(fp, name, insts, config_name=name,
                       invariants=invariants,
                       invariant_every=invariant_every)
        if div is None:
            continue
        repro = fp
        if do_minimize:
            repro, div = minimize(fp, name, insts, div,
                                  invariants=invariants)
        outcome.divergences.append(div)
        outcome.reproducers.append(repro)
    return outcome


def run_verify(
    seeds: int = 50,
    seed_start: int = 0,
    insts: int = 20_000,
    configs: Sequence[str] = DEFAULT_CONFIGS,
    invariants: bool = False,
    invariant_every: int = 1,
    report_dir: Optional[str] = None,
    progress: Optional[Callable[[VerifyOutcome], None]] = None,
) -> dict:
    """Sweep ``seeds`` consecutive seeds; write a report per failure.

    Returns a summary dict with ``seeds_run``, ``configs``, ``failures``
    (list of (seed, config, kind)) and ``reports`` (paths written).
    """
    failures: list[tuple[int, str, str]] = []
    reports: list[str] = []
    for seed in range(seed_start, seed_start + seeds):
        outcome = verify_seed(
            seed, insts=insts, configs=configs, invariants=invariants,
            invariant_every=invariant_every,
        )
        if progress is not None:
            progress(outcome)
        for div, repro in zip(outcome.divergences, outcome.reproducers):
            failures.append((div.seed, div.config, div.kind))
            if report_dir is not None:
                os.makedirs(report_dir, exist_ok=True)
                path = os.path.join(
                    report_dir,
                    f"divergence_seed{div.seed}_{div.config}.txt")
                with open(path, "w") as fh:
                    fh.write(render_divergence(div, repro, insts))
                reports.append(path)
    return {
        "seeds_run": seeds,
        "seed_start": seed_start,
        "insts": insts,
        "configs": list(configs),
        "failures": failures,
        "reports": reports,
    }
