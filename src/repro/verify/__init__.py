"""Differential correctness verification of the out-of-order core.

The cycle-level :class:`~repro.core.Processor` must compute exactly the
architectural results of the in-order functional
:class:`~repro.isa.Interpreter`, for every operating mode (baseline,
traditional runahead, runahead buffer, hybrid).  This package provides
the standing oracle that enforces that:

* :mod:`repro.verify.fuzz` — a seeded generator of randomized but
  structured programs (pointer chases, aliasing store/load pairs,
  call/branch webs, R0 edge cases, long-latency dependence chains,
  nested counted loops) that are guaranteed to terminate;
* :mod:`repro.verify.differential` — runs one program through both the
  interpreter oracle and the full OoO core, diffs the retirement streams
  (pc, next_pc, dest_value, mem_addr, taken) and the final architectural
  register/memory state, and renders a divergence report that pinpoints
  the first mismatching retired op;
* :mod:`repro.verify.invariants` — an opt-in per-cycle invariant checker
  hooked into ``Processor._step`` via a debug shadow (ROB seq
  monotonicity, store-queue/ROB consistency, no runahead-poisoned state
  visible after exit, interval entry/exit sanity);
* :mod:`repro.verify.harness` — the seed-sweep driver behind the
  ``repro verify`` CLI subcommand and the CI ``verify-fuzz`` job,
  including greedy block-level minimization of failing programs.
"""

from .differential import (
    Divergence,
    RetireRecord,
    diff_run,
    oracle_stream,
    processor_stream,
    render_divergence,
)
from .fuzz import FuzzProgram, FuzzSpec, build_fuzz_program, rebuild
from .harness import DEFAULT_CONFIGS, VerifyOutcome, run_verify, verify_seed
from .invariants import InvariantChecker, InvariantError, attach_invariant_checker

__all__ = [
    "DEFAULT_CONFIGS",
    "Divergence",
    "FuzzProgram",
    "FuzzSpec",
    "InvariantChecker",
    "InvariantError",
    "RetireRecord",
    "VerifyOutcome",
    "attach_invariant_checker",
    "build_fuzz_program",
    "diff_run",
    "oracle_stream",
    "processor_stream",
    "rebuild",
    "render_divergence",
    "run_verify",
    "verify_seed",
]
