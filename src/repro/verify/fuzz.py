"""Seeded generator of randomized-but-structured verification programs.

Programs are assembled from *blocks* — each a small, self-contained code
pattern chosen to stress one part of the out-of-order machinery:

``alu``
    Random straight-line ALU/immediate ops over the register pool
    (renaming pressure, forwarding through the PRF).
``chase``
    Pointer chases: each loaded value, masked into the data window,
    becomes the next load address (serialized load chains, the pattern
    runahead exists to accelerate).
``alias``
    Store/load pairs over a small set of shared slots, with both
    statically-known and computed store addresses (store->load
    forwarding and conservative memory disambiguation).
``web``
    Forward conditional-branch webs with filler ops (mispredict
    recovery, squash bookkeeping, predictor snapshots).
``call``
    Calls into shared subroutines placed after the HALT (RAS prediction,
    link-register writes, returns).
``r0``
    R0 edge cases: discarded writes, zero reads, R0 store data, loads
    into R0, branches comparing against R0.
``longlat``
    MUL/DIV/FDIV dependence chains, including divide-by-zero (long
    scheduler occupancy, non-unit latencies).
``innerloop``
    Short counted inner loops (re-renaming of the same static code,
    repeated store/load patterns, loop-exit mispredicts).

All randomness is drawn when the :class:`FuzzSpec` is created and stored
as plain data, so a program is a *pure function of its spec*.  That is
what makes minimization sound: the harness can drop blocks from a
failing spec and rebuild, and the surviving blocks emit exactly the same
instructions.

Termination is guaranteed by construction: all internal branches are
forward, inner loops are counted with dedicated registers, and the
whole body sits inside one counted outer loop followed by HALT.

Register conventions (the block pool never touches the reserved ones):

=====  =======================================
R1-12  general pool (seeded with random values)
R13    address/filler scratch
R14    data-window base
R15/16 inner-loop counter/bound
R17/18 outer-loop counter/bound
R31    link register (CALL/RET)
=====  =======================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Optional

from ..isa import DataMemory, Program, ProgramBuilder

POOL = tuple(f"R{i}" for i in range(1, 13))
SCRATCH = "R13"
BASE_REG = "R14"
INNER_CTR, INNER_BOUND = "R15", "R16"
OUTER_CTR, OUTER_BOUND = "R17", "R18"

WINDOW_BASE = 0x40000
WINDOW_MASK = 0xFF8          # 512 words, 8-byte aligned
ALIAS_MASK = 0x78            # 16 shared slots for aliasing pairs
SEEDED_WORDS = 64            # window words with explicit initial values

_ALU3 = ("add", "sub", "xor", "and_", "or_", "shl", "shr")
_CONDS = ("beq", "bne", "blt", "bge")
_BLOCK_KINDS = ("alu", "chase", "alias", "web", "call", "r0",
                "longlat", "innerloop")


@dataclass(frozen=True)
class Block:
    """One generated code pattern: a kind plus fully-drawn primitive ops."""

    block_id: int
    kind: str
    ops: tuple

    def dynamic_cost(self) -> int:
        """Worst-case dynamic instructions one execution of the block costs."""
        return _ops_cost(self.ops)


@dataclass(frozen=True)
class FuzzSpec:
    """Everything needed to deterministically rebuild one fuzz program."""

    seed: int
    reg_seeds: tuple[int, ...]           # initial values of R1..R12
    blocks: tuple[Block, ...]
    subroutines: tuple[tuple, ...]       # primitive-op tuples, one per sub
    outer_iterations: int
    init_mem: tuple[tuple[int, int], ...]  # (byte addr, value) pairs


@dataclass(frozen=True)
class FuzzProgram:
    """A built fuzz program plus its reproducible initial memory image."""

    spec: FuzzSpec
    program: Program

    @property
    def seed(self) -> int:
        return self.spec.seed

    def memory(self) -> DataMemory:
        """A fresh, identically-initialized data memory for one run."""
        memory = DataMemory()
        for addr, value in self.spec.init_mem:
            memory.store(addr, value)
        return memory


def _ops_cost(ops: Iterable[tuple]) -> int:
    cost = 0
    for op in ops:
        kind = op[0]
        if kind == "chase":
            cost += 3
        elif kind in ("st_comp", "ld_comp"):
            cost += 3
        elif kind == "br":
            cost += 1 + op[4]
        elif kind == "call":
            cost += 1
        elif kind == "loop":
            cost += 2 + op[1] * (_ops_cost(op[2]) + 2)
        else:
            cost += 1
    return cost


# ---------------------------------------------------------------------------
# Spec generation (all randomness happens here)
# ---------------------------------------------------------------------------

def _draw_value(rng: random.Random) -> int:
    kind = rng.randrange(4)
    if kind == 0:
        return rng.randrange(0, 128)
    if kind == 1:
        return rng.randrange(-128, 0)
    if kind == 2:
        return rng.getrandbits(32)
    return rng.getrandbits(63)


def _draw_simple_op(rng: random.Random) -> tuple:
    """One primitive op with no control flow (loop/sub bodies)."""
    choice = rng.randrange(10)
    if choice < 4:
        return ("alu", rng.choice(_ALU3), rng.choice(POOL),
                rng.choice(POOL), rng.choice(POOL))
    if choice < 6:
        return ("addi", rng.choice(POOL), rng.choice(POOL),
                rng.randrange(-64, 65))
    if choice == 6:
        return ("chase", rng.choice(POOL), rng.choice(POOL))
    if choice == 7:
        return ("st_imm", rng.choice(POOL), rng.randrange(16))
    if choice == 8:
        return ("ld_imm", rng.choice(POOL), rng.randrange(16))
    return ("mov", rng.choice(POOL), rng.choice(POOL))


def _draw_block(rng: random.Random, block_id: int, num_subs: int) -> Block:
    kind = rng.choice(_BLOCK_KINDS if num_subs else
                      tuple(k for k in _BLOCK_KINDS if k != "call"))
    ops: list[tuple] = []
    if kind == "alu":
        for _ in range(rng.randrange(2, 7)):
            choice = rng.randrange(6)
            if choice < 3:
                ops.append(("alu", rng.choice(_ALU3), rng.choice(POOL),
                            rng.choice(POOL), rng.choice(POOL)))
            elif choice == 3:
                ops.append(("addi", rng.choice(POOL), rng.choice(POOL),
                            rng.randrange(-64, 65)))
            elif choice == 4:
                ops.append(("andi", rng.choice(POOL), rng.choice(POOL),
                            rng.randrange(0, 256)))
            else:
                ops.append(("li", rng.choice(POOL), _draw_value(rng)))
    elif kind == "chase":
        src = rng.choice(POOL)
        for _ in range(rng.randrange(2, 6)):
            dst = rng.choice(POOL)
            ops.append(("chase", dst, src))
            src = dst
    elif kind == "alias":
        for _ in range(rng.randrange(2, 5)):
            data = rng.choice(POOL)
            if rng.random() < 0.5:
                # Computed store address followed by an exact-alias load:
                # the load must wait for (or forward from) the store.
                addr_src = rng.choice(POOL)
                ops.append(("st_comp", data, addr_src))
                ops.append(("ld_comp", rng.choice(POOL), addr_src))
            else:
                slot = rng.randrange(16)
                ops.append(("st_imm", data, slot))
                # Load the same slot half the time, a near slot otherwise.
                load_slot = slot if rng.random() < 0.5 else rng.randrange(16)
                ops.append(("ld_imm", rng.choice(POOL), load_slot))
    elif kind == "web":
        for j in range(rng.randrange(1, 4)):
            ops.append(("br", rng.choice(_CONDS), rng.choice(POOL),
                        rng.choice(POOL), rng.randrange(1, 4),
                        f"{block_id}_{j}"))
    elif kind == "call":
        for _ in range(rng.randrange(1, 3)):
            ops.append(("call", rng.randrange(num_subs)))
    elif kind == "r0":
        patterns = (
            ("addi", "R0", rng.choice(POOL), rng.randrange(-16, 17)),
            ("alu", "add", rng.choice(POOL), "R0", rng.choice(POOL)),
            ("st_imm", "R0", rng.randrange(16)),
            ("ld_imm", "R0", rng.randrange(16)),
            ("chase", "R0", rng.choice(POOL)),
            ("br", rng.choice(_CONDS), rng.choice(POOL), "R0",
             rng.randrange(1, 3), f"{block_id}_z"),
            ("li", "R0", _draw_value(rng)),
            ("mov", rng.choice(POOL), "R0"),
        )
        for op in rng.sample(patterns, rng.randrange(2, 5)):
            ops.append(op)
    elif kind == "longlat":
        chain_reg = rng.choice(POOL)
        for _ in range(rng.randrange(2, 5)):
            opname = rng.choice(("mul", "div", "fmul", "fdiv", "fadd"))
            ops.append(("alu", opname, chain_reg, chain_reg,
                        rng.choice(POOL)))
        if rng.random() < 0.5:
            zero_reg = rng.choice(POOL)
            ops.append(("li", zero_reg, 0))
            ops.append(("alu", "div", rng.choice(POOL), chain_reg, zero_reg))
    else:  # innerloop
        body = tuple(_draw_simple_op(rng) for _ in range(rng.randrange(1, 4)))
        ops.append(("loop", rng.randrange(2, 7), body, str(block_id)))
    return Block(block_id=block_id, kind=kind, ops=tuple(ops))


def _draw_subroutine(rng: random.Random, index: int) -> tuple:
    ops: list[tuple] = [_draw_simple_op(rng)
                        for _ in range(rng.randrange(2, 6))]
    if rng.random() < 0.5:
        ops.insert(rng.randrange(len(ops) + 1),
                   ("br", rng.choice(_CONDS), rng.choice(POOL),
                    rng.choice(POOL), rng.randrange(1, 3), f"s{index}"))
    return tuple(ops)


def make_spec(seed: int, target_insts: int = 10_000) -> FuzzSpec:
    """Draw a spec whose dynamic length is roughly ``target_insts / 2``
    (comfortably inside the verification budget, so the program HALTs)."""
    rng = random.Random(seed)
    num_subs = rng.randrange(1, 4)
    subroutines = tuple(_draw_subroutine(rng, i) for i in range(num_subs))
    num_blocks = rng.randrange(3, 11)
    blocks = tuple(_draw_block(rng, i, num_subs) for i in range(num_blocks))
    reg_seeds = tuple(_draw_value(rng) for _ in POOL)
    init_mem = tuple(
        (WINDOW_BASE + 8 * i, _draw_value(rng)) for i in range(SEEDED_WORDS)
    )

    sub_cost = max((_ops_cost(s) + 2 for s in subroutines), default=0)
    per_iter = sum(b.dynamic_cost() for b in blocks) + 2
    for block in blocks:
        if block.kind == "call":
            per_iter += sum(sub_cost for op in block.ops if op[0] == "call")
    setup = len(POOL) + 4
    outer = (target_insts // 2 - setup) // max(per_iter, 1)
    outer_iterations = max(2, min(64, outer))
    return FuzzSpec(
        seed=seed,
        reg_seeds=reg_seeds,
        blocks=blocks,
        subroutines=subroutines,
        outer_iterations=outer_iterations,
        init_mem=init_mem,
    )


# ---------------------------------------------------------------------------
# Program assembly (pure function of the spec)
# ---------------------------------------------------------------------------

def _emit_ops(b: ProgramBuilder, ops: Iterable[tuple], prefix: str) -> None:
    label_n = 0
    for op in ops:
        kind = op[0]
        if kind == "alu":
            _, name, rd, rs1, rs2 = op
            getattr(b, name)(rd, rs1, rs2)
        elif kind == "addi":
            b.addi(op[1], op[2], op[3])
        elif kind == "andi":
            b.andi(op[1], op[2], op[3])
        elif kind == "li":
            b.li(op[1], op[2])
        elif kind == "mov":
            b.mov(op[1], op[2])
        elif kind == "chase":
            _, dst, src = op
            b.andi(SCRATCH, src, WINDOW_MASK)
            b.add(SCRATCH, SCRATCH, BASE_REG)
            b.load(dst, SCRATCH, 0)
        elif kind == "st_imm":
            b.store(op[1], BASE_REG, 8 * op[2])
        elif kind == "ld_imm":
            b.load(op[1], BASE_REG, 8 * op[2])
        elif kind == "st_comp":
            _, data, addr_src = op
            b.andi(SCRATCH, addr_src, ALIAS_MASK)
            b.add(SCRATCH, SCRATCH, BASE_REG)
            b.store(data, SCRATCH, 0)
        elif kind == "ld_comp":
            _, rd, addr_src = op
            b.andi(SCRATCH, addr_src, ALIAS_MASK)
            b.add(SCRATCH, SCRATCH, BASE_REG)
            b.load(rd, SCRATCH, 0)
        elif kind == "br":
            _, cond, rs1, rs2, nfiller, tag = op
            label = f"{prefix}br{tag}_{label_n}"
            label_n += 1
            getattr(b, cond)(rs1, rs2, label)
            for _ in range(nfiller):
                b.addi(SCRATCH, SCRATCH, 1)
            b.label(label)
        elif kind == "call":
            b.call(f"sub{op[1]}")
        elif kind == "loop":
            _, iters, body, tag = op
            label = f"{prefix}lp{tag}_{label_n}"
            label_n += 1
            b.li(INNER_CTR, 0)
            b.li(INNER_BOUND, iters)
            b.label(label)
            _emit_ops(b, body, prefix=label + "_")
            b.addi(INNER_CTR, INNER_CTR, 1)
            b.bne(INNER_CTR, INNER_BOUND, label)
        else:  # pragma: no cover - spec vocabulary is closed
            raise ValueError(f"unknown primitive op {kind!r}")


def build_program(spec: FuzzSpec) -> Program:
    b = ProgramBuilder()
    for reg, value in zip(POOL, spec.reg_seeds):
        b.li(reg, value)
    b.li(SCRATCH, 0)
    b.li(BASE_REG, WINDOW_BASE)
    b.li(OUTER_CTR, 0)
    b.li(OUTER_BOUND, spec.outer_iterations)
    b.label("outer")
    for block in spec.blocks:
        _emit_ops(b, block.ops, prefix=f"b{block.block_id}_")
    b.addi(OUTER_CTR, OUTER_CTR, 1)
    b.bne(OUTER_CTR, OUTER_BOUND, "outer")
    b.halt()
    # Subroutines live after the HALT; only CALL reaches them.
    for i, sub in enumerate(spec.subroutines):
        b.label(f"sub{i}")
        _emit_ops(b, sub, prefix=f"sub{i}_")
        b.ret()
    return b.build(name=f"fuzz_{spec.seed}")


def build_fuzz_program(seed: int, target_insts: int = 10_000) -> FuzzProgram:
    """Generate the fuzz program for one seed."""
    spec = make_spec(seed, target_insts)
    return FuzzProgram(spec=spec, program=build_program(spec))


def rebuild(spec: FuzzSpec, blocks: Optional[tuple[Block, ...]] = None,
            outer_iterations: Optional[int] = None) -> FuzzProgram:
    """Rebuild a (possibly reduced) program from an existing spec.

    Used by the minimizer: dropping blocks or shrinking the outer loop
    yields a smaller program whose surviving instructions are identical.
    """
    from dataclasses import replace
    if blocks is not None:
        spec = replace(spec, blocks=tuple(blocks))
    if outer_iterations is not None:
        spec = replace(spec, outer_iterations=outer_iterations)
    return FuzzProgram(spec=spec, program=build_program(spec))


def format_program(program: Program) -> str:
    """A human-readable listing for divergence reports."""
    lines = [f"{pc:5d}: {inst!r}" for pc, inst in
             enumerate(program.instructions)]
    return "\n".join(lines)
