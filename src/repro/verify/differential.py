"""Differential execution: OoO core vs. the functional interpreter oracle.

Both sides execute the same program against identically-initialized
memories.  The oracle's retirement stream is the ground truth; the
processor's architectural commit stream (captured via
``Processor.commit_hook``) must match it op for op in

* ``pc`` — program order itself,
* ``next_pc`` / ``taken`` — control-flow resolution,
* ``dest_value`` — every computed result (ALU, load data, link writes),
* ``mem_addr`` — every effective address,

and, once both sides HALT, the final architectural register file and the
final data-memory image must be bit-identical.  The first mismatching
retired op is pinpointed with surrounding context from both streams.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass
from typing import Optional, Union

from ..config import SystemConfig, build_named_config
from ..core import Processor
from ..isa import Interpreter, RetiredOp
from ..isa.uop import CLS_BRANCH, CLS_NOP, CLS_STORE
from .fuzz import FuzzProgram, format_program
from .invariants import InvariantError, attach_invariant_checker

#: How many retired ops around the first mismatch the report shows.
CONTEXT_OPS = 6


@dataclass(frozen=True)
class RetireRecord:
    """One architecturally retired op, normalized for comparison."""

    index: int                      # retire order (0-based)
    pc: int
    opcode: str
    next_pc: int
    dest_value: Optional[int]
    mem_addr: Optional[int]
    taken: Optional[bool]

    def format(self) -> str:
        parts = [f"#{self.index}", f"pc={self.pc}", self.opcode,
                 f"next={self.next_pc}"]
        if self.dest_value is not None:
            parts.append(f"val={self.dest_value:#x}")
        if self.mem_addr is not None:
            parts.append(f"addr={self.mem_addr:#x}")
        if self.taken is not None:
            parts.append(f"taken={self.taken}")
        return " ".join(parts)


#: The per-op fields diffed, in report order.
COMPARED_FIELDS = ("pc", "next_pc", "taken", "dest_value", "mem_addr")


@dataclass
class Divergence:
    """One verified mismatch between the oracle and the OoO core."""

    kind: str                       # stream | length | halt | final_regs |
                                    # final_mem | invariant | exception
    seed: int
    config: str
    index: Optional[int] = None     # first mismatching retire index
    fields: tuple[str, ...] = ()
    detail: str = ""
    context: str = ""               # surrounding ops from both streams


def _record_from_oracle(op: RetiredOp, index: int) -> RetireRecord:
    return RetireRecord(
        index=index,
        pc=op.pc,
        opcode=op.inst.opcode.name,
        next_pc=op.next_pc,
        dest_value=op.dest_value,
        mem_addr=op.mem_addr,
        taken=op.taken,
    )


def _record_from_uop(uop, index: int) -> RetireRecord:
    inst = uop.inst
    cls = inst.cls_idx
    if cls == CLS_BRANCH:
        next_pc = uop.actual_next_pc
        taken: Optional[bool] = uop.taken
        dest_value = uop.value if inst.is_call else None
    else:
        next_pc = uop.pc + 1
        taken = None
        if cls == CLS_STORE or cls >= CLS_NOP:  # store, NOP, or CLS_HALT
            dest_value = None
        else:
            dest_value = uop.value
    return RetireRecord(
        index=index,
        pc=uop.pc,
        opcode=inst.opcode.name,
        next_pc=next_pc,
        dest_value=dest_value,
        mem_addr=uop.mem_addr if inst.is_mem else None,
        taken=taken,
    )


def oracle_stream(fp: FuzzProgram, max_insts: int
                  ) -> tuple[list[RetireRecord], Interpreter]:
    """Execute the program on the reference interpreter."""
    interp = Interpreter(fp.program, fp.memory())
    records = [
        _record_from_oracle(op, i)
        for i, op in enumerate(interp.run(max_insts))
    ]
    return records, interp


def _resolve_config(config: Union[str, SystemConfig]) -> SystemConfig:
    if isinstance(config, str):
        return build_named_config(config)
    return config


def processor_stream(
    fp: FuzzProgram,
    config: Union[str, SystemConfig],
    max_insts: int,
    invariants: bool = False,
    invariant_every: int = 1,
) -> tuple[list[RetireRecord], Processor]:
    """Execute the program on the cycle-level OoO core, capturing the
    architectural commit stream.  With ``invariants=True`` the per-cycle
    invariant checker is attached (see :mod:`repro.verify.invariants`)."""
    proc = Processor(fp.program, _resolve_config(config), memory=fp.memory())
    records: list[RetireRecord] = []

    def hook(uop, cycle: int) -> None:
        records.append(_record_from_uop(uop, len(records)))

    proc.commit_hook = hook
    if invariants:
        attach_invariant_checker(proc, every=invariant_every)
    proc.run(max_insts)
    return records, proc


def _context(oracle: list[RetireRecord], actual: list[RetireRecord],
             index: int) -> str:
    lo = max(0, index - CONTEXT_OPS)
    hi = index + 2
    lines = ["  oracle:"]
    lines += [f"    {'>>' if r.index == index else '  '} {r.format()}"
              for r in oracle[lo:hi]]
    lines.append("  ooo core:")
    lines += [f"    {'>>' if r.index == index else '  '} {r.format()}"
              for r in actual[lo:hi]]
    return "\n".join(lines)


def diff_streams(oracle: list[RetireRecord], actual: list[RetireRecord]
                 ) -> Optional[tuple[int, tuple[str, ...]]]:
    """First (index, mismatching fields) between the two streams, if any."""
    for o, a in zip(oracle, actual):
        bad = tuple(f for f in COMPARED_FIELDS
                    if getattr(o, f) != getattr(a, f))
        if o.opcode != a.opcode:
            bad = ("opcode",) + bad
        if bad:
            return o.index, bad
    return None


def diff_run(
    fp: FuzzProgram,
    config: Union[str, SystemConfig],
    max_insts: int,
    config_name: str = "",
    invariants: bool = False,
    invariant_every: int = 1,
) -> Optional[Divergence]:
    """Run both sides and return the first divergence (or ``None``)."""
    name = config_name or (config if isinstance(config, str) else "custom")
    oracle, interp = oracle_stream(fp, max_insts)
    try:
        actual, proc = processor_stream(
            fp, config, max_insts,
            invariants=invariants, invariant_every=invariant_every,
        )
    except InvariantError as exc:
        return Divergence(kind="invariant", seed=fp.seed, config=name,
                          detail=str(exc))
    except Exception:
        return Divergence(kind="exception", seed=fp.seed, config=name,
                          detail=traceback.format_exc())

    mismatch = diff_streams(oracle, actual)
    if mismatch is not None:
        index, fields = mismatch
        return Divergence(
            kind="stream", seed=fp.seed, config=name, index=index,
            fields=fields,
            detail=(f"first mismatching retired op #{index} "
                    f"(fields: {', '.join(fields)})"),
            context=_context(oracle, actual, index),
        )

    if interp.halted != proc.halted:
        return Divergence(
            kind="halt", seed=fp.seed, config=name,
            detail=(f"oracle halted={interp.halted} after {len(oracle)} ops; "
                    f"core halted={proc.halted} after {len(actual)} ops "
                    f"in {proc.now} cycles"),
        )
    if interp.halted and len(oracle) != len(actual):
        index = min(len(oracle), len(actual))
        return Divergence(
            kind="length", seed=fp.seed, config=name, index=index,
            detail=(f"retirement streams differ in length: "
                    f"oracle={len(oracle)} core={len(actual)}"),
            context=_context(oracle, actual, index),
        )

    if interp.halted:
        reg_diffs = [
            f"R{i}: oracle={o:#x} core={a:#x}"
            for i, (o, a) in enumerate(
                zip(interp.regs, proc.rename.arch_values()))
            if o != a
        ]
        if reg_diffs:
            return Divergence(
                kind="final_regs", seed=fp.seed, config=name,
                detail=("final architectural registers differ:\n  "
                        + "\n  ".join(reg_diffs)),
            )
        oracle_mem = interp.memory.snapshot()
        core_mem = proc.memory.snapshot()
        if oracle_mem != core_mem:
            diffs = []
            for key in sorted(set(oracle_mem) | set(core_mem)):
                o, a = oracle_mem.get(key), core_mem.get(key)
                if o != a:
                    diffs.append(f"[{key << 3:#x}]: oracle={o} core={a}")
                if len(diffs) >= 16:
                    break
            return Divergence(
                kind="final_mem", seed=fp.seed, config=name,
                detail=("final data memory differs:\n  "
                        + "\n  ".join(diffs)),
            )
    return None


def render_divergence(div: Divergence, fp: FuzzProgram,
                      max_insts: int) -> str:
    """Full divergence report: what diverged, where, surrounding retired
    ops, the (minimized) reproducer program, and how to replay it."""
    lines = [
        f"DIVERGENCE kind={div.kind} seed={div.seed} config={div.config}",
        div.detail,
    ]
    if div.context:
        lines.append(div.context)
    spec = fp.spec
    lines.append(
        f"reproducer: seed={spec.seed} blocks="
        f"[{', '.join(f'{b.block_id}:{b.kind}' for b in spec.blocks)}] "
        f"outer_iterations={spec.outer_iterations} "
        f"({len(fp.program)} static insts)"
    )
    lines.append(
        f"replay: PYTHONPATH=src python -m repro verify "
        f"--seeds 1 --seed-start {div.seed} --insts {max_insts} "
        f"--configs {div.config}"
    )
    lines.append("program listing:")
    lines.append(format_program(fp.program))
    return "\n".join(lines) + "\n"
