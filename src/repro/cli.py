"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show the workload suite (with Table 2 classes) and the named
    configurations.
``run WORKLOAD``
    Simulate one workload on one configuration and print a stats summary.
``compare WORKLOAD``
    Run several configurations on one workload side by side.
``figure N``
    Regenerate one of the paper's figures/tables from the cached
    experiment matrix (running any missing cells).
``suite``
    Regenerate every figure/table (the full evaluation).
``bench-throughput``
    Measure simulator throughput (KIPS: committed kilo-instructions per
    host second) over a workload x mode grid and write
    ``BENCH_sim_throughput.json``; optionally gate on a committed
    baseline (``--check``) or print a cProfile report (``--profile``).
``verify``
    Differentially fuzz the OoO core against the functional interpreter
    oracle: random structured programs, every core mode, retirement
    streams and final state diffed op for op.  Failing seeds produce
    minimized reproducer reports (see docs/simulator.md).
``trace WORKLOAD``
    Run one workload with the observability layer attached and export
    the event trace as Perfetto/Chrome trace JSON (``--perfetto``), a
    structure-occupancy CSV (``--occupancy``, sampled every
    ``--stride`` cycles), and/or a metrics JSON (``--metrics``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Optional, Sequence

from .analysis import ExperimentMatrix, figures, render, write_report
from .analysis import bench as bench_mod
from .analysis.parallel import SimSpec, print_progress, simulate_configs
from .analysis.sweeps import CANNED_SWEEPS, run_named_sweep
from .config import (CONFIG_BUILDERS, SAMPLING_TIERS, SamplingConfig,
                     build_named_config)
from .core import simulate
from .fastpath import FF_LANES
from .obs import EVENT_KINDS
from .workloads import intensity_of, workload_names

# figure/table id -> (extractor taking a matrix, output filename)
FIGURES: dict[str, tuple[Callable, str]] = {
    "1": (figures.fig01_memory_stalls, "fig01_memory_stalls.txt"),
    "2": (figures.fig02_source_on_chip, "fig02_source_on_chip.txt"),
    "3": (figures.fig03_chain_fraction, "fig03_chain_fraction.txt"),
    "4": (figures.fig04_chain_repetition, "fig04_chain_repetition.txt"),
    "5": (figures.fig05_chain_length, "fig05_chain_length.txt"),
    "9": (figures.fig09_performance_nopf, "fig09_performance_nopf.txt"),
    "10": (figures.fig10_mlp, "fig10_mlp.txt"),
    "11": (figures.fig11_rab_cycles, "fig11_rab_cycles.txt"),
    "12": (figures.fig12_chain_cache_hits, "fig12_chain_cache_hits.txt"),
    "13": (figures.fig13_chain_cache_accuracy,
           "fig13_chain_cache_accuracy.txt"),
    "14": (figures.fig14_hybrid_split, "fig14_hybrid_split.txt"),
    "15": (figures.fig15_performance_pf, "fig15_performance_pf.txt"),
    "16": (figures.fig16_memory_traffic, "fig16_memory_traffic.txt"),
    "17": (figures.fig17_energy_nopf, "fig17_energy_nopf.txt"),
    "18": (figures.fig18_energy_pf, "fig18_energy_pf.txt"),
    "table1": (lambda _m: figures.table1_configuration(),
               "table1_configuration.txt"),
    "table2": (figures.table2_mpki_classes, "table2_mpki_classes.txt"),
    "headline": (figures.headline_summary, "headline_summary.txt"),
}


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be positive, got {value}")
    return value


_PLAN_DEFAULTS = SamplingConfig()


def _add_tier_args(sub, tiers: Sequence[str] = SAMPLING_TIERS) -> None:
    sub.add_argument("--tier", choices=tuple(tiers), default="detailed",
                     help="execution tier: 'detailed' simulates every "
                          "instruction; 'two-level' samples detailed "
                          "windows over a functional fast-forward stream")
    sub.add_argument("--window", type=_positive_int,
                     default=_PLAN_DEFAULTS.window_instructions,
                     metavar="INSTS",
                     help="measured detailed window per stride (two-level)")
    sub.add_argument("--stride", type=_positive_int,
                     default=_PLAN_DEFAULTS.stride_instructions,
                     metavar="INSTS",
                     help="sampling stride: instructions per "
                          "ramp+window+fast-forward segment (two-level)")
    sub.add_argument("--ramp", type=int,
                     default=_PLAN_DEFAULTS.ramp_instructions,
                     metavar="INSTS",
                     help="detailed ramp-up before each measured window, "
                          "excluded from rate estimates (two-level)")


def _sampling_from_args(args) -> Optional[SamplingConfig]:
    if args.tier == "detailed":
        return None
    plan = SamplingConfig(tier=args.tier, ramp_instructions=args.ramp,
                          window_instructions=args.window,
                          stride_instructions=args.stride)
    plan.validate()
    return plan


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Runahead-buffer (MICRO'15) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads and configurations")

    run = sub.add_parser("run", help="simulate one workload")
    run.add_argument("workload",
                     help="workload name; with --cores N, a comma-"
                          "separated list runs mixed workloads (one per "
                          "core), a single name runs N copies")
    run.add_argument("--config", default="baseline",
                     help="named config; with --cores N, optionally a "
                          "comma-separated per-core list")
    run.add_argument("--instructions", type=int, default=10_000)
    run.add_argument("--warmup", type=int, default=12_000)
    run.add_argument("--cores", type=_positive_int, default=1, metavar="N",
                     help="simulate N cores on a shared memory system "
                          "(repro.multicore); 1 = the legacy single-core "
                          "path, bit-identical to previous releases")
    run.add_argument("--share", default="llc,dram",
                     help="what multi-core cores share: 'llc,dram' (one "
                          "LLC + controller) or 'dram' (private LLCs, "
                          "shared controller); ignored for --cores 1")
    run.add_argument("--perfetto", default=None, metavar="OUT",
                     help="with --cores > 1: trace the run and write a "
                          "Perfetto export with one track group per core "
                          "plus a shared-memory track")
    run.add_argument("--ff-lane", choices=FF_LANES, default=None,
                     help="fast-forward lane for warm-up and two-level "
                          "gaps (default: REPRO_FF_LANE env, then 'jit')")
    _add_tier_args(run)
    run.add_argument("--window-jobs", type=_positive_int, default=None,
                     metavar="N",
                     help="two-level live-point mode: fan measured windows "
                          "out over N worker processes (results are "
                          "byte-identical for any N)")
    run.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                     help="warm-state checkpoint store for two-level runs "
                          "(default: REPRO_CKPT_DIR env, else no store); "
                          "either flag or the env var enables live-point "
                          "mode")

    compare = sub.add_parser("compare",
                             help="run several configs on one workload")
    compare.add_argument("workload")
    compare.add_argument("--configs", nargs="+",
                         default=["baseline", "runahead", "rab_cc", "hybrid"])
    compare.add_argument("--instructions", type=int, default=10_000)
    compare.add_argument("--warmup", type=int, default=12_000)
    compare.add_argument("--jobs", type=int, default=None,
                         help="worker processes (default: all cores)")

    figure = sub.add_parser("figure", help="regenerate one paper figure")
    figure.add_argument("id", choices=sorted(FIGURES))
    figure.add_argument("--instructions", type=int, default=None)

    suite = sub.add_parser("suite", help="regenerate all figures/tables")
    suite.add_argument("--instructions", type=int, default=None)
    suite.add_argument("--jobs", type=int, default=None,
                       help="worker processes (default: all cores)")
    suite.add_argument("--remote", default=None, metavar="URL",
                       help="simulate missing cells on a 'repro serve' "
                            "farm instead of in-process (results and the "
                            "on-disk cache are byte-identical either way)")

    bench = sub.add_parser(
        "bench-throughput",
        help="measure simulator throughput (KIPS) and track regressions")
    bench.add_argument("--workloads", nargs="+",
                       default=list(bench_mod.DEFAULT_WORKLOADS))
    bench.add_argument("--modes", nargs="+", choices=sorted(bench_mod.MODES),
                       default=list(bench_mod.MODES))
    bench.add_argument("--instructions", type=int,
                       default=bench_mod.DEFAULT_INSTRUCTIONS)
    bench.add_argument("--warmup", type=int, default=bench_mod.DEFAULT_WARMUP)
    bench.add_argument("--reps", type=int, default=bench_mod.DEFAULT_REPS)
    bench.add_argument("--ff-lane", choices=bench_mod.FF_LANE_CHOICES,
                       default=None,
                       help="fast-forward lane for two-level cells; "
                            "'both' measures each lane and reports the "
                            "jit_speedup section (default: REPRO_FF_LANE "
                            "env, then 'jit')")
    _add_tier_args(bench, tiers=(*SAMPLING_TIERS, "both"))
    bench.add_argument("--window-jobs", type=_positive_int, default=None,
                       metavar="N",
                       help="also measure live-point checkpoint phases "
                            "with N-way window parallelism and record the "
                            "window_parallel_speedup section (two-level "
                            "tier only)")
    bench.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                       help="checkpoint store for --window-jobs phases "
                            "(default: a throwaway temp dir, so the "
                            "populate phase measures a cold store)")
    bench.add_argument("--output", default="BENCH_sim_throughput.json")
    bench.add_argument("--before", default=None, metavar="JSON",
                       help="embed a prior run as the 'before' section")
    bench.add_argument("--check", default=None, metavar="JSON",
                       help="fail on KIPS regression vs this baseline file")
    bench.add_argument("--tolerance", type=float, default=0.30,
                       help="allowed fractional regression for --check")
    bench.add_argument("--profile", type=int, default=None, metavar="N",
                       help="cProfile one cell and print the top N entries")

    verify = sub.add_parser(
        "verify",
        help="differentially fuzz the OoO core against the oracle")
    verify.add_argument("--seeds", type=int, default=50,
                        help="number of consecutive fuzz seeds to run")
    verify.add_argument("--seed-start", type=int, default=0,
                        help="first seed (use with --seeds 1 to replay)")
    verify.add_argument("--insts", type=int, default=20_000,
                        help="per-run instruction budget for both sides")
    verify.add_argument("--invariants", action="store_true",
                        help="attach the per-cycle invariant checker")
    verify.add_argument("--invariant-every", type=int, default=1,
                        metavar="N", help="check invariants every N cycles")
    verify.add_argument("--configs", nargs="+", default=None,
                        choices=sorted(CONFIG_BUILDERS),
                        help="configs to verify (default: the golden five)")
    verify.add_argument("--report-dir", default="verify_reports",
                        help="where divergence reports are written")

    trace = sub.add_parser(
        "trace",
        help="run one workload with event tracing and export the trace")
    trace.add_argument("workload")
    trace.add_argument("--config", default="hybrid",
                       choices=sorted(CONFIG_BUILDERS))
    trace.add_argument("--instructions", type=int, default=10_000)
    trace.add_argument("--warmup", type=int, default=12_000)
    trace.add_argument("--events", nargs="+", choices=sorted(EVENT_KINDS),
                       default=None, metavar="KIND",
                       help=f"event kinds to record (default: all of "
                            f"{', '.join(EVENT_KINDS)})")
    trace.add_argument("--capacity", type=_positive_int, default=65536,
                       help="event ring-buffer capacity")
    trace.add_argument("--perfetto", default=None, metavar="OUT",
                       help="write Chrome/Perfetto trace JSON here")
    trace.add_argument("--occupancy", default=None, metavar="OUT",
                       help="write the occupancy-sample CSV here")
    trace.add_argument("--stride", type=_positive_int, default=64,
                       help="cycles between occupancy samples")
    trace.add_argument("--metrics", default=None, metavar="OUT",
                       help="write the metrics-registry JSON here")

    sweep = sub.add_parser("sweep", help="run a sensitivity sweep")
    sweep.add_argument("name", choices=sorted(CANNED_SWEEPS))
    sweep.add_argument("--benches", nargs="+", default=None)
    sweep.add_argument("--instructions", type=int, default=None)
    sweep.add_argument("--warmup", type=int, default=None)
    sweep.add_argument("--jobs", type=int, default=None,
                       help="worker processes (default: all cores)")
    sweep.add_argument("--remote", default=None, metavar="URL",
                       help="fetch the sweep table from a 'repro serve' "
                            "farm instead of running it in-process")

    serve = sub.add_parser(
        "serve",
        help="run the experiment farm: an HTTP service that coalesces "
             "cell requests, shards them over a worker pool, and persists "
             "results in a content-addressed store")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8077,
                       help="listen port (0 binds an ephemeral port)")
    serve.add_argument("--store", default="results/farm", metavar="DIR",
                       help="result-store root directory ('' disables "
                            "persistence; default: results/farm)")
    serve.add_argument("--jobs", type=int, default=None,
                       help="worker processes (default: all cores)")
    serve.add_argument("--instructions", type=int, default=None,
                       help="default budget for figure/sweep/trace "
                            "endpoints (cell requests carry their own)")
    serve.add_argument("--warmup", type=int, default=None)
    serve.add_argument("--batch-delay", type=float, default=0.05,
                       metavar="SECONDS",
                       help="admission window: how long to keep draining "
                            "newly queued cells into the current batch")

    return parser


def _cmd_list() -> int:
    print("workloads (Table 2 classes):")
    for name in workload_names():
        print(f"  {name:12s} {intensity_of(name)}")
    print("\nconfigurations:")
    for name in CONFIG_BUILDERS:
        cfg = build_named_config(name)
        bits = [f"runahead={cfg.runahead.mode.value}"]
        if cfg.prefetcher.enabled:
            bits.append("prefetcher")
        if cfg.runahead.enhancements:
            bits.append("enhancements")
        print(f"  {name:16s} {' '.join(bits)}")
    return 0


def _print_stats(stats, energy) -> None:
    print(f"  ipc                 {stats.ipc:.4f}")
    print(f"  cycles              {stats.cycles}")
    print(f"  instructions        {stats.committed_insts}")
    print(f"  mpki                {stats.mpki:.2f}")
    print(f"  memory-stall cycles {stats.memstall_cycles} "
          f"({100 * stats.memstall_fraction:.1f}%)")
    print(f"  branch accuracy     {100 * stats.branch_accuracy:.1f}%")
    print(f"  dram requests       {stats.dram_requests}")
    if stats.runahead_intervals:
        print(f"  runahead intervals  {stats.runahead_intervals} "
              f"({stats.misses_per_interval:.1f} misses each)")
        print(f"  cycles in runahead  trad={stats.cycles_in_traditional} "
              f"buffer={stats.cycles_in_rab}")
    if stats.chain_cache_hits + stats.chain_cache_misses:
        print(f"  chain cache         "
              f"{100 * stats.chain_cache_hit_rate:.1f}% hit rate")
    print(f"  energy              {energy.total * 1e6:.2f} uJ "
          f"(front-end {energy.frontend_dynamic * 1e6:.2f} uJ)")


def _cmd_run_multicore(args) -> int:
    from .multicore import simulate_multicore, trace_multicore

    if args.tier != "detailed":
        print("error: --cores > 1 supports only the detailed tier "
              "(sampling/checkpointing assume a private hierarchy)",
              file=sys.stderr)
        return 2
    if args.window_jobs is not None or args.checkpoint_dir is not None:
        print("error: --window-jobs/--checkpoint-dir are single-core "
              "two-level options", file=sys.stderr)
        return 2
    workloads = [w.strip() for w in args.workload.split(",") if w.strip()]
    if len(workloads) == 1:
        workloads = workloads * args.cores
    if len(workloads) != args.cores:
        print(f"error: {len(workloads)} workloads for --cores "
              f"{args.cores}", file=sys.stderr)
        return 2
    config_names = [c.strip() for c in args.config.split(",") if c.strip()]
    if len(config_names) == 1:
        config_names = config_names * args.cores
    if len(config_names) != args.cores:
        print(f"error: {len(config_names)} configs for --cores "
              f"{args.cores}", file=sys.stderr)
        return 2

    traced = {}

    def attach(system) -> None:
        if args.perfetto is not None:
            core_traces, shared_trace, tracers = trace_multicore(system)
            traced.update(core_traces=core_traces,
                          shared_trace=shared_trace, tracers=tracers)

    result = simulate_multicore(
        workloads, cores=args.cores, configs=config_names,
        share=args.share, max_instructions=args.instructions,
        warmup_instructions=args.warmup, attach=attach)

    for idx, (stats, energy) in enumerate(zip(result.per_core,
                                              result.energy)):
        print(f"core {idx}: {workloads[idx]} / {stats.config_name}")
        _print_stats(stats, energy)
    shared = result.shared
    cont = shared["contention"]
    dram = shared["dram"]
    print(f"shared [{shared['share']}]:")
    print(f"  dram                {dram['reads']} reads, "
          f"{dram['writes']} writes, "
          f"{dram['bank_conflicts']} bank conflicts")
    print(f"  llc contention      {cont['cross_core_evictions']} "
          f"cross-core evictions "
          f"({cont['prefetch_pollution_evictions']} by prefetch), "
          f"{cont['pollution_misses']} pollution misses")
    print(f"  mshr contention     {cont['mshr_contended_rejections']} "
          f"contended rejections, {cont['spec_cap_rejections']} "
          f"speculative-cap rejections")
    for entry in shared["fairness"]:
        ra = entry["runahead"]
        print(f"  fairness core{entry['core']}      "
              f"ipc={entry['ipc']:.3f} "
              f"share={100 * entry['progress_share']:.1f}% "
              f"runahead={ra['intervals']}x/{ra['runahead_cycles']}cyc")

    if args.perfetto is not None:
        from .obs.perfetto import export_perfetto_multicore
        path = export_perfetto_multicore(
            traced["core_traces"], traced["shared_trace"], args.perfetto,
            metadata={"workloads": ",".join(workloads),
                      "configs": ",".join(config_names),
                      "share": args.share})
        print(f"perfetto trace written to {path}")
    return 0


def _cmd_run(args) -> int:
    if args.cores > 1:
        return _cmd_run_multicore(args)
    if "," in args.workload or "," in args.config:
        print("error: comma-separated workloads/configs require --cores N",
              file=sys.stderr)
        return 2
    if args.perfetto is not None:
        print("error: --perfetto on `run` requires --cores > 1 "
              "(single-core tracing is `repro trace`)", file=sys.stderr)
        return 2
    sampling = _sampling_from_args(args)
    checkpoints = None
    if sampling is not None:
        from .fastpath import make_checkpoint_plan
        checkpoints = make_checkpoint_plan(args.window_jobs,
                                           args.checkpoint_dir)
    elif args.window_jobs is not None or args.checkpoint_dir is not None:
        print("error: --window-jobs/--checkpoint-dir require "
              "--tier two-level (the detailed tier is never checkpointed)",
              file=sys.stderr)
        return 2
    try:
        config = build_named_config(args.config)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = simulate(args.workload, config,
                      max_instructions=args.instructions,
                      warmup_instructions=args.warmup,
                      config_name=args.config,
                      sampling=sampling,
                      ff_lane=args.ff_lane,
                      checkpoints=checkpoints)
    tier = f" [{sampling.tier}]" if sampling is not None else ""
    print(f"{args.workload} / {args.config}{tier}:")
    _print_stats(result.stats, result.energy)
    if result.sampling is not None:
        meta = result.sampling
        est = meta["estimates"]
        print(f"  sampling            {meta['windows']} windows of "
              f"{meta['window_instructions']} "
              f"(+{meta['ramp_instructions']} ramp) "
              f"every {meta['stride_instructions']} insts")
        print(f"  detailed share      "
              f"{100 * meta['detailed_fraction']:.1f}% "
              f"({meta['detailed_instructions']} of "
              f"{meta['instructions_advanced']} insts)")
        print(f"  sampled estimates   ipc={est['ipc']:.4f} "
              f"mpki={est['mpki']:.2f} "
              f"runahead-share={100 * est['runahead_share']:.1f}%")
        if "checkpoints" in meta:
            cp = meta["checkpoints"]
            store = (f"store {cp['store_hits']} hit / "
                     f"{cp['store_misses']} miss"
                     if cp["store_hits"] or cp["store_misses"]
                     else "no store")
            print(f"  checkpoints         {cp['count']} live-points, "
                  f"{cp['jobs']} window job(s), {store}")
            print(f"  checkpoint time     "
                  f"save={cp['checkpoint_seconds']:.3f}s "
                  f"restore={cp['restore_seconds']:.3f}s "
                  f"windows={cp['window_wall_seconds']:.3f}s")
    return 0


def _cmd_compare(args) -> int:
    specs = [SimSpec(args.workload, build_named_config(config_name),
                     args.instructions, args.warmup, config_name)
             for config_name in args.configs]
    results = simulate_configs(specs, jobs=args.jobs)
    header = (f"{'config':16s} {'ipc':>7s} {'speedup':>8s} {'mpki':>6s} "
              f"{'dram':>6s} {'energy':>8s}")
    print(f"{args.workload}:")
    print(header)
    print("-" * len(header))
    base_ipc: Optional[float] = None
    base_energy: Optional[float] = None
    for config_name, stats in zip(args.configs, results):
        if base_ipc is None:
            base_ipc = stats["ipc"]
            base_energy = stats["total_energy_j"]
        speedup = 100 * (stats["ipc"] / base_ipc - 1)
        energy = 100 * (stats["total_energy_j"] / base_energy - 1)
        print(f"{config_name:16s} {stats['ipc']:7.3f} {speedup:+7.1f}% "
              f"{stats['mpki']:6.1f} {stats['dram_requests']:6d} "
              f"{energy:+7.1f}%")
    return 0


def _matrix(instructions: Optional[int]) -> ExperimentMatrix:
    if instructions is not None:
        return ExperimentMatrix(instructions=instructions)
    return ExperimentMatrix()


def _cmd_figure(args) -> int:
    matrix = _matrix(args.instructions)
    extractor, filename = FIGURES[args.id]
    table = extractor(matrix)
    matrix.save()
    path = write_report(table, filename)
    print(render(table))
    print(f"\nwritten to {path}")
    return 0


def _cmd_suite(args) -> int:
    matrix = _matrix(args.instructions)
    if args.remote:
        from .farm import FarmClient
        simulated = FarmClient(args.remote).prefetch_matrix(
            matrix, figures.figure_matrix_cells(), progress=print_progress)
    else:
        simulated = matrix.prefetch(figures.figure_matrix_cells(),
                                    jobs=args.jobs, progress=print_progress)
    if simulated:
        print(f"simulated {simulated} missing cells")
    for fig_id, (extractor, filename) in FIGURES.items():
        table = extractor(matrix)
        path = write_report(table, filename)
        matrix.save()
        print(f"[{fig_id:>8s}] {table.title}  -> {path}")
    return 0


def _print_phase_table(doc) -> None:
    """Per-phase wall-time breakdown of every two-level measurement:
    legacy grid cells plus (when measured) the live-point checkpoint
    phases, one row each."""
    rows = []
    for cell in doc.get("results", []):
        if cell.get("tier") != "two-level":
            continue
        rows.append((f"{cell['workload']}/{cell['mode']}",
                     f"legacy/{cell.get('ff_lane', '?')}", cell))
    for name, cell in doc.get("window_parallel_speedup",
                              {}).get("per_cell", {}).items():
        for phase_name, phase in cell.get("phases", {}).items():
            rows.append((name, phase_name, phase))
    if not rows:
        return
    print("\nper-phase seconds (two-level):")
    print(f"{'cell':22s} {'phase':14s} {'ff':>7s} {'translate':>9s} "
          f"{'ckpt':>7s} {'restore':>7s} {'detailed':>8s} {'total':>7s}")
    for name, phase_name, data in rows:
        print(f"{name:22s} {phase_name:14s} "
              f"{data.get('ff_seconds', 0.0):7.3f} "
              f"{data.get('translate_seconds', 0.0):9.3f} "
              f"{data.get('checkpoint_seconds', 0.0):7.3f} "
              f"{data.get('restore_seconds', 0.0):7.3f} "
              f"{data.get('detailed_seconds', 0.0):8.3f} "
              f"{data.get('sim_seconds', 0.0):7.3f}")


def _cmd_bench_throughput(args) -> int:
    if args.profile is not None:
        report = bench_mod.profile_cell(
            args.workloads[0], args.modes[0], args.instructions, args.warmup,
            top=args.profile)
        print(report)
        return 0
    tiers = (("detailed", "two-level") if args.tier == "both"
             else (args.tier,))
    plan = SamplingConfig(tier="two-level", ramp_instructions=args.ramp,
                          window_instructions=args.window,
                          stride_instructions=args.stride)
    if "two-level" in tiers:
        plan.validate()
    if args.ff_lane == "both":
        ff_lanes = ("jit", "interp")
    elif args.ff_lane:
        ff_lanes = (args.ff_lane,)
    else:
        ff_lanes = None
    if args.window_jobs is not None and "two-level" not in tiers:
        print("error: --window-jobs requires a two-level tier "
              "(--tier two-level or --tier both)", file=sys.stderr)
        return 2
    doc = bench_mod.run_benchmark(
        workloads=args.workloads, modes=args.modes,
        instructions=args.instructions, warmup=args.warmup, reps=args.reps,
        tiers=tiers, plan=plan, ff_lanes=ff_lanes,
        window_jobs=args.window_jobs, checkpoint_dir=args.checkpoint_dir,
        progress=print)
    if args.before:
        doc = bench_mod.attach_before(doc, bench_mod.load_results(args.before))
    path = bench_mod.write_results(doc, args.output)
    print(f"\ngeomean KIPS: " + "  ".join(
        f"{mode}={kips:.1f}" for mode, kips in doc["geomean_kips"].items()))
    if "two_level_speedup" in doc:
        speedup = doc["two_level_speedup"]
        print("two-level speedup: " + "  ".join(
            f"{mode}={x:.1f}x" for mode, x in speedup["geomean"].items())
            + f"  overall={speedup['overall']:.1f}x")
    if "jit_speedup" in doc:
        jit = doc["jit_speedup"]
        print("jit ff speedup:    " + "  ".join(
            f"{cell}={x:.2f}x" for cell, x in jit["per_cell"].items())
            + f"  geomean={jit['geomean']:.2f}x")
    _print_phase_table(doc)
    if "window_parallel_speedup" in doc:
        wps = doc["window_parallel_speedup"]
        print(f"window-parallel speedup (jobs={wps['jobs']}, "
              f"{wps['usable_cpus']} usable cpu(s)): "
              f"geomean={wps['geomean_speedup']:.2f}x "
              f"(warm-store alone {wps['geomean_warm_speedup']:.2f}x)")
    print(f"written to {path}")
    if args.check:
        failures = bench_mod.check_regression(
            doc, bench_mod.load_results(args.check), args.tolerance)
        if failures:
            for failure in failures:
                print(f"REGRESSION {failure}", file=sys.stderr)
            return 1
        print(f"throughput within {args.tolerance:.0%} of {args.check}")
    return 0


def _cmd_verify(args) -> int:
    from .verify import DEFAULT_CONFIGS, run_verify

    configs = tuple(args.configs) if args.configs else DEFAULT_CONFIGS

    def progress(outcome) -> None:
        mark = "ok" if outcome.ok else "DIVERGED"
        print(f"seed {outcome.seed:5d}  "
              f"[{'/'.join(outcome.configs)}]  {mark}")

    summary = run_verify(
        seeds=args.seeds, seed_start=args.seed_start, insts=args.insts,
        configs=configs, invariants=args.invariants,
        invariant_every=args.invariant_every,
        report_dir=args.report_dir, progress=progress,
    )
    failures = summary["failures"]
    print(f"\n{summary['seeds_run']} seeds x {len(configs)} configs, "
          f"{args.insts} insts each: {len(failures)} divergence(s)")
    if failures:
        for seed, config, kind in failures:
            print(f"  seed={seed} config={config} kind={kind}",
                  file=sys.stderr)
        for path in summary["reports"]:
            print(f"  report: {path}", file=sys.stderr)
        return 1
    return 0


def _cmd_trace(args) -> int:
    from .obs import run_traced

    run = run_traced(
        args.workload, args.config,
        max_instructions=args.instructions,
        warmup_instructions=args.warmup,
        kinds=args.events,
        capacity=args.capacity,
        occupancy_stride=args.stride if args.occupancy else None,
    )
    print(f"{args.workload} / {args.config}: "
          f"{run.stats.committed_insts} insts, {run.stats.cycles} cycles")
    print(run.trace.summary())
    if args.perfetto:
        path = run.write_perfetto(args.perfetto)
        print(f"perfetto trace -> {path}")
    if args.occupancy:
        path = run.write_occupancy(args.occupancy)
        print(f"occupancy csv  -> {path} "
              f"({len(run.samples)} samples, stride {args.stride})")
    if args.metrics:
        path = run.write_metrics(args.metrics)
        print(f"metrics json   -> {path}")
    return 0


def _cmd_sweep(args) -> int:
    if args.remote:
        from .analysis.report import Table
        from .farm import FarmClient
        doc = FarmClient(args.remote).sweep(
            args.name, benches=args.benches,
            instructions=args.instructions, warmup=args.warmup)
        table = Table(title=doc["title"], headers=doc["headers"],
                      rows=[tuple(row) for row in doc["rows"]],
                      notes=list(doc["notes"]))
    else:
        table = run_named_sweep(args.name, benches=args.benches,
                                instructions=args.instructions,
                                warmup=args.warmup, jobs=args.jobs)
    path = write_report(table, f"sweep_{args.name}.txt")
    print(render(table))
    print(f"\nwritten to {path}")
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from . import farm

    try:
        asyncio.run(farm.serve(
            host=args.host, port=args.port,
            store_dir=args.store or None, jobs=args.jobs,
            instructions=args.instructions, warmup=args.warmup,
            batch_delay=args.batch_delay))
    except KeyboardInterrupt:
        pass
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "suite":
        return _cmd_suite(args)
    if args.command == "bench-throughput":
        return _cmd_bench_throughput(args)
    if args.command == "verify":
        return _cmd_verify(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "serve":
        return _cmd_serve(args)
    return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
