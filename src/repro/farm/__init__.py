"""The experiment farm: a shared cell-simulation service.

``repro serve`` turns the repo's batch pipeline into a long-lived
service: clients (``repro suite --remote``, ``repro sweep --remote``,
or :class:`FarmClient` directly) request *(workload x config x budget x
tier)* cells over HTTP, the farm deduplicates and coalesces identical
in-flight requests into one matrix run, shards execution over the same
process pool the local matrix uses, and persists every finished cell in
a content-addressed :class:`ResultStore` keyed by the exact
KEY_SCHEMA cell keys the :class:`~repro.analysis.ExperimentMatrix`
derives — so a cell is simulated at most once per model version, no
matter how many clients ask.

Layering::

    store.py     ResultStore + spec_cell_key   (disk, no asyncio)
    service.py   FarmService / FarmJob         (asyncio, no HTTP)
    http.py      FarmServer                    (stdlib HTTP front-end)
    client.py    FarmClient                    (blocking, stdlib)
"""

from __future__ import annotations

import asyncio
from typing import Optional

from .client import FarmClient, FarmClientError
from .http import FarmServer, HttpError, decode_spec
from .service import FarmError, FarmJob, FarmService
from .store import ResultStore, spec_cell_key

__all__ = [
    "FarmClient",
    "FarmClientError",
    "FarmError",
    "FarmJob",
    "FarmServer",
    "FarmService",
    "HttpError",
    "ResultStore",
    "decode_spec",
    "serve",
    "spec_cell_key",
]


async def serve(
    host: str = "127.0.0.1",
    port: int = 0,
    store_dir: Optional[str] = "results/farm",
    jobs: Optional[int] = None,
    instructions: Optional[int] = None,
    warmup: Optional[int] = None,
    batch_delay: float = 0.05,
    ready: Optional["asyncio.Event"] = None,
    announce=None,
) -> None:
    """Run the farm until cancelled (the ``repro serve`` entry point).

    ``ready`` (if given) is set once the port is bound — tests and the
    CI smoke job use it with ``port=0`` to grab the ephemeral port.
    """
    store = ResultStore(store_dir) if store_dir else None
    service = FarmService(store=store, jobs=jobs, batch_delay=batch_delay)
    server = FarmServer(service, host=host, port=port,
                        instructions=instructions, warmup=warmup)
    await server.start()
    if announce is None:
        def announce(message: str) -> None:
            print(message, flush=True)
    announce(f"repro farm listening on {server.url} "
             f"(jobs={service.jobs}, "
             f"store={store.version_dir if store else 'off'})")
    if ready is not None:
        ready.set()
    try:
        await server.serve_forever()
    finally:
        await server.close()
