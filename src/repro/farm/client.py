"""Thin blocking client for the farm HTTP service (stdlib only).

``repro suite --remote`` / ``repro sweep --remote`` route their cell
requests through a :class:`FarmClient` instead of the in-process pool.
Results are byte-identical either way: the server runs the exact same
:func:`~repro.analysis.parallel.simulate_cell` worker, stats dicts are
JSON round-trip stable, and cell keys are derived from the same
:func:`~repro.analysis.experiments.cell_key` — so a remote suite fills
the local matrix with exactly the cells an in-process run would.

The client is deliberately synchronous (``http.client``): callers are
the CLI and tests, both of which want a plain function-call interface,
and the server end is the part that must multiplex.
"""

from __future__ import annotations

import http.client
import json
import urllib.parse
from typing import Any, Callable, Iterator, Optional, Sequence

from ..analysis.experiments import Cell, ExperimentMatrix
from ..analysis.parallel import CellSpec


class FarmClientError(RuntimeError):
    """An HTTP-level failure: non-2xx status or an unreachable server."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"farm request failed ({status}): {message}")
        self.status = status


class FarmClient:
    """Blocking JSON client for one ``repro serve`` endpoint."""

    def __init__(self, base_url: str, timeout: float = 600.0) -> None:
        parsed = urllib.parse.urlsplit(base_url)
        if parsed.scheme not in ("", "http"):
            raise ValueError(f"unsupported scheme {parsed.scheme!r}")
        netloc = parsed.netloc or parsed.path
        self.host, _, port = netloc.partition(":")
        self.port = int(port) if port else 80
        self.timeout = timeout

    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)

    def _request(self, method: str, path: str,
                 payload: Optional[dict[str, Any]] = None) -> Any:
        conn = self._connect()
        try:
            body = json.dumps(payload).encode() if payload is not None else None
            headers = {"Content-Type": "application/json"} if body else {}
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            blob = response.read()
        finally:
            conn.close()
        try:
            doc = json.loads(blob) if blob else {}
        except json.JSONDecodeError:
            raise FarmClientError(response.status,
                                  blob.decode(errors="replace")) from None
        if response.status != 200:
            raise FarmClientError(response.status,
                                  str(doc.get("error", doc)))
        return doc

    # -- endpoints ---------------------------------------------------------------

    def healthz(self) -> bool:
        return bool(self._request("GET", "/healthz").get("ok"))

    def meta(self) -> dict[str, Any]:
        return self._request("GET", "/v1/meta")

    def metrics(self) -> dict[str, int]:
        return self._request("GET", "/v1/metrics")

    def fetch_cells(self, specs: Sequence[CellSpec],
                    ) -> list[dict[str, Any]]:
        """Stats for every spec (in order), waiting for completion."""
        doc = self._request("POST", "/v1/cells", {
            "cells": [spec._asdict() for spec in specs], "wait": True})
        return [entry["stats"] for entry in doc["cells"]]

    def submit(self, specs: Sequence[CellSpec]) -> str:
        """Queue a job; returns the job id (poll/stream it separately)."""
        doc = self._request("POST", "/v1/cells", {
            "cells": [spec._asdict() for spec in specs], "wait": False})
        return doc["job"]

    def job(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def stream_events(self, job_id: str) -> Iterator[dict[str, Any]]:
        """Yield the job's farm events live (NDJSON long poll); the
        stream ends at the job's ``farm.job_done`` event."""
        conn = self._connect()
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/events")
            response = conn.getresponse()
            if response.status != 200:
                blob = response.read().decode(errors="replace")
                raise FarmClientError(response.status, blob)
            for raw in response:
                line = raw.strip()
                if line:
                    yield json.loads(line)
        finally:
            conn.close()

    def figure(self, fig_id: str, instructions: Optional[int] = None,
               warmup: Optional[int] = None) -> dict[str, Any]:
        return self._request(
            "GET", f"/v1/figures/{fig_id}"
                   + _query(instructions=instructions, warmup=warmup))

    def sweep(self, name: str, benches: Optional[Sequence[str]] = None,
              instructions: Optional[int] = None,
              warmup: Optional[int] = None) -> dict[str, Any]:
        return self._request(
            "GET", f"/v1/sweeps/{name}"
                   + _query(instructions=instructions, warmup=warmup,
                            benches=",".join(benches) if benches else None))

    def trace(self, workload: str, config_name: str,
              instructions: Optional[int] = None,
              warmup: Optional[int] = None) -> dict[str, Any]:
        return self._request(
            "GET", f"/v1/traces/{workload}/{config_name}"
                   + _query(instructions=instructions, warmup=warmup))

    # -- matrix integration ------------------------------------------------------

    def prefetch_matrix(
        self,
        matrix: ExperimentMatrix,
        cells: Sequence[Cell],
        progress: Optional[Callable[[CellSpec, int, int], None]] = None,
    ) -> int:
        """Fill the matrix's missing cells through the farm (the remote
        counterpart of :meth:`ExperimentMatrix.prefetch`).

        Submits one job, streams per-cell progress while it runs, then
        merges the results back and saves — so the on-disk cache a
        remote suite leaves behind is identical to a local run's.
        """
        if getattr(matrix, "_checkpointed", False):
            raise ValueError(
                "live-point (checkpointed) matrices cannot be prefetched "
                "remotely: checkpoint stores are host-local")
        missing = matrix.missing_cells(cells)
        if not missing:
            return 0
        s = matrix.sampling
        if s is not None and s.is_sampled:
            tier_fields = (s.tier, s.ramp_instructions,
                           s.window_instructions, s.stride_instructions)
        else:
            tier_fields = ("detailed", 0, 0, 0)
        specs = [CellSpec(w, c, chains, matrix.instructions, matrix.warmup,
                          *tier_fields)
                 for w, c, chains in missing]
        job_id = self.submit(specs)
        total = len(specs)
        done = 0
        for event in self.stream_events(job_id):
            if event.get("event") in ("farm.done", "farm.hit") and progress:
                done = min(done + 1, total)
                progress(specs[done - 1], done, total)
        doc = self.job(job_id)
        if not doc.get("ok"):
            raise FarmClientError(500, doc.get("error") or "job failed")
        results = doc["results"]
        for (workload, config_name, chain_stats), stats in zip(missing,
                                                               results):
            matrix.store(workload, config_name, chain_stats, stats)
        matrix.save()
        return len(missing)


def _query(**params: Any) -> str:
    items = {k: v for k, v in params.items() if v is not None}
    return "?" + urllib.parse.urlencode(items) if items else ""
