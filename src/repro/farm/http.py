"""Minimal HTTP/1.1 front-end for the farm service (stdlib only).

One :class:`FarmServer` wraps a :class:`~repro.farm.service.FarmService`
behind ``asyncio.start_server``: requests are parsed by hand (the
toolchain constraint rules out aiohttp and friends), responses are JSON
with ``Connection: close``, and the long-poll progress endpoint streams
newline-delimited JSON events until the job finishes or the client
disconnects — a disconnect ends only that stream, never the shared run.

Routes (all JSON unless noted)::

    GET  /healthz                     liveness probe
    GET  /v1/meta                     model/key versions, budgets, jobs
    GET  /v1/metrics                  farm_registry counters
    POST /v1/cells                    {"cells": [spec...], "wait": bool}
    GET  /v1/jobs/<id>                job status + results when done
    GET  /v1/jobs/<id>/events         NDJSON event stream (long poll)
    GET  /v1/figures/<id>             figure table computed via the farm
    GET  /v1/sweeps/<name>            canned sensitivity-sweep table
    GET  /v1/traces/<wl>/<config>     Perfetto trace JSON on demand

Cell specs are :class:`~repro.analysis.parallel.CellSpec` field dicts;
the server validates them against the known workloads/configs and forces
live-point fields off (checkpoint stores are host-local paths, and
``.lp`` keys deliberately never alias plain two-level cells).
"""

from __future__ import annotations

import asyncio
import json
import urllib.parse
from typing import Any, Optional

from ..analysis.experiments import (ExperimentMatrix, KEY_SCHEMA,
                                    MODEL_VERSION)
from ..analysis.parallel import CellSpec
from ..config import (CONFIG_BUILDERS, SAMPLING_TIERS, SHARE_CHOICES,
                      SamplingConfig)
from ..workloads import workload_names
from .service import FarmJob, FarmService
from .store import spec_cell_key

_MAX_BODY = 8 << 20
_SPEC_DEFAULTS = CellSpec("", "", False, 0, 0)._asdict()


class HttpError(Exception):
    """An error with a client-facing status code."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def decode_spec(obj: Any) -> CellSpec:
    """A validated :class:`CellSpec` from one wire dict.

    Live-point fields (``window_jobs``/``checkpoint_dir``) are forced
    off: a checkpoint store is a host-local path, and the ``.lp`` key
    suffix exists precisely because checkpointed estimates are not
    bit-identical to the plain two-level path the farm serves.
    """
    if not isinstance(obj, dict):
        raise HttpError(400, "cell spec must be a JSON object")
    unknown = sorted(set(obj) - set(_SPEC_DEFAULTS))
    if unknown:
        raise HttpError(400, f"unknown cell-spec fields: {unknown}")
    merged = {**_SPEC_DEFAULTS, **obj}
    merged["window_jobs"] = 0
    merged["checkpoint_dir"] = ""
    spec = CellSpec(**merged)
    if spec.workload not in workload_names() and not (
            spec.workloads and spec.workload == ""):
        # Multi-core specs may leave `workload` empty and carry the
        # per-core list in `workloads` (validated below).
        raise HttpError(400, f"unknown workload {spec.workload!r}")
    if spec.config_name not in CONFIG_BUILDERS:
        raise HttpError(400, f"unknown config {spec.config_name!r}")
    if type(spec.chain_stats) is not bool:
        raise HttpError(400, "chain_stats must be a boolean")
    for name in ("instructions", "warmup", "ramp", "window", "stride"):
        if type(getattr(spec, name)) is not int:
            raise HttpError(400, f"{name} must be an integer")
    if spec.instructions < 1 or spec.warmup < 0:
        raise HttpError(400, "instructions must be >= 1 and warmup >= 0")
    if spec.tier != "detailed":
        if spec.tier not in SAMPLING_TIERS:
            raise HttpError(400, f"unknown tier {spec.tier!r}")
        plan = SamplingConfig(tier=spec.tier, ramp_instructions=spec.ramp,
                              window_instructions=spec.window,
                              stride_instructions=spec.stride)
        try:
            plan.validate()
        except ValueError as exc:
            raise HttpError(400, f"bad sampling plan: {exc}") from None
    if type(spec.cores) is not int or not 1 <= spec.cores <= 8:
        raise HttpError(400, "cores must be an integer in 1..8")
    if spec.share not in SHARE_CHOICES:
        raise HttpError(400, f"share must be one of {SHARE_CHOICES}")
    if spec.cores > 1:
        if spec.tier != "detailed":
            raise HttpError(400, "multi-core cells are detailed-tier only")
        if spec.chain_stats:
            raise HttpError(
                400, "chain_stats is not supported for multi-core cells")
        workload_list = spec.workloads.split(",") if spec.workloads else []
        if len(workload_list) != spec.cores:
            raise HttpError(
                400, f"workloads must name {spec.cores} comma-separated "
                     f"workloads (one per core)")
        for name in workload_list:
            if name not in workload_names():
                raise HttpError(400, f"unknown workload {name!r}")
    elif spec.workloads:
        raise HttpError(400, "workloads requires cores > 1")
    return spec


class _ServiceMatrix(ExperimentMatrix):
    """An in-memory matrix whose misses are served by the farm.

    Figure extractors are synchronous, so they run on a thread-pool
    worker; each miss hops back onto the service loop with
    ``run_coroutine_threadsafe`` and therefore coalesces with every
    other client of the same cell.
    """

    def __init__(self, service: FarmService,
                 loop: asyncio.AbstractEventLoop,
                 instructions: int, warmup: int) -> None:
        super().__init__(instructions=instructions, warmup=warmup,
                         cache_path=None)
        self._service = service
        self._service_loop = loop

    def get(self, workload: str, config_name: str,
            chain_stats: bool = False) -> dict[str, Any]:
        if config_name not in CONFIG_BUILDERS:
            raise ValueError(f"unknown config {config_name!r}")
        cached = self._lookup(workload, config_name, chain_stats)
        if cached is not None:
            return cached
        spec = CellSpec(workload, config_name, chain_stats,
                        self.instructions, self.warmup)
        stats = asyncio.run_coroutine_threadsafe(
            self._service.cell(spec), self._service_loop).result()
        self.store(workload, config_name, chain_stats, stats)
        return stats


def _table_payload(table) -> dict[str, Any]:
    from ..analysis import render
    return {
        "title": table.title,
        "headers": list(table.headers),
        "rows": [list(row) for row in table.rows],
        "notes": list(table.notes),
        "text": render(table),
    }


class FarmServer:
    """The farm's HTTP front-end; ``port=0`` binds an ephemeral port."""

    def __init__(
        self,
        service: FarmService,
        host: str = "127.0.0.1",
        port: int = 0,
        instructions: Optional[int] = None,
        warmup: Optional[int] = None,
    ) -> None:
        from ..analysis.experiments import (DEFAULT_INSTRUCTIONS,
                                            DEFAULT_WARMUP)
        self.service = service
        self.host = host
        self.port = port
        # Budgets for the derived endpoints (figures/sweeps/traces),
        # overridable per request; POST /v1/cells always carries its own.
        self.instructions = (DEFAULT_INSTRUCTIONS if instructions is None
                             else instructions)
        self.warmup = DEFAULT_WARMUP if warmup is None else warmup
        self._server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.close()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- plumbing ---------------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            request = await reader.readline()
            if not request:
                return
            try:
                method, target, _version = request.decode("latin-1").split()
            except ValueError:
                await self._send_json(writer, 400, {"error": "bad request"})
                return
            headers: dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length") or 0)
            if length > _MAX_BODY:
                await self._send_json(writer, 413,
                                      {"error": "body too large"})
                return
            body = await reader.readexactly(length) if length else b""
            path, _, query = target.partition("?")
            params = urllib.parse.parse_qs(query)
            try:
                await self._dispatch(method, path, params, body, writer)
            except HttpError as exc:
                await self._send_json(writer, exc.status,
                                      {"error": str(exc)})
            except Exception as exc:
                await self._send_json(writer, 500, {"error": str(exc)})
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            # Client went away mid-request/mid-stream.  Nothing to do:
            # the work it may have triggered is shared and keeps running.
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _send_json(writer: asyncio.StreamWriter, status: int,
                         payload: Any) -> None:
        body = json.dumps(payload).encode()
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed", 413: "Payload Too Large",
                  500: "Internal Server Error"}.get(status, "Error")
        writer.write(
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n".encode() + body)
        await writer.drain()

    # -- routing ----------------------------------------------------------------

    async def _dispatch(self, method: str, path: str,
                        params: dict[str, list[str]], body: bytes,
                        writer: asyncio.StreamWriter) -> None:
        parts = [p for p in path.split("/") if p]
        if method == "GET" and path == "/healthz":
            await self._send_json(writer, 200, {"ok": True})
            return
        if method == "GET" and path == "/v1/meta":
            await self._send_json(writer, 200, {
                "model_version": MODEL_VERSION,
                "key_schema": KEY_SCHEMA,
                "jobs": self.service.jobs,
                "instructions": self.instructions,
                "warmup": self.warmup,
                "workloads": workload_names(),
                "configs": sorted(CONFIG_BUILDERS),
            })
            return
        if method == "GET" and path == "/v1/metrics":
            await self._send_json(writer, 200, self.service.metrics())
            return
        if method == "POST" and path == "/v1/cells":
            await self._post_cells(body, writer)
            return
        if method == "GET" and len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
            await self._get_job(parts[2], writer)
            return
        if (method == "GET" and len(parts) == 4
                and parts[:2] == ["v1", "jobs"] and parts[3] == "events"):
            await self._stream_job(parts[2], writer)
            return
        if method == "GET" and len(parts) == 3 and parts[:2] == ["v1",
                                                                 "figures"]:
            await self._get_figure(parts[2], params, writer)
            return
        if method == "GET" and len(parts) == 3 and parts[:2] == ["v1",
                                                                 "sweeps"]:
            await self._get_sweep(parts[2], params, writer)
            return
        if (method == "GET" and len(parts) == 4
                and parts[:2] == ["v1", "traces"]):
            await self._get_trace(parts[2], parts[3], params, writer)
            return
        await self._send_json(writer, 404, {"error": f"no route {path}"})

    # -- handlers ---------------------------------------------------------------

    @staticmethod
    def _decode_body(body: bytes) -> Any:
        try:
            return json.loads(body)
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise HttpError(400, "body must be JSON") from None

    async def _post_cells(self, body: bytes,
                          writer: asyncio.StreamWriter) -> None:
        payload = self._decode_body(body)
        if not isinstance(payload, dict) or not isinstance(
                payload.get("cells"), list) or not payload["cells"]:
            raise HttpError(400, 'body must be {"cells": [spec, ...]}')
        specs = [decode_spec(obj) for obj in payload["cells"]]
        if payload.get("wait", True):
            results = await self.service.request_cells(specs)
            await self._send_json(writer, 200, {
                "cells": [{"key": spec_cell_key(spec), "stats": stats}
                          for spec, stats in zip(specs, results)],
            })
            return
        job = self.service.submit_job(specs)
        await self._send_json(writer, 200, {"job": job.id,
                                            "cells": job.cells})

    def _job_or_404(self, job_id: str) -> FarmJob:
        job = self.service.get_job(job_id)
        if job is None:
            raise HttpError(404, f"unknown job {job_id!r}")
        return job

    async def _get_job(self, job_id: str,
                       writer: asyncio.StreamWriter) -> None:
        job = self._job_or_404(job_id)
        await self._send_json(writer, 200, {
            "job": job.id,
            "cells": job.cells,
            "done": job.done,
            "ok": job.ok,
            "error": job.error,
            "results": job.results,
        })

    @staticmethod
    def _relevant(event: dict[str, Any], job: FarmJob) -> bool:
        return (event.get("cell") in job.cells
                or event.get("job") == job.id)

    async def _stream_job(self, job_id: str,
                          writer: asyncio.StreamWriter) -> None:
        """Long-poll NDJSON event stream, ending at ``farm.job_done``.

        The stream drains the job's private subscription queue, which
        was attached at submission — so events emitted before the client
        connected replay first, then live events follow.
        """
        job = self._job_or_404(job_id)
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: application/x-ndjson\r\n"
                     b"Connection: close\r\n\r\n")
        await writer.drain()
        while True:
            try:
                event = job.queue.get_nowait()
            except asyncio.QueueEmpty:
                if job.done:
                    break  # job_done already streamed (or pre-drained)
                event = await job.queue.get()
            if not self._relevant(event, job):
                continue
            writer.write((json.dumps(event) + "\n").encode())
            await writer.drain()
            if (event.get("event") == "farm.job_done"
                    and event.get("job") == job.id):
                break

    def _budgets(self, params: dict[str, list[str]]) -> tuple[int, int]:
        def pick(name: str, default: int) -> int:
            raw = params.get(name, [None])[0]
            if raw is None:
                return default
            try:
                return int(raw)
            except ValueError:
                raise HttpError(400, f"{name} must be an integer") from None
        return (pick("instructions", self.instructions),
                pick("warmup", self.warmup))

    async def _get_figure(self, fig_id: str, params: dict[str, list[str]],
                          writer: asyncio.StreamWriter) -> None:
        from ..cli import FIGURES
        if fig_id not in FIGURES:
            raise HttpError(404, f"unknown figure {fig_id!r}")
        extractor, filename = FIGURES[fig_id]
        instructions, warmup = self._budgets(params)
        loop = asyncio.get_running_loop()
        matrix = _ServiceMatrix(self.service, loop, instructions, warmup)
        # The extractor is synchronous: run it on a thread, from which
        # each cell miss hops back onto this loop (and coalesces).
        table = await loop.run_in_executor(None, extractor, matrix)
        payload = _table_payload(table)
        payload.update({"figure": fig_id, "filename": filename})
        await self._send_json(writer, 200, payload)

    async def _get_sweep(self, name: str, params: dict[str, list[str]],
                         writer: asyncio.StreamWriter) -> None:
        from ..analysis.sweeps import CANNED_SWEEPS, run_named_sweep
        if name not in CANNED_SWEEPS:
            raise HttpError(404, f"unknown sweep {name!r}")
        instructions, warmup = self._budgets(params)
        benches_raw = params.get("benches", [None])[0]
        benches = benches_raw.split(",") if benches_raw else None
        loop = asyncio.get_running_loop()
        table = await loop.run_in_executor(
            None, lambda: run_named_sweep(
                name, benches=benches, instructions=instructions,
                warmup=warmup, jobs=self.service.jobs))
        payload = _table_payload(table)
        payload["sweep"] = name
        await self._send_json(writer, 200, payload)

    async def _get_trace(self, workload: str, config_name: str,
                         params: dict[str, list[str]],
                         writer: asyncio.StreamWriter) -> None:
        from ..obs import export_perfetto, run_traced
        if workload not in workload_names():
            raise HttpError(404, f"unknown workload {workload!r}")
        if config_name not in CONFIG_BUILDERS:
            raise HttpError(404, f"unknown config {config_name!r}")
        instructions, warmup = self._budgets(params)
        loop = asyncio.get_running_loop()
        run = await loop.run_in_executor(
            None, lambda: run_traced(workload, config_name,
                                     max_instructions=instructions,
                                     warmup_instructions=warmup))
        payload = export_perfetto(
            run.trace, run.samples,
            metadata={"workload": workload, "config": config_name})
        await self._send_json(writer, 200, payload)
