"""The farm service: an asyncio job queue over the simulation fan-out.

One :class:`FarmService` owns four things:

* an **in-flight table** mapping cell keys to futures, so identical
  concurrent requests coalesce into exactly one simulation — the
  "thundering herd of sweep requests becomes one matrix run" property
  the roadmap asks for;
* an **admission queue** drained in batches: every cell queued while a
  batch was being formed is admitted together (and the batch id is
  visible on the ``farm.admitted`` events), so a burst of requests is
  one admission, not N;
* a **worker pool** (the same :mod:`repro.analysis.parallel` cell runner
  the local matrix uses, over a ``ProcessPoolExecutor``) — a worker
  crash marks the pool broken, the pool is rebuilt, and the cell goes
  back on the admission queue (``farm.requeued``) instead of wedging
  its in-flight entry;
* the **result store** (:class:`~repro.farm.store.ResultStore`) plus an
  in-memory memo, consulted before anything is queued.

Event emission is validated against
:data:`repro.obs.events.FARM_EVENT_SCHEMAS`; counters are collected by
:func:`repro.obs.metrics.farm_registry`.

Waiters are isolated from each other: a client disconnect cancels only
that client's wait (``asyncio.shield``), never the shared run, and a
failed cell clears its in-flight entry so the next request retries
fresh.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from ..analysis.parallel import CellSpec, resolve_jobs, simulate_cell
from ..obs import validate_farm_event
from .store import ResultStore, spec_cell_key

#: Completed jobs kept around for late result fetches / event streams.
_JOB_HISTORY = 64


class FarmError(RuntimeError):
    """A cell failed permanently (worker crashes exhausted the retry
    budget, or the simulation itself raised)."""


@dataclass
class FarmJob:
    """One client request: a set of cells plus its own event stream."""

    id: str
    cells: list[str]
    queue: "asyncio.Queue[dict[str, Any]]"
    results: Optional[list[dict[str, Any]]] = None
    error: Optional[str] = None
    done: bool = False
    task: Optional["asyncio.Task"] = field(default=None, repr=False)

    @property
    def ok(self) -> bool:
        return self.done and self.error is None


class FarmService:
    """Coalescing, store-backed cell-simulation service (single loop)."""

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        jobs: Optional[int] = None,
        runner: Callable[[CellSpec], dict[str, Any]] = simulate_cell,
        executor_factory: Optional[Callable[[], Any]] = None,
        max_attempts: int = 3,
        batch_delay: float = 0.0,
    ) -> None:
        self.store = store
        self.jobs = resolve_jobs(jobs)
        self.max_attempts = max(1, max_attempts)
        # batch_delay > 0 widens the admission window: the drain waits
        # that long after the first queued cell so a herd arriving over
        # a few milliseconds still admits as one batch.  0 drains
        # whatever the current loop iteration queued.
        self.batch_delay = batch_delay
        self._runner = runner
        self._executor_factory = executor_factory
        self._executor: Optional[Any] = None
        self._memo: dict[str, dict[str, Any]] = {}
        self._inflight: dict[str, "asyncio.Future"] = {}
        self._queue: Optional["asyncio.Queue"] = None
        self._admission: Optional["asyncio.Task"] = None
        self._tasks: set["asyncio.Task"] = set()
        self._subscribers: set["asyncio.Queue"] = set()
        self._jobs: dict[str, FarmJob] = {}
        self._job_seq = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        # Counters (see repro.obs.metrics.farm_registry).
        self.requests = 0
        self.memo_hits = 0
        self.store_hits = 0
        self.coalesced = 0
        self.admitted = 0
        self.batches = 0
        self.requeues = 0
        self.completed = 0
        self.failures = 0

    # -- registry-facing accounting -------------------------------------------

    @property
    def inflight(self) -> int:
        return len(self._inflight)

    @property
    def result_store_hits(self) -> int:
        return self.store.hits if self.store is not None else 0

    @property
    def result_store_misses(self) -> int:
        return self.store.misses if self.store is not None else 0

    @property
    def result_store_puts(self) -> int:
        return self.store.puts if self.store is not None else 0

    def metrics(self) -> dict[str, int]:
        from ..obs import farm_registry
        return farm_registry().collect(self)

    # -- events ------------------------------------------------------------------

    def subscribe(self) -> "asyncio.Queue[dict[str, Any]]":
        """A queue receiving every farm event from now on.  Dropping a
        subscription (:meth:`unsubscribe`) never affects the runs the
        events describe."""
        queue: "asyncio.Queue[dict[str, Any]]" = asyncio.Queue()
        self._subscribers.add(queue)
        return queue

    def unsubscribe(self, queue: "asyncio.Queue") -> None:
        self._subscribers.discard(queue)

    def _emit(self, kind: str, **payload: Any) -> None:
        event = {"event": kind, **payload}
        validate_farm_event(event)
        for queue in self._subscribers:
            queue.put_nowait(event)

    # -- the cell path -----------------------------------------------------------

    def _ensure_running(self) -> None:
        loop = asyncio.get_running_loop()
        if self._loop is None:
            self._loop = loop
        elif self._loop is not loop:
            raise RuntimeError("FarmService is bound to another event loop")
        if self._queue is None:
            self._queue = asyncio.Queue()
        if self._admission is None or self._admission.done():
            self._admission = loop.create_task(self._admission_loop())

    def _get_executor(self):
        if self._executor is None:
            if self._executor_factory is not None:
                self._executor = self._executor_factory()
            else:
                # spawn, not fork: pool workers are created lazily, i.e.
                # while client sockets are open.  A forked worker would
                # inherit duplicates of those fds and keep them for the
                # pool's lifetime, so a streaming client would never see
                # the server's FIN after ``Connection: close``.  spawn'd
                # workers (exec) inherit no sockets (PEP 446).
                import multiprocessing
                self._executor = ProcessPoolExecutor(
                    max_workers=self.jobs,
                    mp_context=multiprocessing.get_context("spawn"))
        return self._executor

    def _discard_executor(self) -> None:
        """Drop a broken pool; the next admission rebuilds a fresh one."""
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    async def cell(self, spec: CellSpec) -> dict[str, Any]:
        """Stats for one cell: memo, store, in-flight coalesce, or a
        fresh admission — in that order.  Plain cells are also served by
        a ``+chains`` superset (same timing, strictly more fields),
        mirroring :meth:`ExperimentMatrix._lookup`."""
        self._ensure_running()
        self.requests += 1
        key = spec_cell_key(spec)
        probes = [key]
        if not spec.chain_stats:
            probes.append(spec_cell_key(spec._replace(chain_stats=True)))
        for probe in probes:
            stats = self._memo.get(probe)
            if stats is not None:
                self.memo_hits += 1
                self._emit("farm.hit", cell=probe, source="memo")
                return stats
        if self.store is not None:
            for probe in probes:
                stats = self.store.get(probe)
                if stats is not None:
                    self.store_hits += 1
                    self._memo[probe] = stats
                    self._emit("farm.hit", cell=probe, source="store")
                    return stats
        for probe in probes:
            fut = self._inflight.get(probe)
            if fut is not None:
                self.coalesced += 1
                self._emit("farm.coalesced", cell=probe)
                return await asyncio.shield(fut)
        fut = self._loop.create_future()
        self._inflight[key] = fut
        self.admitted += 1
        self._queue.put_nowait((key, spec, 1))
        self._emit("farm.queued", cell=key)
        # shield: cancelling a waiter (client disconnect) must cancel
        # only the wait, never the shared in-flight future.
        return await asyncio.shield(fut)

    async def request_cells(self, specs: Sequence[CellSpec],
                            ) -> list[dict[str, Any]]:
        """Stats for every spec, in spec order."""
        self._ensure_running()
        return list(await asyncio.gather(*(self.cell(s) for s in specs)))

    # -- admission / execution -------------------------------------------------

    async def _admission_loop(self) -> None:
        while True:
            batch = [await self._queue.get()]
            if self.batch_delay > 0:
                await asyncio.sleep(self.batch_delay)
            while True:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            self.batches += 1
            batch_id = self.batches
            for key, spec, attempt in batch:
                self._emit("farm.admitted", cell=key, batch=batch_id)
                task = self._loop.create_task(
                    self._execute(key, spec, attempt))
                self._tasks.add(task)
                task.add_done_callback(self._tasks.discard)

    async def _execute(self, key: str, spec: CellSpec, attempt: int) -> None:
        fut = self._inflight.get(key)
        if fut is None or fut.done():
            return
        try:
            stats = await self._loop.run_in_executor(
                self._get_executor(), self._runner, spec)
        except BrokenExecutor:
            # Worker crashed mid-cell.  The pool is unusable: rebuild it
            # and return the cell to the admission queue — the in-flight
            # entry (and every coalesced waiter) stays live.
            self._discard_executor()
            if attempt < self.max_attempts:
                self.requeues += 1
                self._emit("farm.requeued", cell=key, attempt=attempt)
                self._queue.put_nowait((key, spec, attempt + 1))
                return
            self._fail(key, fut, FarmError(
                f"cell {key}: worker crashed {attempt} time(s)"))
            return
        except Exception as exc:  # deterministic failure: no retry
            self._fail(key, fut, exc)
            return
        self._memo[key] = stats
        if self.store is not None:
            try:
                self.store.put(key, stats)
            except OSError:
                pass  # serving beats persistence: degrade to memo-only
        self._inflight.pop(key, None)
        self.completed += 1
        self._emit("farm.done", cell=key, attempts=attempt)
        if not fut.done():
            fut.set_result(stats)

    def _fail(self, key: str, fut: "asyncio.Future", exc: Exception) -> None:
        """Permanent failure: clear the in-flight entry (so the next
        request retries fresh — no wedged key) and fail the waiters."""
        self._inflight.pop(key, None)
        self.failures += 1
        self._emit("farm.error", cell=key, message=str(exc))
        if not fut.done():
            fut.set_exception(exc)
            fut.exception()  # mark retrieved: waiters may already be gone

    # -- jobs --------------------------------------------------------------------

    def submit_job(self, specs: Sequence[CellSpec]) -> FarmJob:
        """Start a job for ``specs`` and return immediately; the job's
        queue streams its cells' events and ends with ``farm.job_done``."""
        self._ensure_running()
        self._job_seq += 1
        job = FarmJob(id=f"job-{self._job_seq}",
                      cells=[spec_cell_key(s) for s in specs],
                      queue=self.subscribe())
        self._jobs[job.id] = job
        job.task = self._loop.create_task(self._run_job(job, list(specs)))
        return job

    async def _run_job(self, job: FarmJob, specs: list[CellSpec]) -> None:
        try:
            job.results = await self.request_cells(specs)
        except Exception as exc:
            job.error = str(exc)
        job.done = True
        self._emit("farm.job_done", job=job.id, cells=len(job.cells),
                   ok=job.error is None)
        self._trim_jobs()

    def _trim_jobs(self) -> None:
        while len(self._jobs) > _JOB_HISTORY:
            oldest = next(iter(self._jobs))
            self.unsubscribe(self._jobs.pop(oldest).queue)

    def get_job(self, job_id: str) -> Optional[FarmJob]:
        return self._jobs.get(job_id)

    # -- lifecycle ---------------------------------------------------------------

    async def close(self) -> None:
        """Stop admission, cancel running cells, fail pending waiters."""
        if self._admission is not None:
            self._admission.cancel()
            try:
                await self._admission
            except (asyncio.CancelledError, Exception):
                pass
            self._admission = None
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        for key, fut in list(self._inflight.items()):
            if not fut.done():
                fut.set_exception(FarmError("farm service closed"))
                fut.exception()
        self._inflight.clear()
        self._discard_executor()
