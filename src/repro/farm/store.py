"""Content-addressed result store: the KEY_SCHEMA cell cache as a
service-grade artifact.

:class:`ExperimentMatrix` keeps one JSON file per matrix;
``CheckpointStore`` keeps one file per warm state.  The farm needs the
middle ground: one immutable file per *(model version, cell key)* so
millions of readers can be served straight from disk and a result is
computed at most once per model version.

* Addressing: ``root/v<MODEL_VERSION>.<KEY_SCHEMA>/<h[:2]>/<h>.json``
  where ``h`` is the SHA-256 of the KEY_SCHEMA cell key (the exact
  string :func:`repro.analysis.experiments.cell_key` produces, so the
  farm, the matrix, and remote clients all agree byte-for-byte on what
  a cell is).  Bumping ``MODEL_VERSION`` or ``KEY_SCHEMA`` changes the
  version directory, so every stale entry simply never hits again —
  invalidation is spelled "miss", exactly like the checkpoint store.
* Immutability: entries are written once via temp-file + ``os.replace``.
  A second ``put`` for an existing valid entry is a no-op — cells are
  deterministic, so equal keys always address equal stats.
* Concurrency: atomic writes make racing writers safe (each leaves a
  complete, identical entry); corrupt entries are evicted with the same
  claim-by-rename dance as ``CheckpointStore`` so an eviction can never
  destroy a peer's fresh rewrite.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Optional

from ..analysis.experiments import KEY_SCHEMA, MODEL_VERSION, cell_key, \
    multicore_suffix, tier_suffix
from ..analysis.parallel import CellSpec


def spec_cell_key(spec: CellSpec) -> str:
    """The KEY_SCHEMA cell key a :class:`CellSpec` addresses — identical
    to the key an :class:`ExperimentMatrix` with the same budgets and
    sampling plan would derive for the cell (including the multicore
    suffix for ``cores > 1`` specs, whose keys match
    ``ExperimentMatrix.get_multicore``)."""
    suffix = tier_suffix(spec.tier, spec.ramp, spec.window, spec.stride,
                         live_point=bool(spec.window_jobs
                                         or spec.checkpoint_dir))
    if getattr(spec, "cores", 1) > 1:
        workload_list = (spec.workloads or spec.workload).split(",")
        suffix += multicore_suffix(spec.cores, spec.share, workload_list)
        return cell_key(workload_list[0], spec.config_name,
                        spec.chain_stats, spec.instructions, spec.warmup,
                        suffix)
    return cell_key(spec.workload, spec.config_name, spec.chain_stats,
                    spec.instructions, spec.warmup, suffix)


class ResultStore:
    """Immutable, content-addressed on-disk store of finished cell stats."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.puts = 0

    @property
    def version_dir(self) -> Path:
        return self.root / f"v{MODEL_VERSION}.{KEY_SCHEMA}"

    def _path(self, cell: str) -> Path:
        h = hashlib.sha256(cell.encode()).hexdigest()
        return self.version_dir / h[:2] / f"{h}.json"

    @staticmethod
    def _decode(blob: bytes, cell: str) -> Optional[dict[str, Any]]:
        """The stats inside one entry's bytes, or ``None`` when the blob
        is truncated, foreign, or records a different cell (a hash
        collision or hand-edited file)."""
        try:
            payload = json.loads(blob)
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None
        if (not isinstance(payload, dict) or payload.get("cell") != cell
                or not isinstance(payload.get("stats"), dict)):
            return None
        return payload["stats"]

    def get(self, cell: str) -> Optional[dict[str, Any]]:
        """The stored stats for one cell key, or ``None`` on a miss."""
        path = self._path(cell)
        try:
            blob = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        stats = self._decode(blob, cell)
        if stats is None:
            stats = self._evict(path, cell)
        if stats is None:
            self.misses += 1
            return None
        self.hits += 1
        return stats

    def _evict(self, path: Path, cell: str) -> Optional[dict[str, Any]]:
        """Claim-by-rename eviction of a corrupt entry (see
        ``CheckpointStore._evict`` for the race this avoids: a bare
        unlink could destroy a peer's fresh atomic rewrite)."""
        claimed = path.with_name(f"{path.name}.evict.{os.getpid()}")
        try:
            os.rename(path, claimed)
        except OSError:
            return None
        try:
            stats = self._decode(claimed.read_bytes(), cell)
        except OSError:
            return None
        if stats is None:
            claimed.unlink(missing_ok=True)
            return None
        os.replace(claimed, path)
        return stats

    def put(self, cell: str, stats: dict[str, Any]) -> bool:
        """Persist one cell's stats; returns ``False`` when a valid
        entry already exists (entries are immutable — equal keys address
        equal deterministic results, so there is nothing to update)."""
        path = self._path(cell)
        try:
            if self._decode(path.read_bytes(), cell) is not None:
                return False
        except OSError:
            pass
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = json.dumps({
            "cell": cell,
            "model_version": MODEL_VERSION,
            "key_schema": KEY_SCHEMA,
            "stats": stats,
        })
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        try:
            tmp.write_text(blob)
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)
        self.puts += 1
        return True

    def metrics(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "puts": self.puts}
