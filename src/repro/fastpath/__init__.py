"""Two-tier simulation: functional fast-forward + sampled detailed windows.

``engine`` drives the alternation (detailed window -> architectural
handoff -> batched functional gap); ``checkpoint`` adds warm-state
snapshots, the content-addressed checkpoint store, and the live-point
mode that fans measured windows out across processes; ``validate``
states and checks the sampled tier's accuracy contract.  See
docs/simulator.md, "Two-tier simulation" and "Checkpoints & parallel
windows".
"""

from .blockjit import FF_LANES, resolve_ff_lane
from .checkpoint import (
    CKPT_SCHEMA,
    CheckpointPlan,
    CheckpointStore,
    checkpoint_key,
    make_checkpoint_plan,
    resolve_checkpoint_dir,
    restore_or_warm_up,
    snapshot_bytes,
    snapshot_digest,
)
from .engine import merge_window_stats, run_two_tier
from .validate import (
    SAMPLING_TOLERANCES,
    check_sampling_error,
    runahead_share,
    stats_fingerprint,
)

__all__ = [
    "CKPT_SCHEMA",
    "CheckpointPlan",
    "CheckpointStore",
    "FF_LANES",
    "SAMPLING_TOLERANCES",
    "check_sampling_error",
    "checkpoint_key",
    "make_checkpoint_plan",
    "merge_window_stats",
    "resolve_checkpoint_dir",
    "resolve_ff_lane",
    "restore_or_warm_up",
    "run_two_tier",
    "runahead_share",
    "snapshot_bytes",
    "snapshot_digest",
    "stats_fingerprint",
]
