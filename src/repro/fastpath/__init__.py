"""Two-tier simulation: functional fast-forward + sampled detailed windows.

``engine`` drives the alternation (detailed window -> architectural
handoff -> batched functional gap); ``validate`` states and checks the
sampled tier's accuracy contract.  See docs/simulator.md, "Two-tier
simulation".
"""

from .blockjit import FF_LANES, resolve_ff_lane
from .engine import run_two_tier
from .validate import SAMPLING_TOLERANCES, check_sampling_error, runahead_share

__all__ = [
    "FF_LANES",
    "SAMPLING_TOLERANCES",
    "check_sampling_error",
    "resolve_ff_lane",
    "run_two_tier",
    "runahead_share",
]
