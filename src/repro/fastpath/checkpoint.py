"""Warm-state checkpoints: snapshot, digest, and content-addressed store.

The two-tier engine spends most of its non-detailed time re-executing
the same functional fast-forward stream: every rep, every config sharing
a cache/predictor geometry, and every run of the same cell rebuilds the
identical warm state from instruction 0.  This module makes that state a
first-class artifact:

* ``Processor.snapshot()`` / ``restore()`` (with matching methods on
  ``MemoryHierarchy``, ``Cache``, ``MemoryController``,
  ``StreamPrefetcher`` and ``BranchPredictor.snapshot_state()``) capture
  exactly the state a fast-forward gap carries into the next detailed
  burst: architectural registers and memory words, all cache arrays in
  LRU order, predictor tables/BTB/GHR/RAS, stream-prefetcher entries,
  and the DRAM-side accounting — as plain picklable data.
* :func:`snapshot_bytes` is the canonical serialization (dict contents
  sorted where insertion order is not semantic), so equal warm states
  produce equal bytes whichever fast-forward lane built them —
  the lane-equivalence gate in tests/test_warmup_parity.py pins this.
* :class:`CheckpointStore` is the on-disk content-addressed store, the
  ``KEY_SCHEMA`` experiment cache generalized from "finished stats" to
  "mid-stream warm state".  A checkpoint is addressed by
  :func:`checkpoint_key` over (schema, program content, warm-callback
  mask, cache/predictor/DRAM geometry, base-state digest, stream
  distance from that base).  Keying on the *digest of the state the
  chain started from* makes chains self-validating: any change to the
  program, the initial memory image, the warm-up budget, or the
  geometry changes the base digest and the old entries simply never hit
  again — invalidation is spelled "miss".

Provenance rule: the store only ever holds pure fast-forward state.
Callers must not save snapshots of a processor that has executed
detailed instructions (``committed != 0``); the engine and
:func:`restore_or_warm_up` enforce this.

The runahead configuration is deliberately *not* part of the key:
fast-forward warming never touches runahead state, so sweep cells that
differ only in runahead mode share every checkpoint — that is the
cross-cell reuse the live-point engine banks on.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

#: Version of the snapshot format + key derivation.  Bump on any change
#: to what a snapshot contains or how keys are derived; old store
#: entries then become unreachable (and CI's store cache rolls over).
CKPT_SCHEMA = 2  # v2: stream-prefetcher entries carry a training core

#: The warm-callback mask under which fast-forward state is produced.
#: ``Processor.fast_forward`` always warms instruction fetch, data
#: memory, and branches; a future lane that disables one of these must
#: use a different mask so its checkpoints cannot collide.
CB_MASK = "ifetch|mem|branch"

# Fixed serialization order of the hierarchy snapshot dict.
_HIERARCHY_KEYS = (
    "l1i", "l1d", "llc", "llc_misses", "llc_accesses",
    "ifetch_llc_misses", "fills", "mshr_rejections", "controller",
    "prefetcher",
)


def snapshot_bytes(snap: dict) -> bytes:
    """Canonical serialization of a ``Processor.snapshot()``.

    Containers whose iteration order is semantic (cache sets in LRU
    order, stream tables, the MSHR heap) keep their order; containers
    whose order is an execution artifact (the memory word dict) are
    sorted.  Equal warm states therefore serialize to equal bytes —
    across fast-forward lanes and across save/restore round-trips.
    """
    canon = (
        "repro-ckpt", CKPT_SCHEMA,
        snap["pc"], snap["regs"],
        tuple(sorted(snap["memory"].items())),
        snap["memory_fill"], snap["now"], snap["seq"], snap["committed"],
        snap["halted"], snap["ff_instructions"],
        tuple((key, snap["hierarchy"][key]) for key in _HIERARCHY_KEYS),
        snap["predictor"],
    )
    return pickle.dumps(canon, protocol=4)


def snapshot_digest(snap: dict) -> str:
    """SHA-256 of the canonical snapshot serialization."""
    return hashlib.sha256(snapshot_bytes(snap)).hexdigest()


def program_key(program) -> str:
    """Content identity of a program: entry PC plus the structural key of
    every instruction (equal-content programs share checkpoints, the
    same property the block JIT's code cache keys on)."""
    ident = (program.entry,
             tuple(inst.key() for inst in program.instructions))
    return hashlib.sha256(repr(ident).encode()).hexdigest()


def geometry_key(config) -> str:
    """Identity of every structure the warm state lives in: the three
    caches, the branch predictor, the stream prefetcher, and DRAM.
    Core-pipeline and runahead parameters are excluded on purpose —
    fast-forward never touches them, so cells differing only there
    share warm state."""
    ident = (config.l1i, config.l1d, config.llc, config.branch,
             config.prefetcher, config.dram)
    return hashlib.sha256(repr(ident).encode()).hexdigest()


def checkpoint_key(program, config, base_digest: str, delta: int) -> str:
    """Content address of "the warm state ``delta`` fast-forwarded
    instructions downstream of the state whose digest is
    ``base_digest``"."""
    h = hashlib.sha256()
    h.update(repr((CKPT_SCHEMA, CB_MASK, int(delta))).encode())
    h.update(program_key(program).encode())
    h.update(geometry_key(config).encode())
    h.update(base_digest.encode())
    return h.hexdigest()


class CheckpointStore:
    """Content-addressed on-disk checkpoint store.

    Layout: ``root/SCHEMA`` (the format version, for CI cache keying)
    and ``root/<key[:2]>/<key>.ckpt`` pickle files.  Writes are atomic
    (temp file + ``os.replace``), so concurrent writers — parallel sweep
    cells racing on a shared key — each leave a complete, identical
    entry.  Unreadable or wrong-schema entries count as misses and are
    removed.
    """

    _MAGIC = "repro-ckpt-file"

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.saves = 0
        self.bytes_written = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.ckpt"

    @classmethod
    def _decode(cls, blob: bytes) -> Optional[dict]:
        """The snapshot inside one entry's bytes, or ``None`` when the
        blob is truncated, corrupt, foreign, or wrong-schema."""
        try:
            payload = pickle.loads(blob)
        except Exception:
            return None
        if (not isinstance(payload, tuple) or len(payload) != 3
                or payload[0] != cls._MAGIC or payload[1] != CKPT_SCHEMA):
            return None
        return payload[2]

    def load(self, key: str) -> Optional[dict]:
        """The stored snapshot for ``key``, or ``None`` on a miss."""
        path = self._path(key)
        try:
            blob = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        snap = self._decode(blob)
        if snap is None:
            # Truncated/corrupt/foreign/stale entry: evict it so the
            # next save rewrites a clean one.  Eviction may recover a
            # concurrent writer's fresh entry instead (see _evict).
            snap = self._evict(path)
        if snap is None:
            self.misses += 1
            return None
        self.hits += 1
        return snap

    def _evict(self, path: Path) -> Optional[dict]:
        """Remove a corrupt/stale entry without destroying a concurrent
        writer's fresh replacement.

        A bare ``unlink`` here races two ways under parallel window jobs
        (``--window-jobs``): two workers evicting the same stale entry
        race each other to the delete, and — worse — a peer's ``save``
        can atomically replace the corrupt file between our read and our
        delete, so the unlink would destroy the *good* entry (a lost
        update).  Instead the entry is claimed by an atomic rename to a
        per-process name: exactly one evictor wins (losers see the
        rename fail and count a plain miss), and the claimed bytes are
        re-checked — if a concurrent save already replaced the corrupt
        entry, the claimed file is the fresh valid one, so it is put
        back (equal keys address equal states, so the replace is
        harmless) and returned as a hit."""
        claimed = path.with_name(f"{path.name}.evict.{os.getpid()}")
        try:
            os.rename(path, claimed)
        except OSError:
            return None  # a peer already evicted (or replaced+evicted) it
        try:
            snap = self._decode(claimed.read_bytes())
        except OSError:
            return None
        if snap is None:
            claimed.unlink(missing_ok=True)
            return None
        os.replace(claimed, path)
        return snap

    def save(self, key: str, snap: dict) -> None:
        """Persist one snapshot (atomic; last writer wins with identical
        content, since equal keys address equal states)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        schema_file = self.root / "SCHEMA"
        if not schema_file.exists():
            schema_file.write_text(f"{CKPT_SCHEMA}\n")
        blob = pickle.dumps((self._MAGIC, CKPT_SCHEMA, snap), protocol=4)
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        try:
            tmp.write_bytes(blob)
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)
        self.saves += 1
        self.bytes_written += len(blob)


@dataclass
class CheckpointPlan:
    """How the two-tier engine should run its checkpointed mode.

    ``jobs`` is the measured-window fan-out width (1 = in-process, the
    reference ordering every parallel run must byte-match).  ``store``
    is the optional on-disk store; without one, checkpoints live only in
    memory for the duration of the run (windows still fan out and the
    serial/parallel identity contract still holds).
    """

    jobs: int = 1
    store: Optional[CheckpointStore] = None
    # Filled by the engine as the run progresses (host bookkeeping).
    timings: dict = field(default_factory=dict)


def resolve_checkpoint_dir(explicit: Optional[str] = None) -> Optional[str]:
    """Store-directory precedence: explicit argument (``--checkpoint-dir``)
    over the ``REPRO_CKPT_DIR`` environment variable, else ``None``."""
    return explicit or os.environ.get("REPRO_CKPT_DIR") or None


def make_checkpoint_plan(jobs: Optional[int] = None,
                         checkpoint_dir: Optional[str] = None,
                         ) -> Optional[CheckpointPlan]:
    """Build a :class:`CheckpointPlan` from CLI-shaped inputs.

    Checkpoint mode engages when the caller asked for window parallelism
    (``jobs``) or a store directory resolves (argument or
    ``REPRO_CKPT_DIR``); otherwise returns ``None`` and the engine keeps
    its serial non-checkpointed path.
    """
    directory = resolve_checkpoint_dir(checkpoint_dir)
    if jobs is None and directory is None:
        return None
    store = CheckpointStore(directory) if directory else None
    return CheckpointPlan(jobs=max(1, jobs or 1), store=store)


def restore_or_warm_up(processor, warmup: int,
                       store: Optional[CheckpointStore] = None,
                       lane: Optional[str] = None) -> dict[str, Any]:
    """Pre-run warm-up through the store: restore the post-warm-up state
    when a matching checkpoint exists, else fast-forward and save it.

    The base of this chain is the *initial* state digest (taken before
    any execution), so the store path only applies to a freshly
    constructed processor — any prior detailed or functional execution
    falls back to a plain ``warm_up``.  Returns host-time bookkeeping:
    ``restored`` plus ``checkpoint_seconds``/``restore_seconds`` (digest
    and store time) and ``ff_seconds`` (functional execution time).
    """
    perf = time.perf_counter
    out = {"restored": False, "checkpoint_seconds": 0.0,
           "restore_seconds": 0.0, "ff_seconds": 0.0}
    if warmup <= 0:
        return out
    usable = (store is not None and processor.committed == 0
              and processor.ff_instructions == 0 and processor.now == 0)
    if not usable:
        t0 = perf()
        processor.warm_up(warmup, lane=lane)
        out["ff_seconds"] = perf() - t0
        return out
    t0 = perf()
    base_digest = snapshot_digest(processor.snapshot())
    key = checkpoint_key(processor.program, processor.config,
                         base_digest, warmup)
    out["checkpoint_seconds"] += perf() - t0
    t0 = perf()
    snap = store.load(key)
    if snap is not None:
        processor.restore(snap)
        out["restore_seconds"] += perf() - t0
        out["restored"] = True
        return out
    out["restore_seconds"] += perf() - t0
    t0 = perf()
    processor.warm_up(warmup, lane=lane)
    out["ff_seconds"] = perf() - t0
    t0 = perf()
    store.save(key, processor.snapshot())
    out["checkpoint_seconds"] += perf() - t0
    return out
