"""Template JIT for the functional fast-forward tier.

``Interpreter.run_warm`` dispatches one Python branch-tree per dynamic
instruction.  This module removes that per-instruction overhead by
translating each basic block (:mod:`repro.isa.blocks`) into a
specialized straight-line Python function — operands, immediates and
semantic functions resolved at translate time, register indices inlined
as locals, ``& MASK64`` folded away wherever the 64-bit-clean register
invariant makes it provably redundant — compiled once with ``compile()``
and cached content-addressed so equal-content programs (sweep cells)
share code objects.  Loop superblocks (a block whose terminal branch
targets its own entry) compile the whole iteration into one Python loop.

Two lane modes are generated from the same translator:

* **events** — per-op callbacks ``on_ifetch``/``on_mem``/``on_branch``
  with exactly the same call stream (order included) as
  :meth:`Interpreter.run_warm`.  This is the differentially fuzzed mode
  (tests/test_warmup_parity.py).
* **warm** — the callbacks are replaced by direct, batched feeds into
  the warm paths of the memory hierarchy and branch predictor.  This is
  the default fast-forward lane of ``Processor.fast_forward``.

Bit-identity argument for the *warm* mode batching
--------------------------------------------------

The interpreter lane performs, per op: an L1I-MRU-checked
``warm_ifetch`` (skip when the op's I-line is the L1I MRU entry with a
warm fill), then ``warm_load`` for a memory op, then a
``predictor.update`` for a branch.  The JIT lane must reproduce that
*warm-side* event stream exactly.  Three facts govern what may be
batched or elided:

1. **I-fetch checks elide statically, except after memory ops.**  If
   op ``j-1`` is a non-memory op on the same I-line as op ``j``, then
   between the two checks nothing touched any cache, so op ``j``'s
   check would observe the MRU state op ``j-1``'s check established
   (line resident and warm) and skip.  Eliding it is a no-op by
   induction from the block-entry check.  A ``warm_load``, however, can
   *evict the current I-line*: a data fill that misses the inclusive
   LLC may choose the I-line as victim, and the LLC back-invalidates
   the L1s (clearing the L1I MRU).  So the check following a memory op
   — and the check at every I-line boundary and at block entry — must
   execute at its historical position.

2. **Memory warms elide behind an L1D MRU guard.**  ``warm_load`` on a
   line that is the current L1D MRU entry is an exact no-op: the MRU
   fast path of ``Cache.lookup`` returns without reordering the set or
   counting stats, and ``warm_load`` then returns without touching the
   LLC.  So the generated code calls ``warm_load`` only when the access
   line differs from ``l1d._mru_key`` — every elided call is provably
   effect-free, and every emitted call runs at its historical position
   between the surrounding I-line probes.

3. **Branch outcomes batch freely across a loop run.**  Predictor
   state (gshare/bimodal/chooser tables, GHR, BTB) is disjoint from
   cache state, and a loop superblock contains exactly one branch, so
   its per-iteration outcomes commute with every cache event in the
   run.  ``BranchPredictor.warm_update_vector`` replays the outcome
   vector in order (GHR-dependent indices preserved) and performs the
   BTB insert once — idempotent after the first taken outcome because
   the (pc, target) pair is static.  Unconditional loop-closing JMPs
   collapse to a single ``update``: iterations 2..n would be exact
   no-ops (the BTB already holds the same entry).

Everything the static argument cannot cover falls back to the reference
interpreter: out-of-range PCs (wrong-path-style execution decodes
padding NOPs), registers that are not 64-bit-clean (the mask-folding
invariant), and sub-block budget tails — all replayed per-op through
:meth:`Interpreter.run_warm`, which is itself differentially fuzzed.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..isa.blocks import (
    BRANCH,
    HALT,
    LOOP,
    REGION,
    Block,
    Region,
    discover_region,
)
from ..isa.semantics import MASK64, SIGN_BIT
from ..isa.uop import CLS_LOAD, CLS_NOP, CLS_STORE, Opcode

# Bump to invalidate every cached code object when the generated source
# changes shape.
CODEGEN_VERSION = 2

# Instruction size in bytes (mirrors repro.frontend.fetch.INST_BYTES;
# duplicated here to keep fastpath importable without the frontend).
INST_BYTES = 4

FF_LANES = ("interp", "jit")

_M = "0x%X" % MASK64
_S = "0x%X" % SIGN_BIT

# Content-addressed store of compiled code objects, shared process-wide:
# key -> code.  Binding a code object to a concrete program (exec in a
# fresh namespace) is cheap; compile() is what this cache amortizes.
_CODE_CACHE: dict[tuple, Any] = {}


def resolve_ff_lane(explicit: Optional[str] = None,
                    default: Optional[str] = None) -> str:
    """Lane selection: explicit argument > configured default >
    ``REPRO_FF_LANE`` env var > ``"jit"``."""
    lane = explicit or default or os.environ.get("REPRO_FF_LANE") or "jit"
    if lane not in FF_LANES:
        raise ValueError(
            f"fast-forward lane must be one of {FF_LANES}, got {lane!r}")
    return lane


def _div64(a: int, b: int) -> int:
    """64-bit signed division (divisor 0 yields 0), masked result."""
    if b == 0:
        return 0
    if a >= 0x8000000000000000:
        a -= 1 << 64
    if b >= 0x8000000000000000:
        b -= 1 << 64
    return (a // b) & MASK64


@dataclass
class WarmTargets:
    """Warm-side bindings for the jit lane of one fast-forward call."""

    hierarchy: Any
    predictor: Any
    prev_taken: dict
    pc_line_shift: int


def warm_geom(hierarchy, predictor, memory) -> tuple:
    """Specialization constants baked into warm-mode generated code (and
    therefore into the code-cache key): cache/predictor geometry and the
    functional-memory fill rule."""
    return (
        hierarchy._line_shift,
        hierarchy.l1d.num_sets,
        hierarchy.l1i.num_sets,
        predictor._gshare_mask,
        predictor._bimodal_mask,
        predictor._chooser_mask,
        predictor._history_mask,
        predictor.config.btb_entries,
        memory.default_fill,
    )


# ---------------------------------------------------------------------------
# Code generation
# ---------------------------------------------------------------------------

_CB_IFETCH, _CB_MEM, _CB_BRANCH = 1, 2, 4

_COND_OPS = {
    Opcode.BEQ: "==",
    Opcode.BNE: "!=",
}


def _reg(index: Optional[int]) -> str:
    return "0" if index is None else f"r{index}"


def _alu_expr(inst) -> str:
    """Value expression for a non-memory, non-branch op.  Operand locals
    are 64-bit clean (driver invariant), so masks are emitted only where
    the operation can overflow 64 bits."""
    op = inst.opcode
    a = _reg(inst.src1)
    b = _reg(inst.src2)
    if op is Opcode.ADD or op is Opcode.FADD:
        return f"({a} + {b}) & {_M}"
    if op is Opcode.SUB:
        return f"({a} - {b}) & {_M}"
    if op is Opcode.AND:
        return f"{a} & {b}"
    if op is Opcode.OR:
        return f"{a} | {b}"
    if op is Opcode.XOR:
        return f"{a} ^ {b}"
    if op is Opcode.SHL:
        return f"(({a} << ({b} & 63)) & {_M})"
    if op is Opcode.SHR:
        return f"{a} >> ({b} & 63)"
    if op is Opcode.ADDI:
        return a if inst.imm == 0 else f"({a} + {inst.imm}) & {_M}"
    if op is Opcode.ANDI:
        return f"{a} & {inst.imm & MASK64}"
    if op is Opcode.MOV:
        return a
    if op is Opcode.LI:
        return str(inst.imm & MASK64)
    if op is Opcode.MUL or op is Opcode.FMUL:
        return f"({a} * {b}) & {_M}"
    if op is Opcode.DIV or op is Opcode.FDIV:
        return f"_div64({a}, {b})"
    raise AssertionError(f"not an ALU opcode: {op}")


def _cond_expr(inst) -> str:
    op = inst.opcode
    a = _reg(inst.src1)
    b = _reg(inst.src2)
    cmp = _COND_OPS.get(op)
    if cmp is not None:
        return f"{a} {cmp} {b}"
    if op is Opcode.BLT:
        return f"({a} ^ {_S}) < ({b} ^ {_S})"
    if op is Opcode.BGE:
        return f"({a} ^ {_S}) >= ({b} ^ {_S})"
    raise AssertionError(f"not a conditional branch: {op}")


def _addr_expr(inst) -> str:
    if inst.src1 is None:
        return str(inst.imm & MASK64)
    a = f"r{inst.src1}"
    return a if inst.imm == 0 else f"({a} + {inst.imm}) & {_M}"


class _Codegen:
    """Generates the ``_b(regs, mw, mem_load, W, budget)`` function for
    one block in one lane mode."""

    def __init__(self, block: Block, mode: str, cb_mask: int,
                 line_shift: int, geom: Optional[tuple] = None) -> None:
        self.block = block
        self.mode = mode
        self.cb_mask = cb_mask
        self.line_shift = line_shift
        if geom is not None:
            (self.data_shift, self.l1d_sets, self.l1i_sets,
             self.gshare_mask, self.bimodal_mask, self.chooser_mask,
             self.history_mask, self.btb_cap, self.fill) = geom
        self.lines: list[str] = []

    def w(self, depth: int, text: str) -> None:
        self.lines.append("    " * depth + text)

    # -- shared helpers -----------------------------------------------------

    def _regs_used(self) -> tuple[list[int], list[int]]:
        used: set[int] = set()
        written: set[int] = set()
        for inst in self.block.instructions:
            if inst.src1 is not None:
                used.add(inst.src1)
            if inst.src2 is not None:
                used.add(inst.src2)
            if inst.dest_reg is not None:
                written.add(inst.dest_reg)
        return sorted(used | written), sorted(written)

    def _has_load_with_dest(self) -> bool:
        return any(inst.cls_idx == CLS_LOAD and inst.dest_reg is not None
                   for inst in self.block.instructions)

    def _arch_mem(self, depth: int, j: int, inst) -> None:
        """Architectural effect of the memory op at block index ``j``;
        leaves the effective address in local ``_a{j}``."""
        self.w(depth, f"_a{j} = {_addr_expr(inst)}")
        if inst.cls_idx == CLS_LOAD:
            d = inst.dest_reg
            if d is not None:
                self.w(depth, f"r{d} = mw_get(_a{j} >> 3)")
                self.w(depth, f"if r{d} is None:")
                if self.mode == "warm":
                    # DataMemory.load default-fill, inlined (the miss is
                    # the common case for read-mostly working sets).
                    if self.fill == "zero":
                        self.w(depth + 1, f"r{d} = 0")
                    else:  # splitmix64-style hash of the word index
                        self.w(depth + 1,
                               f"_z = ((_a{j} >> 3) "
                               f"+ 0x9E3779B97F4A7C15) & {_M}")
                        self.w(depth + 1, "_z = ((_z ^ (_z >> 30)) "
                                          f"* 0xBF58476D1CE4E5B9) & {_M}")
                        self.w(depth + 1, "_z = ((_z ^ (_z >> 27)) "
                                          f"* 0x94D049BB133111EB) & {_M}")
                        self.w(depth + 1, f"r{d} = _z ^ (_z >> 31)")
                else:
                    self.w(depth + 1, f"r{d} = mem_load(_a{j})")
        else:
            self.w(depth, f"mw[_a{j} >> 3] = {_reg(inst.src2)}")

    def _warm_mem(self, depth: int, j: int) -> None:
        """Warm-side effect of the memory op at index ``j``: the L1D MRU
        guard, with the L1D *hit* path of ``warm_load`` inlined (probe
        the set, touch LRU, refresh the MRU pointers — exactly
        ``Cache.lookup(touch=True)``); only misses call out."""
        self.w(depth, f"_l = _a{j} >> {self.data_shift}")
        self.w(depth, "if _l != l1d._mru_key:")
        self.w(depth + 1, f"_s = l1d_sets[_l % {self.l1d_sets}]")
        self.w(depth + 1, "_ln = _s.get(_l)")
        self.w(depth + 1, "if _ln is None:")
        self.w(depth + 2, "warm_load(_l)")
        self.w(depth + 1, "else:")
        self.w(depth + 2, "_s.move_to_end(_l)")
        self.w(depth + 2, "l1d._mru_key = _l")
        self.w(depth + 2, "l1d._mru_line = _ln")

    def _arch_alu(self, depth: int, inst) -> None:
        if inst.dest_reg is not None:
            self.w(depth, f"r{inst.dest_reg} = {_alu_expr(inst)}")

    # -- warm-mode i-fetch emission rule ------------------------------------

    def _iline(self, j: int) -> int:
        return (self.block.entry + j) >> self.line_shift

    def _check_needed(self, j: int) -> bool:
        """Static elision rule (see module docstring): the per-op I-line
        MRU check must be emitted at block entry, at I-line boundaries,
        and at every op following a memory op; everywhere else it
        provably skips."""
        if j == 0:
            return True
        prev = self.block.instructions[j - 1]
        if prev.cls_idx == CLS_LOAD or prev.cls_idx == CLS_STORE:
            return True
        return self._iline(j) != self._iline(j - 1)

    def _warm_check(self, depth: int, j: int) -> None:
        # The pc-units I-line number equals the byte-line address the
        # L1I is keyed by (pc >> (shift-2) == pc*4 >> shift), so one
        # literal serves both the MRU compare and the warm call.
        #
        # The resident-and-ready L1I hit is inlined: the LLC is
        # inclusive, so an L1I-resident line is LLC-resident and the
        # side-effect-free LLC probe inside warm_ifetch_line is a
        # guaranteed hit; with ready_cycle == 0 the only remaining
        # effects are the set reorder and the MRU update — exactly the
        # three statements below.  Loops straddling an I-line boundary
        # ping-pong the MRU every iteration, so this path is hot.
        line = self._iline(j)
        self.w(depth, f"if {line} != l1i._mru_key "
                      f"or l1i._mru_line.ready_cycle > 0:")
        self.w(depth + 1, f"_is = l1i_sets[{line % self.l1i_sets}]")
        self.w(depth + 1, f"_il = _is.get({line})")
        self.w(depth + 1, "if _il is None or _il.ready_cycle > 0:")
        self.w(depth + 2, f"warm_ifetch({line})")
        self.w(depth + 1, "else:")
        self.w(depth + 2, f"_is.move_to_end({line})")
        self.w(depth + 2, f"l1i._mru_key = {line}")
        self.w(depth + 2, "l1i._mru_line = _il")

    # -- bodies -------------------------------------------------------------

    def _body(self, depth: int) -> None:
        """Emit every op except a BRANCH/LOOP terminal (handled by the
        caller); HALT/STRAIGHT blocks are emitted in full."""
        ops = self.block.instructions
        last = len(ops) - 1
        terminal_branch = self.block.kind in (BRANCH, LOOP)
        warm = self.mode == "warm"
        j = 0
        while j < len(ops):
            if terminal_branch and j == last:
                return
            inst = ops[j]
            cls = inst.cls_idx
            pc = self.block.entry + j
            if warm:
                if self._check_needed(j):
                    self._warm_check(depth, j)
            elif self.cb_mask & _CB_IFETCH:
                self.w(depth, f"on_ifetch({pc})")
            if cls == CLS_LOAD or cls == CLS_STORE:
                self._arch_mem(depth, j, inst)
                if warm:
                    # warm_load on the L1D MRU line is an exact no-op
                    # (the MRU lookup path neither reorders the set nor
                    # counts stats), so the call elides behind a guard.
                    self._warm_mem(depth, j)
                elif self.cb_mask & _CB_MEM:
                    self.w(depth, f"on_mem(_a{j})")
            elif cls < CLS_NOP:
                self._arch_alu(depth, inst)
            # NOP and the terminal HALT have no architectural effect.
            j += 1

    def _terminal_prelude(self, depth: int) -> None:
        """I-fetch event for the terminal branch op."""
        last = len(self.block.instructions) - 1
        if self.mode == "warm":
            if self._check_needed(last):
                self._warm_check(depth, last)
        elif self.cb_mask & _CB_IFETCH:
            self.w(depth, f"on_ifetch({self.block.entry + last})")

    # -- top-level emitters -------------------------------------------------

    def generate(self) -> str:
        block = self.block
        warm = self.mode == "warm"
        self.w(0, "def _b(regs, mw, mem_load, W, budget, pc=0, _bi=_BI):")
        if warm:
            self.w(1, "l1d, l1i, warm_ifetch, warm_load, "
                      "update, warm_vec, _pt, pred = W")
            self.w(1, "l1i_sets = l1i._sets")
            if any(inst.is_mem for inst in block.instructions):
                self.w(1, "l1d_sets = l1d._sets")
            term = block.terminal if block.kind == BRANCH else None
            if term is not None and term.is_conditional_branch:
                self.w(1, "gsh = pred._gshare")
                self.w(1, "bim = pred._bimodal")
                self.w(1, "cho = pred._chooser")
            if term is not None and not term.is_return:
                self.w(1, "btb = pred._btb")
        else:
            self.w(1, "on_ifetch, on_mem, on_branch = W")
        if self._has_load_with_dest():
            self.w(1, "mw_get = mw.get")
        used, written = self._regs_used()
        for r in used:
            self.w(1, f"r{r} = regs[{r}]")

        kind = self.block.kind
        if kind == LOOP:
            self._emit_loop()
        else:
            self._body(1)
            if kind == BRANCH:
                self._terminal_prelude(1)
                self._emit_branch_terminal(1)
            elif kind == HALT:
                end = self.block.entry + len(self.block.instructions)
                self.w(1, f"nxt = {end}")
            else:  # STRAIGHT
                end = self.block.entry + len(self.block.instructions)
                self.w(1, f"nxt = {end}")

        for r in written:
            self.w(1, f"regs[{r}] = r{r}")
        if kind == LOOP:
            self.w(1, "return nxt, _n")
        else:
            self.w(1, f"return nxt, {len(self.block.instructions)}")
        return "\n".join(self.lines) + "\n"

    def _emit_btb_insert(self, depth: int, bpc: int, target: str) -> None:
        """BTB insert path of ``BranchPredictor.update`` for a taken,
        non-return branch, with the capacity literal baked in."""
        self.w(depth, f"if len(btb) >= {self.btb_cap} "
                      f"and {bpc} not in btb:")
        self.w(depth + 1, "btb.pop(next(iter(btb)))")
        self.w(depth, f"btb[{bpc}] = {target}")

    def _emit_cond_train(self, depth: int, bpc: int) -> None:
        """Conditional-branch path of ``BranchPredictor.update`` with
        ``ghr=None`` (warm-up convention), inlined with the pc-derived
        table indices folded to literals.  Statement order matches
        ``update`` exactly; the mispredict proxy threading matches the
        interp lane's ``on_branch`` closure."""
        bidx = bpc & self.bimodal_mask
        cidx = bpc & self.chooser_mask
        self.w(depth, "_h = pred.ghr")
        self.w(depth, f"_gi = ({bpc} ^ (_h << 2)) & {self.gshare_mask}")
        self.w(depth, f"pred.ghr = ((_h << 1) | _t) & {self.history_mask}")
        self.w(depth, "_g = gsh[_gi]")
        self.w(depth, f"_bm = bim[{bidx}]")
        self.w(depth, "_gc = (_g >= 2) == _t")
        self.w(depth, "if _gc != ((_bm >= 2) == _t):")
        self.w(depth + 1, f"_c = cho[{cidx}]")
        self.w(depth + 1, "if _gc:")
        self.w(depth + 2, "if _c < 3:")
        self.w(depth + 3, f"cho[{cidx}] = _c + 1")
        self.w(depth + 1, "elif _c > 0:")
        self.w(depth + 2, f"cho[{cidx}] = _c - 1")
        self.w(depth, "if _t:")
        self.w(depth + 1, "if _g < 3:")
        self.w(depth + 2, "gsh[_gi] = _g + 1")
        self.w(depth + 1, "if _bm < 3:")
        self.w(depth + 2, f"bim[{bidx}] = _bm + 1")
        self.w(depth, "else:")
        self.w(depth + 1, "if _g > 0:")
        self.w(depth + 2, "gsh[_gi] = _g - 1")
        self.w(depth + 1, "if _bm > 0:")
        self.w(depth + 2, f"bim[{bidx}] = _bm - 1")
        self.w(depth, f"if _pt.get({bpc}, False) != _t:")
        self.w(depth + 1, "pred.stats.cond_mispredicts += 1")
        self.w(depth, f"_pt[{bpc}] = _t")
        self.w(depth, "if _t:")
        self._emit_btb_insert(depth + 1, bpc, str(self.block.terminal.target))

    def _emit_branch_terminal(self, depth: int) -> None:
        block = self.block
        inst = block.terminal
        bpc = block.entry + len(block.instructions) - 1
        warm = self.mode == "warm"
        emit_branch_cb = (not warm) and (self.cb_mask & _CB_BRANCH)
        if inst.is_conditional_branch:
            self.w(depth, f"_t = {_cond_expr(inst)}")
            self.w(depth, f"nxt = {inst.target} if _t else {bpc + 1}")
            if warm:
                self._emit_cond_train(depth, bpc)
            elif emit_branch_cb:
                self.w(depth, f"on_branch({bpc}, _bi, _t, nxt)")
            return
        if inst.is_call and inst.dest_reg is not None:
            self.w(depth, f"r{inst.dest_reg} = {(bpc + 1) & MASK64}")
        if inst.is_indirect:  # JR / RET
            self.w(depth, f"nxt = {_reg(inst.src1)}")
        else:  # JMP / CALL
            self.w(depth, f"nxt = {inst.target}")
        if warm:
            # update() for an unconditional branch reduces to the BTB
            # insert; for RET it is a complete no-op.
            if not inst.is_return:
                self._emit_btb_insert(depth, bpc, "nxt")
        elif emit_branch_cb:
            self.w(depth, f"on_branch({bpc}, _bi, True, nxt)")

    def _emit_loop(self) -> None:
        block = self.block
        inst = block.terminal
        n = len(block.instructions)
        bpc = block.entry + n - 1
        entry = block.entry
        warm = self.mode == "warm"
        emit_branch_cb = (not warm) and (self.cb_mask & _CB_BRANCH)
        conditional = inst.is_conditional_branch

        self.w(1, "_n = 0")
        if warm and conditional:
            self.w(1, "_out = []")
            self.w(1, "_ap = _out.append")
        self.w(1, "while True:")
        self._body(2)
        self._terminal_prelude(2)
        if conditional:
            self.w(2, f"_t = {_cond_expr(inst)}")
            if warm:
                self.w(2, "_ap(_t)")
            self.w(2, f"_n += {n}")
            if warm:
                self.w(2, "if not _t:")
                self.w(3, f"nxt = {bpc + 1}")
                self.w(3, "break")
                self.w(2, f"if _n + {n} > budget:")
                self.w(3, f"nxt = {entry}")
                self.w(3, "break")
            else:
                self.w(2, "if _t:")
                if emit_branch_cb:
                    self.w(3, f"on_branch({bpc}, _bi, True, {entry})")
                self.w(3, f"if _n + {n} > budget:")
                self.w(4, f"nxt = {entry}")
                self.w(4, "break")
                self.w(2, "else:")
                if emit_branch_cb:
                    self.w(3, f"on_branch({bpc}, _bi, False, {bpc + 1})")
                self.w(3, f"nxt = {bpc + 1}")
                self.w(3, "break")
            if warm:
                # One batched predictor feed for the whole loop run.
                self.w(1, f"warm_vec({bpc}, _bi, _out, {entry}, _pt)")
        else:  # loop-closing JMP
            if emit_branch_cb:
                self.w(2, f"on_branch({bpc}, _bi, True, {entry})")
            self.w(2, f"_n += {n}")
            self.w(2, f"if _n + {n} > budget:")
            self.w(3, "break")
            if warm:
                # Iterations 2..n would re-insert the identical BTB
                # entry — exact no-ops — so one update stands for all.
                self.w(1, f"update({bpc}, _bi, True, {entry}, False)")
            self.w(1, f"nxt = {entry}")


def generate_source(block: Block, mode: str, cb_mask: int = 0,
                    line_shift: int = 0,
                    geom: Optional[tuple] = None) -> str:
    """Generated Python source for one block (exposed for tests)."""
    return _Codegen(block, mode, cb_mask, line_shift, geom).generate()


class _RegionCodegen:
    """Generates one function for a multi-block region: an internal
    ``_pc`` dispatch loop over the segments, registers held in locals
    across segment transitions.  Each segment's body/terminal emission
    is exactly the standalone block codegen's (the per-segment
    :class:`_Codegen` instances share this generator's line buffer), so
    the per-op event stream is identical to running the blocks
    standalone — the region only removes driver dispatch and register
    spills between them."""

    def __init__(self, region: Region, mode: str, cb_mask: int,
                 line_shift: int, geom: Optional[tuple] = None) -> None:
        self.region = region
        self.mode = mode
        self.cb_mask = cb_mask
        self.lines: list[str] = []
        self.segs = [_Codegen(b, mode, cb_mask, line_shift, geom)
                     for b in region.blocks]
        for seg in self.segs:
            seg.lines = self.lines

    def w(self, depth: int, text: str) -> None:
        self.lines.append("    " * depth + text)

    def generate(self) -> str:
        blocks = self.region.blocks
        warm = self.mode == "warm"
        self.w(0, "def _b(regs, mw, mem_load, W, budget, pc=0, _bis=_BIS):")
        if warm:
            self.w(1, "l1d, l1i, warm_ifetch, warm_load, "
                      "update, warm_vec, _pt, pred = W")
            self.w(1, "l1i_sets = l1i._sets")
            if any(i.is_mem for b in blocks for i in b.instructions):
                self.w(1, "l1d_sets = l1d._sets")
            if any(b.terminal.is_conditional_branch for b in blocks):
                self.w(1, "gsh = pred._gshare")
                self.w(1, "bim = pred._bimodal")
                self.w(1, "cho = pred._chooser")
            if any(not b.terminal.is_return for b in blocks):
                self.w(1, "btb = pred._btb")
        else:
            self.w(1, "on_ifetch, on_mem, on_branch = W")
        if any(seg._has_load_with_dest() for seg in self.segs):
            self.w(1, "mw_get = mw.get")
        used: set[int] = set()
        written: set[int] = set()
        for seg in self.segs:
            u, wr = seg._regs_used()
            used.update(u)
            written.update(wr)
        for r in sorted(used | written):
            self.w(1, f"r{r} = regs[{r}]")
        self.w(1, "_n = 0")
        self.w(1, "_pc = pc")
        self.w(1, "while True:")
        for k, (b, seg) in enumerate(zip(blocks, self.segs)):
            self.w(2, f"{'if' if k == 0 else 'elif'} _pc == {b.entry}:")
            self.w(3, f"if _n + {len(b.instructions)} > budget:")
            self.w(4, "break")
            seg._body(3)
            seg._terminal_prelude(3)
            self._seg_terminal(3, k, b, seg)
        self.w(2, "else:")
        self.w(3, "break")
        for r in sorted(written):
            self.w(1, f"regs[{r}] = r{r}")
        self.w(1, "return _pc, _n")
        return "\n".join(self.lines) + "\n"

    def _seg_terminal(self, depth: int, k: int, b: Block,
                      seg: _Codegen) -> None:
        inst = b.terminal
        n = len(b.instructions)
        bpc = b.entry + n - 1
        warm = self.mode == "warm"
        emit_branch_cb = (not warm) and (self.cb_mask & _CB_BRANCH)
        if inst.is_conditional_branch:
            self.w(depth, f"_t = {_cond_expr(inst)}")
            self.w(depth, f"_n += {n}")
            self.w(depth, f"_pc = {inst.target} if _t else {bpc + 1}")
            if warm:
                # Per-occurrence training: with multiple branches in
                # flight the loop-superblock batching argument does not
                # apply, so each outcome trains at its own position —
                # the reference behaviour.
                seg._emit_cond_train(depth, bpc)
            elif emit_branch_cb:
                self.w(depth, f"on_branch({bpc}, _bis[{k}], _t, _pc)")
            return
        if inst.is_call and inst.dest_reg is not None:
            self.w(depth, f"r{inst.dest_reg} = {(bpc + 1) & MASK64}")
        self.w(depth, f"_n += {n}")
        if inst.is_indirect:  # JR / RET: dynamic target
            self.w(depth, f"_pc = {_reg(inst.src1)}")
        else:  # JMP / CALL
            self.w(depth, f"_pc = {inst.target}")
        if warm:
            if not inst.is_return:
                seg._emit_btb_insert(depth, bpc, "_pc")
        elif emit_branch_cb:
            self.w(depth, f"on_branch({bpc}, _bis[{k}], True, _pc)")


def generate_region_source(region: Region, mode: str, cb_mask: int = 0,
                           line_shift: int = 0,
                           geom: Optional[tuple] = None) -> str:
    """Generated Python source for a multi-block region (for tests)."""
    return _RegionCodegen(region, mode, cb_mask, line_shift, geom).generate()


# ---------------------------------------------------------------------------
# Per-program block cache and the driver
# ---------------------------------------------------------------------------

class _BlockEntry:
    __slots__ = ("fn", "length", "kind")

    def __init__(self, fn, length: int, kind: str) -> None:
        self.fn = fn
        self.length = length
        self.kind = kind


class JitProgram:
    """Lazily-translated blocks of one :class:`Program`, one lane mode."""

    __slots__ = ("program", "mode", "cb_mask", "line_shift", "geom",
                 "entries", "translate_seconds", "translate_count")

    def __init__(self, program, mode: str, cb_mask: int = 0,
                 line_shift: int = 0, geom: Optional[tuple] = None) -> None:
        self.program = program
        self.mode = mode
        self.cb_mask = cb_mask
        self.line_shift = line_shift
        self.geom = geom
        self.entries: dict[int, _BlockEntry] = {}
        self.translate_seconds = 0.0
        self.translate_count = 0

    def entry_at(self, pc: int,
                 hook: Optional[Callable[[int, int, bool], None]] = None
                 ) -> _BlockEntry:
        t0 = time.perf_counter()
        region = discover_region(self.program, pc)
        blocks = region.blocks
        if len(blocks) == 1:
            block = blocks[0]
            key = (block.key(), self.mode, self.cb_mask, self.line_shift,
                   self.geom, CODEGEN_VERSION)
            code = _CODE_CACHE.get(key)
            if code is None:
                src = generate_source(block, self.mode, self.cb_mask,
                                      self.line_shift, self.geom)
                code = compile(src, f"<blockjit:{self.program.name}:{pc}>",
                               "exec")
                _CODE_CACHE[key] = code
            ns = {"_div64": _div64,
                  "_BI": block.terminal if block.kind in (BRANCH, LOOP)
                  else None}
            exec(code, ns)
            self.entries[pc] = _BlockEntry(
                ns["_b"], len(block.instructions), block.kind)
        else:
            key = (region.key(), self.mode, self.cb_mask, self.line_shift,
                   self.geom, CODEGEN_VERSION)
            code = _CODE_CACHE.get(key)
            if code is None:
                src = generate_region_source(region, self.mode,
                                             self.cb_mask, self.line_shift,
                                             self.geom)
                code = compile(
                    src, f"<blockjit:{self.program.name}:{pc}:region>",
                    "exec")
                _CODE_CACHE[key] = code
            ns = {"_div64": _div64,
                  "_BIS": tuple(b.terminal for b in blocks)}
            exec(code, ns)
            fn = ns["_b"]
            # One function, dispatchable at every segment entry; the
            # per-entry length drives the driver's fits-in-budget check.
            for b in blocks:
                self.entries[b.entry] = _BlockEntry(
                    fn, len(b.instructions), REGION)
        entry = self.entries[pc]
        self.translate_seconds += time.perf_counter() - t0
        self.translate_count += 1
        if hook is not None:
            hook(pc, region.total_instructions(),
                 len(blocks) > 1 or blocks[0].kind == LOOP)
        return entry


def jit_program(program, mode: str, cb_mask: int = 0,
                line_shift: int = 0, geom: Optional[tuple] = None
                ) -> JitProgram:
    """The (per-program-instance) :class:`JitProgram` for one lane mode.
    Compiled code objects underneath are content-addressed and shared
    process-wide; this level only holds the bound functions."""
    cache = program.__dict__.setdefault("_blockjit", {})
    k = (mode, cb_mask, line_shift, geom)
    jp = cache.get(k)
    if jp is None:
        jp = cache[k] = JitProgram(program, mode, cb_mask, line_shift, geom)
    return jp


def program_translate_seconds(program) -> float:
    """Total host seconds this program has spent in block translation."""
    cache = program.__dict__.get("_blockjit")
    if not cache:
        return 0.0
    return sum(jp.translate_seconds for jp in cache.values())


def run_warm_jit(interp, max_instructions: int,
                 on_ifetch=None, on_mem=None, on_branch=None,
                 warm: Optional[WarmTargets] = None,
                 translate_hook=None) -> int:
    """Block-at-a-time warm execution driver (see
    :meth:`Interpreter.run_warm_jit`).  Returns instructions executed.

    With ``warm`` set, compiled blocks feed the hierarchy/predictor warm
    paths directly (batched) and the per-op callbacks serve only the
    interpreter fallback for budget tails and out-of-range PCs — which
    keeps the fallback stream identical to the interp lane's.
    """
    if interp.halted or max_instructions <= 0:
        return 0
    regs = interp.regs
    if any(v < 0 or v > MASK64 for v in regs):
        # Mask-folding in generated code assumes 64-bit-clean registers;
        # anything else replays per-op through the reference loop.
        return interp.run_warm(max_instructions, on_ifetch, on_mem,
                               on_branch)
    program = interp.program
    mem = interp.memory
    if warm is None:
        mask = ((_CB_IFETCH if on_ifetch is not None else 0)
                | (_CB_MEM if on_mem is not None else 0)
                | (_CB_BRANCH if on_branch is not None else 0))
        jp = jit_program(program, "events", cb_mask=mask)
        W = (on_ifetch, on_mem, on_branch)
    else:
        h = warm.hierarchy
        p = warm.predictor
        jp = jit_program(program, "warm", line_shift=warm.pc_line_shift,
                         geom=warm_geom(h, p, mem))
        W = (h.l1d, h.l1i, h.warm_ifetch_line, h.warm_load_miss,
             p.update, p.warm_update_vector, warm.prev_taken, p)
    mw = mem._words
    mem_load = mem.load
    n_prog = len(program.instructions)
    entries = jp.entries
    entry_at = jp.entry_at
    executed = 0
    pc = interp.pc
    while executed < max_instructions:
        if pc < 0 or pc >= n_prog:
            break  # out-of-range: interpreter tail below
        e = entries.get(pc)
        if e is None:
            e = entry_at(pc, translate_hook)
        remaining = max_instructions - executed
        if e.length > remaining:
            break  # sub-block tail: interpreter below
        pc, did = e.fn(regs, mw, mem_load, W, remaining, pc)
        executed += did
        if e.kind == HALT:
            interp.halted = True
            break
    interp.pc = pc
    interp.retired += executed
    remaining = max_instructions - executed
    if remaining and not interp.halted:
        executed += interp.run_warm(remaining, on_ifetch, on_mem,
                                    on_branch)
    return executed
