"""Error bounds for the sampled (two-level) tier.

Sampling is only useful under a stated accuracy contract.  The contract
lives here, in one place shared by the test suite, docs and any future
CI gate: a two-level run at the default plan must reproduce the full
detailed run's headline metrics within these tolerances:

* ``ipc_rel`` — relative IPC error;
* ``mpki_abs`` — absolute LLC-MPKI error (absolute, because MPKI spans
  zero for cache-resident workloads where a relative bound is vacuous);
* ``runahead_share_abs`` — absolute error in the fraction of cycles
  spent in any runahead mode (traditional + buffer).

The bounds were calibrated over the four default bench workloads x
{baseline, rab, rab_cc} at 200k and 300k instruction budgets, default
plan (ramp 500 / window 1500 / stride 40000, a 5% detailed share):
worst observed errors were IPC 8.3% relative, MPKI 4.2 absolute,
runahead share 0.087 absolute.  Each gate is asserted to bite by
tests/test_fastpath.py.  EXPERIMENTS.md states which figures may rely
on sampling under this contract (sim-throughput sweeps) and which must
stay fully detailed (all committed paper figures).
"""

from __future__ import annotations

import json
from typing import Any, Mapping, Optional

#: Documented accuracy contract of tier="two-level" at the default plan.
SAMPLING_TOLERANCES: dict[str, float] = {
    "ipc_rel": 0.12,
    "mpki_abs": 6.0,
    "runahead_share_abs": 0.10,
}


def runahead_share(stats: Mapping[str, Any]) -> float:
    """Fraction of cycles spent in any runahead mode (traditional or
    buffer — ``runahead_cycle_fraction`` already combines both).

    Accepts either a ``SimStats.to_dict()`` payload or a two-tier
    ``estimates`` dict (pre-combined share).
    """
    if "runahead_share" in stats:
        return stats["runahead_share"]
    return stats.get("runahead_cycle_fraction", 0.0)


def stats_fingerprint(stats: Mapping[str, Any],
                      sampling: Optional[Mapping[str, Any]] = None) -> str:
    """Canonical JSON blob of a run's deterministic payload.

    Strips every host-environment key (``*seconds*`` timings, the
    fast-forward lane tag, the worker count, and checkpoint-store
    hit/miss bookkeeping — all recursively), then serializes with sorted
    keys — so two runs that simulated the same thing produce equal
    fingerprints regardless of wall-clock, lane, store temperature, or
    worker scheduling.  This is the comparison the serial-vs-parallel
    byte-identity CI gate and the lane-identity tests use.
    """
    host_keys = {"ff_lane", "jobs", "store_hits", "store_misses"}

    def scrub(value):
        if isinstance(value, Mapping):
            return {k: scrub(v) for k, v in value.items()
                    if "seconds" not in k and k not in host_keys}
        if isinstance(value, (list, tuple)):
            return [scrub(v) for v in value]
        return value

    payload: dict[str, Any] = {"stats": scrub(stats)}
    if sampling is not None:
        payload["sampling"] = scrub(sampling)
    return json.dumps(payload, sort_keys=True)


def check_sampling_error(
    detailed: Mapping[str, Any],
    sampled: Mapping[str, Any],
    tolerances: Optional[Mapping[str, float]] = None,
) -> list[str]:
    """Compare a sampled run against the detailed reference.

    ``detailed`` is a ``SimStats.to_dict()`` payload; ``sampled`` is the
    two-tier engine's ``estimates`` dict (or another stats payload).
    Returns human-readable failures (empty when every metric is within
    tolerance).
    """
    tol = dict(SAMPLING_TOLERANCES)
    if tolerances:
        tol.update(tolerances)
    failures = []

    ref_ipc = detailed["ipc"]
    got_ipc = sampled["ipc"]
    if ref_ipc > 0:
        err = abs(got_ipc - ref_ipc) / ref_ipc
        if err > tol["ipc_rel"]:
            failures.append(
                f"ipc: sampled {got_ipc:.4f} vs detailed {ref_ipc:.4f} "
                f"({100 * err:.1f}% > {100 * tol['ipc_rel']:.0f}%)")

    err = abs(sampled["mpki"] - detailed["mpki"])
    if err > tol["mpki_abs"]:
        failures.append(
            f"mpki: sampled {sampled['mpki']:.2f} vs detailed "
            f"{detailed['mpki']:.2f} (|delta| {err:.2f} > "
            f"{tol['mpki_abs']:.2f})")

    ref_share = runahead_share(detailed)
    got_share = runahead_share(sampled)
    err = abs(got_share - ref_share)
    if err > tol["runahead_share_abs"]:
        failures.append(
            f"runahead share: sampled {got_share:.3f} vs detailed "
            f"{ref_share:.3f} (|delta| {err:.3f} > "
            f"{tol['runahead_share_abs']:.3f})")
    return failures
