"""Two-tier execution engine: sampled detailed windows over a functional
fast-forward stream.

The detailed :class:`~repro.core.processor.Processor` is exact but costs
microseconds of host time per simulated instruction; the functional
interpreter costs a fraction of that and still produces every
architectural side effect the detailed model needs warmed (cache
contents, branch-predictor state, registers, memory).  Fixed-stride
SimPoint/SMARTS-style sampling alternates the two: each ``stride``-long
segment of the instruction stream opens with a detailed burst and the
rest is batch-interpreted (``Processor.fast_forward``).

Each detailed burst is split in two, SMARTS-style:

* a **ramp** (``ramp_instructions``) that refills the pipeline, re-trains
  the stream prefetcher and restarts the runahead state machine after
  the functional gap — detailed, but excluded from the rate estimates;
* a **window** (``window_instructions``) whose cycle/commit/LLC-miss
  deltas feed the sampled IPC and MPKI estimates.

Runahead share is the exception: runahead episodes are long relative to
a window and phase-lock to the burst boundary (the first post-gap miss
opens an episode inside the ramp), so a measured-window share is badly
biased in both directions.  The share estimate therefore uses the
cumulative mode-cycle counters over *all* detailed cycles, ramp
included — empirically the tightest estimator (see
``repro.fastpath.validate`` for the calibrated bounds).

The handoff in each direction goes through the architectural state:

* detailed -> fast: ``Processor.sync_architectural`` squashes the
  in-flight burst (uncommitted stores live only in the store queue, so
  memory holds exactly the committed stores) and the interpreter replays
  from the oldest uncommitted instruction;
* fast -> detailed: the interpreter's registers are loaded into rename,
  fetch is redirected to its PC, and the next burst starts against the
  caches/predictor the fast tier just warmed.

Because the warm paths never touch hit/miss statistics, the processor's
:class:`~repro.core.stats.SimStats` after a two-tier run describes the
detailed bursts only.  The per-run sampling metadata (instruction and
timing split, measured-window estimates) is returned separately so the
stats object stays bit-compatible with the detailed tier.
"""

from __future__ import annotations

import time
from typing import Any, Optional

from ..config import SamplingConfig


def run_two_tier(
    processor,
    plan: SamplingConfig,
    max_instructions: int,
    max_cycles: Optional[int] = None,
    ff_lane: Optional[str] = None,
) -> dict[str, Any]:
    """Advance ``max_instructions`` through alternating detailed bursts
    and functional fast-forward gaps; returns the sampling metadata.

    The processor is expected to be warmed up already (or fresh); its
    ``stats`` afterwards describe the detailed bursts.  Host time spent
    in each tier is measured separately so callers can report detailed
    KIPS without folding fast-forward time in (see
    :mod:`repro.analysis.bench`).  ``ff_lane`` selects the fast-forward
    lane (``"interp"``/``"jit"``) per gap; ``None`` defers to the
    processor's configured default.  Block-translation host time (jit
    lane) lands inside ``fast_forward_seconds`` and is also broken out
    as ``translate_seconds``.
    """
    plan.validate()
    ramp = plan.ramp_instructions
    window = plan.window_instructions
    stride = plan.stride_instructions
    perf = time.perf_counter
    hierarchy = processor.hierarchy

    advanced = 0
    detailed_insts = 0
    ff_insts = 0
    windows = 0
    detailed_seconds = 0.0
    ff_seconds = 0.0
    # Measured-window accumulators (ramp excluded).
    m_cycles = 0
    m_insts = 0
    m_misses = 0
    while advanced < max_instructions and not processor.halted:
        t0 = perf()
        burst = min(ramp, max_instructions - advanced)
        before = processor.committed
        processor.run(burst, max_cycles=max_cycles)
        advanced += processor.committed - before
        detailed_insts += processor.committed - before

        c0 = processor.now
        i0 = processor.committed
        miss0 = hierarchy.demand_llc_misses()
        burst = min(window, max_instructions - advanced)
        processor.run(burst, max_cycles=max_cycles)
        done = processor.committed - i0
        advanced += done
        detailed_insts += done
        m_cycles += processor.now - c0
        m_insts += done
        m_misses += hierarchy.demand_llc_misses() - miss0
        detailed_seconds += perf() - t0
        windows += 1
        if done == 0:
            break  # max_cycles exhausted (or halted on entry)

        gap = min(stride - ramp - window, max_instructions - advanced)
        if gap <= 0 or processor.halted:
            continue
        t1 = perf()
        skipped = processor.fast_forward(gap, lane=ff_lane)
        ff_seconds += perf() - t1
        ff_insts += skipped
        advanced += skipped
        if skipped < gap:
            break  # hit HALT inside the gap

    stats = processor.stats
    ipc_est = m_insts / m_cycles if m_cycles else 0.0
    share_cycles = stats.cycles_in_rab + stats.cycles_in_traditional
    total_detailed_cycles = processor.now
    # getattr: tolerate minimal processor stand-ins (tests) that predate
    # the lane attributes.
    from .blockjit import resolve_ff_lane
    return {
        "tier": plan.tier,
        "ff_lane": resolve_ff_lane(ff_lane,
                                   getattr(processor, "ff_lane", None)),
        "translate_seconds": getattr(processor, "ff_translate_seconds", 0.0),
        "ramp_instructions": ramp,
        "window_instructions": window,
        "stride_instructions": stride,
        "windows": windows,
        "instructions_advanced": advanced,
        "detailed_instructions": detailed_insts,
        "fast_forward_instructions": ff_insts,
        "detailed_fraction": (
            detailed_insts / advanced if advanced else 0.0),
        "detailed_seconds": detailed_seconds,
        "fast_forward_seconds": ff_seconds,
        "estimated_total_cycles": (
            round(advanced / ipc_est) if ipc_est else total_detailed_cycles),
        "estimates": {
            "ipc": ipc_est,
            "mpki": 1000.0 * m_misses / m_insts if m_insts else 0.0,
            "runahead_share": (
                share_cycles / total_detailed_cycles
                if total_detailed_cycles else 0.0),
        },
    }
