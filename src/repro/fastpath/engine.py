"""Two-tier execution engine: sampled detailed windows over a functional
fast-forward stream.

The detailed :class:`~repro.core.processor.Processor` is exact but costs
microseconds of host time per simulated instruction; the functional
interpreter costs a fraction of that and still produces every
architectural side effect the detailed model needs warmed (cache
contents, branch-predictor state, registers, memory).  Fixed-stride
SimPoint/SMARTS-style sampling alternates the two: each ``stride``-long
segment of the instruction stream opens with a detailed burst and the
rest is batch-interpreted (``Processor.fast_forward``).

Each detailed burst is split in two, SMARTS-style:

* a **ramp** (``ramp_instructions``) that refills the pipeline, re-trains
  the stream prefetcher and restarts the runahead state machine after
  the functional gap — detailed, but excluded from the rate estimates;
* a **window** (``window_instructions``) whose cycle/commit/LLC-miss
  deltas feed the sampled IPC and MPKI estimates.

Runahead share is the exception: runahead episodes are long relative to
a window and phase-lock to the burst boundary (the first post-gap miss
opens an episode inside the ramp), so a measured-window share is badly
biased in both directions.  The share estimate therefore uses the
cumulative mode-cycle counters over *all* detailed cycles, ramp
included — empirically the tightest estimator (see
``repro.fastpath.validate`` for the calibrated bounds).

The handoff in each direction goes through the architectural state:

* detailed -> fast: ``Processor.sync_architectural`` squashes the
  in-flight burst (uncommitted stores live only in the store queue, so
  memory holds exactly the committed stores) and the interpreter replays
  from the oldest uncommitted instruction;
* fast -> detailed: the interpreter's registers are loaded into rename,
  fetch is redirected to its PC, and the next burst starts against the
  caches/predictor the fast tier just warmed.

Because the warm paths never touch hit/miss statistics, the processor's
:class:`~repro.core.stats.SimStats` after a two-tier run describes the
detailed bursts only.  The per-run sampling metadata (instruction and
timing split, measured-window estimates) is returned separately so the
stats object stays bit-compatible with the detailed tier.
"""

from __future__ import annotations

import time
from typing import Any, Optional

from ..config import SamplingConfig


def run_two_tier(
    processor,
    plan: SamplingConfig,
    max_instructions: int,
    max_cycles: Optional[int] = None,
    ff_lane: Optional[str] = None,
    checkpoints: Optional[Any] = None,
) -> dict[str, Any]:
    """Advance ``max_instructions`` through alternating detailed bursts
    and functional fast-forward gaps; returns the sampling metadata.

    The processor is expected to be warmed up already (or fresh); its
    ``stats`` afterwards describe the detailed bursts.  Host time spent
    in each tier is measured separately so callers can report detailed
    KIPS without folding fast-forward time in (see
    :mod:`repro.analysis.bench`).  ``ff_lane`` selects the fast-forward
    lane (``"interp"``/``"jit"``) per gap; ``None`` defers to the
    processor's configured default.  Block-translation host time (jit
    lane) lands inside ``fast_forward_seconds`` and is also broken out
    as ``translate_seconds``.

    ``checkpoints`` (a :class:`~repro.fastpath.checkpoint.CheckpointPlan`)
    switches the run to live-point mode: one fast-forward pass snapshots
    the warm state at every stride boundary, and each detailed burst
    runs from its snapshot on a fresh processor — so bursts are
    independent and fan out over ``checkpoints.jobs`` worker processes,
    and snapshots persist in ``checkpoints.store`` for reuse by later
    runs.  Serial (``jobs=1``) and parallel live-point runs are
    byte-identical; live-point and the serial legacy path below are
    *statistically* equivalent, not bit-equal (legacy bursts inherit
    in-flight timing state across segments, live-point bursts start from
    a clean clock).  ``checkpoints=None`` keeps the legacy path
    bit-for-bit unchanged.
    """
    plan.validate()
    if checkpoints is not None:
        return _run_two_tier_checkpointed(
            processor, plan, max_instructions, max_cycles, ff_lane,
            checkpoints)
    ramp = plan.ramp_instructions
    window = plan.window_instructions
    stride = plan.stride_instructions
    perf = time.perf_counter
    hierarchy = processor.hierarchy

    advanced = 0
    detailed_insts = 0
    ff_insts = 0
    windows = 0
    detailed_seconds = 0.0
    ff_seconds = 0.0
    # Measured-window accumulators (ramp excluded).
    m_cycles = 0
    m_insts = 0
    m_misses = 0
    while advanced < max_instructions and not processor.halted:
        t0 = perf()
        burst = min(ramp, max_instructions - advanced)
        before = processor.committed
        processor.run(burst, max_cycles=max_cycles)
        advanced += processor.committed - before
        detailed_insts += processor.committed - before

        c0 = processor.now
        i0 = processor.committed
        miss0 = hierarchy.demand_llc_misses()
        burst = min(window, max_instructions - advanced)
        processor.run(burst, max_cycles=max_cycles)
        done = processor.committed - i0
        advanced += done
        detailed_insts += done
        m_cycles += processor.now - c0
        m_insts += done
        m_misses += hierarchy.demand_llc_misses() - miss0
        detailed_seconds += perf() - t0
        windows += 1
        if done == 0:
            break  # max_cycles exhausted (or halted on entry)

        gap = min(stride - ramp - window, max_instructions - advanced)
        if gap <= 0 or processor.halted:
            continue
        t1 = perf()
        skipped = processor.fast_forward(gap, lane=ff_lane)
        ff_seconds += perf() - t1
        ff_insts += skipped
        advanced += skipped
        if skipped < gap:
            break  # hit HALT inside the gap

    stats = processor.stats
    ipc_est = m_insts / m_cycles if m_cycles else 0.0
    share_cycles = stats.cycles_in_rab + stats.cycles_in_traditional
    total_detailed_cycles = processor.now
    # getattr: tolerate minimal processor stand-ins (tests) that predate
    # the lane attributes.
    from .blockjit import resolve_ff_lane
    return {
        "tier": plan.tier,
        "ff_lane": resolve_ff_lane(ff_lane,
                                   getattr(processor, "ff_lane", None)),
        "translate_seconds": getattr(processor, "ff_translate_seconds", 0.0),
        "ramp_instructions": ramp,
        "window_instructions": window,
        "stride_instructions": stride,
        "windows": windows,
        "instructions_advanced": advanced,
        "detailed_instructions": detailed_insts,
        "fast_forward_instructions": ff_insts,
        "detailed_fraction": (
            detailed_insts / advanced if advanced else 0.0),
        "detailed_seconds": detailed_seconds,
        "fast_forward_seconds": ff_seconds,
        "estimated_total_cycles": (
            round(advanced / ipc_est) if ipc_est else total_detailed_cycles),
        "estimates": {
            "ipc": ipc_est,
            "mpki": 1000.0 * m_misses / m_insts if m_insts else 0.0,
            "runahead_share": (
                share_cycles / total_detailed_cycles
                if total_detailed_cycles else 0.0),
        },
    }


# Dict-valued stats fields that merge per-key (everything else is a
# summable counter, a label string, or handled explicitly).
_MERGE_DICT_FIELDS = ("llc_misses_by_kind", "dram_by_kind", "energy_events")


def merge_window_stats(payloads: list[dict[str, Any]]):
    """Merge per-window ``SimStats`` field payloads into one ``SimStats``.

    Integer counters sum, dict counters merge per key, chain analytics
    sum field-wise, and the label strings take the first non-empty value
    (all windows share a workload/config anyway).  ``energy_report`` is
    dropped — the caller recomputes energy from the merged
    ``energy_events`` and cycle count.  Merge order follows window order,
    so the result is independent of which process ran which window.
    """
    from ..core.stats import ChainAnalysis, SimStats

    merged = SimStats()
    chain_fields = tuple(ChainAnalysis.__dataclass_fields__)
    for payload in payloads:
        for name in SimStats.__dataclass_fields__:
            if name in ("workload", "config_name"):
                if not getattr(merged, name) and payload.get(name):
                    setattr(merged, name, payload[name])
            elif name in _MERGE_DICT_FIELDS:
                target = getattr(merged, name)
                for key, value in payload.get(name, {}).items():
                    target[key] = target.get(key, 0) + value
            elif name == "energy_report":
                continue
            elif name == "chains":
                chains = payload.get(name)
                if chains is not None:
                    target = merged.chains
                    for fname in chain_fields:
                        setattr(target, fname,
                                getattr(target, fname) + getattr(chains, fname))
            else:
                setattr(merged, name,
                        getattr(merged, name) + payload.get(name, 0))
    return merged


def _run_two_tier_checkpointed(
    processor,
    plan: SamplingConfig,
    max_instructions: int,
    max_cycles: Optional[int],
    ff_lane: Optional[str],
    ckpt,
) -> dict[str, Any]:
    """Live-point two-tier run: checkpoint every stride boundary, then
    fan the detailed bursts out over independent workers.

    Phase 1 advances the driving processor purely functionally, taking a
    warm-state snapshot at each stride boundary — or restoring one from
    the checkpoint store when the (program, geometry, base-state,
    position) key hits, which is what collapses repeated-run
    fast-forward time to restore cost.  Phase 2 runs each ramp+window
    burst from its snapshot on a fresh processor (in-process when
    ``jobs=1``, across a process pool otherwise) and merges the per-
    window stats deltas; ``max_cycles`` caps each window's own clock.
    The store is bypassed entirely unless the processor's history is
    pure fast-forward (``committed == 0``) — detailed execution leaves
    state the key cannot describe.
    """
    from ..analysis.parallel import WindowSpec, simulate_windows
    from .blockjit import resolve_ff_lane
    from .checkpoint import checkpoint_key, snapshot_digest

    ramp = plan.ramp_instructions
    window = plan.window_instructions
    stride = plan.stride_instructions
    perf = time.perf_counter
    store = ckpt.store
    hook = getattr(processor, "_ckpt_hook", None)

    ff_seconds = 0.0
    ckpt_seconds = 0.0
    restore_seconds = 0.0
    store_hits = 0
    store_misses = 0
    storable = store is not None and processor.committed == 0

    t0 = perf()
    entry = processor.snapshot()
    base_digest = snapshot_digest(entry) if storable else ""
    ckpt_seconds += perf() - t0
    entry_ff = entry["ff_instructions"]
    if hook is not None:
        hook("save", 0, False)

    snaps = [] if entry["halted"] else [entry]
    pos = stride
    while snaps and pos < max_instructions and not processor.halted:
        key = ""
        snap = None
        if storable:
            key = checkpoint_key(processor.program, processor.config,
                                 base_digest, pos)
            t0 = perf()
            snap = store.load(key)
            restore_seconds += perf() - t0
        if snap is not None:
            t0 = perf()
            processor.restore(snap)
            restore_seconds += perf() - t0
            store_hits += 1
            if hook is not None:
                hook("restore", pos, True)
        else:
            if storable:
                store_misses += 1
            # Fast-forward the remaining distance to this boundary (the
            # full stride, unless a store hit jumped the processor ahead).
            gap = pos - (processor.ff_instructions - entry_ff)
            t0 = perf()
            skipped = processor.fast_forward(gap, lane=ff_lane)
            ff_seconds += perf() - t0
            t0 = perf()
            snap = processor.snapshot()
            persisted = storable and skipped == gap and not snap["halted"]
            if persisted:
                store.save(key, snap)
            ckpt_seconds += perf() - t0
            if hook is not None:
                hook("save", pos, persisted)
        if snap["halted"]:
            break  # hit HALT inside the gap: no burst starts there
        snaps.append(snap)
        pos += stride

    specs = []
    for index, snap in enumerate(snaps):
        remaining = max_instructions - index * stride
        if remaining <= 0:
            break
        burst_ramp = min(ramp, remaining)
        burst_window = min(window, remaining - burst_ramp)
        specs.append(WindowSpec(
            program=processor.program, config=processor.config,
            snapshot=snap, ramp=burst_ramp, window=burst_window,
            max_cycles=max_cycles))

    t0 = perf()
    results = simulate_windows(specs, jobs=ckpt.jobs)
    window_wall = perf() - t0

    detailed_seconds = sum(r["host_seconds"] for r in results)
    detailed_insts = sum(r["committed"] for r in results)
    m_cycles = sum(r["m_cycles"] for r in results)
    m_insts = sum(r["m_insts"] for r in results)
    m_misses = sum(r["m_misses"] for r in results)
    if results:
        merged = merge_window_stats([r["stats"] for r in results])
        processor.stats = merged
        share_cycles = merged.cycles_in_rab + merged.cycles_in_traditional
        total_detailed_cycles = merged.cycles
    else:
        share_cycles = 0
        total_detailed_cycles = 0

    ff_pos = processor.ff_instructions - entry_ff
    advanced = ff_pos if processor.halted else max_instructions
    ipc_est = m_insts / m_cycles if m_cycles else 0.0
    ckpt.timings = {
        "checkpoint_seconds": ckpt_seconds,
        "restore_seconds": restore_seconds,
        "window_wall_seconds": window_wall,
    }
    return {
        "tier": plan.tier,
        "ff_lane": resolve_ff_lane(ff_lane,
                                   getattr(processor, "ff_lane", None)),
        "translate_seconds": getattr(processor, "ff_translate_seconds", 0.0),
        "ramp_instructions": ramp,
        "window_instructions": window,
        "stride_instructions": stride,
        "windows": len(results),
        "instructions_advanced": advanced,
        "detailed_instructions": detailed_insts,
        "fast_forward_instructions": ff_pos,
        "detailed_fraction": (
            detailed_insts / advanced if advanced else 0.0),
        "detailed_seconds": detailed_seconds,
        "fast_forward_seconds": ff_seconds,
        "estimated_total_cycles": (
            round(advanced / ipc_est) if ipc_est else total_detailed_cycles),
        "estimates": {
            "ipc": ipc_est,
            "mpki": 1000.0 * m_misses / m_insts if m_insts else 0.0,
            "runahead_share": (
                share_cycles / total_detailed_cycles
                if total_detailed_cycles else 0.0),
        },
        "checkpoints": {
            "count": len(snaps),
            "jobs": ckpt.jobs,
            "store_hits": store_hits,
            "store_misses": store_misses,
            "checkpoint_seconds": ckpt_seconds,
            "restore_seconds": restore_seconds,
            "window_wall_seconds": window_wall,
        },
    }
