"""repro — reproduction of "Filtered Runahead Execution with a Runahead
Buffer" (Hashemi & Patt, MICRO-48, 2015).

A cycle-level, execution-driven out-of-order processor simulator with
traditional runahead execution, the paper's runahead buffer (dependence
chain extraction + chain cache + hybrid policy), a stream prefetcher, a
DDR3 memory model, an event-based energy model, and a synthetic SPEC
CPU2006-like workload suite.

Quickstart::

    from repro import simulate, make_config, RunaheadMode

    base = simulate("mcf", make_config())
    rab = simulate("mcf", make_config(RunaheadMode.BUFFER_CHAIN_CACHE))
    print(f"speedup: {rab.stats.ipc / base.stats.ipc:.2f}x")
"""

from .config import (
    CONFIG_BUILDERS,
    BranchPredictorConfig,
    CacheConfig,
    CoreConfig,
    DramConfig,
    EnergyConfig,
    PrefetcherConfig,
    RunaheadConfig,
    RunaheadMode,
    SystemConfig,
    build_named_config,
    default_system,
    make_config,
)
from .core import Processor, SimStats, SimulationResult, simulate
from .energy import EnergyModel, EnergyReport
from .multicore import (
    CoreSpec,
    MulticoreResult,
    System,
    simulate_multicore,
    trace_multicore,
)
from .isa import DataMemory, Instruction, Interpreter, Opcode, Program, \
    ProgramBuilder
from .workloads import (
    Workload,
    build_workload,
    medium_high_names,
    workload_names,
)

__version__ = "1.0.0"

__all__ = [
    "CONFIG_BUILDERS",
    "BranchPredictorConfig",
    "CacheConfig",
    "CoreConfig",
    "CoreSpec",
    "DataMemory",
    "DramConfig",
    "EnergyConfig",
    "EnergyModel",
    "EnergyReport",
    "Instruction",
    "Interpreter",
    "MulticoreResult",
    "Opcode",
    "PrefetcherConfig",
    "Processor",
    "Program",
    "ProgramBuilder",
    "RunaheadConfig",
    "RunaheadMode",
    "SimStats",
    "SimulationResult",
    "System",
    "SystemConfig",
    "Workload",
    "build_named_config",
    "build_workload",
    "default_system",
    "make_config",
    "medium_high_names",
    "simulate",
    "simulate_multicore",
    "trace_multicore",
    "workload_names",
    "__version__",
]
