"""Basic-block discovery over a static :class:`~repro.isa.program.Program`.

The fast-forward JIT (:mod:`repro.fastpath.blockjit`) translates one
*block* at a time: a maximal straight-line run of instructions starting
at an entry PC and ending at the first control-flow instruction, HALT,
the end of the program, or a length cap.  Discovery is **lazy and
entry-addressed** rather than leader-based: the detailed->fast handoff
can resume at any PC (the oldest uncommitted instruction of a squashed
window), so blocks are discovered from whatever PC execution actually
reaches, and two overlapping blocks (e.g. a loop body entered both from
above and from its back-edge) simply coexist in the cache.

A block whose terminal branch jumps back to its own entry — a
conditional branch with ``target == entry``, or an unconditional JMP
with ``target == entry`` — is classified as a *loop* superblock: the
JIT compiles the whole iteration into one Python loop and batches the
per-iteration branch outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass

from .program import Program
from .uop import CLS_BRANCH, CLS_HALT, Instruction, Opcode

# Length cap: bounds translate time per block and the size of generated
# functions.  Any longer run is split; the follow-on block starts at the
# cut and chains through the block cache.
MAX_BLOCK_LEN = 64

# Block kinds.
STRAIGHT = "straight"   # cut by the cap or the end of the program
HALT = "halt"           # ends at a HALT instruction
BRANCH = "branch"       # ends at a (non-loop-closing) control-flow op
LOOP = "loop"           # terminal branch targets the block's own entry
REGION = "region"       # multi-block unit (see Region below)

# Region caps: bound the size of one multi-block compilation unit.
REGION_MAX_BLOCKS = 8
REGION_MAX_INSTS = 256


@dataclass(frozen=True)
class Block:
    """One discovered basic block / loop superblock."""

    entry: int
    instructions: tuple[Instruction, ...]
    kind: str

    @property
    def terminal(self) -> Instruction:
        return self.instructions[-1]

    def key(self) -> tuple:
        """Content-identity tuple: entry PC plus the structural identity
        of every instruction.  Two equal-content programs produce equal
        block keys, so compiled code is shared across sweep cells."""
        return (self.entry,
                tuple(inst.key() for inst in self.instructions))


@dataclass(frozen=True)
class Region:
    """A connected set of branch-terminated blocks compiled as one unit.

    ``blocks[0].entry == entry``; discovery order is deterministic (BFS
    over static branch edges), so equal-content programs produce equal
    regions.  A single-block region degenerates to plain block
    compilation."""

    entry: int
    blocks: tuple[Block, ...]

    def key(self) -> tuple:
        return tuple((b.key(), b.kind) for b in self.blocks)

    def total_instructions(self) -> int:
        return sum(len(b.instructions) for b in self.blocks)

    def entries(self) -> frozenset[int]:
        return frozenset(b.entry for b in self.blocks)


def _successors(block: Block) -> tuple[int, ...]:
    """Static control-flow successors of a block's terminal branch.
    Indirect branches (JR/RET) have dynamic targets: no static edge."""
    inst = block.terminal
    if inst.is_indirect:
        return ()
    fall = block.entry + len(block.instructions)
    if inst.is_conditional_branch:
        return (inst.target, fall)
    return (inst.target,)


def discover_region(program: Program, entry: int,
                    max_blocks: int = REGION_MAX_BLOCKS,
                    max_insts: int = REGION_MAX_INSTS) -> Region:
    """BFS the static branch graph from ``entry`` into one region.

    Only BRANCH/LOOP blocks join a region (HALT and STRAIGHT blocks
    terminate growth and stay standalone, so a region never halts
    internally); edges leaving the collected set exit the compiled
    function back to the driver."""
    b0 = discover_block(program, entry)
    if b0.kind not in (BRANCH, LOOP):
        return Region(entry, (b0,))
    n = len(program.instructions)
    blocks: dict[int, Block] = {entry: b0}
    total = len(b0.instructions)
    queue = list(_successors(b0))
    qi = 0
    while qi < len(queue) and len(blocks) < max_blocks:
        pc = queue[qi]
        qi += 1
        if pc in blocks or not 0 <= pc < n:
            continue
        b = discover_block(program, pc)
        if b.kind not in (BRANCH, LOOP):
            continue
        if total + len(b.instructions) > max_insts:
            continue
        blocks[pc] = b
        total += len(b.instructions)
        queue.extend(_successors(b))
    return Region(entry, tuple(blocks.values()))


def discover_block(program: Program, entry: int,
                   max_len: int = MAX_BLOCK_LEN) -> Block:
    """Discover the block starting at ``entry`` (must be in range)."""
    insts = program.instructions
    n = len(insts)
    if not 0 <= entry < n:
        raise ValueError(f"entry PC {entry} out of range [0, {n})")
    ops: list[Instruction] = []
    pc = entry
    while pc < n and len(ops) < max_len:
        inst = insts[pc]
        ops.append(inst)
        cls = inst.cls_idx
        if cls == CLS_BRANCH:
            loop_closing = (
                inst.target == entry
                and (inst.is_conditional_branch
                     or inst.opcode is Opcode.JMP)
            )
            return Block(entry, tuple(ops), LOOP if loop_closing else BRANCH)
        if cls == CLS_HALT:
            return Block(entry, tuple(ops), HALT)
        pc += 1
    return Block(entry, tuple(ops), STRAIGHT)
