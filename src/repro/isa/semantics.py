"""Functional semantics of the mini ISA.

The timing simulator is execution-driven: every micro-op computes a real
value so that runahead execution (and the runahead buffer's looped
dependence chains) generates *real* memory addresses.  All integer values
are 64-bit two's-complement, represented as Python ints in
``[0, 2**64)``; comparisons interpret them as signed.
"""

from __future__ import annotations

from .uop import ALU_FN_TABLE, TAKEN_FN_TABLE, Instruction, Opcode

MASK64 = (1 << 64) - 1
SIGN_BIT = 1 << 63


def to_signed(value: int) -> int:
    """Interpret a 64-bit unsigned value as signed."""
    value &= MASK64
    return value - (1 << 64) if value & SIGN_BIT else value


def to_unsigned(value: int) -> int:
    """Wrap a Python int to 64-bit unsigned representation."""
    return value & MASK64


# -- per-opcode semantic functions ------------------------------------------
#
# One small module-level function per opcode, bound onto each decoded
# Instruction (``inst.alu_fn`` / ``inst.taken_fn``) via the tables in
# ``repro.isa.uop``.  The cycle loop calls the bound function directly —
# no per-uop opcode dispatch.  Module-level (not closures) keeps
# instructions picklable.

def _sem_add(inst: Instruction, a: int, b: int) -> int:
    return (a + b) & MASK64


def _sem_sub(inst: Instruction, a: int, b: int) -> int:
    return (a - b) & MASK64


def _sem_and(inst: Instruction, a: int, b: int) -> int:
    return a & b


def _sem_or(inst: Instruction, a: int, b: int) -> int:
    return a | b


def _sem_xor(inst: Instruction, a: int, b: int) -> int:
    return a ^ b


def _sem_shl(inst: Instruction, a: int, b: int) -> int:
    return (a << (b & 63)) & MASK64


def _sem_shr(inst: Instruction, a: int, b: int) -> int:
    return (a >> (b & 63)) & MASK64


def _sem_addi(inst: Instruction, a: int, b: int) -> int:
    return (a + inst.imm) & MASK64


def _sem_andi(inst: Instruction, a: int, b: int) -> int:
    return a & inst.imm & MASK64


def _sem_mov(inst: Instruction, a: int, b: int) -> int:
    return a


def _sem_li(inst: Instruction, a: int, b: int) -> int:
    return inst.imm & MASK64


def _sem_mul(inst: Instruction, a: int, b: int) -> int:
    return (a * b) & MASK64


def _sem_div(inst: Instruction, a: int, b: int) -> int:
    if b == 0:
        return 0
    return (to_signed(a) // to_signed(b)) & MASK64


def _sem_zero(inst: Instruction, a: int, b: int) -> int:
    return 0


def _taken_beq(inst: Instruction, a: int, b: int) -> bool:
    return a == b


def _taken_bne(inst: Instruction, a: int, b: int) -> bool:
    return a != b


def _taken_blt(inst: Instruction, a: int, b: int) -> bool:
    return to_signed(a) < to_signed(b)


def _taken_bge(inst: Instruction, a: int, b: int) -> bool:
    return to_signed(a) >= to_signed(b)


ALU_FN_TABLE.update({
    Opcode.ADD: _sem_add,
    Opcode.FADD: _sem_add,
    Opcode.SUB: _sem_sub,
    Opcode.AND: _sem_and,
    Opcode.OR: _sem_or,
    Opcode.XOR: _sem_xor,
    Opcode.SHL: _sem_shl,
    Opcode.SHR: _sem_shr,
    Opcode.ADDI: _sem_addi,
    Opcode.ANDI: _sem_andi,
    Opcode.MOV: _sem_mov,
    Opcode.LI: _sem_li,
    Opcode.MUL: _sem_mul,
    Opcode.FMUL: _sem_mul,
    Opcode.DIV: _sem_div,
    Opcode.FDIV: _sem_div,
    Opcode.NOP: _sem_zero,
    Opcode.HALT: _sem_zero,
})

TAKEN_FN_TABLE.update({
    Opcode.BEQ: _taken_beq,
    Opcode.BNE: _taken_bne,
    Opcode.BLT: _taken_blt,
    Opcode.BGE: _taken_bge,
})


def alu_result(inst: Instruction, a: int, b: int) -> int:
    """Compute the result of a non-memory, non-branch micro-op.

    ``a`` and ``b`` are the values of ``rs1`` and ``rs2`` (0 when unused).
    FP opcodes are evaluated with integer arithmetic — only their latency
    class differs; workload semantics never depend on FP rounding.
    """
    fn = ALU_FN_TABLE.get(inst.opcode)
    if fn is None:
        raise ValueError(f"not an ALU opcode: {inst.opcode}")
    return fn(inst, a, b)


def mem_address(inst: Instruction, base: int) -> int:
    """Effective address of a load/store: ``rs1 + imm``, wrapped to 64 bits."""
    return (base + inst.imm) & MASK64


def branch_taken(inst: Instruction, a: int, b: int) -> bool:
    """Resolve a conditional branch from its source values."""
    fn = TAKEN_FN_TABLE.get(inst.opcode)
    if fn is None:
        raise ValueError(f"not a conditional branch: {inst.opcode}")
    return fn(inst, a, b)


def branch_target(inst: Instruction, pc: int, a: int, taken: bool) -> int:
    """Next PC after a control-flow micro-op.

    ``a`` is the value of ``rs1`` (used by indirect branches); falls
    through to ``pc + 1`` for a not-taken conditional branch.
    """
    op = inst.opcode
    if op in (Opcode.JMP, Opcode.CALL):
        assert inst.target is not None
        return inst.target
    if op in (Opcode.JR, Opcode.RET):
        return a & MASK64
    if inst.is_conditional_branch:
        if taken:
            assert inst.target is not None
            return inst.target
        return pc + 1
    raise ValueError(f"not a branch opcode: {op}")


class DataMemory:
    """Sparse functional data memory, 8-byte word granularity.

    Addresses are byte addresses; accesses are aligned down to 8 bytes
    (the mini ISA only does word accesses).  Unwritten locations read as a
    deterministic pseudo-random value derived from the address, so that
    workloads touching uninitialised memory stay deterministic without the
    generator having to initialise every byte of a multi-megabyte array.
    """

    __slots__ = ("_words", "default_fill")

    def __init__(self, default_fill: str = "hash") -> None:
        self._words: dict[int, int] = {}
        if default_fill not in ("hash", "zero"):
            raise ValueError("default_fill must be 'hash' or 'zero'")
        self.default_fill = default_fill

    @staticmethod
    def _key(addr: int) -> int:
        return (addr & MASK64) >> 3

    def load(self, addr: int) -> int:
        key = self._key(addr)
        try:
            return self._words[key]
        except KeyError:
            if self.default_fill == "zero":
                return 0
            # splitmix64-style hash of the word index: deterministic junk.
            z = (key + 0x9E3779B97F4A7C15) & MASK64
            z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & MASK64
            z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & MASK64
            return z ^ (z >> 31)

    def store(self, addr: int, value: int) -> None:
        self._words[self._key(addr)] = value & MASK64

    def __len__(self) -> int:
        return len(self._words)

    def snapshot(self) -> dict[int, int]:
        """Copy of the backing store (word-index keyed); for tests."""
        return dict(self._words)
