"""Micro-op definitions for the mini ISA.

The simulator decodes one :class:`Instruction` into one micro-op (the paper's
x86 front-end cracks instructions into uops; our RISC-like ISA is already at
uop granularity, so decode is 1:1 — documented as a fidelity trade-off in
DESIGN.md).  Static instructions live in a :class:`~repro.isa.program.Program`
and are indexed by PC.

Decode is *static*: every classification fact a pipeline stage needs
(``is_load``, ``is_branch``, the issue-port class, the register operands
with R0 folded out, the bound semantic function) is computed once in
``Instruction.__init__`` and stored as a plain attribute.  The cycle loop
never hashes an :class:`Opcode` or walks an if-chain per dynamic uop —
this is the "static decode table" half of the simulator's hot-path
optimization pass (the flat per-PC arrays live on ``Program``).
"""

from __future__ import annotations

import enum
from typing import Optional


class Opcode(enum.Enum):
    """Static opcodes of the mini ISA."""

    # Memory.
    LD = "ld"        # rd = MEM[rs1 + imm]
    ST = "st"        # MEM[rs1 + imm] = rs2
    # Integer ALU.
    ADD = "add"      # rd = rs1 + rs2
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"      # rd = rs1 << (rs2 & 63)
    SHR = "shr"      # rd = rs1 >> (rs2 & 63)
    ADDI = "addi"    # rd = rs1 + imm
    ANDI = "andi"    # rd = rs1 & imm
    MOV = "mov"      # rd = rs1
    LI = "li"        # rd = imm
    # Long-latency integer.
    MUL = "mul"
    DIV = "div"      # rd = rs1 // rs2 (rs2 == 0 yields 0)
    # Floating point (modelled as integer ops with FP latency classes).
    FADD = "fadd"
    FMUL = "fmul"
    FDIV = "fdiv"
    # Control flow.
    BEQ = "beq"      # if rs1 == rs2 goto target
    BNE = "bne"
    BLT = "blt"      # signed compare
    BGE = "bge"
    JMP = "jmp"      # goto target
    JR = "jr"        # goto rs1 (indirect)
    CALL = "call"    # R31 = pc + 1; goto target
    RET = "ret"      # goto R31 (indirect, return-stack predicted)
    # Misc.
    NOP = "nop"
    HALT = "halt"    # stop the workload (tests only; kernels loop forever)


class UopClass(enum.Enum):
    """Execution resource / latency class of a micro-op."""

    LOAD = "load"
    STORE = "store"
    IALU = "ialu"
    IMUL = "imul"
    IDIV = "idiv"
    FADD = "fadd"
    FMUL = "fmul"
    FDIV = "fdiv"
    BRANCH = "branch"
    NOP = "nop"


# Flat integer ids for UopClass members: hot paths compare/index with these
# instead of hashing enum members.  Order matches the declaration above.
(CLS_LOAD, CLS_STORE, CLS_IALU, CLS_IMUL, CLS_IDIV,
 CLS_FADD, CLS_FMUL, CLS_FDIV, CLS_BRANCH, CLS_NOP) = range(10)
# Dispatch-only id for HALT.  HALT keeps ``UopClass.NOP`` for ports,
# latency and energy accounting (NUM_UOP_CLASSES-sized tables are never
# indexed with it), but interpreters dispatch on ``cls_idx`` alone, so
# HALT needs its own slot: ``cls >= CLS_NOP`` covers NOP-and-HALT sites.
CLS_HALT = 10
UCLASS_IDX: dict[UopClass, int] = {cls: i for i, cls in enumerate(UopClass)}
NUM_UOP_CLASSES = len(UopClass)

# Issue-port groups (indices into the per-cycle port-availability list).
PORT_MEM, PORT_ALU, PORT_MULDIV, PORT_FP = range(4)
_PORT_OF_CLASS = {
    UopClass.LOAD: PORT_MEM,
    UopClass.STORE: PORT_MEM,
    UopClass.IALU: PORT_ALU,
    UopClass.BRANCH: PORT_ALU,
    UopClass.NOP: PORT_ALU,
    UopClass.IMUL: PORT_MULDIV,
    UopClass.IDIV: PORT_MULDIV,
    UopClass.FADD: PORT_FP,
    UopClass.FMUL: PORT_FP,
    UopClass.FDIV: PORT_FP,
}

_OPCODE_CLASS = {
    Opcode.LD: UopClass.LOAD,
    Opcode.ST: UopClass.STORE,
    Opcode.ADD: UopClass.IALU,
    Opcode.SUB: UopClass.IALU,
    Opcode.AND: UopClass.IALU,
    Opcode.OR: UopClass.IALU,
    Opcode.XOR: UopClass.IALU,
    Opcode.SHL: UopClass.IALU,
    Opcode.SHR: UopClass.IALU,
    Opcode.ADDI: UopClass.IALU,
    Opcode.ANDI: UopClass.IALU,
    Opcode.MOV: UopClass.IALU,
    Opcode.LI: UopClass.IALU,
    Opcode.MUL: UopClass.IMUL,
    Opcode.DIV: UopClass.IDIV,
    Opcode.FADD: UopClass.FADD,
    Opcode.FMUL: UopClass.FMUL,
    Opcode.FDIV: UopClass.FDIV,
    Opcode.BEQ: UopClass.BRANCH,
    Opcode.BNE: UopClass.BRANCH,
    Opcode.BLT: UopClass.BRANCH,
    Opcode.BGE: UopClass.BRANCH,
    Opcode.JMP: UopClass.BRANCH,
    Opcode.JR: UopClass.BRANCH,
    Opcode.CALL: UopClass.BRANCH,
    Opcode.RET: UopClass.BRANCH,
    Opcode.NOP: UopClass.NOP,
    Opcode.HALT: UopClass.NOP,
}

CONDITIONAL_BRANCHES = frozenset(
    {Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE}
)
INDIRECT_BRANCHES = frozenset({Opcode.JR, Opcode.RET})
UNCONDITIONAL_BRANCHES = frozenset(
    {Opcode.JMP, Opcode.JR, Opcode.CALL, Opcode.RET}
)

# Per-opcode bound semantic functions, populated by ``repro.isa.semantics``
# at import time (the package __init__ imports semantics before any
# instruction can be built, so instances always see the filled tables).
# Living here avoids a circular import: semantics imports this module.
ALU_FN_TABLE: dict[Opcode, object] = {}
TAKEN_FN_TABLE: dict[Opcode, object] = {}


class Instruction:
    """A static instruction (== one decoded micro-op).

    ``rd``, ``rs1``, ``rs2`` are architectural register indices (or ``None``
    when unused); ``imm`` is a signed immediate; ``target`` is a static
    branch/jump target PC (``None`` for indirect branches).

    All classification facts (``is_load`` ...) are plain attributes,
    precomputed at decode; only ``target`` is mutated after construction
    (label fixups in the assembler), and no precomputed fact depends on it.
    """

    __slots__ = (
        "opcode", "rd", "rs1", "rs2", "imm", "target", "uop_class",
        # Static decode facts (flat attributes — no properties, no enum
        # hashing on the cycle loop).
        "cls_idx", "port_class",
        "is_load", "is_store", "is_mem", "is_branch",
        "is_conditional_branch", "is_indirect", "is_call", "is_return",
        "is_halt",
        # Register operands with the constant R0 folded out.
        "src1", "src2", "dest_reg",
        # Bound semantics: fn(inst, a, b) -> value / taken.
        "alu_fn", "taken_fn",
    )

    def __init__(
        self,
        opcode: Opcode,
        rd: Optional[int] = None,
        rs1: Optional[int] = None,
        rs2: Optional[int] = None,
        imm: int = 0,
        target: Optional[int] = None,
    ) -> None:
        self.opcode = opcode
        self.rd = rd
        self.rs1 = rs1
        self.rs2 = rs2
        self.imm = imm
        self.target = target
        cls = _OPCODE_CLASS[opcode]
        self.uop_class = cls
        self.cls_idx = CLS_HALT if opcode is Opcode.HALT else UCLASS_IDX[cls]
        self.port_class = _PORT_OF_CLASS[cls]
        self.is_load = opcode is Opcode.LD
        self.is_store = opcode is Opcode.ST
        self.is_mem = self.is_load or self.is_store
        self.is_branch = cls is UopClass.BRANCH
        self.is_conditional_branch = opcode in CONDITIONAL_BRANCHES
        self.is_indirect = opcode in INDIRECT_BRANCHES
        self.is_call = opcode is Opcode.CALL
        self.is_return = opcode is Opcode.RET
        self.is_halt = opcode is Opcode.HALT
        self.src1 = rs1 if rs1 is not None and rs1 != 0 else None
        self.src2 = rs2 if rs2 is not None and rs2 != 0 else None
        self.dest_reg = rd if rd is not None and rd != 0 else None
        self.alu_fn = ALU_FN_TABLE.get(opcode)
        self.taken_fn = TAKEN_FN_TABLE.get(opcode)

    def sources(self) -> tuple[int, ...]:
        """Architectural source register indices (R0 excluded: it is constant)."""
        srcs = []
        if self.src1 is not None:
            srcs.append(self.src1)
        if self.src2 is not None:
            srcs.append(self.src2)
        return tuple(srcs)

    def dest(self) -> Optional[int]:
        """Architectural destination register (``None`` if none or R0)."""
        return self.dest_reg

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        parts = [self.opcode.name]
        if self.rd is not None:
            parts.append(f"R{self.rd}")
        if self.rs1 is not None:
            parts.append(f"R{self.rs1}")
        if self.rs2 is not None:
            parts.append(f"R{self.rs2}")
        if self.imm:
            parts.append(f"#{self.imm}")
        if self.target is not None:
            parts.append(f"@{self.target}")
        return f"<{' '.join(parts)}>"

    def key(self) -> tuple:
        """Structural identity tuple (used for exact chain comparison)."""
        return (self.opcode, self.rd, self.rs1, self.rs2, self.imm, self.target)

    def __getstate__(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state):
        for slot, value in state.items():
            setattr(self, slot, value)
