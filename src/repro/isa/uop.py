"""Micro-op definitions for the mini ISA.

The simulator decodes one :class:`Instruction` into one micro-op (the paper's
x86 front-end cracks instructions into uops; our RISC-like ISA is already at
uop granularity, so decode is 1:1 — documented as a fidelity trade-off in
DESIGN.md).  Static instructions live in a :class:`~repro.isa.program.Program`
and are indexed by PC.
"""

from __future__ import annotations

import enum
from typing import Optional


class Opcode(enum.Enum):
    """Static opcodes of the mini ISA."""

    # Memory.
    LD = "ld"        # rd = MEM[rs1 + imm]
    ST = "st"        # MEM[rs1 + imm] = rs2
    # Integer ALU.
    ADD = "add"      # rd = rs1 + rs2
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"      # rd = rs1 << (rs2 & 63)
    SHR = "shr"      # rd = rs1 >> (rs2 & 63)
    ADDI = "addi"    # rd = rs1 + imm
    ANDI = "andi"    # rd = rs1 & imm
    MOV = "mov"      # rd = rs1
    LI = "li"        # rd = imm
    # Long-latency integer.
    MUL = "mul"
    DIV = "div"      # rd = rs1 // rs2 (rs2 == 0 yields 0)
    # Floating point (modelled as integer ops with FP latency classes).
    FADD = "fadd"
    FMUL = "fmul"
    FDIV = "fdiv"
    # Control flow.
    BEQ = "beq"      # if rs1 == rs2 goto target
    BNE = "bne"
    BLT = "blt"      # signed compare
    BGE = "bge"
    JMP = "jmp"      # goto target
    JR = "jr"        # goto rs1 (indirect)
    CALL = "call"    # R31 = pc + 1; goto target
    RET = "ret"      # goto R31 (indirect, return-stack predicted)
    # Misc.
    NOP = "nop"
    HALT = "halt"    # stop the workload (tests only; kernels loop forever)


class UopClass(enum.Enum):
    """Execution resource / latency class of a micro-op."""

    LOAD = "load"
    STORE = "store"
    IALU = "ialu"
    IMUL = "imul"
    IDIV = "idiv"
    FADD = "fadd"
    FMUL = "fmul"
    FDIV = "fdiv"
    BRANCH = "branch"
    NOP = "nop"


_OPCODE_CLASS = {
    Opcode.LD: UopClass.LOAD,
    Opcode.ST: UopClass.STORE,
    Opcode.ADD: UopClass.IALU,
    Opcode.SUB: UopClass.IALU,
    Opcode.AND: UopClass.IALU,
    Opcode.OR: UopClass.IALU,
    Opcode.XOR: UopClass.IALU,
    Opcode.SHL: UopClass.IALU,
    Opcode.SHR: UopClass.IALU,
    Opcode.ADDI: UopClass.IALU,
    Opcode.ANDI: UopClass.IALU,
    Opcode.MOV: UopClass.IALU,
    Opcode.LI: UopClass.IALU,
    Opcode.MUL: UopClass.IMUL,
    Opcode.DIV: UopClass.IDIV,
    Opcode.FADD: UopClass.FADD,
    Opcode.FMUL: UopClass.FMUL,
    Opcode.FDIV: UopClass.FDIV,
    Opcode.BEQ: UopClass.BRANCH,
    Opcode.BNE: UopClass.BRANCH,
    Opcode.BLT: UopClass.BRANCH,
    Opcode.BGE: UopClass.BRANCH,
    Opcode.JMP: UopClass.BRANCH,
    Opcode.JR: UopClass.BRANCH,
    Opcode.CALL: UopClass.BRANCH,
    Opcode.RET: UopClass.BRANCH,
    Opcode.NOP: UopClass.NOP,
    Opcode.HALT: UopClass.NOP,
}

CONDITIONAL_BRANCHES = frozenset(
    {Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE}
)
INDIRECT_BRANCHES = frozenset({Opcode.JR, Opcode.RET})
UNCONDITIONAL_BRANCHES = frozenset(
    {Opcode.JMP, Opcode.JR, Opcode.CALL, Opcode.RET}
)


class Instruction:
    """A static instruction (== one decoded micro-op).

    ``rd``, ``rs1``, ``rs2`` are architectural register indices (or ``None``
    when unused); ``imm`` is a signed immediate; ``target`` is a static
    branch/jump target PC (``None`` for indirect branches).
    """

    __slots__ = ("opcode", "rd", "rs1", "rs2", "imm", "target", "uop_class")

    def __init__(
        self,
        opcode: Opcode,
        rd: Optional[int] = None,
        rs1: Optional[int] = None,
        rs2: Optional[int] = None,
        imm: int = 0,
        target: Optional[int] = None,
    ) -> None:
        self.opcode = opcode
        self.rd = rd
        self.rs1 = rs1
        self.rs2 = rs2
        self.imm = imm
        self.target = target
        self.uop_class = _OPCODE_CLASS[opcode]

    # -- classification helpers -------------------------------------------

    @property
    def is_load(self) -> bool:
        return self.opcode is Opcode.LD

    @property
    def is_store(self) -> bool:
        return self.opcode is Opcode.ST

    @property
    def is_mem(self) -> bool:
        return self.uop_class in (UopClass.LOAD, UopClass.STORE)

    @property
    def is_branch(self) -> bool:
        return self.uop_class is UopClass.BRANCH

    @property
    def is_conditional_branch(self) -> bool:
        return self.opcode in CONDITIONAL_BRANCHES

    @property
    def is_indirect(self) -> bool:
        return self.opcode in INDIRECT_BRANCHES

    @property
    def is_call(self) -> bool:
        return self.opcode is Opcode.CALL

    @property
    def is_return(self) -> bool:
        return self.opcode is Opcode.RET

    @property
    def is_halt(self) -> bool:
        return self.opcode is Opcode.HALT

    def sources(self) -> tuple[int, ...]:
        """Architectural source register indices (R0 excluded: it is constant)."""
        srcs = []
        if self.rs1 is not None and self.rs1 != 0:
            srcs.append(self.rs1)
        if self.rs2 is not None and self.rs2 != 0:
            srcs.append(self.rs2)
        return tuple(srcs)

    def dest(self) -> Optional[int]:
        """Architectural destination register (``None`` if none or R0)."""
        if self.rd is None or self.rd == 0:
            return None
        return self.rd

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        parts = [self.opcode.name]
        if self.rd is not None:
            parts.append(f"R{self.rd}")
        if self.rs1 is not None:
            parts.append(f"R{self.rs1}")
        if self.rs2 is not None:
            parts.append(f"R{self.rs2}")
        if self.imm:
            parts.append(f"#{self.imm}")
        if self.target is not None:
            parts.append(f"@{self.target}")
        return f"<{' '.join(parts)}>"

    def key(self) -> tuple:
        """Structural identity tuple (used for exact chain comparison)."""
        return (self.opcode, self.rd, self.rs1, self.rs2, self.imm, self.target)
