"""Mini micro-op ISA: instructions, programs, functional semantics.

This is the substrate the paper's x86 front-end provided: a decoded
micro-op stream with full functional semantics, so runahead modes execute
real code and compute real addresses.
"""

from .interpreter import Interpreter, RetiredOp
from .program import Program, ProgramBuilder
from .registers import LINK_REG, NUM_ARCH_REGS, ZERO_REG, reg_index, reg_name
from .semantics import (
    MASK64,
    DataMemory,
    alu_result,
    branch_taken,
    branch_target,
    mem_address,
    to_signed,
    to_unsigned,
)
from .uop import (
    CONDITIONAL_BRANCHES,
    INDIRECT_BRANCHES,
    UNCONDITIONAL_BRANCHES,
    Instruction,
    Opcode,
    UopClass,
)

__all__ = [
    "CONDITIONAL_BRANCHES",
    "INDIRECT_BRANCHES",
    "UNCONDITIONAL_BRANCHES",
    "DataMemory",
    "Instruction",
    "Interpreter",
    "LINK_REG",
    "MASK64",
    "NUM_ARCH_REGS",
    "Opcode",
    "Program",
    "ProgramBuilder",
    "RetiredOp",
    "UopClass",
    "ZERO_REG",
    "alu_result",
    "branch_taken",
    "branch_target",
    "mem_address",
    "reg_index",
    "reg_name",
    "to_signed",
    "to_unsigned",
]
