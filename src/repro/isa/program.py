"""Static programs and the label-based mini assembler.

Workload kernels are built with :class:`ProgramBuilder`, which provides one
method per opcode plus labels for control flow, and produce an immutable
:class:`Program`.  PCs are instruction indices (the fetch unit converts them
to byte addresses for the I-cache).
"""

from __future__ import annotations

from typing import Iterable, Optional

from .registers import reg_index
from .uop import Instruction, Opcode


class Program:
    """An immutable sequence of instructions plus an entry PC.

    Construction builds the *static decode tables*: flat per-PC tuples of
    the facts the fetch stage re-derives most often (branch/halt bits).
    The fetch unit indexes these instead of touching instruction objects
    until a uop is actually produced, and the instruction objects
    themselves carry every other decode fact as plain attributes (see
    ``repro.isa.uop``).
    """

    def __init__(
        self,
        instructions: Iterable[Instruction],
        entry: int = 0,
        name: str = "program",
    ) -> None:
        self.instructions: tuple[Instruction, ...] = tuple(instructions)
        if not self.instructions:
            raise ValueError("a program needs at least one instruction")
        if not 0 <= entry < len(self.instructions):
            raise ValueError(f"entry PC {entry} out of range")
        self.entry = entry
        self.name = name
        self._nop = Instruction(Opcode.NOP)
        # Static decode tables (flat, index == PC).
        self.is_branch_at: tuple[bool, ...] = tuple(
            inst.is_branch for inst in self.instructions
        )
        self.is_halt_at: tuple[bool, ...] = tuple(
            inst.is_halt for inst in self.instructions
        )

    def __len__(self) -> int:
        return len(self.instructions)

    def __getstate__(self) -> dict:
        # The block JIT stashes compiled code objects on the program
        # (``_blockjit``); those are process-local and unpicklable, so
        # strip them when a program crosses a process boundary (window
        # fan-out).  Workers re-JIT on demand if they ever fast-forward.
        state = self.__dict__.copy()
        state.pop("_blockjit", None)
        return state

    def fetch(self, pc: int) -> Instruction:
        """Instruction at ``pc``; out-of-range PCs (wrong-path fetch after a
        corrupted indirect target) decode as NOPs rather than faulting."""
        if 0 <= pc < len(self.instructions):
            return self.instructions[pc]
        return self._nop

    def in_range(self, pc: int) -> bool:
        return 0 <= pc < len(self.instructions)


class ProgramBuilder:
    """Tiny assembler: emits instructions, resolves labels at ``build()``.

    Register operands accept names (``"R4"``) or indices.  Branch targets
    are label strings or absolute integer PCs.
    """

    def __init__(self) -> None:
        self._instructions: list[Instruction] = []
        self._labels: dict[str, int] = {}
        self._fixups: list[tuple[int, str]] = []

    # -- structure ---------------------------------------------------------

    def label(self, name: str) -> None:
        if name in self._labels:
            raise ValueError(f"duplicate label: {name}")
        self._labels[name] = len(self._instructions)

    def pc(self) -> int:
        """PC of the next instruction to be emitted."""
        return len(self._instructions)

    def _emit(self, inst: Instruction, target: Optional[str | int]) -> None:
        if isinstance(target, str):
            self._fixups.append((len(self._instructions), target))
        elif target is not None:
            inst.target = int(target)
        self._instructions.append(inst)

    # -- memory ------------------------------------------------------------

    def load(self, rd, base, offset: int = 0) -> None:
        self._emit(
            Instruction(Opcode.LD, rd=reg_index(rd), rs1=reg_index(base), imm=offset),
            None,
        )

    def store(self, src, base, offset: int = 0) -> None:
        self._emit(
            Instruction(
                Opcode.ST, rs1=reg_index(base), rs2=reg_index(src), imm=offset
            ),
            None,
        )

    # -- ALU -----------------------------------------------------------------

    def _alu3(self, opcode: Opcode, rd, rs1, rs2) -> None:
        self._emit(
            Instruction(
                opcode, rd=reg_index(rd), rs1=reg_index(rs1), rs2=reg_index(rs2)
            ),
            None,
        )

    def add(self, rd, rs1, rs2) -> None:
        self._alu3(Opcode.ADD, rd, rs1, rs2)

    def sub(self, rd, rs1, rs2) -> None:
        self._alu3(Opcode.SUB, rd, rs1, rs2)

    def and_(self, rd, rs1, rs2) -> None:
        self._alu3(Opcode.AND, rd, rs1, rs2)

    def or_(self, rd, rs1, rs2) -> None:
        self._alu3(Opcode.OR, rd, rs1, rs2)

    def xor(self, rd, rs1, rs2) -> None:
        self._alu3(Opcode.XOR, rd, rs1, rs2)

    def shl(self, rd, rs1, rs2) -> None:
        self._alu3(Opcode.SHL, rd, rs1, rs2)

    def shr(self, rd, rs1, rs2) -> None:
        self._alu3(Opcode.SHR, rd, rs1, rs2)

    def mul(self, rd, rs1, rs2) -> None:
        self._alu3(Opcode.MUL, rd, rs1, rs2)

    def div(self, rd, rs1, rs2) -> None:
        self._alu3(Opcode.DIV, rd, rs1, rs2)

    def fadd(self, rd, rs1, rs2) -> None:
        self._alu3(Opcode.FADD, rd, rs1, rs2)

    def fmul(self, rd, rs1, rs2) -> None:
        self._alu3(Opcode.FMUL, rd, rs1, rs2)

    def fdiv(self, rd, rs1, rs2) -> None:
        self._alu3(Opcode.FDIV, rd, rs1, rs2)

    def addi(self, rd, rs1, imm: int) -> None:
        self._emit(
            Instruction(Opcode.ADDI, rd=reg_index(rd), rs1=reg_index(rs1), imm=imm),
            None,
        )

    def andi(self, rd, rs1, imm: int) -> None:
        self._emit(
            Instruction(Opcode.ANDI, rd=reg_index(rd), rs1=reg_index(rs1), imm=imm),
            None,
        )

    def mov(self, rd, rs1) -> None:
        self._emit(
            Instruction(Opcode.MOV, rd=reg_index(rd), rs1=reg_index(rs1)), None
        )

    def li(self, rd, imm: int) -> None:
        self._emit(Instruction(Opcode.LI, rd=reg_index(rd), imm=imm), None)

    # -- control flow --------------------------------------------------------

    def _branch(self, opcode: Opcode, rs1, rs2, target: str | int) -> None:
        self._emit(
            Instruction(opcode, rs1=reg_index(rs1), rs2=reg_index(rs2)), target
        )

    def beq(self, rs1, rs2, target: str | int) -> None:
        self._branch(Opcode.BEQ, rs1, rs2, target)

    def bne(self, rs1, rs2, target: str | int) -> None:
        self._branch(Opcode.BNE, rs1, rs2, target)

    def blt(self, rs1, rs2, target: str | int) -> None:
        self._branch(Opcode.BLT, rs1, rs2, target)

    def bge(self, rs1, rs2, target: str | int) -> None:
        self._branch(Opcode.BGE, rs1, rs2, target)

    def jmp(self, target: str | int) -> None:
        self._emit(Instruction(Opcode.JMP), target)

    def jr(self, rs1) -> None:
        self._emit(Instruction(Opcode.JR, rs1=reg_index(rs1)), None)

    def call(self, target: str | int) -> None:
        self._emit(Instruction(Opcode.CALL, rd=reg_index("R31")), target)

    def ret(self) -> None:
        self._emit(Instruction(Opcode.RET, rs1=reg_index("R31")), None)

    def nop(self) -> None:
        self._emit(Instruction(Opcode.NOP), None)

    def halt(self) -> None:
        self._emit(Instruction(Opcode.HALT), None)

    # -- finalize --------------------------------------------------------------

    def build(self, entry: int | str = 0, name: str = "program") -> Program:
        for index, label in self._fixups:
            if label not in self._labels:
                raise ValueError(f"undefined label: {label}")
            self._instructions[index].target = self._labels[label]
        if isinstance(entry, str):
            if entry not in self._labels:
                raise ValueError(f"undefined entry label: {entry}")
            entry = self._labels[entry]
        return Program(self._instructions, entry=entry, name=name)
