"""Reference functional interpreter for the mini ISA.

Used by tests (golden model for the out-of-order core's architectural
results) and by the warm-up phase (fast functional execution that feeds
caches and branch predictors without cycle-level timing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from .program import Program
from .registers import NUM_ARCH_REGS
from .semantics import MASK64, DataMemory, branch_target
from .uop import (
    CLS_BRANCH,
    CLS_HALT,
    CLS_LOAD,
    CLS_NOP,
    CLS_STORE,
    Instruction,
)


@dataclass(frozen=True)
class RetiredOp:
    """One architecturally executed instruction, as observed by warm-up/tests."""

    seq: int
    pc: int
    inst: Instruction
    next_pc: int
    dest_value: Optional[int] = None
    mem_addr: Optional[int] = None
    taken: Optional[bool] = None


class Interpreter:
    """In-order functional executor of a :class:`Program`."""

    def __init__(
        self,
        program: Program,
        memory: Optional[DataMemory] = None,
        regs: Optional[list[int]] = None,
    ) -> None:
        self.program = program
        self.memory = memory if memory is not None else DataMemory()
        if regs is None:
            regs = [0] * NUM_ARCH_REGS
        if len(regs) != NUM_ARCH_REGS:
            raise ValueError("regs must have NUM_ARCH_REGS entries")
        self.regs = list(regs)
        self.regs[0] = 0
        self.pc = program.entry
        self.halted = False
        self.retired = 0

    def read_reg(self, index: int) -> int:
        return 0 if index == 0 else self.regs[index]

    def write_reg(self, index: Optional[int], value: int) -> None:
        if index is not None and index != 0:
            self.regs[index] = value

    def step(self) -> RetiredOp:
        """Execute one instruction and return what happened."""
        if self.halted:
            raise RuntimeError("interpreter is halted")
        pc = self.pc
        inst = self.program.fetch(pc)
        regs = self.regs
        # R0 is folded out at decode (src1/src2 are None for R0), so raw
        # rs1/rs2 reads must still mask it; use the decoded operands.
        a = regs[inst.src1] if inst.src1 is not None else 0
        b = regs[inst.src2] if inst.src2 is not None else 0

        dest_value: Optional[int] = None
        addr: Optional[int] = None
        taken: Optional[bool] = None
        next_pc = pc + 1

        cls = inst.cls_idx
        if cls == CLS_LOAD:
            addr = (a + inst.imm) & MASK64
            dest_value = self.memory.load(addr)
            if inst.dest_reg is not None:
                regs[inst.dest_reg] = dest_value
        elif cls == CLS_STORE:
            addr = (a + inst.imm) & MASK64
            self.memory.store(addr, b)
        elif cls == CLS_BRANCH:
            if inst.is_conditional_branch:
                taken = inst.taken_fn(inst, a, b)
            else:
                taken = True
            if inst.is_call:
                dest_value = (pc + 1) & MASK64
                if inst.dest_reg is not None:
                    regs[inst.dest_reg] = dest_value
            next_pc = branch_target(inst, pc, a, taken)
        elif cls == CLS_HALT:
            self.halted = True
        elif cls != CLS_NOP:
            dest_value = inst.alu_fn(inst, a, b)
            if inst.dest_reg is not None:
                regs[inst.dest_reg] = dest_value

        self.pc = next_pc
        seq = self.retired
        self.retired += 1
        return RetiredOp(
            seq=seq,
            pc=pc,
            inst=inst,
            next_pc=next_pc,
            dest_value=dest_value,
            mem_addr=addr,
            taken=taken,
        )

    def run(self, max_instructions: int) -> Iterator[RetiredOp]:
        """Yield up to ``max_instructions`` retired ops (stops at HALT)."""
        for _ in range(max_instructions):
            if self.halted:
                return
            yield self.step()

    def run_warm(
        self,
        max_instructions: int,
        on_ifetch: Optional[Callable[[int], None]] = None,
        on_mem: Optional[Callable[[int], None]] = None,
        on_branch: Optional[Callable[[int, Instruction, bool, int], None]] = None,
    ) -> int:
        """Batched execution with memory-system callbacks; returns the
        number of instructions executed (stops at HALT).

        This is the fast-forward tier of two-tier simulation: the same
        architectural semantics as :meth:`step`, inlined into one loop
        with no :class:`RetiredOp` allocation, reporting side effects
        through callbacks instead — ``on_ifetch(pc)`` once per
        instruction (the HALT included), ``on_mem(addr)`` for every load
        and store, ``on_branch(pc, inst, taken, next_pc)`` for every
        control-flow op.  Per-op callback order (ifetch, then mem/branch)
        matches the order ``Processor.warm_up`` historically applied its
        cache/predictor warming in, so warming through this path is
        bit-identical to warming through :meth:`run`.  Kept honest
        against :meth:`step` by tests/test_warmup_parity.py.
        """
        if self.halted:
            return 0
        regs = self.regs
        memory = self.memory
        # Inlined Program.fetch: flat table hit for in-range PCs, NOP
        # decode for wrong-path out-of-range PCs (same semantics).
        insts = self.program.instructions
        num_insts = len(insts)
        nop = self.program._nop
        pc = self.pc
        executed = 0
        while executed < max_instructions:
            inst = insts[pc] if 0 <= pc < num_insts else nop
            if on_ifetch is not None:
                on_ifetch(pc)
            a = regs[inst.src1] if inst.src1 is not None else 0
            b = regs[inst.src2] if inst.src2 is not None else 0
            next_pc = pc + 1

            cls = inst.cls_idx
            if cls == CLS_LOAD:
                addr = (a + inst.imm) & MASK64
                value = memory.load(addr)
                if inst.dest_reg is not None:
                    regs[inst.dest_reg] = value
                if on_mem is not None:
                    on_mem(addr)
            elif cls == CLS_STORE:
                addr = (a + inst.imm) & MASK64
                memory.store(addr, b)
                if on_mem is not None:
                    on_mem(addr)
            elif cls == CLS_BRANCH:
                if inst.is_conditional_branch:
                    taken = inst.taken_fn(inst, a, b)
                else:
                    taken = True
                if inst.is_call and inst.dest_reg is not None:
                    regs[inst.dest_reg] = (pc + 1) & MASK64
                next_pc = branch_target(inst, pc, a, taken)
                if on_branch is not None:
                    on_branch(pc, inst, taken, next_pc)
            elif cls == CLS_HALT:
                executed += 1
                pc = next_pc
                self.halted = True
                break
            elif cls != CLS_NOP:
                value = inst.alu_fn(inst, a, b)
                if inst.dest_reg is not None:
                    regs[inst.dest_reg] = value

            pc = next_pc
            executed += 1
        self.pc = pc
        self.retired += executed
        return executed

    def run_warm_jit(
        self,
        max_instructions: int,
        on_ifetch: Optional[Callable[[int], None]] = None,
        on_mem: Optional[Callable[[int], None]] = None,
        on_branch: Optional[Callable[[int, Instruction, bool, int], None]] = None,
        warm=None,
        translate_hook=None,
    ) -> int:
        """Block-compiled variant of :meth:`run_warm` (the jit
        fast-forward lane).  Same architectural semantics and, in events
        mode (``warm=None``), the identical callback stream; with a
        ``repro.fastpath.blockjit.WarmTargets`` the compiled blocks feed
        the cache/predictor warm paths directly in batches.  Falls back
        to :meth:`run_warm` per-op for out-of-range PCs, non-64-bit-clean
        registers, and sub-block budget tails.
        """
        from ..fastpath.blockjit import run_warm_jit
        return run_warm_jit(self, max_instructions, on_ifetch, on_mem,
                            on_branch, warm, translate_hook)
