"""Architectural register file definition for the mini ISA.

The simulated machine has 32 general-purpose architectural registers,
``R0``-``R31``.  ``R0`` is hardwired to zero (reads return 0, writes are
discarded), which gives workload kernels a free constant and mirrors the
RISC convention.  ``R31`` is the link register written by ``CALL``.
"""

from __future__ import annotations

NUM_ARCH_REGS = 32

ZERO_REG = 0
LINK_REG = 31

REG_NAMES = tuple(f"R{i}" for i in range(NUM_ARCH_REGS))

_NAME_TO_INDEX = {name: i for i, name in enumerate(REG_NAMES)}


def reg_index(reg: int | str) -> int:
    """Normalize a register reference (``"R5"`` or ``5``) to its index.

    Raises ``ValueError`` for out-of-range indices or unknown names.
    """
    if isinstance(reg, str):
        try:
            return _NAME_TO_INDEX[reg.upper()]
        except KeyError:
            raise ValueError(f"unknown register name: {reg!r}") from None
    index = int(reg)
    if not 0 <= index < NUM_ARCH_REGS:
        raise ValueError(f"register index out of range: {index}")
    return index


def reg_name(index: int) -> str:
    """Return the canonical name (``"R5"``) for a register index."""
    if not 0 <= index < NUM_ARCH_REGS:
        raise ValueError(f"register index out of range: {index}")
    return REG_NAMES[index]
