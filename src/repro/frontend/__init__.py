"""Front-end: fetch unit and hybrid branch predictor.

The paper's key energy observation is that this is the part of the core
that traditional runahead keeps busy (up to 40% of core power) and the
runahead buffer clock-gates.
"""

from .branch_predictor import (
    BranchPredictor,
    BranchPredictorStats,
    PredictorSnapshot,
)
from .fetch import INST_BYTES, FetchedUop, FetchUnit

__all__ = [
    "BranchPredictor",
    "BranchPredictorStats",
    "FetchUnit",
    "FetchedUop",
    "INST_BYTES",
    "PredictorSnapshot",
]
