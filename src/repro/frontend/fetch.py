"""Fetch unit: supplies up to ``width`` predicted-path uops per cycle.

Follows the branch predictor through the static program, producing
:class:`FetchedUop` records (instruction + prediction + predictor
snapshot).  Fetch naturally goes down the wrong path after a
misprediction — it decodes the real instructions at the predicted target —
until the core redirects it.  Instruction-cache timing is modelled per
line (4-byte instruction slots, 16 per 64-byte line).
"""

from __future__ import annotations

from typing import Optional

from ..config import CoreConfig
from ..isa import Program
from ..memory import MemoryHierarchy
from .branch_predictor import BranchPredictor, PredictorSnapshot

INST_BYTES = 4


class FetchedUop:
    """One fetched micro-op plus its control-flow prediction."""

    __slots__ = ("pc", "inst", "predicted_next_pc", "predicted_taken",
                 "snapshot")

    def __init__(self, pc: int, inst, predicted_next_pc: int,
                 predicted_taken: bool, snapshot: Optional[PredictorSnapshot]
                 ) -> None:
        self.pc = pc
        self.inst = inst
        self.predicted_next_pc = predicted_next_pc
        self.predicted_taken = predicted_taken
        self.snapshot = snapshot


class FetchUnit:
    """The fetch stage.  The core drives :meth:`fetch_cycle` once per cycle
    (when not clock-gated) and :meth:`redirect` on mispredicts/flushes."""

    def __init__(self, program: Program, predictor: BranchPredictor,
                 hierarchy: MemoryHierarchy, config: CoreConfig) -> None:
        self.program = program
        self.predictor = predictor
        self.hierarchy = hierarchy
        self.width = config.width
        self.pc = program.entry
        self.stalled_until = 0       # I-cache miss / redirect penalty
        self.wait_for_redirect = False  # unknown indirect target
        self.halted = False
        self.fetched_uops = 0
        self._line_ready: dict[int, int] = {}

    def redirect(self, pc: int, at_cycle: int) -> None:
        """Steer fetch to ``pc``; fetch resumes at ``at_cycle``."""
        self.pc = pc
        self.stalled_until = max(self.stalled_until, at_cycle)
        self.wait_for_redirect = False
        self.halted = False

    def flush(self) -> None:
        """Drop any transient fetch state (used on mode transitions)."""
        self.wait_for_redirect = False
        self._line_ready.clear()

    def _icache_ready(self, pc: int, now: int) -> int:
        """Cycle at which the line containing ``pc`` can feed decode.

        The L1I hit latency is pipelined (hidden by the front-end depth),
        so a hit is available immediately; only LLC/DRAM instruction
        misses stall fetch."""
        addr = pc * INST_BYTES
        line = self.hierarchy.line_of(addr)
        ready = self._line_ready.get(line)
        if ready is None:
            done = self.hierarchy.ifetch(addr, now)
            ready = now if done - now <= self.hierarchy.l1i.latency else done
            self._line_ready[line] = ready
            if len(self._line_ready) > 64:
                self._line_ready.pop(next(iter(self._line_ready)))
        return ready

    def fetch_cycle(self, now: int, budget: Optional[int] = None
                    ) -> list[FetchedUop]:
        """Fetch up to ``budget`` (default: width) uops along the predicted
        path.  A predicted-taken branch ends the fetch group."""
        if self.halted or self.wait_for_redirect or now < self.stalled_until:
            return []
        if budget is None:
            budget = self.width
        group: list[FetchedUop] = []
        while len(group) < budget:
            pc = self.pc
            ready = self._icache_ready(pc, now)
            if ready > now:
                self.stalled_until = ready
                break
            inst = self.program.fetch(pc)
            if inst.is_halt:
                self.halted = True
                group.append(FetchedUop(pc, inst, pc + 1, False, None))
                break
            if inst.is_branch:
                snapshot = self.predictor.snapshot()
                taken, target = self.predictor.predict(pc, inst)
                if target is None:
                    # Indirect branch with no BTB target: fetch must wait
                    # for the branch to resolve.
                    self.wait_for_redirect = True
                    group.append(FetchedUop(pc, inst, -1, taken, snapshot))
                    break
                group.append(FetchedUop(pc, inst, target, taken, snapshot))
                self.pc = target
                if taken:
                    break
            else:
                group.append(FetchedUop(pc, inst, pc + 1, False, None))
                self.pc = pc + 1
        self.fetched_uops += len(group)
        return group
