"""Fetch unit: supplies up to ``width`` predicted-path uops per cycle.

Follows the branch predictor through the static program, producing
:class:`FetchedUop` records (instruction + prediction + predictor
snapshot).  Fetch naturally goes down the wrong path after a
misprediction — it decodes the real instructions at the predicted target —
until the core redirects it.  Instruction-cache timing is modelled per
line (4-byte instruction slots, 16 per 64-byte line).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from ..config import CoreConfig
from ..isa import Program
from ..memory import MemoryHierarchy
from .branch_predictor import BranchPredictor, PredictorSnapshot

INST_BYTES = 4


class FetchedUop:
    """One fetched micro-op plus its control-flow prediction."""

    __slots__ = ("pc", "inst", "predicted_next_pc", "predicted_taken",
                 "snapshot")

    def __init__(self, pc: int, inst, predicted_next_pc: int,
                 predicted_taken: bool, snapshot: Optional[PredictorSnapshot]
                 ) -> None:
        self.pc = pc
        self.inst = inst
        self.predicted_next_pc = predicted_next_pc
        self.predicted_taken = predicted_taken
        self.snapshot = snapshot


class FetchUnit:
    """The fetch stage.  The core drives :meth:`fetch_cycle` once per cycle
    (when not clock-gated) and :meth:`redirect` on mispredicts/flushes."""

    def __init__(self, program: Program, predictor: BranchPredictor,
                 hierarchy: MemoryHierarchy, config: CoreConfig) -> None:
        self.program = program
        self.predictor = predictor
        self.hierarchy = hierarchy
        self.width = config.width
        self.pc = program.entry
        self.stalled_until = 0       # I-cache miss / redirect penalty
        self.wait_for_redirect = False  # unknown indirect target
        self.halted = False
        self.fetched_uops = 0
        # Static decode tables (flat per-PC arrays, see Program) plus the
        # byte-address-free PC -> I-cache-line shift: pc * INST_BYTES is a
        # line address shifted by line_bits, so pc >> (line_bits - 2).
        self._insts = program.instructions
        self._num_insts = len(program.instructions)
        self._is_branch_at = program.is_branch_at
        self._is_halt_at = program.is_halt_at
        self._nop = program._nop
        line_bits = hierarchy.l1i.line_bytes.bit_length() - 1
        self._pc_line_shift = line_bits - (INST_BYTES.bit_length() - 1)
        self._l1i_latency = hierarchy.l1i.latency
        # MRU fast path: the line the previous fetch touched is by
        # construction at the tail of ``_line_ready`` (every touch either
        # inserts at or moves to the end), so re-reading it skips both the
        # dict probe and the (no-op) LRU update.
        self._last_line = -1
        self._last_ready = 0
        # Bounded LRU of line -> decode-ready cycle.  Cleared on every
        # redirect: a ready cycle computed on the old path may describe a
        # line that has since been evicted (or is mid-fill), and carrying
        # it across a redirect would let fetch skip the I-cache model.
        self._line_ready: OrderedDict[int, int] = OrderedDict()
        self._line_ready_cap = 64

    def redirect(self, pc: int, at_cycle: int) -> None:
        """Steer fetch to ``pc``; fetch resumes at ``at_cycle``."""
        self.pc = pc
        self.stalled_until = max(self.stalled_until, at_cycle)
        self.wait_for_redirect = False
        self.halted = False
        self._line_ready.clear()
        self._last_line = -1

    def flush(self) -> None:
        """Drop any transient fetch state (used on mode transitions)."""
        self.wait_for_redirect = False
        self._line_ready.clear()
        self._last_line = -1

    def _icache_ready(self, pc: int, now: int) -> int:
        """Cycle at which the line containing ``pc`` can feed decode.

        The L1I hit latency is pipelined (hidden by the front-end depth),
        so a hit is available immediately; only LLC/DRAM instruction
        misses stall fetch."""
        addr = pc * INST_BYTES
        line = self.hierarchy.line_of(addr)
        line_ready = self._line_ready
        ready = line_ready.get(line)
        if ready is None:
            done = self.hierarchy.ifetch(addr, now)
            ready = now if done - now <= self.hierarchy.l1i.latency else done
            line_ready[line] = ready
            if len(line_ready) > self._line_ready_cap:
                line_ready.popitem(last=False)   # evict least recently used
        else:
            line_ready.move_to_end(line)
        return ready

    def fetch_cycle(self, now: int, budget: Optional[int] = None
                    ) -> list[FetchedUop]:
        """Fetch up to ``budget`` (default: width) uops along the predicted
        path.  A predicted-taken branch ends the fetch group."""
        if self.halted or self.wait_for_redirect or now < self.stalled_until:
            return []
        if budget is None:
            budget = self.width
        group: list[FetchedUop] = []
        append = group.append
        insts = self._insts
        num_insts = self._num_insts
        is_branch_at = self._is_branch_at
        is_halt_at = self._is_halt_at
        pc_line_shift = self._pc_line_shift
        predictor = self.predictor
        while len(group) < budget:
            pc = self.pc
            # Inlined _icache_ready with an MRU same-line shortcut.
            line = pc >> pc_line_shift
            if line == self._last_line:
                ready = self._last_ready
            else:
                line_ready = self._line_ready
                ready = line_ready.get(line)
                if ready is None:
                    done = self.hierarchy.ifetch(pc * INST_BYTES, now)
                    ready = now if done - now <= self._l1i_latency else done
                    line_ready[line] = ready
                    if len(line_ready) > self._line_ready_cap:
                        line_ready.popitem(last=False)
                else:
                    line_ready.move_to_end(line)
                self._last_line = line
                self._last_ready = ready
            if ready > now:
                self.stalled_until = ready
                break
            in_range = 0 <= pc < num_insts
            if in_range and is_halt_at[pc]:
                self.halted = True
                append(FetchedUop(pc, insts[pc], pc + 1, False, None))
                break
            if in_range and is_branch_at[pc]:
                inst = insts[pc]
                snapshot = predictor.snapshot()
                taken, target = predictor.predict(pc, inst)
                if target is None:
                    # Indirect branch with no BTB target: fetch must wait
                    # for the branch to resolve.
                    self.wait_for_redirect = True
                    append(FetchedUop(pc, inst, -1, taken, snapshot))
                    break
                append(FetchedUop(pc, inst, target, taken, snapshot))
                self.pc = target
                if taken:
                    break
            else:
                inst = insts[pc] if in_range else self._nop
                append(FetchedUop(pc, inst, pc + 1, False, None))
                self.pc = pc + 1
        self.fetched_uops += len(group)
        return group
