"""Hybrid branch predictor (Table 1: "Hybrid Branch Predictor").

A gshare and a bimodal table of 2-bit counters, arbitrated by a chooser
table, plus a branch target buffer for taken targets and a return address
stack for CALL/RET.  The global history register is speculatively updated
at predict time; every prediction returns a snapshot that the core stores
with the branch so history (and the RAS top) can be repaired on a
misprediction or a runahead exit — the paper checkpoints "the branch
history register and return address stack" on runahead entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config import BranchPredictorConfig
from ..isa import Instruction


@dataclass(frozen=True)
class PredictorSnapshot:
    """State needed to undo speculative predictor updates."""

    ghr: int
    ras_sp: int
    ras_top: int


@dataclass
class BranchPredictorStats:
    cond_predictions: int = 0
    cond_mispredicts: int = 0
    btb_misses: int = 0
    ras_predictions: int = 0

    @property
    def accuracy(self) -> float:
        if not self.cond_predictions:
            return 1.0
        return 1.0 - self.cond_mispredicts / self.cond_predictions


class BranchPredictor:
    """Gshare + bimodal with a chooser, BTB, and RAS."""

    def __init__(self, config: BranchPredictorConfig) -> None:
        self.config = config
        self._gshare = bytearray([1]) * 1  # replaced below (keep linters calm)
        self._gshare = bytearray([1] * (1 << config.gshare_bits))
        self._bimodal = bytearray([1] * (1 << config.bimodal_bits))
        self._chooser = bytearray([1] * (1 << config.chooser_bits))
        self._gshare_mask = (1 << config.gshare_bits) - 1
        self._bimodal_mask = (1 << config.bimodal_bits) - 1
        self._chooser_mask = (1 << config.chooser_bits) - 1
        self._history_mask = (1 << config.history_bits) - 1
        self.ghr = 0
        self._btb: dict[int, int] = {}
        self._ras = [0] * config.ras_entries
        self._ras_sp = 0
        self.stats = BranchPredictorStats()

    # -- snapshots ---------------------------------------------------------------

    def snapshot(self) -> PredictorSnapshot:
        sp = self._ras_sp
        top = self._ras[(sp - 1) % len(self._ras)]
        return PredictorSnapshot(self.ghr, sp, top)

    def restore(self, snap: PredictorSnapshot) -> None:
        self.ghr = snap.ghr
        self._ras_sp = snap.ras_sp
        self._ras[(snap.ras_sp - 1) % len(self._ras)] = snap.ras_top

    def checkpoint_full(self) -> tuple[int, list[int], int]:
        """Full GHR + RAS checkpoint (taken on runahead entry, §3)."""
        return (self.ghr, list(self._ras), self._ras_sp)

    def restore_full(self, checkpoint: tuple[int, list[int], int]) -> None:
        ghr, ras, sp = checkpoint
        self.ghr = ghr
        self._ras = list(ras)
        self._ras_sp = sp

    def snapshot_state(self) -> tuple:
        """Complete predictor state for warm-state checkpoints: all three
        counter tables, the GHR, the BTB (sorted by PC so the serialized
        form is independent of insertion order — the jit lane's batched
        BTB writes insert in a different order than the interp lane's
        sequential ones), the RAS and its pointer, and the stats.

        Named ``snapshot_state`` (not ``snapshot``) because
        :meth:`snapshot`/:meth:`restore` are the per-prediction GHR/RAS
        repair pair the core uses on every branch.
        """
        st = self.stats
        return (
            bytes(self._gshare),
            bytes(self._bimodal),
            bytes(self._chooser),
            self.ghr,
            tuple(sorted(self._btb.items())),
            tuple(self._ras),
            self._ras_sp,
            (st.cond_predictions, st.cond_mispredicts, st.btb_misses,
             st.ras_predictions),
        )

    def restore_state(self, snap: tuple) -> None:
        gshare, bimodal, chooser, ghr, btb, ras, ras_sp, stats = snap
        if (len(gshare) != len(self._gshare)
                or len(bimodal) != len(self._bimodal)
                or len(chooser) != len(self._chooser)):
            raise ValueError("predictor snapshot has different table sizes")
        self._gshare = bytearray(gshare)
        self._bimodal = bytearray(bimodal)
        self._chooser = bytearray(chooser)
        self.ghr = ghr
        self._btb = dict(btb)
        self._ras = list(ras)
        self._ras_sp = ras_sp
        st = self.stats
        (st.cond_predictions, st.cond_mispredicts, st.btb_misses,
         st.ras_predictions) = stats

    def repair(self, pc: int, inst: Instruction, taken: bool,
               snapshot: PredictorSnapshot) -> None:
        """Fix speculative GHR/RAS state after a misprediction: rewind to
        the snapshot taken at predict time, then re-apply the *actual*
        outcome of this branch."""
        self.restore(snapshot)
        if inst.is_conditional_branch:
            self.ghr = ((self.ghr << 1) | int(taken)) & self._history_mask
        elif inst.is_call:
            self._ras[self._ras_sp] = pc + 1
            self._ras_sp = (self._ras_sp + 1) % len(self._ras)
        elif inst.is_return:
            self._ras_sp = (self._ras_sp - 1) % len(self._ras)

    # -- prediction ---------------------------------------------------------------

    def _indices(self, pc: int, ghr: Optional[int] = None
                 ) -> tuple[int, int, int]:
        history = self.ghr if ghr is None else ghr
        gidx = (pc ^ (history << 2)) & self._gshare_mask
        bidx = pc & self._bimodal_mask
        cidx = pc & self._chooser_mask
        return gidx, bidx, cidx

    def predict(self, pc: int, inst: Instruction) -> tuple[bool, Optional[int]]:
        """Predict (taken, target-PC).  ``target`` is ``None`` when the BTB
        and RAS cannot provide one (indirect-miss: fetch must stall until
        resolve).  Speculatively updates GHR/RAS."""
        if inst.is_return:
            self.stats.ras_predictions += 1
            self._ras_sp = (self._ras_sp - 1) % len(self._ras)
            target = self._ras[self._ras_sp]
            return True, target
        if inst.is_call:
            self._ras[self._ras_sp] = pc + 1
            self._ras_sp = (self._ras_sp + 1) % len(self._ras)
            return True, inst.target
        if inst.is_indirect:  # JR
            target = self._btb.get(pc)
            if target is None:
                self.stats.btb_misses += 1
            return True, target
        if not inst.is_conditional_branch:  # JMP
            return True, inst.target

        gidx, bidx, cidx = self._indices(pc)
        use_gshare = self._chooser[cidx] >= 2
        counter = self._gshare[gidx] if use_gshare else self._bimodal[bidx]
        taken = counter >= 2
        self.stats.cond_predictions += 1
        # Speculative history update (repaired on mispredict via snapshot).
        self.ghr = ((self.ghr << 1) | int(taken)) & self._history_mask
        target = inst.target if taken else pc + 1
        return taken, target

    # -- training ------------------------------------------------------------------

    @staticmethod
    def _train(table: bytearray, idx: int, taken: bool) -> None:
        counter = table[idx]
        if taken:
            if counter < 3:
                table[idx] = counter + 1
        elif counter > 0:
            table[idx] = counter - 1

    def update(self, pc: int, inst: Instruction, taken: bool,
               target: int, mispredicted: bool,
               ghr: Optional[int] = None) -> None:
        """Train on a resolved branch.

        ``ghr`` must be the global history *at prediction time* (from the
        branch's snapshot) so training writes the same gshare entry the
        prediction read.  When ``None`` (functional warm-up, where
        ``predict`` was never called), the current history is used and
        then shifted by the outcome."""
        if inst.is_conditional_branch:
            if ghr is None:
                history = self.ghr
                self.ghr = ((self.ghr << 1) | int(taken)) & self._history_mask
            else:
                history = ghr
            gidx, bidx, cidx = self._indices(pc, history)
            g_correct = (self._gshare[gidx] >= 2) == taken
            b_correct = (self._bimodal[bidx] >= 2) == taken
            if g_correct != b_correct:
                self._train(self._chooser, cidx, g_correct)
            self._train(self._gshare, gidx, taken)
            self._train(self._bimodal, bidx, taken)
            if mispredicted:
                self.stats.cond_mispredicts += 1
        if taken and not inst.is_return:
            if len(self._btb) >= self.config.btb_entries and pc not in self._btb:
                # Cheap random-ish replacement: drop an arbitrary entry.
                self._btb.pop(next(iter(self._btb)))
            self._btb[pc] = target

    def warm_update_vector(self, pc: int, inst: Instruction,
                           outcomes: list, taken_target: int,
                           prev_taken: dict) -> None:
        """Replay a run of functional-warm-up outcomes for ONE conditional
        branch, bit-identically to calling :meth:`update` once per outcome
        with ``ghr=None`` (the warm-up convention — see
        ``Processor.fast_forward``) and threading the same ``prev_taken``
        mispredict proxy between calls.

        Used by the jit fast-forward lane for loop superblocks: the
        per-iteration table training is GHR-order dependent and is
        replayed exactly; the BTB insert collapses to one write because
        the (pc, target) pair is static across the run — after the first
        taken outcome the sequential inserts are exact no-ops, and no
        other branch touches the BTB within the run.
        """
        if not outcomes:
            return
        gshare = self._gshare
        bimodal = self._bimodal
        chooser = self._chooser
        gshare_mask = self._gshare_mask
        history_mask = self._history_mask
        bidx = pc & self._bimodal_mask
        cidx = pc & self._chooser_mask
        ghr = self.ghr
        prev = prev_taken.get(pc, False)
        mis = 0
        for t in outcomes:
            gidx = (pc ^ (ghr << 2)) & gshare_mask
            ghr = ((ghr << 1) | t) & history_mask
            g_correct = (gshare[gidx] >= 2) == t
            if g_correct != ((bimodal[bidx] >= 2) == t):
                c = chooser[cidx]
                if g_correct:
                    if c < 3:
                        chooser[cidx] = c + 1
                elif c > 0:
                    chooser[cidx] = c - 1
            g = gshare[gidx]
            b = bimodal[bidx]
            if t:
                if g < 3:
                    gshare[gidx] = g + 1
                if b < 3:
                    bimodal[bidx] = b + 1
            else:
                if g > 0:
                    gshare[gidx] = g - 1
                if b > 0:
                    bimodal[bidx] = b - 1
            if prev != t:
                mis += 1
            prev = t
        self.ghr = ghr
        prev_taken[pc] = prev
        self.stats.cond_mispredicts += mis
        if any(outcomes):
            btb = self._btb
            if len(btb) >= self.config.btb_entries and pc not in btb:
                btb.pop(next(iter(btb)))
            btb[pc] = taken_target
