"""Per-figure extractors: turn the experiment matrix into the paper's
tables and figures.

Each ``figNN_*`` function reproduces the corresponding figure of the
paper as a :class:`~repro.analysis.report.Table` whose rows are
benchmarks (suite order) and whose last row, where the paper reports one,
is the geometric mean.  Benchmarks under ``benchmarks/`` render these and
assert the paper's qualitative claims.
"""

from __future__ import annotations

from ..config import default_system
from ..workloads import intensity_of, medium_high_names, workload_names
from .experiments import ExperimentMatrix
from .metrics import gmean
from .report import Table


def _speedup_rows(matrix: ExperimentMatrix, configs: list[str],
                  workloads: list[str], baseline: str = "baseline"
                  ) -> tuple[list[list[float]], list[float]]:
    """Per-workload percent speedups and the per-config gmean row."""
    table_rows: list[list[float]] = []
    ratios: dict[str, list[float]] = {c: [] for c in configs}
    for workload in workloads:
        base = matrix.ipc(workload, baseline)
        row = []
        for config in configs:
            ipc = matrix.ipc(workload, config)
            row.append(100.0 * (ipc / base - 1.0))
            ratios[config].append(ipc / base)
        table_rows.append(row)
    gmeans = [100.0 * (gmean(ratios[c]) - 1.0) for c in configs]
    return table_rows, gmeans


# ---------------------------------------------------------------------------
# Motivation figures (Figs 1-5)
# ---------------------------------------------------------------------------

def fig01_memory_stalls(matrix: ExperimentMatrix) -> Table:
    """Fig. 1: % cycles stalled on memory + IPC, whole suite, baseline."""
    table = Table(
        "Figure 1: % cycles stalled waiting for memory (no-PF baseline)",
        ["benchmark", "intensity", "stall_pct", "ipc", "mpki"],
    )
    for name in workload_names():
        stats = matrix.get(name, "baseline")
        table.add(name, intensity_of(name),
                  100.0 * stats["memstall_fraction"], stats["ipc"],
                  stats["mpki"])
    return table


def fig02_source_on_chip(matrix: ExperimentMatrix) -> Table:
    """Fig. 2: % of cache misses whose source data is available on chip."""
    table = Table(
        "Figure 2: % of cache misses with source data available on chip",
        ["benchmark", "onchip_pct", "misses_analyzed"],
    )
    for name in workload_names():
        stats = matrix.get(name, "baseline", chain_stats=True)
        chains = stats["chains"]
        analyzed = (chains["misses_source_onchip"]
                    + chains["misses_source_offchip"])
        table.add(name, 100.0 * chains["source_onchip_fraction"], analyzed)
    return table


def fig03_chain_fraction(matrix: ExperimentMatrix) -> Table:
    """Fig. 3: % of runahead-executed ops on miss dependence chains."""
    table = Table(
        "Figure 3: % of ops executed in runahead that are on a miss's "
        "dependence chain",
        ["benchmark", "chain_ops_pct", "runahead_ops"],
    )
    for name in medium_high_names():
        stats = matrix.get(name, "runahead", chain_stats=True)
        chains = stats["chains"]
        table.add(name, 100.0 * chains["chain_op_fraction"],
                  chains["runahead_ops_executed"])
    return table


def fig04_chain_repetition(matrix: ExperimentMatrix) -> Table:
    """Fig. 4: repeated vs unique miss chains within runahead intervals."""
    table = Table(
        "Figure 4: % of dependence chains repeated within a runahead "
        "interval",
        ["benchmark", "repeated_pct", "unique", "repeated"],
    )
    for name in medium_high_names():
        stats = matrix.get(name, "runahead", chain_stats=True)
        chains = stats["chains"]
        table.add(name, 100.0 * chains["repeated_fraction"],
                  chains["unique_chains"], chains["repeated_chains"])
    return table


def fig05_chain_length(matrix: ExperimentMatrix) -> Table:
    """Fig. 5: mean dependence-chain length in uops."""
    table = Table(
        "Figure 5: average dependence chain length (uops)",
        ["benchmark", "mean_length", "chains"],
    )
    lengths = []
    for name in medium_high_names():
        stats = matrix.get(name, "runahead", chain_stats=True)
        chains = stats["chains"]
        table.add(name, chains["mean_chain_length"], chains["chain_count"])
        if chains["chain_count"]:
            lengths.append(chains["mean_chain_length"])
    if lengths:
        table.add("Average", sum(lengths) / len(lengths), sum(
            matrix.get(n, "runahead", chain_stats=True)["chains"]["chain_count"]
            for n in medium_high_names()))
    return table


# ---------------------------------------------------------------------------
# Tables 1-2
# ---------------------------------------------------------------------------

def table1_configuration() -> Table:
    """Table 1: the simulated system configuration."""
    cfg = default_system()
    table = Table("Table 1: system configuration",
                  ["parameter", "value", "paper"])
    rows = [
        ("issue width", cfg.core.width, 4),
        ("ROB entries", cfg.core.rob_size, 192),
        ("reservation stations", cfg.core.rs_size, 92),
        ("clock (GHz)", cfg.core.clock_ghz, 3.2),
        ("runahead buffer (uops)", cfg.runahead.buffer_uops, 32),
        ("runahead cache (bytes)", cfg.runahead.runahead_cache_bytes, 512),
        ("chain cache entries", cfg.runahead.chain_cache_entries, 2),
        ("L1I (KB)", cfg.l1i.size_bytes // 1024, 32),
        ("L1D (KB)", cfg.l1d.size_bytes // 1024, 32),
        ("L1 latency", cfg.l1d.latency, 3),
        ("LLC (KB)", cfg.llc.size_bytes // 1024, 1024),
        ("LLC latency", cfg.llc.latency, 18),
        ("LLC assoc", cfg.llc.assoc, 8),
        ("memory queue entries", cfg.dram.queue_entries, 64),
        ("prefetcher streams", cfg.prefetcher.num_streams, 32),
        ("prefetcher distance", cfg.prefetcher.distance, 32),
        ("prefetcher degree", cfg.prefetcher.degree, 2),
        ("DRAM channels", cfg.dram.channels, 2),
        ("DRAM banks/channel", cfg.dram.banks_per_channel, 8),
        ("DRAM row (KB)", cfg.dram.row_bytes // 1024, 8),
        ("CAS (cycles @3.2GHz)", cfg.dram.t_cas, 44),
    ]
    for name, value, paper in rows:
        table.add(name, value, paper)
    return table


def table2_mpki_classes(matrix: ExperimentMatrix) -> Table:
    """Table 2: workload classification by memory intensity."""
    table = Table(
        "Table 2: SPEC06-like workload classification by memory intensity",
        ["benchmark", "mpki", "measured_class", "registered_class"],
    )
    for name in workload_names():
        mpki = matrix.get(name, "baseline")["mpki"]
        if mpki >= 10:
            measured = "high"
        elif mpki > 2:
            measured = "medium"
        else:
            measured = "low"
        table.add(name, mpki, measured, intensity_of(name))
    return table


# ---------------------------------------------------------------------------
# Evaluation figures (Figs 9-18)
# ---------------------------------------------------------------------------

PERF_CONFIGS_NOPF = ["runahead", "rab", "rab_cc", "hybrid"]
PERF_CONFIGS_PF = ["pf", "runahead_pf", "rab_pf", "rab_cc_pf", "hybrid_pf"]
ENERGY_CONFIGS_NOPF = ["runahead", "runahead_enh", "rab", "rab_cc", "hybrid"]
ENERGY_CONFIGS_PF = ["pf", "runahead_pf", "runahead_enh_pf", "rab_pf",
                     "rab_cc_pf", "hybrid_pf"]


def fig09_performance_nopf(matrix: ExperimentMatrix) -> Table:
    """Fig. 9: % IPC over the no-prefetching baseline (no prefetcher)."""
    workloads = medium_high_names()
    table = Table(
        "Figure 9: % IPC difference over no-PF baseline",
        ["benchmark"] + PERF_CONFIGS_NOPF,
    )
    rows, gmeans = _speedup_rows(matrix, PERF_CONFIGS_NOPF, workloads)
    for workload, row in zip(workloads, rows):
        table.add(workload, *row)
    table.add("GMean", *gmeans)
    table.notes.append(
        "paper GMean: runahead +14.3, rab +14.4, rab_cc +17.2, hybrid +21.0"
    )
    return table


def fig10_mlp(matrix: ExperimentMatrix) -> Table:
    """Fig. 10: cache misses generated per runahead interval."""
    table = Table(
        "Figure 10: memory accesses generated per runahead interval",
        ["benchmark", "runahead", "rab", "runahead_pf", "rab_pf"],
    )
    sums = [0.0, 0.0, 0.0, 0.0]
    workloads = medium_high_names()
    for name in workloads:
        cells = [
            matrix.get(name, cfg)["misses_per_interval"]
            for cfg in ("runahead", "rab", "runahead_pf", "rab_pf")
        ]
        table.add(name, *cells)
        for i, c in enumerate(cells):
            sums[i] += c
    table.add("Average", *[s / len(workloads) for s in sums])
    table.notes.append("paper: rab generates ~2x the misses of runahead")
    return table


def fig11_rab_cycles(matrix: ExperimentMatrix) -> Table:
    """Fig. 11: % of total cycles spent in runahead-buffer mode."""
    table = Table(
        "Figure 11: % of total cycles in runahead buffer mode (rab system)",
        ["benchmark", "rab_cycles_pct"],
    )
    values = []
    for name in medium_high_names():
        frac = 100.0 * matrix.get(name, "rab")["rab_cycle_fraction"]
        table.add(name, frac)
        values.append(frac)
    table.add("Average", sum(values) / len(values))
    table.notes.append("paper average: 47% of cycles")
    return table


def fig12_chain_cache_hits(matrix: ExperimentMatrix) -> Table:
    """Fig. 12: chain cache hit rate (rab + chain cache system)."""
    table = Table(
        "Figure 12: chain cache hit rate",
        ["benchmark", "hit_rate_pct", "hits", "misses"],
    )
    values = []
    for name in medium_high_names():
        stats = matrix.get(name, "rab_cc")
        rate = 100.0 * stats["chain_cache_hit_rate"]
        table.add(name, rate, stats["chain_cache_hits"],
                  stats["chain_cache_misses"])
        values.append(rate)
    table.add("Average", sum(values) / len(values), "", "")
    return table


def fig13_chain_cache_accuracy(matrix: ExperimentMatrix) -> Table:
    """Fig. 13: % of chain-cache hits exactly matching the ROB chain."""
    table = Table(
        "Figure 13: % of chain cache hits that exactly match the chain "
        "the ROB would generate",
        ["benchmark", "exact_pct", "checked_hits"],
    )
    values = []
    for name in medium_high_names():
        stats = matrix.get(name, "rab_cc", chain_stats=True)
        pct = 100.0 * stats["chain_cache_exact_fraction"]
        table.add(name, pct, stats["chain_cache_checked_hits"])
        values.append(pct)
    table.add("Average", sum(values) / len(values), "")
    table.notes.append("paper average: ~53% exact matches")
    return table


def fig14_hybrid_split(matrix: ExperimentMatrix) -> Table:
    """Fig. 14: % of runahead cycles spent in buffer mode under Hybrid."""
    table = Table(
        "Figure 14: % of runahead cycles using the runahead buffer "
        "(hybrid policy)",
        ["benchmark", "rab_share_pct"],
    )
    values = []
    for name in medium_high_names():
        share = 100.0 * matrix.get(name, "hybrid")["hybrid_rab_share"]
        table.add(name, share)
        values.append(share)
    table.add("Average", sum(values) / len(values))
    table.notes.append("paper average: 71% of runahead cycles in the buffer")
    return table


def fig15_performance_pf(matrix: ExperimentMatrix) -> Table:
    """Fig. 15: % IPC over the no-PF baseline, with a stream prefetcher."""
    workloads = medium_high_names()
    table = Table(
        "Figure 15: % IPC difference over no-PF baseline (with prefetching)",
        ["benchmark"] + PERF_CONFIGS_PF,
    )
    rows, gmeans = _speedup_rows(matrix, PERF_CONFIGS_PF, workloads)
    for workload, row in zip(workloads, rows):
        table.add(workload, *row)
    table.add("GMean", *gmeans)
    table.notes.append(
        "paper GMean: pf +37.5, runahead_pf +48.3, rab_pf +47.1, "
        "rab_cc_pf +48.2, hybrid_pf +51.5"
    )
    return table


def fig16_memory_traffic(matrix: ExperimentMatrix) -> Table:
    """Fig. 16: % extra DRAM requests vs the no-PF baseline."""
    configs = ["runahead", "rab", "rab_cc", "hybrid", "pf"]
    workloads = medium_high_names()
    table = Table(
        "Figure 16: % additional DRAM requests vs no-PF baseline",
        ["benchmark"] + configs,
    )
    ratios: dict[str, list[float]] = {c: [] for c in configs}
    for name in workloads:
        base = matrix.get(name, "baseline")["dram_requests"]
        row = []
        for config in configs:
            requests = matrix.get(name, config)["dram_requests"]
            pct = 100.0 * (requests / base - 1.0) if base else 0.0
            row.append(pct)
            ratios[config].append(requests / base if base else 1.0)
        table.add(name, *row)
    table.add("GMean", *[100.0 * (gmean(ratios[c]) - 1.0) for c in configs])
    table.notes.append(
        "paper GMean: runahead +4, rab +12, hybrid +9, pf +38"
    )
    return table


def _energy_table(matrix: ExperimentMatrix, configs: list[str],
                  title: str, note: str) -> Table:
    workloads = medium_high_names()
    table = Table(title, ["benchmark"] + configs)
    ratios: dict[str, list[float]] = {c: [] for c in configs}
    for name in workloads:
        base = matrix.get(name, "baseline")["total_energy_j"]
        row = []
        for config in configs:
            energy = matrix.get(name, config)["total_energy_j"]
            row.append(100.0 * (energy / base - 1.0) if base else 0.0)
            ratios[config].append(energy / base if base else 1.0)
        table.add(name, *row)
    table.add("GMean", *[100.0 * (gmean(ratios[c]) - 1.0) for c in configs])
    table.notes.append(note)
    return table


def fig17_energy_nopf(matrix: ExperimentMatrix) -> Table:
    """Fig. 17: normalized energy, no prefetching."""
    return _energy_table(
        matrix, ENERGY_CONFIGS_NOPF,
        "Figure 17: % energy difference vs no-PF baseline",
        "paper GMean: runahead +44, runahead_enh +9, rab -4.4, "
        "rab_cc -6.7, hybrid -2.3",
    )


def fig18_energy_pf(matrix: ExperimentMatrix) -> Table:
    """Fig. 18: normalized energy, with prefetching."""
    return _energy_table(
        matrix, ENERGY_CONFIGS_PF,
        "Figure 18: % energy difference vs no-PF baseline (with prefetching)",
        "paper GMean: pf -19.5, runahead_pf -1.7, runahead_enh_pf -15.4, "
        "rab_pf -20.8, rab_cc_pf -22.5, hybrid_pf -19.9",
    )


def figure_matrix_cells() -> list[tuple[str, str, bool]]:
    """Every (workload, config, chain_stats) cell the figure suite reads.

    Feeding this list to :meth:`ExperimentMatrix.prefetch` populates the
    whole evaluation matrix in one parallel fan-out before any figure
    extractor runs serially (and then only reads the cache).
    """
    cells: list[tuple[str, str, bool]] = []
    for name in workload_names():
        cells.append((name, "baseline", False))       # figs 1, 16-18, table 2
        cells.append((name, "baseline", True))        # fig 2
    evaluation_configs = sorted(set(
        PERF_CONFIGS_NOPF + PERF_CONFIGS_PF
        + ENERGY_CONFIGS_NOPF + ENERGY_CONFIGS_PF))
    for name in medium_high_names():
        cells.append((name, "runahead", True))        # figs 3-5
        cells.append((name, "rab_cc", True))          # fig 13
        cells.extend((name, config, False)            # figs 9-18, headline
                     for config in evaluation_configs)
    return cells


# The paper's headline aggregates, for machine-readable comparison.
PAPER_HEADLINES = {
    "runahead perf %": 14.3,
    "rab_cc perf %": 17.2,
    "hybrid perf %": 21.0,
    "pf perf %": 37.5,
    "runahead_pf perf %": 48.3,
    "rab_cc_pf perf %": 48.2,
    "hybrid_pf perf %": 51.5,
    "runahead energy %": 44.0,
    "runahead_enh energy %": 9.0,
    "rab_cc energy %": -6.7,
    "hybrid energy %": -2.3,
}


def export_comparison(matrix: ExperimentMatrix, path="results/comparison.json"):
    """Write a machine-readable paper-vs-measured summary.

    Each headline metric carries the measured value, the paper's value,
    and whether the *direction* (sign relative to baseline) matches —
    the reproduction criterion DESIGN.md commits to.
    """
    import json
    from pathlib import Path

    table = headline_summary(matrix)
    payload = {}
    for metric, measured, _paper in table.rows:
        paper = PAPER_HEADLINES[metric]
        payload[metric] = {
            "measured": round(float(measured), 2),
            "paper": paper,
            "direction_matches": (measured >= 0) == (paper >= 0),
        }
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2))
    return out


def headline_summary(matrix: ExperimentMatrix) -> Table:
    """The abstract's headline numbers, measured vs paper."""
    workloads = medium_high_names()
    table = Table("Headline results: measured vs paper (medium+high gmean)",
                  ["metric", "measured", "paper"])

    def perf(config):
        ratios = [matrix.ipc(w, config) / matrix.ipc(w, "baseline")
                  for w in workloads]
        return 100.0 * (gmean(ratios) - 1.0)

    def energy(config):
        ratios = [matrix.get(w, config)["total_energy_j"]
                  / matrix.get(w, "baseline")["total_energy_j"]
                  for w in workloads]
        return 100.0 * (gmean(ratios) - 1.0)

    table.add("runahead perf %", perf("runahead"), "+14.3")
    table.add("rab_cc perf %", perf("rab_cc"), "+17.2")
    table.add("hybrid perf %", perf("hybrid"), "+21.0")
    table.add("pf perf %", perf("pf"), "+37.5")
    table.add("runahead_pf perf %", perf("runahead_pf"), "+48.3")
    table.add("rab_cc_pf perf %", perf("rab_cc_pf"), "+48.2")
    table.add("hybrid_pf perf %", perf("hybrid_pf"), "+51.5")
    table.add("runahead energy %", energy("runahead"), "+44.0")
    table.add("runahead_enh energy %", energy("runahead_enh"), "+9.0")
    table.add("rab_cc energy %", energy("rab_cc"), "-6.7")
    table.add("hybrid energy %", energy("hybrid"), "-2.3")
    return table
