"""Parameter sweeps: reusable sensitivity-analysis machinery.

The paper chose the 32-uop buffer "through sensitivity analysis" (§5);
this module provides that style of study as a first-class tool.  A sweep
varies one knob across a value list, simulates a benchmark set under a
baseline and a treatment configuration per value, and reports the
geometric-mean speedup per point.

Used by the ablation benchmarks and by ``python -m repro sweep``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..config import RunaheadMode, SystemConfig, make_config
from .metrics import gmean
from .parallel import SimSpec, simulate_configs
from .report import Table

DEFAULT_BENCHES = ("mcf", "milc", "soplex")


def default_sweep_instructions() -> int:
    """Per-point budget: ``REPRO_BENCH_INSTS``, read at call time."""
    return int(os.environ.get("REPRO_BENCH_INSTS", "3000"))


def default_sweep_warmup() -> int:
    """Warmup budget: ``REPRO_BENCH_WARMUP``, read at call time."""
    return int(os.environ.get("REPRO_BENCH_WARMUP", "12000"))


@dataclass(frozen=True)
class SweepPoint:
    """One sweep point: the knob value and the gmean % speedup."""

    value: object
    speedup_pct: float
    per_bench: dict


def run_sweep(
    configure: Callable[[object], SystemConfig],
    values: Sequence,
    benches: Sequence[str] = DEFAULT_BENCHES,
    instructions: Optional[int] = None,
    warmup: Optional[int] = None,
    jobs: Optional[int] = None,
) -> list[SweepPoint]:
    """Sweep ``configure(value)`` over ``values``.

    ``configure`` returns the treatment config for a value; each point is
    reported as gmean % IPC over the plain baseline on the same
    benchmarks.  Budgets default to ``REPRO_BENCH_INSTS`` /
    ``REPRO_BENCH_WARMUP``.  Every (point x bench) run — and the shared
    baselines — is independent, so the whole sweep fans out across
    ``jobs`` worker processes at once.
    """
    if instructions is None:
        instructions = default_sweep_instructions()
    if warmup is None:
        warmup = default_sweep_warmup()
    specs = [SimSpec(name, make_config(), instructions, warmup, "baseline")
             for name in benches]
    for value in values:
        config = configure(value)
        specs.extend(SimSpec(name, config, instructions, warmup, str(value))
                     for name in benches)
    stats = simulate_configs(specs, jobs=jobs)
    ipcs = [s["ipc"] for s in stats]
    baselines = dict(zip(benches, ipcs))
    points = []
    for index, value in enumerate(values):
        block = ipcs[(index + 1) * len(benches):(index + 2) * len(benches)]
        per_bench = {}
        ratios = []
        for name, ipc in zip(benches, block):
            per_bench[name] = 100.0 * (ipc / baselines[name] - 1.0)
            ratios.append(ipc / baselines[name])
        points.append(SweepPoint(value, 100.0 * (gmean(ratios) - 1.0),
                                 per_bench))
    return points


def sweep_table(title: str, knob: str, points: Sequence[SweepPoint],
                ) -> Table:
    benches = list(points[0].per_bench) if points else []
    table = Table(title, [knob, "gmean_pct"] + benches)
    for point in points:
        table.add(point.value, point.speedup_pct,
                  *[point.per_bench[b] for b in benches])
    return table


# -- canned sweeps -----------------------------------------------------------

def buffer_size_sweep(sizes: Sequence[int] = (8, 16, 32, 64),
                      **kwargs) -> list[SweepPoint]:
    """Runahead buffer capacity (the paper's §5 sensitivity analysis)."""
    return run_sweep(
        lambda n: make_config(RunaheadMode.BUFFER, buffer_uops=n,
                              max_chain_length=n),
        sizes, **kwargs,
    )


def chain_cache_sweep(entries: Sequence[int] = (1, 2, 4, 8),
                      **kwargs) -> list[SweepPoint]:
    """Chain cache entry count (§4.4 argues small is sufficient)."""
    return run_sweep(
        lambda n: make_config(RunaheadMode.BUFFER_CHAIN_CACHE,
                              chain_cache_entries=n),
        entries, **kwargs,
    )


def search_bandwidth_sweep(widths: Sequence[int] = (1, 2, 4),
                           **kwargs) -> list[SweepPoint]:
    """Destination-register CAM searches per cycle (§5 models 2)."""
    return run_sweep(
        lambda n: make_config(RunaheadMode.BUFFER_CHAIN_CACHE,
                              reg_searches_per_cycle=n),
        widths, **kwargs,
    )


def rob_size_sweep(sizes: Sequence[int] = (96, 192, 384),
                   mode: RunaheadMode = RunaheadMode.BUFFER,
                   **kwargs) -> list[SweepPoint]:
    """Window size vs runahead benefit.

    Note: each point is normalized against the *default* (192-entry)
    baseline, so this shows the combined window+runahead effect.
    """
    def configure(rob: int) -> SystemConfig:
        cfg = make_config(mode)
        cfg.core.rob_size = rob
        cfg.core.num_phys_regs = rob + 160
        cfg.validate()
        return cfg

    return run_sweep(configure, sizes, **kwargs)


def runahead_cache_sweep(**kwargs) -> list[SweepPoint]:
    """Runahead cache on vs off (store->load forwarding during runahead)."""
    return run_sweep(
        lambda on: make_config(RunaheadMode.BUFFER,
                               runahead_cache_enabled=on),
        [True, False], **kwargs,
    )


CANNED_SWEEPS: dict[str, tuple[Callable[..., list[SweepPoint]], str, str]] = {
    "buffer-size": (buffer_size_sweep, "buffer_uops",
                    "runahead buffer capacity"),
    "chain-cache": (chain_cache_sweep, "entries", "chain cache entries"),
    "search-bandwidth": (search_bandwidth_sweep, "searches_per_cycle",
                         "dest-reg CAM bandwidth"),
    "rob-size": (rob_size_sweep, "rob_entries", "reorder buffer size"),
    "runahead-cache": (runahead_cache_sweep, "enabled",
                       "runahead cache on/off"),
}


def run_named_sweep(name: str, benches: Optional[Sequence[str]] = None,
                    instructions: Optional[int] = None,
                    warmup: Optional[int] = None,
                    jobs: Optional[int] = None) -> Table:
    """Run a canned sweep by name and return its table."""
    try:
        fn, knob, description = CANNED_SWEEPS[name]
    except KeyError:
        raise ValueError(
            f"unknown sweep {name!r}; choose from {sorted(CANNED_SWEEPS)}"
        ) from None
    kwargs = {"instructions": instructions, "warmup": warmup, "jobs": jobs}
    if benches:
        kwargs["benches"] = tuple(benches)
    points = fn(**kwargs)
    return sweep_table(f"Sweep: {description} (gmean % IPC vs baseline)",
                       knob, points)
