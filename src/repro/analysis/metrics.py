"""Aggregation helpers for the evaluation (geometric means, deltas)."""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def gmean(values: Iterable[float]) -> float:
    """Geometric mean; values are clamped to a tiny positive floor so a
    single zero (e.g. an IPC of 0 from a degenerate run) cannot poison
    the aggregate with a domain error."""
    values = [max(float(v), 1e-12) for v in values]
    if not values:
        raise ValueError("gmean of empty sequence")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def percent_delta(value: float, reference: float) -> float:
    """``value`` vs ``reference`` as a percentage (+12.5 means +12.5%)."""
    if reference == 0:
        return 0.0
    return 100.0 * (value / reference - 1.0)


def gmean_percent_delta(values: Sequence[float],
                        references: Sequence[float]) -> float:
    """Geometric-mean speedup of pairwise ratios, as a percent delta.

    This is how the paper aggregates per-benchmark normalized results
    (the "GMean" bar of Figs 9/15-18)."""
    if len(values) != len(references):
        raise ValueError("length mismatch")
    ratios = [v / r if r else 1.0 for v, r in zip(values, references)]
    return 100.0 * (gmean(ratios) - 1.0)
