"""Experiment harness: run matrix, per-figure extractors, reporting."""

from . import figures
from .experiments import (
    DEFAULT_INSTRUCTIONS,
    DEFAULT_WARMUP,
    KEY_SCHEMA,
    MODEL_VERSION,
    ExperimentMatrix,
    all_workloads,
    evaluation_workloads,
)
from .metrics import gmean, gmean_percent_delta, percent_delta
from .parallel import (
    CellSpec,
    SimSpec,
    print_progress,
    resolve_jobs,
    simulate_cells,
    simulate_configs,
)
from .report import Table, render, write_report
from .sweeps import (
    CANNED_SWEEPS,
    SweepPoint,
    run_named_sweep,
    run_sweep,
    sweep_table,
)

__all__ = [
    "CANNED_SWEEPS",
    "CellSpec",
    "DEFAULT_INSTRUCTIONS",
    "DEFAULT_WARMUP",
    "ExperimentMatrix",
    "KEY_SCHEMA",
    "MODEL_VERSION",
    "SimSpec",
    "Table",
    "all_workloads",
    "evaluation_workloads",
    "figures",
    "gmean",
    "gmean_percent_delta",
    "percent_delta",
    "print_progress",
    "render",
    "resolve_jobs",
    "run_named_sweep",
    "run_sweep",
    "simulate_cells",
    "simulate_configs",
    "sweep_table",
    "SweepPoint",
    "write_report",
]
