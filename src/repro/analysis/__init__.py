"""Experiment harness: run matrix, per-figure extractors, reporting."""

from . import figures
from .experiments import (
    DEFAULT_INSTRUCTIONS,
    DEFAULT_WARMUP,
    MODEL_VERSION,
    ExperimentMatrix,
    all_workloads,
    evaluation_workloads,
)
from .metrics import gmean, gmean_percent_delta, percent_delta
from .report import Table, render, write_report
from .sweeps import (
    CANNED_SWEEPS,
    SweepPoint,
    run_named_sweep,
    run_sweep,
    sweep_table,
)

__all__ = [
    "CANNED_SWEEPS",
    "DEFAULT_INSTRUCTIONS",
    "DEFAULT_WARMUP",
    "ExperimentMatrix",
    "MODEL_VERSION",
    "Table",
    "all_workloads",
    "evaluation_workloads",
    "figures",
    "gmean",
    "gmean_percent_delta",
    "percent_delta",
    "render",
    "run_named_sweep",
    "run_sweep",
    "sweep_table",
    "SweepPoint",
    "write_report",
]
