"""Experiment matrix: the shared (workload x configuration) result store.

Every figure and table of the paper is derived from simulations of the
same named configurations (``repro.config.CONFIG_BUILDERS``) over the
SPEC06-like suite.  :class:`ExperimentMatrix` runs each cell once, keeps
results in memory, and persists them as JSON so repeated benchmark runs
(or partial reruns) do not repeat simulations.

Cache invalidation follows two rules:

* ``MODEL_VERSION`` is a model salt — bump it whenever simulator
  behaviour changes so stale results are discarded wholesale.
* ``KEY_SCHEMA`` versions the cell-key format.  Keys embed every input
  that affects a cell's stats (workload, config, chain-stats variant,
  instruction budget, warmup budget, and — for sampled runs — the
  execution tier and its ramp/window/stride plan), so changing any
  budget addresses different cells rather than silently reusing stale
  ones.  Fully detailed cells keep the bare schema-2 key shape; only
  non-default tiers append a tier suffix.  Live-point (checkpointed)
  sampled cells further append ``.lp`` — their estimates carry the same
  accuracy contract but are not bit-identical to the plain serial
  two-level path.

Instruction budgets default to quick-but-meaningful runs for a
Python-hosted cycle-level simulator; override with the environment
variables ``REPRO_BENCH_INSTS`` / ``REPRO_BENCH_WARMUP`` for longer,
higher-fidelity sweeps.  Missing cells can be populated cores-wide with
:meth:`ExperimentMatrix.prefetch` (see :mod:`repro.analysis.parallel`).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Callable, Optional, Sequence

from ..config import (CONFIG_BUILDERS, SamplingConfig, build_named_config,
                      validate_share)
from ..core import simulate
from ..workloads import medium_high_names, workload_names

MODEL_VERSION = 4
KEY_SCHEMA = 3

DEFAULT_INSTRUCTIONS = int(os.environ.get("REPRO_BENCH_INSTS", "5000"))
DEFAULT_WARMUP = int(os.environ.get("REPRO_BENCH_WARMUP", "12000"))

# A cell address: (workload, config_name, chain_stats).
Cell = tuple[str, str, bool]


def tier_suffix(tier: str, ramp: int, window: int, stride: int,
                live_point: bool = False) -> str:
    """Key suffix for non-default execution tiers; empty for fully
    detailed cells so schema-2-shaped keys stay addressable.

    ``.lp`` marks live-point (checkpointed) cells: their estimates are
    statistically equivalent to plain two-level cells but not
    bit-identical (windows restart from restored snapshots), so they
    address different cache entries.  The fan-out width and store
    directory are *not* in the suffix — results are byte-identical
    across jobs and store temperature by construction.
    """
    if not tier or tier == "detailed":
        return ""
    lp = ".lp" if live_point else ""
    return f"/{tier}.r{ramp}.w{window}.s{stride}{lp}"


def cell_key(workload: str, config_name: str, chain_stats: bool,
             instructions: int, warmup: int, suffix: str = "") -> str:
    """The KEY_SCHEMA=3 cell key: every input that affects a cell's
    stats, shared verbatim by :class:`ExperimentMatrix`, the farm's
    result store, and remote clients (byte-equal keys are what make
    cross-host cache hits sound)."""
    variant = "+chains" if chain_stats else ""
    return (f"{workload}/{config_name}{variant}"
            f"/{instructions}/w{warmup}{suffix}")


def multicore_suffix(cores: int, share: str,
                     workloads: Sequence[str]) -> str:
    """Key suffix for multi-core cells; empty for ``cores <= 1`` so every
    existing single-core key stays byte-identical under KEY_SCHEMA=3.

    The suffix pins the full shared-system shape: core count, the share
    level (``llc,dram`` → ``llc+dram``), and the per-core workload list
    in core order (core order is semantic — it decides warm-up order and
    heap tie-breaks).
    """
    if cores <= 1:
        return ""
    return (f"/mc{cores}.{share.replace(',', '+')}."
            + "+".join(workloads))


class ExperimentMatrix:
    """Lazily-populated result matrix with a JSON disk cache."""

    def __init__(
        self,
        instructions: int = DEFAULT_INSTRUCTIONS,
        warmup: int = DEFAULT_WARMUP,
        cache_path: Optional[str | Path] = "results/experiments.json",
        trace_dir: Optional[str | Path] = None,
        sampling: Optional[SamplingConfig] = None,
        window_jobs: Optional[int] = None,
        checkpoint_dir: Optional[str | Path] = None,
    ) -> None:
        self.instructions = instructions
        self.warmup = warmup
        self.sampling = sampling
        if sampling is not None:
            sampling.validate()
        # Live-point mode for sampled matrices: a window fan-out width
        # and/or a warm-state store directory (argument beats
        # REPRO_CKPT_DIR; see repro.fastpath.checkpoint).  Sweep cells
        # sharing a cache/predictor geometry then restore warm state
        # from the store instead of re-fast-forwarding.
        from ..fastpath import CheckpointStore, resolve_checkpoint_dir
        self.window_jobs = window_jobs
        resolved = resolve_checkpoint_dir(
            str(checkpoint_dir) if checkpoint_dir else None)
        self.checkpoint_dir = resolved
        sampled = sampling is not None and sampling.is_sampled
        self._checkpointed = sampled and (window_jobs is not None
                                          or resolved is not None)
        self._ckpt_store = (CheckpointStore(resolved)
                            if self._checkpointed and resolved else None)
        self.cache_path = Path(cache_path) if cache_path else None
        # When set (or via REPRO_TRACE_DIR), every cell simulated
        # *in-process* also writes a Perfetto trace here.  Tracing is
        # cycle-identical, so traced cells stay cache-compatible with
        # untraced ones; cells filled by prefetch() workers are not
        # traced (the observability layer is per-processor, in-process).
        if trace_dir is None:
            trace_dir = os.environ.get("REPRO_TRACE_DIR") or None
        self.trace_dir = Path(trace_dir) if trace_dir else None
        self._results: dict[str, dict[str, Any]] = {}
        self._dirty = False
        if self.cache_path is not None:
            self._results = dict(self._disk_cells())

    # -- keys ------------------------------------------------------------------

    @property
    def _tier_suffix(self) -> str:
        s = self.sampling
        if s is None or not s.is_sampled:
            return ""
        return tier_suffix(s.tier, s.ramp_instructions,
                           s.window_instructions, s.stride_instructions,
                           live_point=self._checkpointed)

    def _key(self, workload: str, config_name: str, chain_stats: bool) -> str:
        return cell_key(workload, config_name, chain_stats,
                        self.instructions, self.warmup, self._tier_suffix)

    def _lookup(self, workload: str, config_name: str,
                chain_stats: bool) -> Optional[dict[str, Any]]:
        """Cached stats for a cell, falling back to the ``+chains``
        variant for plain requests (a strict superset with identical
        timing behaviour, so no need to simulate the cell twice)."""
        cached = self._results.get(self._key(workload, config_name,
                                             chain_stats))
        if cached is None and not chain_stats:
            cached = self._results.get(self._key(workload, config_name, True))
        return cached

    def is_cached(self, workload: str, config_name: str,
                  chain_stats: bool = False) -> bool:
        return self._lookup(workload, config_name, chain_stats) is not None

    # -- access ------------------------------------------------------------------

    def get(self, workload: str, config_name: str,
            chain_stats: bool = False) -> dict[str, Any]:
        """Stats dict for one cell, simulating on first use."""
        if config_name not in CONFIG_BUILDERS:
            raise ValueError(f"unknown config {config_name!r}")
        cached = self._lookup(workload, config_name, chain_stats)
        if cached is not None:
            return cached
        config = build_named_config(config_name)
        if chain_stats:
            config.runahead.collect_chain_stats = True
        tracer = None
        if self.trace_dir is not None:
            from ..obs import Tracer
            tracer = Tracer()
        result = simulate(
            workload,
            config,
            max_instructions=self.instructions,
            warmup_instructions=self.warmup,
            config_name=config_name,
            attach=tracer.attach if tracer is not None else None,
            sampling=self.sampling,
            checkpoints=self._checkpoint_plan(),
        )
        stats = result.stats.to_dict()
        if result.sampling is not None:
            stats["sampling"] = _cacheable_sampling(result.sampling)
        if tracer is not None:
            self._persist_trace(workload, config_name, chain_stats, tracer)
        self.store(workload, config_name, chain_stats, stats)
        return stats

    def get_multicore(self, workloads: Sequence[str], config_name: str,
                      share: str = "llc,dram") -> dict[str, Any]:
        """Stats dict for one multi-core cell, simulating on first use.

        ``workloads`` is the per-core workload list in core order (the
        order is part of the key — it fixes warm-up order and heap
        tie-breaks, so permutations are different cells).  Every core
        runs the same named config.  The payload is
        :meth:`repro.multicore.MulticoreResult.to_dict`:
        ``{"per_core": [stats, ...], "shared": {...}}``.

        Multi-core cells are detailed-tier only — the sampled tiers'
        fast-forward/window machinery checkpoints a single processor and
        cannot snapshot a shared hierarchy (see
        :class:`~repro.memory.SharedHierarchyError`).
        """
        if config_name not in CONFIG_BUILDERS:
            raise ValueError(f"unknown config {config_name!r}")
        if self.sampling is not None and self.sampling.is_sampled:
            raise ValueError(
                "multi-core cells are detailed-tier only; build the "
                "matrix without a sampled SamplingConfig")
        share = validate_share(share)
        workload_list = [str(w) for w in workloads]
        cores = len(workload_list)
        if cores < 2:
            raise ValueError(
                "get_multicore() needs >= 2 workloads; single-core "
                "cells go through get()")
        key = cell_key(workload_list[0], config_name, False,
                       self.instructions, self.warmup,
                       multicore_suffix(cores, share, workload_list))
        cached = self._results.get(key)
        if cached is not None:
            return cached
        from ..multicore import simulate_multicore
        result = simulate_multicore(
            workload_list,
            cores=cores,
            configs=[config_name] * cores,
            share=share,
            max_instructions=self.instructions,
            warmup_instructions=self.warmup,
        )
        payload = result.to_dict()
        self._results[key] = payload
        self._dirty = True
        return payload

    def _checkpoint_plan(self):
        """A fresh :class:`~repro.fastpath.CheckpointPlan` sharing the
        matrix's store (timings are per-run, the store is per-matrix),
        or ``None`` when live-point mode is off."""
        if not self._checkpointed:
            return None
        from ..fastpath import CheckpointPlan
        return CheckpointPlan(jobs=max(1, self.window_jobs or 1),
                              store=self._ckpt_store)

    def _persist_trace(self, workload: str, config_name: str,
                       chain_stats: bool, tracer) -> Path:
        from ..obs import write_perfetto

        self.trace_dir.mkdir(parents=True, exist_ok=True)
        key = self._key(workload, config_name, chain_stats)
        path = self.trace_dir / (key.replace("/", "_") + ".perfetto.json")
        return write_perfetto(path, tracer.trace,
                              metadata={"workload": workload,
                                        "config": config_name,
                                        "cell": key})

    def store(self, workload: str, config_name: str, chain_stats: bool,
              stats: dict[str, Any]) -> None:
        """Record a completed cell (e.g. merged back from a worker)."""
        self._results[self._key(workload, config_name, chain_stats)] = stats
        self._dirty = True

    def ipc(self, workload: str, config_name: str) -> float:
        return self.get(workload, config_name)["ipc"]

    def speedup_pct(self, workload: str, config_name: str,
                    baseline: str = "baseline") -> float:
        base = self.ipc(workload, baseline)
        return 100.0 * (self.ipc(workload, config_name) / base - 1.0) if base else 0.0

    # -- bulk helpers ---------------------------------------------------------------

    def missing_cells(self, cells: Sequence[Cell]) -> list[Cell]:
        """The subset of ``cells`` that would need a simulation.

        Deduplicates, drops cells already cached, and drops a plain cell
        whenever its ``+chains`` superset is also requested (the superset
        satisfies both).
        """
        wanted: dict[tuple[str, str], bool] = {}
        for workload, config_name, chain_stats in cells:
            pair = (workload, config_name)
            wanted[pair] = wanted.get(pair, False) or bool(chain_stats)
        missing = []
        for (workload, config_name), chain_stats in wanted.items():
            if not self.is_cached(workload, config_name, chain_stats):
                missing.append((workload, config_name, chain_stats))
        return missing

    def prefetch(self, cells: Sequence[Cell],
                 jobs: Optional[int] = None,
                 progress: Optional[Callable[[Cell, int, int], None]] = None,
                 ) -> int:
        """Simulate every missing cell, fanning out across processes.

        Results are merged back and flushed to disk in one atomic save.
        Returns the number of cells simulated.  Parallel runs produce
        byte-identical stats to serial ones — workers execute the exact
        same deterministic simulation, and the dicts round-trip through
        pickle unchanged.
        """
        from .parallel import CellSpec, simulate_cells

        missing = self.missing_cells(cells)
        if not missing:
            return 0
        s = self.sampling
        if s is not None and s.is_sampled:
            tier_fields = (s.tier, s.ramp_instructions,
                           s.window_instructions, s.stride_instructions)
        else:
            tier_fields = ("detailed", 0, 0, 0)
        if self._checkpointed:
            # Workers reopen the shared store by path; content-addressed
            # atomic writes make concurrent savers safe, and once one
            # cell of a geometry has populated the chain, every later
            # cell restores instead of re-fast-forwarding.
            ckpt_fields = (max(1, self.window_jobs or 1),
                           self.checkpoint_dir or "")
        else:
            ckpt_fields = (0, "")
        specs = [CellSpec(w, c, chains, self.instructions, self.warmup,
                          *tier_fields, *ckpt_fields)
                 for w, c, chains in missing]
        stats_list = simulate_cells(specs, jobs=jobs, progress=progress)
        for (workload, config_name, chain_stats), stats in zip(missing,
                                                               stats_list):
            self.store(workload, config_name, chain_stats, stats)
        self.save()
        return len(missing)

    def run_suite(self, config_names: list[str],
                  workloads: Optional[list[str]] = None,
                  chain_stats: bool = False,
                  jobs: Optional[int] = None) -> None:
        """Populate a block of cells (and flush the cache once).

        With ``jobs`` > 1 the missing cells are simulated in worker
        processes; the result is identical to a serial run.
        """
        if workloads is None:
            workloads = medium_high_names()
        cells = [(w, c, chain_stats)
                 for w in workloads for c in config_names]
        self.prefetch(cells, jobs=jobs)
        for workload, config_name, chain_stats_ in cells:
            self.get(workload, config_name, chain_stats=chain_stats_)
        self.save()

    # -- persistence -------------------------------------------------------------------

    def _disk_cells(self) -> dict[str, dict[str, Any]]:
        """The on-disk result cells, or ``{}`` when the file is absent,
        unreadable, or addressed by a stale model version / key schema
        (stale cells are discarded wholesale — the current schema wins)."""
        try:
            payload = json.loads(self.cache_path.read_text())
        except (OSError, json.JSONDecodeError):
            return {}
        if (not isinstance(payload, dict)
                or payload.get("model_version") != MODEL_VERSION
                or payload.get("key_schema") != KEY_SCHEMA):
            return {}
        results = payload.get("results", {})
        return results if isinstance(results, dict) else {}

    def save(self) -> None:
        if self.cache_path is None or not self._dirty:
            return
        self.cache_path.parent.mkdir(parents=True, exist_ok=True)
        # Concurrent-writer merge: another process sharing this
        # cache_path may have flushed cells since our load — writing the
        # whole file from our stale in-memory view would silently drop
        # them (last-writer-wins).  Re-read the on-disk payload under
        # the temp-file dance and fold its cells in; our own cells win
        # per key (equal keys address equal deterministic results, and
        # stale-schema payloads are dropped wholesale by _disk_cells).
        # A racing writer can still land between this read and the
        # replace below, but the exposure shrinks from the whole matrix
        # run to the serialization itself — and every writer merges, so
        # a lost cell costs one re-simulation, never a wrong result.
        merged = self._disk_cells()
        merged.update(self._results)
        self._results = merged
        payload = {
            "model_version": MODEL_VERSION,
            "key_schema": KEY_SCHEMA,
            "instructions": self.instructions,
            "warmup": self.warmup,
            "results": self._results,
        }
        text = json.dumps(payload)
        # Write-then-rename so an interrupt mid-write can never leave a
        # truncated cache behind; the pid suffix keeps concurrent savers
        # (parallel suite runs sharing one path) off each other's temp.
        tmp = self.cache_path.with_name(
            f"{self.cache_path.name}.tmp.{os.getpid()}")
        try:
            tmp.write_text(text)
            os.replace(tmp, self.cache_path)
        finally:
            tmp.unlink(missing_ok=True)
        self._dirty = False


#: Host-environment keys scrubbed from cached sampling metadata (the
#: same set ``repro.fastpath.stats_fingerprint`` drops): wall-clock,
#: the fast-forward lane tag, the window fan-out width, and the
#: checkpoint-store temperature.  None of these affect simulated state,
#: and all of them vary run-to-run on the host.
_HOST_SAMPLING_KEYS = frozenset(
    {"ff_lane", "jobs", "store_hits", "store_misses"})


def _cacheable_sampling(meta: dict[str, Any]) -> dict[str, Any]:
    """Sampling metadata minus host-environment fields (recursively), so
    cached cells stay deterministic: parallel == serial, warm store ==
    cold store, rerun == cached."""
    def scrub(value):
        if isinstance(value, dict):
            return {k: scrub(v) for k, v in value.items()
                    if "seconds" not in k and k not in _HOST_SAMPLING_KEYS}
        return value
    return scrub(meta)


def all_workloads() -> list[str]:
    return workload_names()


def evaluation_workloads() -> list[str]:
    """The medium+high intensity set the paper's evaluation focuses on."""
    return medium_high_names()
