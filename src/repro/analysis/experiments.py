"""Experiment matrix: the shared (workload x configuration) result store.

Every figure and table of the paper is derived from simulations of the
same named configurations (``repro.config.CONFIG_BUILDERS``) over the
SPEC06-like suite.  :class:`ExperimentMatrix` runs each cell once, keeps
results in memory, and persists them as JSON so repeated benchmark runs
(or partial reruns) do not repeat simulations.

The cache key includes a model-version salt — bump ``MODEL_VERSION``
whenever simulator behaviour changes so stale results are discarded.

Instruction budgets default to quick-but-meaningful runs for a
Python-hosted cycle-level simulator; override with the environment
variables ``REPRO_BENCH_INSTS`` / ``REPRO_BENCH_WARMUP`` for longer,
higher-fidelity sweeps.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Optional

from ..config import CONFIG_BUILDERS, build_named_config
from ..core import simulate
from ..workloads import medium_high_names, workload_names

MODEL_VERSION = 3

DEFAULT_INSTRUCTIONS = int(os.environ.get("REPRO_BENCH_INSTS", "5000"))
DEFAULT_WARMUP = int(os.environ.get("REPRO_BENCH_WARMUP", "12000"))


class ExperimentMatrix:
    """Lazily-populated result matrix with a JSON disk cache."""

    def __init__(
        self,
        instructions: int = DEFAULT_INSTRUCTIONS,
        warmup: int = DEFAULT_WARMUP,
        cache_path: Optional[str | Path] = "results/experiments.json",
    ) -> None:
        self.instructions = instructions
        self.warmup = warmup
        self.cache_path = Path(cache_path) if cache_path else None
        self._results: dict[str, dict[str, Any]] = {}
        self._dirty = False
        if self.cache_path is not None and self.cache_path.exists():
            try:
                payload = json.loads(self.cache_path.read_text())
            except (OSError, json.JSONDecodeError):
                payload = {}
            if payload.get("model_version") == MODEL_VERSION:
                self._results = payload.get("results", {})

    # -- keys ------------------------------------------------------------------

    def _key(self, workload: str, config_name: str, chain_stats: bool) -> str:
        suffix = "+chains" if chain_stats else ""
        return f"{workload}/{config_name}{suffix}/{self.instructions}"

    # -- access ------------------------------------------------------------------

    def get(self, workload: str, config_name: str,
            chain_stats: bool = False) -> dict[str, Any]:
        """Stats dict for one cell, simulating on first use."""
        if config_name not in CONFIG_BUILDERS:
            raise ValueError(f"unknown config {config_name!r}")
        key = self._key(workload, config_name, chain_stats)
        cached = self._results.get(key)
        if cached is not None:
            return cached
        config = build_named_config(config_name)
        if chain_stats:
            config.runahead.collect_chain_stats = True
        result = simulate(
            workload,
            config,
            max_instructions=self.instructions,
            warmup_instructions=self.warmup,
            config_name=config_name,
        )
        stats = result.stats.to_dict()
        self._results[key] = stats
        self._dirty = True
        return stats

    def ipc(self, workload: str, config_name: str) -> float:
        return self.get(workload, config_name)["ipc"]

    def speedup_pct(self, workload: str, config_name: str,
                    baseline: str = "baseline") -> float:
        base = self.ipc(workload, baseline)
        return 100.0 * (self.ipc(workload, config_name) / base - 1.0) if base else 0.0

    # -- bulk helpers ---------------------------------------------------------------

    def run_suite(self, config_names: list[str],
                  workloads: Optional[list[str]] = None,
                  chain_stats: bool = False) -> None:
        """Populate a block of cells (and flush the cache once)."""
        if workloads is None:
            workloads = medium_high_names()
        for workload in workloads:
            for config_name in config_names:
                self.get(workload, config_name, chain_stats=chain_stats)
        self.save()

    # -- persistence -------------------------------------------------------------------

    def save(self) -> None:
        if self.cache_path is None or not self._dirty:
            return
        self.cache_path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "model_version": MODEL_VERSION,
            "instructions": self.instructions,
            "results": self._results,
        }
        self.cache_path.write_text(json.dumps(payload))
        self._dirty = False


def all_workloads() -> list[str]:
    return workload_names()


def evaluation_workloads() -> list[str]:
    """The medium+high intensity set the paper's evaluation focuses on."""
    return medium_high_names()
