"""Process-parallel simulation fan-out.

The experiment matrix, the sweeps, and the CLI all reduce to the same
shape of work: a list of independent, deterministic simulations whose
results are plain JSON-able stats dicts.  This module fans that list out
over a :class:`~concurrent.futures.ProcessPoolExecutor` (the simulator is
pure Python, so threads would serialize on the GIL) and returns results
in submission order.

Two spec types cover every caller:

* :class:`CellSpec` — a named-configuration matrix cell.  Workers rebuild
  the config from its name, so nothing heavier than a tuple of strings
  and ints crosses the process boundary on the way in.
* :class:`SimSpec` — an explicit :class:`~repro.config.SystemConfig`
  (pickled to the worker), for sweep points whose configs have no name.

Determinism: a worker runs exactly the code a serial caller would, the
simulator uses no global randomness, and the stats dicts round-trip
through pickle unchanged — so parallel results are byte-identical to
serial ones.  ``jobs=1`` (or a single spec) short-circuits to in-process
execution with no pool overhead.

Worker count resolution (:func:`resolve_jobs`): explicit argument, else
``REPRO_BENCH_JOBS``, else ``os.cpu_count()``.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Any, Callable, NamedTuple, Optional, Sequence


class CellSpec(NamedTuple):
    """One experiment-matrix cell: a named config on a named workload.

    ``tier`` selects the execution tier (``"detailed"`` or
    ``"two-level"``); the ramp/window/stride plan only matters for
    sampled cells and stays zero otherwise, so detailed specs pickle
    and compare exactly as before.  ``window_jobs``/``checkpoint_dir``
    (both falsy by default) switch sampled cells into live-point mode:
    the worker builds a :class:`~repro.fastpath.CheckpointPlan` and the
    cell's warm state round-trips through the shared on-disk store.

    ``cores`` > 1 makes the spec a multi-core cell (detailed tier
    only): ``workloads`` names the per-core workload list
    (comma-joined, core order), ``share`` the share level, and the
    worker runs :func:`repro.multicore.simulate_multicore` with
    ``config_name`` on every core.  Single-core specs keep all three
    fields at their defaults, so their pickled shape and equality are
    unchanged.
    """

    workload: str
    config_name: str
    chain_stats: bool
    instructions: int
    warmup: int
    tier: str = "detailed"
    ramp: int = 0
    window: int = 0
    stride: int = 0
    window_jobs: int = 0
    checkpoint_dir: str = ""
    cores: int = 1
    share: str = "llc,dram"
    workloads: str = ""

    @property
    def label(self) -> str:
        if self.cores > 1:
            return (f"{self.workloads or self.workload}/{self.config_name}"
                    f" [mc{self.cores}:{self.share}]")
        suffix = "+chains" if self.chain_stats else ""
        tier = f" [{self.tier}]" if self.tier != "detailed" else ""
        return f"{self.workload}/{self.config_name}{suffix}{tier}"


class SimSpec(NamedTuple):
    """One ad-hoc simulation: an explicit config on a named workload."""

    workload: str
    config: Any  # a SystemConfig; pickled to the worker
    instructions: int
    warmup: int
    name: str = ""

    @property
    def label(self) -> str:
        return f"{self.workload}/{self.name}" if self.name else self.workload


class WindowSpec(NamedTuple):
    """One measured window of a checkpointed two-tier run: a warm-state
    snapshot plus the ramp/window burst to run from it.

    The snapshot (a ``Processor.snapshot()`` dict) and the program/config
    pickle to the worker; the worker rebuilds a fresh processor, restores
    the warm state, and measures the burst.  Workers return raw
    ``SimStats`` field payloads so the engine can merge them — windows
    are independent by construction, which is what makes the serial and
    parallel orderings byte-identical.
    """

    program: Any   # a Program; pickled to the worker
    config: Any    # a SystemConfig; pickled to the worker
    snapshot: dict
    ramp: int
    window: int
    max_cycles: Optional[int] = None


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: argument, else ``REPRO_BENCH_JOBS``, else cpu count."""
    if jobs is None:
        jobs = int(os.environ.get("REPRO_BENCH_JOBS", "0")) or (
            os.cpu_count() or 1)
    return max(1, int(jobs))


def simulate_cell(spec: CellSpec) -> dict[str, Any]:
    """Simulate one matrix cell (the worker entry point — also the farm
    service's default runner, so cells computed remotely are byte-
    identical to local ones)."""
    from ..config import SamplingConfig, build_named_config
    from ..core import simulate

    if spec.cores > 1:
        if spec.tier != "detailed":
            raise ValueError(
                "multi-core cells are detailed-tier only "
                f"(got tier={spec.tier!r})")
        from ..multicore import simulate_multicore
        workload_list = ((spec.workloads or spec.workload).split(",")
                         if (spec.workloads or spec.workload) else [])
        result = simulate_multicore(
            workload_list,
            cores=spec.cores,
            configs=[spec.config_name] * spec.cores,
            share=spec.share,
            max_instructions=spec.instructions,
            warmup_instructions=spec.warmup,
        )
        return result.to_dict()

    config = build_named_config(spec.config_name)
    if spec.chain_stats:
        config.runahead.collect_chain_stats = True
    sampling = None
    if spec.tier != "detailed":
        sampling = SamplingConfig(
            tier=spec.tier, ramp_instructions=spec.ramp,
            window_instructions=spec.window, stride_instructions=spec.stride)
    checkpoints = None
    if sampling is not None and (spec.window_jobs or spec.checkpoint_dir):
        from ..fastpath import CheckpointPlan, CheckpointStore
        store = (CheckpointStore(spec.checkpoint_dir)
                 if spec.checkpoint_dir else None)
        checkpoints = CheckpointPlan(jobs=max(1, spec.window_jobs or 1),
                                     store=store)
    result = simulate(
        spec.workload,
        config,
        max_instructions=spec.instructions,
        warmup_instructions=spec.warmup,
        config_name=spec.config_name,
        sampling=sampling,
        checkpoints=checkpoints,
    )
    stats = result.stats.to_dict()
    if result.sampling is not None:
        from .experiments import _cacheable_sampling
        stats["sampling"] = _cacheable_sampling(result.sampling)
    return stats


def _simulate_spec(spec: SimSpec) -> dict[str, Any]:
    from ..core import simulate

    result = simulate(
        spec.workload,
        spec.config,
        max_instructions=spec.instructions,
        warmup_instructions=spec.warmup,
        config_name=spec.name,
    )
    return result.stats.to_dict()


def _simulate_window(spec: WindowSpec) -> dict[str, Any]:
    """Run one detailed ramp+window burst from a warm-state snapshot.

    Runs identically in-process (``jobs=1``) and in a pool worker; the
    returned payload carries the burst's full ``SimStats`` fields plus
    the measured-window deltas the sampled estimators need.
    """
    import time

    from ..core.processor import Processor

    t0 = time.perf_counter()
    proc = Processor(spec.program, spec.config)
    proc.restore(spec.snapshot)
    now0 = proc.now
    committed0 = proc.committed
    proc.run(spec.ramp, max_cycles=spec.max_cycles)
    c0 = proc.now
    i0 = proc.committed
    miss0 = proc.hierarchy.demand_llc_misses()
    proc.run(spec.window, max_cycles=spec.max_cycles)
    done = proc.committed - i0
    stats = {name: getattr(proc.stats, name)
             for name in type(proc.stats).__dataclass_fields__}
    # Each window clock starts at the snapshot's `now`; report deltas so
    # merged cycles are a sum of burst lengths, not absolute end times.
    stats["cycles"] = proc.now - now0
    return {
        "stats": stats,
        "committed": proc.committed - committed0,
        "m_cycles": proc.now - c0,
        "m_insts": done,
        "m_misses": proc.hierarchy.demand_llc_misses() - miss0,
        "halted": proc.halted,
        "host_seconds": time.perf_counter() - t0,
    }


def _fan_out(
    fn: Callable[[Any], dict[str, Any]],
    specs: Sequence[Any],
    jobs: Optional[int],
    progress: Optional[Callable[[Any, int, int], None]],
) -> list[dict[str, Any]]:
    """Map ``fn`` over ``specs``, preserving order; ``progress`` fires as
    each spec completes (in completion order) with (spec, done, total)."""
    specs = list(specs)
    total = len(specs)
    jobs = min(resolve_jobs(jobs), total) if total else 1
    results: list[Optional[dict[str, Any]]] = [None] * total
    if jobs <= 1:
        for index, spec in enumerate(specs):
            results[index] = fn(spec)
            if progress is not None:
                progress(spec, index + 1, total)
        return results  # type: ignore[return-value]
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = {pool.submit(fn, spec): index
                   for index, spec in enumerate(specs)}
        done = 0
        for future in as_completed(futures):
            index = futures[future]
            results[index] = future.result()
            done += 1
            if progress is not None:
                progress(specs[index], done, total)
    return results  # type: ignore[return-value]


def simulate_cells(
    cells: Sequence[CellSpec],
    jobs: Optional[int] = None,
    progress: Optional[Callable[[CellSpec, int, int], None]] = None,
) -> list[dict[str, Any]]:
    """Simulate matrix cells across processes; stats dicts in cell order."""
    return _fan_out(simulate_cell, cells, jobs, progress)


def simulate_windows(
    specs: Sequence[WindowSpec],
    jobs: Optional[int] = None,
    progress: Optional[Callable[[WindowSpec, int, int], None]] = None,
) -> list[dict[str, Any]]:
    """Run measured windows across processes, in window order.

    ``jobs=1`` runs the exact same worker function in-process, so a
    serial run is the byte-identical reference for any parallel one.
    """
    return _fan_out(_simulate_window, specs, jobs, progress)


def simulate_configs(
    specs: Sequence[SimSpec],
    jobs: Optional[int] = None,
    progress: Optional[Callable[[SimSpec, int, int], None]] = None,
) -> list[dict[str, Any]]:
    """Simulate explicit-config specs across processes, in spec order."""
    return _fan_out(_simulate_spec, specs, jobs, progress)


def print_progress(spec: Any, done: int, total: int) -> None:
    """Default progress line: ``[ 12/60] mcf/rab_cc+chains``."""
    width = len(str(total))
    print(f"[{done:{width}d}/{total}] {spec.label}", flush=True)
