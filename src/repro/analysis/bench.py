"""Simulator-throughput benchmark: KIPS as a first-class tracked metric.

The experiment matrix measures what the *simulated core* does; this module
measures how fast the *simulator itself* runs, in KIPS (committed
kilo-instructions per host second).  ``repro bench-throughput`` runs a
small workload x mode grid, writes ``BENCH_sim_throughput.json`` and can
gate CI on a regression against a committed baseline.

Timing methodology: each cell builds a fresh workload + processor, runs
the functional warm-up (timed separately — it is not cycle-level work)
and then times the simulation alone with ``perf_counter``.  The best
of ``reps`` repetitions is reported, which filters scheduler noise while
staying cheap enough for CI.

Tier accounting (pinned by tests/test_bench_throughput.py):

* ``warmup_seconds`` is always reported separately and never enters any
  KIPS figure — warm-up is functional work, not simulation.
* Detailed cells: ``kips`` = committed instructions / detailed-run
  seconds, exactly as before.
* Two-level cells: ``kips`` (the headline rate) = instructions advanced
  through *both* tiers / (detailed + fast-forward seconds), while
  ``kips_detailed`` = detailed-burst instructions / detailed seconds
  alone — fast-forward time is never folded into the detailed-tier
  rate.  Two-level cells run a ``TWO_LEVEL_SCALE``-times larger budget
  so several sampling strides fit; KIPS is a rate, so the
  ``two_level_speedup`` section compares rates across unequal budgets.

Fast-forward lanes (schema 3): every cell records which lane
(``interp`` or ``jit``) ran the functional tier; two-level cells break
out ``detailed_seconds``/``ff_seconds``/``translate_seconds``
individually (block-translation host time is part of the jit lane's
``ff_seconds``, not hidden).  With ``ff_lanes`` spanning both lanes the
two-level grid is measured once per lane and the document carries a
``jit_speedup`` section: interp ``ff_seconds`` over jit ``ff_seconds``
per cell, plus the geomean.  Only primary-lane cells (``ff_lanes[0]``)
enter ``geomean_kips`` and ``two_level_speedup``, keeping those series
comparable across schema revisions.

Checkpoints and parallel windows (schema 4): the host record gains
``usable_cpus`` (CPU-affinity aware — ``cpu_count`` alone overstates a
cgroup-restricted container) and ``load_avg``.  With ``window_jobs``
set, the document carries a ``window_parallel_speedup`` section: each
two-level cell is measured in three live-point phases against one
shared checkpoint store — ``populate`` (store as found; cold for the
first cell of each workload, cross-cell reuse after), ``warm_serial``
(every stride restored from the store, ``jobs=1``) and
``warm_parallel`` (``jobs=window_jobs``) — with per-phase
``ff``/``translate``/``checkpoint``/``restore``/``detailed`` second
breakdowns and store hit/miss counts.  The headline ratio is the legacy
serial two-level ``sim_seconds`` over the warm-parallel wall clock;
live-point phase results are byte-identical across phases and job
counts by construction, so the ratios compare equal work.
"""

from __future__ import annotations

import json
import math
import os
import platform
import time
from pathlib import Path
from typing import Any, Optional, Sequence

from ..config import SamplingConfig, build_named_config
from ..core.processor import Processor
from ..fastpath import FF_LANES, resolve_ff_lane
from ..workloads import build_workload

# Benchmark mode -> named configuration.  "normal" exercises the plain
# out-of-order fast path, "rab" additionally exercises chain generation,
# the runahead buffer loop, and the runahead cache.
MODES: dict[str, str] = {
    "normal": "baseline",
    "rab": "rab_cc",
}

# Default suite: the memory-intensive kernels that dominate figure runs
# (two pointer-chasing gathers, two streams) — the workloads where both
# the normal and runahead-buffer hot paths actually get exercised.
DEFAULT_WORKLOADS = ("mcf", "milc", "libquantum", "lbm")

DEFAULT_INSTRUCTIONS = 20_000
DEFAULT_WARMUP = 12_000
DEFAULT_REPS = 2

# Two-level cells simulate this many times the detailed budget so the
# run spans several sampling strides (KIPS is a rate; see module doc).
TWO_LEVEL_SCALE = 10

SCHEMA = 4

DEFAULT_TIERS = ("detailed",)

# CLI/bench lane selectors: the concrete lanes plus "both", which
# measures the two-level grid once per lane and adds ``jit_speedup``.
FF_LANE_CHOICES = (*FF_LANES, "both")


def _time_cell(workload: str, config_name: str, instructions: int,
               warmup: int,
               plan: Optional[SamplingConfig] = None,
               ff_lane: Optional[str] = None,
               checkpoints=None) -> dict[str, Any]:
    """One timed simulation: returns KIPS plus raw timing components.

    ``checkpoints`` (a :class:`~repro.fastpath.checkpoint.CheckpointPlan`)
    runs a sampled cell in live-point mode: warm-up goes through the
    checkpoint store and the engine checkpoints/fans out the windows.
    ``sim_seconds`` is then the post-warm-up *wall clock* (checkpoint,
    restore and fan-out overheads included — the honest figure a user
    waits for), where the legacy sampled path reports detailed+ff host
    time.
    """
    built = build_workload(workload)
    config = build_named_config(config_name)
    processor = Processor(built.program, config, memory=built.memory,
                         init_regs=built.init_regs)
    processor.ff_lane = ff_lane
    sampled = plan is not None and plan.is_sampled
    warm_times = None
    t0 = time.perf_counter()
    if checkpoints is not None and sampled:
        from ..fastpath import restore_or_warm_up
        warm_times = restore_or_warm_up(processor, warmup,
                                        store=checkpoints.store)
    elif warmup > 0:
        processor.warm_up(warmup)
    t1 = time.perf_counter()
    if sampled:
        from ..fastpath import run_two_tier
        meta = run_two_tier(processor, plan, instructions,
                            checkpoints=checkpoints)
        stats = processor.stats
        detailed_seconds = meta["detailed_seconds"]
        ff_seconds = meta["fast_forward_seconds"]
        # Legacy sampled cells read the clock only around warm-up (a
        # pinned accounting contract); checkpointed cells report the
        # post-warm-up wall clock, overheads included.
        sim_seconds = (time.perf_counter() - t1 if checkpoints is not None
                       else detailed_seconds + ff_seconds)
        advanced = meta["instructions_advanced"]
        cell = {
            "tier": plan.tier,
            "ff_lane": meta.get("ff_lane", resolve_ff_lane(ff_lane)),
            "committed": stats.committed_insts,
            "advanced": advanced,
            "cycles": stats.cycles,
            "warmup_seconds": round(t1 - t0, 6),
            "sim_seconds": round(sim_seconds, 6),
            "detailed_seconds": round(detailed_seconds, 6),
            "ff_seconds": round(ff_seconds, 6),
            "translate_seconds": round(meta.get("translate_seconds", 0.0), 6),
            "kips": round(advanced / sim_seconds / 1000.0, 3)
            if sim_seconds else 0.0,
            "kips_detailed": round(
                stats.committed_insts / detailed_seconds / 1000.0, 3)
            if detailed_seconds else 0.0,
        }
        if checkpoints is not None:
            cp = meta["checkpoints"]
            wt = warm_times or {}
            # Warm-up store time folds into the cell's checkpoint/restore
            # totals so the phase breakdown covers the whole cell.
            cell.update({
                "checkpoint_seconds": round(
                    cp["checkpoint_seconds"]
                    + wt.get("checkpoint_seconds", 0.0), 6),
                "restore_seconds": round(
                    cp["restore_seconds"] + wt.get("restore_seconds", 0.0), 6),
                "ff_seconds": round(ff_seconds + wt.get("ff_seconds", 0.0), 6),
                "window_wall_seconds": round(cp["window_wall_seconds"], 6),
                "window_jobs": cp["jobs"],
                "checkpoint_count": cp["count"],
                "store_hits": cp["store_hits"],
                "store_misses": cp["store_misses"],
                "warmup_restored": bool(wt.get("restored")),
            })
        return cell
    stats = processor.run(instructions)
    t2 = time.perf_counter()
    sim_seconds = t2 - t1
    return {
        "tier": "detailed",
        "ff_lane": resolve_ff_lane(ff_lane),
        "committed": stats.committed_insts,
        "cycles": stats.cycles,
        "warmup_seconds": round(t1 - t0, 6),
        "sim_seconds": round(sim_seconds, 6),
        "kips": round(stats.committed_insts / sim_seconds / 1000.0, 3),
    }


def measure_cell(workload: str, mode: str, instructions: int = DEFAULT_INSTRUCTIONS,
                 warmup: int = DEFAULT_WARMUP, reps: int = DEFAULT_REPS,
                 plan: Optional[SamplingConfig] = None,
                 ff_lane: Optional[str] = None,
                 checkpoints=None) -> dict[str, Any]:
    """Best-of-``reps`` measurement of one (workload, mode, tier) cell.

    Checkpointed cells force ``reps=1``: the first rep populates the
    store, so a second rep would measure a different (warm) phase — the
    ``window_parallel_speedup`` section measures those phases explicitly
    instead.
    """
    config_name = MODES[mode]
    if checkpoints is not None:
        reps = 1
    best: Optional[dict[str, Any]] = None
    ff_best: Optional[float] = None
    for _ in range(max(1, reps)):
        sample = _time_cell(workload, config_name, instructions, warmup, plan,
                            ff_lane=ff_lane, checkpoints=checkpoints)
        if best is None or sample["kips"] > best["kips"]:
            best = sample
        if "ff_seconds" in sample:
            ff = sample["ff_seconds"]
            ff_best = ff if ff_best is None or ff < ff_best else ff_best
    assert best is not None
    if ff_best is not None:
        # Min across reps: the noise filter applied per timing component.
        # The lane-comparison section uses this, not the best-kips rep's
        # ff_seconds, so one slow scheduler quantum in an otherwise-fast
        # rep cannot skew the lane ratio.
        best["ff_seconds_best"] = round(ff_best, 6)
    best.update(workload=workload, mode=mode, config=config_name,
                instructions=instructions, warmup=warmup)
    return best


def host_info() -> dict[str, Any]:
    """Host record for the result document.

    ``cpu_count`` is the raw ``os.cpu_count()``; ``usable_cpus`` honours
    the scheduler affinity mask (cgroup/container CPU limits), which is
    the number that actually bounds window-parallel speedup.  Both are
    recorded so a reader can tell "small machine" from "restricted
    container".  ``load_avg`` captures competing load at measurement
    time (``None`` where the platform has no ``getloadavg``).
    """
    try:
        usable = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        usable = os.cpu_count() or 1
    try:
        load_avg = [round(x, 2) for x in os.getloadavg()]
    except (AttributeError, OSError):
        load_avg = None
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "usable_cpus": usable,
        "load_avg": load_avg,
    }


def geomean(values: Sequence[float]) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def _mode_key(mode: str, tier: str) -> str:
    """Geomean key: detailed keeps the bare mode name (schema-1 compat);
    other tiers get a ``mode/tier`` suffix."""
    return mode if tier == "detailed" else f"{mode}/{tier}"


def run_benchmark(workloads: Sequence[str] = DEFAULT_WORKLOADS,
                  modes: Sequence[str] = tuple(MODES),
                  instructions: int = DEFAULT_INSTRUCTIONS,
                  warmup: int = DEFAULT_WARMUP,
                  reps: int = DEFAULT_REPS,
                  tiers: Sequence[str] = DEFAULT_TIERS,
                  plan: Optional[SamplingConfig] = None,
                  ff_lanes: Optional[Sequence[str]] = None,
                  window_jobs: Optional[int] = None,
                  checkpoint_dir: Optional[str] = None,
                  progress=None) -> dict[str, Any]:
    """Measure the full grid and assemble the result document.

    ``tiers`` selects which execution tiers each (workload, mode) cell is
    measured under; with both tiers present the document also carries a
    ``two_level_speedup`` section (two-level KIPS over detailed KIPS, per
    cell and per-mode geomean).

    ``ff_lanes`` selects the fast-forward lane(s).  ``None`` resolves the
    session default (``REPRO_FF_LANE`` env, then ``"jit"``).  With more
    than one lane, two-level cells are measured once per lane and the
    document gains a ``jit_speedup`` section; ``ff_lanes[0]`` is the
    primary lane and the only one entering ``geomean_kips`` and
    ``two_level_speedup``.

    ``window_jobs`` (with ``"two-level"`` in ``tiers``) additionally
    measures the live-point phases against a checkpoint store
    (``checkpoint_dir`` or a throwaway temp dir) and adds the
    ``window_parallel_speedup`` section; see the module doc.
    """
    if plan is None:
        plan = SamplingConfig(tier="two-level")
    if ff_lanes is None:
        ff_lanes = (resolve_ff_lane(),)
    primary = ff_lanes[0]
    results = []
    for workload in workloads:
        for mode in modes:
            for tier in tiers:
                if tier == "detailed":
                    cells = [measure_cell(workload, mode, instructions,
                                          warmup, reps, ff_lane=primary)]
                else:
                    cells = [measure_cell(workload, mode,
                                          instructions * TWO_LEVEL_SCALE,
                                          warmup, reps, plan=plan,
                                          ff_lane=lane)
                             for lane in ff_lanes]
                for cell in cells:
                    results.append(cell)
                    if progress is not None:
                        progress(f"{workload:12s} {mode:7s} {tier:10s} "
                                 f"{cell.get('ff_lane', ''):6s} "
                                 f"{cell['kips']:8.1f} KIPS")
    primary_cells = [c for c in results
                     if c.get("ff_lane", primary) == primary]
    mode_keys = [_mode_key(mode, tier) for mode in modes for tier in tiers]
    by_mode = {
        key: round(geomean([c["kips"] for c in primary_cells
                            if _mode_key(c["mode"], c["tier"]) == key]), 3)
        for key in mode_keys
    }
    doc = {
        "schema": SCHEMA,
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "host": host_info(),
        "instructions": instructions,
        "warmup": warmup,
        "reps": reps,
        "tiers": list(tiers),
        "ff_lanes": list(ff_lanes),
        "results": results,
        "geomean_kips": {
            **by_mode,
            "overall": round(geomean([c["kips"] for c in primary_cells]), 3),
        },
    }
    if "two-level" in tiers:
        doc["sampling_plan"] = {
            "ramp_instructions": plan.ramp_instructions,
            "window_instructions": plan.window_instructions,
            "stride_instructions": plan.stride_instructions,
        }
    if "detailed" in tiers and "two-level" in tiers:
        doc["two_level_speedup"] = _two_level_speedup(primary_cells, modes)
    if len(set(ff_lanes)) > 1:
        doc["jit_speedup"] = _jit_speedup(results)
    if window_jobs and "two-level" in tiers:
        doc["window_parallel_speedup"] = _window_parallel_speedup(
            primary_cells, workloads, modes,
            instructions * TWO_LEVEL_SCALE, warmup, plan,
            jobs=window_jobs, checkpoint_dir=checkpoint_dir,
            ff_lane=primary, progress=progress)
    return doc


def _window_parallel_speedup(results: Sequence[dict[str, Any]],
                             workloads: Sequence[str],
                             modes: Sequence[str],
                             instructions: int, warmup: int,
                             plan: SamplingConfig, jobs: int,
                             checkpoint_dir: Optional[str],
                             ff_lane: Optional[str],
                             progress=None) -> dict[str, Any]:
    """Live-point phase measurements over one shared checkpoint store.

    Three phases per two-level cell — ``populate`` (store as found),
    ``warm_serial`` (``jobs=1``) and ``warm_parallel`` (``jobs=jobs``) —
    each with the full per-phase second breakdown.  All cells share the
    store, so later cells of a workload hit the checkpoints earlier
    cells of *any* mode wrote (warm state is runahead-config
    independent); the recorded hit/miss counts show that reuse.  The
    headline ratio divides the legacy serial cell's ``sim_seconds`` by
    the warm-parallel wall clock; ``warm_speedup`` isolates the store
    benefit at ``jobs=1``.  Phase ``ff_seconds`` includes warm-up
    fast-forward, which is exactly what the store eliminates.
    """
    import tempfile

    from ..fastpath import CheckpointPlan, CheckpointStore

    serial = {(c["workload"], c["mode"]): c["sim_seconds"]
              for c in results if c.get("tier") == "two-level"}
    phase_keys = ("sim_seconds", "ff_seconds", "translate_seconds",
                  "checkpoint_seconds", "restore_seconds",
                  "detailed_seconds", "store_hits", "store_misses",
                  "warmup_restored")

    def _phase(cell: dict[str, Any]) -> dict[str, Any]:
        return {k: cell[k] for k in phase_keys if k in cell}

    tmp = None
    if checkpoint_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-ckpt-")
        checkpoint_dir = tmp.name
    per_cell: dict[str, Any] = {}
    try:
        store = CheckpointStore(checkpoint_dir)
        phases = (("populate", 1), ("warm_serial", 1), ("warm_parallel", jobs))
        for workload in workloads:
            for mode in modes:
                cell: dict[str, Any] = {"phases": {}}
                for phase_name, phase_jobs in phases:
                    measured = measure_cell(
                        workload, mode, instructions, warmup, reps=1,
                        plan=plan, ff_lane=ff_lane,
                        checkpoints=CheckpointPlan(jobs=phase_jobs,
                                                   store=store))
                    cell["phases"][phase_name] = _phase(measured)
                    if progress is not None:
                        progress(f"{workload:12s} {mode:7s} "
                                 f"ckpt:{phase_name:13s} "
                                 f"{measured['sim_seconds']:8.3f}s")
                base = serial.get((workload, mode))
                warm = cell["phases"]["warm_serial"]["sim_seconds"]
                par = cell["phases"]["warm_parallel"]["sim_seconds"]
                cell["serial_seconds"] = base
                if base:
                    cell["warm_speedup"] = round(base / warm, 2) if warm else 0.0
                    cell["speedup"] = round(base / par, 2) if par else 0.0
                per_cell[f"{workload}/{mode}"] = cell
    finally:
        if tmp is not None:
            tmp.cleanup()
    return {
        "metric": ("legacy serial two-level sim_seconds / "
                   "warm parallel live-point sim_seconds"),
        "jobs": jobs,
        "usable_cpus": host_info()["usable_cpus"],
        "store_dir": None if tmp is not None else str(checkpoint_dir),
        "per_cell": per_cell,
        "geomean_speedup": round(geomean(
            [c["speedup"] for c in per_cell.values() if "speedup" in c]), 2),
        "geomean_warm_speedup": round(geomean(
            [c["warm_speedup"] for c in per_cell.values()
             if "warm_speedup" in c]), 2),
    }


def _jit_speedup(results: Sequence[dict[str, Any]]) -> dict[str, Any]:
    """Interp-lane over jit-lane fast-forward seconds, per two-level cell.

    The ratio compares the lanes on identical work: same workload, mode,
    budget and sampling plan, so ``ff_seconds`` (which includes the jit
    lane's block-translation time) is directly comparable.  Each side
    uses its min-of-reps (``ff_seconds_best``) so the ratio is between
    the lanes' least-noisy measurements.
    """

    def _ff(cell: dict[str, Any]) -> float:
        return cell.get("ff_seconds_best", cell.get("ff_seconds", 0.0))

    interp = {(c["workload"], c["mode"]): _ff(c)
              for c in results
              if c["tier"] == "two-level" and c.get("ff_lane") == "interp"}
    per_cell = {}
    for c in results:
        if c["tier"] != "two-level" or c.get("ff_lane") != "jit":
            continue
        base = interp.get((c["workload"], c["mode"]))
        if base and _ff(c):
            per_cell[f"{c['workload']}/{c['mode']}"] = round(
                base / _ff(c), 2)
    return {
        "metric": "interp ff_seconds / jit ff_seconds",
        "per_cell": per_cell,
        "geomean": round(geomean(list(per_cell.values())), 2),
    }


def _two_level_speedup(results: Sequence[dict[str, Any]],
                       modes: Sequence[str]) -> dict[str, Any]:
    """Two-level over detailed KIPS, per cell and per-mode geomean."""
    detailed = {(c["workload"], c["mode"]): c["kips"]
                for c in results if c["tier"] == "detailed"}
    per_cell = {}
    for c in results:
        if c["tier"] != "two-level":
            continue
        base = detailed.get((c["workload"], c["mode"]))
        if base:
            per_cell[f"{c['workload']}/{c['mode']}"] = round(
                c["kips"] / base, 2)
    per_mode = {
        mode: round(geomean([v for key, v in per_cell.items()
                             if key.endswith(f"/{mode}")]), 2)
        for mode in modes
    }
    return {
        "per_cell": per_cell,
        "geomean": per_mode,
        "overall": round(geomean(list(per_cell.values())), 2),
    }


def attach_before(doc: dict[str, Any], before: dict[str, Any]) -> dict[str, Any]:
    """Embed a prior run as the ``before`` section and compute speedups."""
    doc = dict(doc)
    doc["before"] = {
        "generated": before.get("generated"),
        "geomean_kips": before.get("geomean_kips", {}),
        "results": before.get("results", []),
    }
    speedup = {}
    for mode, after_kips in doc["geomean_kips"].items():
        before_kips = before.get("geomean_kips", {}).get(mode, 0)
        if before_kips:
            speedup[mode] = round(after_kips / before_kips, 3)
    doc["speedup_vs_before"] = speedup
    return doc


def check_regression(current: dict[str, Any], baseline: dict[str, Any],
                     tolerance: float = 0.30) -> list[str]:
    """Per-mode geomean KIPS regression check.

    Returns a list of human-readable failures (empty when within
    ``tolerance``).  Only modes present in both documents are compared,
    so shrinking or growing the grid does not spuriously fail.
    """
    failures = []
    base = baseline.get("geomean_kips", {})
    cur = current.get("geomean_kips", {})
    for mode, base_kips in base.items():
        if mode == "overall" or mode not in cur or not base_kips:
            continue
        floor = base_kips * (1.0 - tolerance)
        if cur[mode] < floor:
            failures.append(
                f"{mode}: {cur[mode]:.1f} KIPS < {floor:.1f} "
                f"(baseline {base_kips:.1f}, tolerance {tolerance:.0%})"
            )
    return failures


def write_results(doc: dict[str, Any], path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(doc, indent=2, sort_keys=False) + "\n")
    return path


def load_results(path: str | Path) -> dict[str, Any]:
    return json.loads(Path(path).read_text())


def profile_cell(workload: str, mode: str, instructions: int,
                 warmup: int, top: int = 25) -> str:
    """cProfile one cell; returns the formatted top-N report."""
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    _time_cell(workload, MODES[mode], instructions, warmup)
    profiler.disable()
    out = io.StringIO()
    stats = pstats.Stats(profiler, stream=out)
    stats.sort_stats("tottime").print_stats(top)
    return out.getvalue()
