"""Simulator-throughput benchmark: KIPS as a first-class tracked metric.

The experiment matrix measures what the *simulated core* does; this module
measures how fast the *simulator itself* runs, in KIPS (committed
kilo-instructions per host second).  ``repro bench-throughput`` runs a
small workload x mode grid, writes ``BENCH_sim_throughput.json`` and can
gate CI on a regression against a committed baseline.

Timing methodology: each cell builds a fresh workload + processor, runs
the functional warm-up (timed separately — it is not cycle-level work)
and then times ``Processor.run`` alone with ``perf_counter``.  The best
of ``reps`` repetitions is reported, which filters scheduler noise while
staying cheap enough for CI.
"""

from __future__ import annotations

import json
import math
import os
import platform
import time
from pathlib import Path
from typing import Any, Optional, Sequence

from ..config import build_named_config
from ..core.processor import Processor
from ..workloads import build_workload

# Benchmark mode -> named configuration.  "normal" exercises the plain
# out-of-order fast path, "rab" additionally exercises chain generation,
# the runahead buffer loop, and the runahead cache.
MODES: dict[str, str] = {
    "normal": "baseline",
    "rab": "rab_cc",
}

# Default suite: the memory-intensive kernels that dominate figure runs
# (two pointer-chasing gathers, two streams) — the workloads where both
# the normal and runahead-buffer hot paths actually get exercised.
DEFAULT_WORKLOADS = ("mcf", "milc", "libquantum", "lbm")

DEFAULT_INSTRUCTIONS = 20_000
DEFAULT_WARMUP = 12_000
DEFAULT_REPS = 2

SCHEMA = 1


def _time_cell(workload: str, config_name: str, instructions: int,
               warmup: int) -> dict[str, Any]:
    """One timed simulation: returns KIPS plus raw timing components."""
    built = build_workload(workload)
    config = build_named_config(config_name)
    processor = Processor(built.program, config, memory=built.memory,
                         init_regs=built.init_regs)
    t0 = time.perf_counter()
    if warmup > 0:
        processor.warm_up(warmup)
    t1 = time.perf_counter()
    stats = processor.run(instructions)
    t2 = time.perf_counter()
    sim_seconds = t2 - t1
    return {
        "committed": stats.committed_insts,
        "cycles": stats.cycles,
        "warmup_seconds": round(t1 - t0, 6),
        "sim_seconds": round(sim_seconds, 6),
        "kips": round(stats.committed_insts / sim_seconds / 1000.0, 3),
    }


def measure_cell(workload: str, mode: str, instructions: int = DEFAULT_INSTRUCTIONS,
                 warmup: int = DEFAULT_WARMUP, reps: int = DEFAULT_REPS
                 ) -> dict[str, Any]:
    """Best-of-``reps`` measurement of one (workload, mode) cell."""
    config_name = MODES[mode]
    best: Optional[dict[str, Any]] = None
    for _ in range(max(1, reps)):
        sample = _time_cell(workload, config_name, instructions, warmup)
        if best is None or sample["kips"] > best["kips"]:
            best = sample
    assert best is not None
    best.update(workload=workload, mode=mode, config=config_name,
                instructions=instructions, warmup=warmup)
    return best


def geomean(values: Sequence[float]) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def run_benchmark(workloads: Sequence[str] = DEFAULT_WORKLOADS,
                  modes: Sequence[str] = tuple(MODES),
                  instructions: int = DEFAULT_INSTRUCTIONS,
                  warmup: int = DEFAULT_WARMUP,
                  reps: int = DEFAULT_REPS,
                  progress=None) -> dict[str, Any]:
    """Measure the full grid and assemble the result document."""
    results = []
    for workload in workloads:
        for mode in modes:
            cell = measure_cell(workload, mode, instructions, warmup, reps)
            results.append(cell)
            if progress is not None:
                progress(f"{workload:12s} {mode:7s} {cell['kips']:8.1f} KIPS")
    by_mode = {
        mode: round(geomean([c["kips"] for c in results if c["mode"] == mode]), 3)
        for mode in modes
    }
    return {
        "schema": SCHEMA,
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
        "instructions": instructions,
        "warmup": warmup,
        "reps": reps,
        "results": results,
        "geomean_kips": {
            **by_mode,
            "overall": round(geomean([c["kips"] for c in results]), 3),
        },
    }


def attach_before(doc: dict[str, Any], before: dict[str, Any]) -> dict[str, Any]:
    """Embed a prior run as the ``before`` section and compute speedups."""
    doc = dict(doc)
    doc["before"] = {
        "generated": before.get("generated"),
        "geomean_kips": before.get("geomean_kips", {}),
        "results": before.get("results", []),
    }
    speedup = {}
    for mode, after_kips in doc["geomean_kips"].items():
        before_kips = before.get("geomean_kips", {}).get(mode, 0)
        if before_kips:
            speedup[mode] = round(after_kips / before_kips, 3)
    doc["speedup_vs_before"] = speedup
    return doc


def check_regression(current: dict[str, Any], baseline: dict[str, Any],
                     tolerance: float = 0.30) -> list[str]:
    """Per-mode geomean KIPS regression check.

    Returns a list of human-readable failures (empty when within
    ``tolerance``).  Only modes present in both documents are compared,
    so shrinking or growing the grid does not spuriously fail.
    """
    failures = []
    base = baseline.get("geomean_kips", {})
    cur = current.get("geomean_kips", {})
    for mode, base_kips in base.items():
        if mode == "overall" or mode not in cur or not base_kips:
            continue
        floor = base_kips * (1.0 - tolerance)
        if cur[mode] < floor:
            failures.append(
                f"{mode}: {cur[mode]:.1f} KIPS < {floor:.1f} "
                f"(baseline {base_kips:.1f}, tolerance {tolerance:.0%})"
            )
    return failures


def write_results(doc: dict[str, Any], path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(doc, indent=2, sort_keys=False) + "\n")
    return path


def load_results(path: str | Path) -> dict[str, Any]:
    return json.loads(Path(path).read_text())


def profile_cell(workload: str, mode: str, instructions: int,
                 warmup: int, top: int = 25) -> str:
    """cProfile one cell; returns the formatted top-N report."""
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    _time_cell(workload, MODES[mode], instructions, warmup)
    profiler.disable()
    out = io.StringIO()
    stats = pstats.Stats(profiler, stream=out)
    stats.sort_stats("tottime").print_stats(top)
    return out.getvalue()
