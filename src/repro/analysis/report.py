"""ASCII table rendering for figure/table reproductions."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional, Sequence


@dataclass
class Table:
    """One reproduced figure/table: a title, headers, and rows."""

    title: str
    headers: Sequence[str]
    rows: list[Sequence[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, *cells: Any) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} "
                "columns"
            )
        self.rows.append(cells)

    def column(self, name: str) -> list[Any]:
        index = list(self.headers).index(name)
        return [row[index] for row in self.rows]

    def row_map(self, key_col: int = 0) -> dict[Any, Sequence[Any]]:
        return {row[key_col]: row for row in self.rows}


def _format_cell(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def render(table: Table) -> str:
    """Render a :class:`Table` as aligned monospace text."""
    headers = [str(h) for h in table.headers]
    rows = [[_format_cell(c) for c in row] for row in table.rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) if i else c.ljust(w)
                         for i, (c, w) in enumerate(zip(cells, widths)))

    lines = [table.title, "=" * len(table.title), fmt(headers),
             fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    for note in table.notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)


def write_report(table: Table, path: str | Path,
                 directory: Optional[str | Path] = "results/figures") -> Path:
    """Render and persist a table under ``results/figures/``."""
    out_dir = Path(directory) if directory else Path(".")
    out_dir.mkdir(parents=True, exist_ok=True)
    out_path = out_dir / path
    out_path.write_text(render(table) + "\n")
    return out_path
