"""Hardware prefetching: stream prefetcher + FDP throttling (Table 1)."""

from .stream import PrefetcherStats, StreamPrefetcher

__all__ = ["PrefetcherStats", "StreamPrefetcher"]
