"""POWER4-style stream prefetcher (Table 1: 32 streams, distance 32,
degree 2, prefetch into LLC) with Feedback-Directed Prefetching throttling
[Srinath et al., HPCA'07].

A stream entry trains on LLC demand-miss line addresses.  Once two misses
establish a direction, the stream becomes active; every demand access that
advances the stream issues ``degree`` prefetches, staying at most
``distance`` lines ahead of the demand stream.  FDP measures prefetch
accuracy over fixed-size intervals of issued prefetches and scales
degree/distance up or down.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import PrefetcherConfig


@dataclass
class _Stream:
    last_line: int          # most recent demand line seen by this stream
    direction: int          # +1 / -1, 0 while training
    confidence: int         # training hits
    next_prefetch: int      # next line to prefetch
    active: bool = False
    lru: int = 0
    core: int = 0           # training core: streams never match cross-core


class PrefetcherStats:
    __slots__ = ("issued", "useful", "evicted_unused", "late",
                 "throttle_ups", "throttle_downs")

    def __init__(self) -> None:
        self.issued = 0
        self.useful = 0          # prefetched lines later hit by demand
        self.evicted_unused = 0  # prefetched lines evicted untouched
        self.late = 0            # demand arrived while the fill was in flight
        self.throttle_ups = 0
        self.throttle_downs = 0

    @property
    def accuracy(self) -> float:
        resolved = self.useful + self.evicted_unused
        return self.useful / resolved if resolved else 1.0


class StreamPrefetcher:
    """The stream engine.  The cache hierarchy calls :meth:`on_demand_access`
    for every LLC demand access and issues the returned line prefetches."""

    # FDP aggressiveness ladder: (degree, distance) pairs.
    _LADDER = ((1, 8), (1, 16), (2, 32), (4, 48), (4, 64))

    def __init__(self, config: PrefetcherConfig) -> None:
        self.config = config
        self.streams: list[_Stream] = []
        self.stats = PrefetcherStats()
        self._lru_clock = 0
        # Start at the Table 1 operating point (degree 2, distance 32).
        self._level = 2 if config.fdp_enabled else self._ladder_index_of_config()
        self._interval_issued = 0
        self._interval_useful = 0
        self._interval_unused = 0

    def _ladder_index_of_config(self) -> int:
        for i, (deg, dist) in enumerate(self._LADDER):
            if deg == self.config.degree and dist == self.config.distance:
                return i
        return 2

    @property
    def degree(self) -> int:
        if self.config.fdp_enabled:
            return self._LADDER[self._level][0]
        return self.config.degree

    @property
    def distance(self) -> int:
        if self.config.fdp_enabled:
            return self._LADDER[self._level][1]
        return self.config.distance

    # -- training / issue --------------------------------------------------------

    def _find_stream(self, line: int, core: int = 0) -> _Stream | None:
        window = max(self.distance, 16)
        best = None
        for stream in self.streams:
            if stream.core != core:
                # Streams are per-core: interleaved access patterns from
                # different cores must not alias into one stream (and on
                # the single-core path every stream has core 0).
                continue
            if stream.active:
                ahead = (line - stream.last_line) * stream.direction
                if 0 <= ahead <= window:
                    best = stream
                    break
            else:
                if abs(line - stream.last_line) <= self.config.train_threshold + 2:
                    best = stream
                    break
        return best

    def _allocate(self, line: int, core: int = 0) -> _Stream:
        self._lru_clock += 1
        if len(self.streams) < self.config.num_streams:
            stream = _Stream(line, 0, 0, line, lru=self._lru_clock, core=core)
            self.streams.append(stream)
            return stream
        victim = min(self.streams, key=lambda s: s.lru)
        victim.last_line = line
        victim.direction = 0
        victim.confidence = 0
        victim.next_prefetch = line
        victim.active = False
        victim.lru = self._lru_clock
        victim.core = core
        return victim

    def on_demand_access(self, line: int, hit: bool,
                         core: int = 0) -> list[int]:
        """Observe one LLC demand access; return line addresses to prefetch."""
        self._lru_clock += 1
        stream = self._find_stream(line, core)
        if stream is None:
            if not hit:
                self._allocate(line, core)
            return []
        stream.lru = self._lru_clock

        if not stream.active:
            delta = line - stream.last_line
            if delta == 0:
                return []
            direction = 1 if delta > 0 else -1
            if stream.direction == direction:
                stream.confidence += 1
            else:
                stream.direction = direction
                stream.confidence = 1
            stream.last_line = line
            if stream.confidence >= self.config.train_threshold:
                stream.active = True
                stream.next_prefetch = line + direction
            else:
                return []

        # Active stream: advance and issue up to ``degree`` prefetches,
        # bounded by the ``distance`` window ahead of the demand pointer.
        if (line - stream.last_line) * stream.direction > 0:
            stream.last_line = line
        prefetches: list[int] = []
        limit = stream.last_line + stream.direction * self.distance
        for _ in range(self.degree):
            nxt = stream.next_prefetch
            if (limit - nxt) * stream.direction < 0:
                break
            prefetches.append(nxt)
            stream.next_prefetch = nxt + stream.direction
        if prefetches:
            self.record_issued(len(prefetches))
        return prefetches

    # -- warm-state snapshots ----------------------------------------------------

    def snapshot(self) -> tuple:
        """Complete engine state: every stream entry (in table order),
        the LRU clock, the FDP ladder level and window counters, and the
        stats — plain ints/bools, so it pickles and digests."""
        st = self.stats
        return (
            tuple((s.last_line, s.direction, s.confidence, s.next_prefetch,
                   s.active, s.lru, s.core)
                  for s in self.streams),
            self._lru_clock,
            self._level,
            (self._interval_issued, self._interval_useful,
             self._interval_unused),
            (st.issued, st.useful, st.evicted_unused, st.late,
             st.throttle_ups, st.throttle_downs),
        )

    def restore(self, snap: tuple) -> None:
        streams, lru_clock, level, interval, stats = snap
        self.streams = [
            _Stream(last_line, direction, confidence, next_prefetch,
                    active=active, lru=lru, core=core)
            for (last_line, direction, confidence, next_prefetch,
                 active, lru, core) in streams
        ]
        self._lru_clock = lru_clock
        self._level = level
        (self._interval_issued, self._interval_useful,
         self._interval_unused) = interval
        st = self.stats
        (st.issued, st.useful, st.evicted_unused, st.late,
         st.throttle_ups, st.throttle_downs) = stats

    # -- FDP feedback ------------------------------------------------------------

    def record_issued(self, count: int) -> None:
        self.stats.issued += count
        self._interval_issued += count
        if (self.config.fdp_enabled
                and self._interval_issued >= self.config.fdp_interval):
            self._feedback()

    def record_useful(self, late: bool = False) -> None:
        self.stats.useful += 1
        self._interval_useful += 1
        if late:
            self.stats.late += 1

    def record_unused_eviction(self) -> None:
        self.stats.evicted_unused += 1
        self._interval_unused += 1

    def interval_snapshot(self) -> tuple[int, int, int]:
        """Current FDP window counters ``(issued, useful, unused)`` —
        read by the observability layer around a feedback evaluation."""
        return (self._interval_issued, self._interval_useful,
                self._interval_unused)

    def _feedback(self) -> None:
        resolved = self._interval_useful + self._interval_unused
        if resolved < max(4, self.config.fdp_interval // 8):
            # Not enough resolved prefetches to judge: hold steady and
            # let the window keep accumulating.  A feedback window only
            # closes when BOTH enough prefetches were issued AND enough
            # resolved — resetting any single counter here would make
            # the next accuracy reading mix prefetches from different
            # windows.
            return
        accuracy = self._interval_useful / resolved
        if accuracy >= self.config.fdp_high_accuracy:
            if self._level < len(self._LADDER) - 1:
                self._level += 1
                self.stats.throttle_ups += 1
        elif accuracy < self.config.fdp_low_accuracy:
            if self._level > 0:
                self._level -= 1
                self.stats.throttle_downs += 1
        self._interval_issued = 0
        self._interval_useful = 0
        self._interval_unused = 0
