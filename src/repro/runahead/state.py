"""Runahead policy bookkeeping: interval statistics and the entry filters.

Implements the two hardware-controlled entry filters from Mutlu et al.
(ISCA'05) that the paper adopts as "Runahead Enhancements" (§4.6):

* **Policy 1 (short intervals)** — enter only if the blocking operation
  was issued to memory fewer than ``enhancement_distance`` (250)
  instructions ago; otherwise most of the miss latency has already
  elapsed and the interval would be too short to be useful.
* **Policy 2 (overlapping intervals)** — enter only if execution has
  passed the furthest point reached by the previous runahead interval,
  so runahead does not re-discover the same misses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import RunaheadConfig


@dataclass
class IntervalRecord:
    """What happened in one runahead interval (for Figs 10/11/14)."""

    kind: str                 # "traditional" or "buffer"
    entry_cycle: int
    exit_cycle: int = 0
    misses_generated: int = 0
    uops_executed: int = 0
    chain_gen_cycles: int = 0
    used_chain_cache: bool = False

    @property
    def cycles(self) -> int:
        # An exit earlier than the entry is a core bug; surface it
        # instead of clamping it into a silent zero-length interval.
        if self.exit_cycle < self.entry_cycle:
            raise ValueError(
                f"interval inverted: exit_cycle={self.exit_cycle} < "
                f"entry_cycle={self.entry_cycle}"
            )
        return self.exit_cycle - self.entry_cycle


@dataclass
class RunaheadPolicyState:
    """Cross-interval policy state plus per-run statistics."""

    config: RunaheadConfig
    intervals: list[IntervalRecord] = field(default_factory=list)
    current: IntervalRecord | None = None
    # Entry filter state.
    last_furthest_instruction: int = -1
    entries_blocked_short: int = 0
    entries_blocked_overlap: int = 0
    entries_blocked_no_chain: int = 0
    # Hybrid decision counters.
    hybrid_cc_entries: int = 0
    hybrid_chain_entries: int = 0
    hybrid_traditional_entries: int = 0
    # Chain-cache accuracy (Fig. 13).
    cc_hits_checked: int = 0
    cc_hits_exact: int = 0

    # -- entry filters ----------------------------------------------------------

    def enhancements_allow(self, committed_total: int,
                           miss_issue_retired: int) -> bool:
        """Apply policies 1 and 2; returns whether entry is allowed."""
        cfg = self.config
        if miss_issue_retired >= 0:
            distance = committed_total - miss_issue_retired
            if distance >= cfg.enhancement_distance:
                self.entries_blocked_short += 1
                return False
        if committed_total <= self.last_furthest_instruction:
            self.entries_blocked_overlap += 1
            return False
        return True

    # -- interval lifecycle --------------------------------------------------------

    def begin_interval(self, kind: str, now: int, chain_gen_cycles: int = 0,
                       used_chain_cache: bool = False) -> IntervalRecord:
        record = IntervalRecord(
            kind=kind,
            entry_cycle=now,
            chain_gen_cycles=chain_gen_cycles,
            used_chain_cache=used_chain_cache,
        )
        self.current = record
        return record

    def end_interval(self, now: int, committed_total: int,
                     pseudo_retired: int,
                     program_distance: int | None = None) -> None:
        """Close the current interval.

        ``pseudo_retired`` counts every uop drained during the interval
        and feeds the per-interval statistics.  ``program_distance`` is
        the subset that represents genuine program-order progress — in
        buffer mode the dependence chain executes as a *loop*, so its
        repeated iterations must not advance Policy 2's furthest-point
        marker (they revisit the same instructions, not new ones).
        Defaults to ``pseudo_retired``, which is exact for traditional
        runahead where every drained uop is a program-order one.
        """
        record = self.current
        if record is None:
            return
        record.exit_cycle = now
        record.uops_executed = pseudo_retired
        self.intervals.append(record)
        self.current = None
        if program_distance is None:
            program_distance = pseudo_retired
        furthest = committed_total + program_distance
        self.last_furthest_instruction = max(
            self.last_furthest_instruction, furthest
        )

    # -- aggregates -------------------------------------------------------------------

    @property
    def last_interval(self) -> IntervalRecord | None:
        """The most recently *closed* interval (observability reads this
        right after an exit to label the interval's trace slice)."""
        return self.intervals[-1] if self.intervals else None

    def interval_count(self, kind: str | None = None) -> int:
        if kind is None:
            return len(self.intervals)
        return sum(1 for r in self.intervals if r.kind == kind)

    def cycles_in(self, kind: str | None = None) -> int:
        return sum(r.cycles for r in self.intervals
                   if kind is None or r.kind == kind)

    def misses_per_interval(self, kind: str | None = None) -> float:
        records = [r for r in self.intervals
                   if kind is None or r.kind == kind]
        if not records:
            return 0.0
        return sum(r.misses_generated for r in records) / len(records)

    def fairness_summary(self) -> dict:
        """Per-core runahead activity profile for multi-core fairness
        reporting: how often and how long this core ran ahead, by mode,
        plus how many entries its filters blocked.  Plain data (sorted
        keys) so multicore results fingerprint deterministically."""
        kinds = sorted({r.kind for r in self.intervals})
        return {
            "intervals": self.interval_count(),
            "runahead_cycles": self.cycles_in(),
            "by_kind": {
                k: {
                    "intervals": self.interval_count(k),
                    "cycles": self.cycles_in(k),
                    "misses_per_interval": self.misses_per_interval(k),
                }
                for k in kinds
            },
            "entries_blocked_short": self.entries_blocked_short,
            "entries_blocked_overlap": self.entries_blocked_overlap,
            "entries_blocked_no_chain": self.entries_blocked_no_chain,
        }
