"""Dependence-chain cache (§4.4): two 32-uop entries, indexed by the PC of
the operation blocking the ROB.

Checked before starting a new chain generation; a hit means runahead can
begin without the pseudo-wakeup walk.  Path associativity is disallowed
(one chain per PC), and the cache is deliberately tiny so stale chains
age out quickly — dynamic instances of a static load can change their
dependence chain over time.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from .chain import ChainUop


class ChainCache:
    """Fully-associative, LRU, one chain per PC."""

    def __init__(self, entries: int = 2) -> None:
        if entries < 1:
            raise ValueError("chain cache needs at least one entry")
        self.capacity = entries
        self._entries: OrderedDict[int, tuple[ChainUop, ...]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.insertions = 0

    def lookup(self, pc: int) -> Optional[tuple[ChainUop, ...]]:
        chain = self._entries.get(pc)
        if chain is None:
            self.misses += 1
            return None
        self._entries.move_to_end(pc)
        self.hits += 1
        return chain

    def insert(self, pc: int, chain: tuple[ChainUop, ...]) -> None:
        if pc in self._entries:
            self._entries.move_to_end(pc)
        elif len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
        self._entries[pc] = chain
        self.insertions += 1

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
