"""The runahead buffer (§4.3).

A small structure in the rename stage holding one decoded dependence
chain (up to 32 uops, 8 bytes each).  While the core is in runahead-buffer
mode, rename pulls uops from here instead of the (clock-gated) front-end,
treating the chain as an infinite loop: after the last uop, issue restarts
from the first.  Because each iteration is renamed onto fresh physical
registers, iteration *k+1*'s address computations consume iteration *k*'s
results — a looped induction-variable chain strides ahead of the stalled
program and uncovers future cache misses.
"""

from __future__ import annotations

from .chain import ChainUop


class RunaheadBuffer:
    """Holds the active dependence chain and its loop-issue cursor."""

    def __init__(self, capacity_uops: int = 32) -> None:
        self.capacity = capacity_uops
        self._chain: tuple[ChainUop, ...] = ()
        self._cursor = 0
        self.iterations_started = 0
        self.uops_issued = 0

    def load_chain(self, chain: tuple[ChainUop, ...]) -> None:
        if len(chain) > self.capacity:
            raise ValueError(
                f"chain of {len(chain)} uops exceeds buffer capacity "
                f"{self.capacity}"
            )
        if not chain:
            raise ValueError("cannot load an empty chain")
        self._chain = chain
        self._cursor = 0
        self.iterations_started = 0

    @property
    def active(self) -> bool:
        return bool(self._chain)

    @property
    def chain(self) -> tuple[ChainUop, ...]:
        return self._chain

    def peek(self) -> ChainUop:
        """The next uop the buffer will issue (without advancing)."""
        if not self._chain:
            raise RuntimeError("runahead buffer is empty")
        return self._chain[self._cursor]

    def take(self) -> ChainUop:
        """One uop, advancing the loop cursor (== ``next_uops(1)[0]`` but
        without the list allocation — the rename stage's hot path)."""
        chain = self._chain
        if not chain:
            raise RuntimeError("runahead buffer is empty")
        cursor = self._cursor
        if cursor == 0:
            self.iterations_started += 1
        uop = chain[cursor]
        cursor += 1
        self._cursor = 0 if cursor == len(chain) else cursor
        self.uops_issued += 1
        return uop

    def next_uops(self, width: int) -> list[ChainUop]:
        """Up to ``width`` uops, wrapping around the chain (the loop)."""
        if not self._chain:
            return []
        out: list[ChainUop] = []
        for _ in range(width):
            if self._cursor == 0:
                self.iterations_started += 1
            out.append(self._chain[self._cursor])
            self._cursor = (self._cursor + 1) % len(self._chain)
        self.uops_issued += len(out)
        return out

    def deactivate(self) -> None:
        self._chain = ()
        self._cursor = 0
