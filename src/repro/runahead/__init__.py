"""Runahead execution: traditional runahead support structures plus the
paper's contribution — dependence-chain generation, the runahead buffer,
the chain cache, and the hybrid policy state."""

from .buffer import RunaheadBuffer
from .chain import ChainGenResult, ChainUop, chain_signature, generate_chain
from .chain_cache import ChainCache
from .runahead_cache import RunaheadCache
from .state import IntervalRecord, RunaheadPolicyState

__all__ = [
    "ChainCache",
    "ChainGenResult",
    "ChainUop",
    "IntervalRecord",
    "RunaheadBuffer",
    "RunaheadCache",
    "RunaheadPolicyState",
    "chain_signature",
    "generate_chain",
]
