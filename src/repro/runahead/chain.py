"""Dependence-chain generation from the ROB (the paper's Algorithm 1).

When the ROB is blocked by a cache miss, we speculate that a *different
dynamic instance* of the same load PC is present in the ROB (Fig. 4 shows
miss chains are overwhelmingly repetitive) and extract its backward
dependence slice with a pseudo-wakeup walk:

1. A program-order priority CAM on the PC field finds the **oldest** other
   instance of the blocking PC.  (Oldest matters: its producers closest to
   the retirement boundary have mostly retired, so the walk terminates at
   one loop body instead of dragging in many iterations.)
2. Its source *physical* registers are pushed onto the Source Register
   Search List (SRSL).  Each cycle, up to ``reg_searches_per_cycle``
   registers are CAM-matched against ROB destination fields; a producing
   uop is added to the chain and its sources enqueued.
3. Loads in the chain also search the store queue; a matching older store
   joins the chain (register spill/fill chains).
4. The walk stops when the SRSL drains or the chain reaches
   ``max_length`` (32 uops, from the Fig. 5 chain-length data).

The extracted chain is read out of the ROB in program order at the
superscalar width and placed in the runahead buffer.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, NamedTuple, Optional, Sequence

from ..backend.inflight import InFlightUop
from ..backend.lsq import StoreQueue
from ..isa import Instruction


class ChainUop(NamedTuple):
    """One decoded uop of a dependence chain, with its original PC."""

    pc: int
    inst: Instruction


@dataclass
class ChainGenResult:
    """Outcome of one chain-generation episode."""

    chain: tuple[ChainUop, ...]      # program-order decoded uops
    chain_seqs: tuple[int, ...]      # dynamic seq ids (analysis)
    found_pc: bool                   # a second instance of the PC existed
    hit_cap: bool                    # walk truncated at max_length
    cycles: int                      # pipeline cycles the generation took
    reg_searches: int                # dest-reg CAM searches (energy)
    sq_searches: int                 # store-queue CAM searches (energy)

    @property
    def usable(self) -> bool:
        return self.found_pc and len(self.chain) > 0


def _empty_result(cycles: int) -> ChainGenResult:
    return ChainGenResult((), (), False, False, cycles, 0, 0)


def generate_chain(
    rob_uops: Sequence[InFlightUop],
    blocking: InFlightUop,
    store_queue: Optional[StoreQueue],
    max_length: int = 32,
    reg_searches_per_cycle: int = 2,
    readout_width: int = 4,
) -> ChainGenResult:
    """Run Algorithm 1 over a snapshot of the ROB.

    ``rob_uops`` must be in program order with ``blocking`` at the head.
    Returns the chain plus the cycle/energy cost of generating it.
    """
    # Cycle 0: PC CAM for the oldest other instance of the blocking PC.
    cycles = 1
    match: Optional[InFlightUop] = None
    for uop in rob_uops:
        if uop.seq != blocking.seq and uop.pc == blocking.pc and not uop.squashed:
            match = uop
            break
    if match is None:
        return _empty_result(cycles)

    # Unique producer map: physical register -> producing in-flight uop.
    producers: dict[int, InFlightUop] = {}
    for uop in rob_uops:
        if uop.dest_phys is not None and not uop.squashed:
            producers[uop.dest_phys] = uop

    chain: dict[int, InFlightUop] = {match.seq: match}
    srsl: deque[int] = deque()
    for phys in (match.src1_phys, match.src2_phys):
        if phys is not None:
            srsl.append(phys)

    reg_searches = 0
    sq_searches = 0
    hit_cap = False

    def enqueue_sources(uop: InFlightUop) -> None:
        for phys in (uop.src1_phys, uop.src2_phys):
            if phys is not None:
                srsl.append(phys)

    def try_add(uop: InFlightUop) -> bool:
        nonlocal hit_cap
        if uop.seq in chain:
            return False
        if len(chain) >= max_length:
            # A wanted uop (a producing store, or a producer found on the
            # walk's last register) was dropped: the chain really was
            # truncated, even if the SRSL drains afterwards.
            hit_cap = True
            return False
        chain[uop.seq] = uop
        enqueue_sources(uop)
        return True

    while srsl:
        if len(chain) >= max_length:
            hit_cap = True
            break
        reg = srsl.popleft()
        reg_searches += 1
        producer = producers.get(reg)
        if producer is None or producer.seq in chain:
            continue
        added = try_add(producer)
        if not added:
            continue
        if producer.inst.is_load and store_queue is not None:
            sq_searches += 1
            if producer.addr_known and producer.mem_addr is not None:
                store = store_queue.find_producing_store(
                    producer.mem_addr >> 3, producer.seq
                )
                if store is not None and store.seq not in chain:
                    try_add(store)

    if srsl and len(chain) >= max_length:
        hit_cap = True

    ordered = sorted(chain.values(), key=lambda u: u.seq)
    # Timing: 1 cycle PC CAM + the register-search walk + ROB readout.
    cycles += -(-reg_searches // reg_searches_per_cycle) if reg_searches else 0
    cycles += -(-len(ordered) // readout_width)
    return ChainGenResult(
        chain=tuple(ChainUop(u.pc, u.inst) for u in ordered),
        chain_seqs=tuple(u.seq for u in ordered),
        found_pc=True,
        hit_cap=hit_cap,
        cycles=cycles,
        reg_searches=reg_searches,
        sq_searches=sq_searches,
    )


def chain_signature(chain: Iterable[ChainUop]) -> tuple:
    """Structural identity of a chain (for exact-match statistics, Fig. 13)."""
    return tuple((uop.pc, *uop.inst.key()) for uop in chain)
