"""Runahead cache (Table 1: 512 B, 4-way set associative, 8 B lines).

Holds the results of stores pseudo-retired during runahead so that later
runahead loads can forward from them — runahead stores must never become
globally observable [Mutlu et al., HPCA'03].  Cleared on runahead entry.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional


class RunaheadCache:
    """A tiny set-associative value cache, word (8 B) granularity."""

    def __init__(self, size_bytes: int = 512, assoc: int = 4,
                 line_bytes: int = 8) -> None:
        self.num_sets = size_bytes // (assoc * line_bytes)
        if self.num_sets < 1:
            raise ValueError("runahead cache too small for its associativity")
        self.assoc = assoc
        self._sets: list[OrderedDict[int, int]] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.writes = 0
        self.hits = 0
        self.misses = 0

    def _set_for(self, word_addr: int) -> OrderedDict[int, int]:
        return self._sets[word_addr % self.num_sets]

    def write(self, addr: int, value: int) -> None:
        word = addr >> 3
        cache_set = self._set_for(word)
        if word in cache_set:
            cache_set.move_to_end(word)
        elif len(cache_set) >= self.assoc:
            cache_set.popitem(last=False)
        cache_set[word] = value
        self.writes += 1

    def read(self, addr: int) -> Optional[int]:
        word = addr >> 3
        cache_set = self._set_for(word)
        value = cache_set.get(word)
        if value is None:
            self.misses += 1
            return None
        cache_set.move_to_end(word)
        self.hits += 1
        return value

    def clear(self) -> None:
        for cache_set in self._sets:
            cache_set.clear()
