"""Event-based energy model (the McPAT 1.3 / CACTI 6.5 substitute).

Energy = Σ (event count × per-event energy) + leakage × time
       + DRAM background power × time.

The paper's energy findings are arithmetic over exactly these terms:
traditional runahead inflates the *front-end* event counts (fetch/decode
of every runahead uop) and total DRAM activity; the runahead buffer
executes runahead uops with back-end events only (the front-end is
clock-gated, which McPAT models for idle cycles); and any runahead mode
that shortens execution time cuts the leakage and background terms.
Per-event energies are calibrated so the front-end is ~40% of core
dynamic power on the baseline (§1 of the paper, citing Tegra 4 data).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import EnergyConfig

# Which events belong to the front end vs the back end vs memory.
FRONTEND_EVENTS = ("fetch", "decode", "l1i_access")
BACKEND_EVENTS = (
    "rename", "rs_dispatch", "rs_wakeup", "issue", "prf_read", "prf_write",
    "alu", "mul", "div", "fpu", "agu", "rob_write", "rob_read",
)
RUNAHEAD_EVENTS = (
    "pc_cam", "destreg_cam", "sq_cam", "chain_cache_read",
    "chain_cache_write", "rab_read", "checkpoint", "runahead_cache",
)
CACHE_EVENTS = ("l1d_access", "llc_access")
DRAM_EVENTS = ("dram_access", "dram_activate")


@dataclass(frozen=True)
class EnergyReport:
    """Energy breakdown for one run, in joules."""

    frontend_dynamic: float
    backend_dynamic: float
    runahead_dynamic: float
    cache_dynamic: float
    dram_dynamic: float
    core_leakage: float
    dram_background: float
    exec_seconds: float

    @property
    def core_dynamic(self) -> float:
        return (self.frontend_dynamic + self.backend_dynamic
                + self.runahead_dynamic + self.cache_dynamic)

    @property
    def total(self) -> float:
        return (self.core_dynamic + self.dram_dynamic
                + self.core_leakage + self.dram_background)

    @property
    def frontend_fraction_of_core_dynamic(self) -> float:
        core = self.core_dynamic
        return self.frontend_dynamic / core if core else 0.0

    def to_dict(self) -> dict[str, float]:
        return {
            "frontend_dynamic": self.frontend_dynamic,
            "backend_dynamic": self.backend_dynamic,
            "runahead_dynamic": self.runahead_dynamic,
            "cache_dynamic": self.cache_dynamic,
            "dram_dynamic": self.dram_dynamic,
            "core_leakage": self.core_leakage,
            "dram_background": self.dram_background,
            "core_dynamic": self.core_dynamic,
            "total": self.total,
            "exec_seconds": self.exec_seconds,
        }


class EnergyModel:
    """Applies per-event energies from :class:`EnergyConfig`."""

    def __init__(self, config: EnergyConfig, clock_ghz: float) -> None:
        self.config = config
        self.clock_hz = clock_ghz * 1e9

    def _sum(self, events: dict[str, int], names: tuple[str, ...]) -> float:
        cfg = self.config
        total_pj = 0.0
        for name in names:
            count = events.get(name, 0)
            if count:
                total_pj += count * getattr(cfg, f"{name}_pj")
        return total_pj * 1e-12

    def compute(self, events: dict[str, int], cycles: int) -> EnergyReport:
        """Reduce event counts + cycle count to an :class:`EnergyReport`."""
        seconds = cycles / self.clock_hz
        cfg = self.config
        return EnergyReport(
            frontend_dynamic=self._sum(events, FRONTEND_EVENTS),
            backend_dynamic=self._sum(events, BACKEND_EVENTS),
            runahead_dynamic=self._sum(events, RUNAHEAD_EVENTS),
            cache_dynamic=self._sum(events, CACHE_EVENTS),
            dram_dynamic=self._sum(events, DRAM_EVENTS),
            core_leakage=cfg.core_leakage_w * seconds,
            dram_background=cfg.dram_background_w * seconds,
            exec_seconds=seconds,
        )
