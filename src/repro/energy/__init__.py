"""Energy modelling: event-energy accounting with leakage and DRAM power."""

from .model import (
    BACKEND_EVENTS,
    CACHE_EVENTS,
    DRAM_EVENTS,
    FRONTEND_EVENTS,
    RUNAHEAD_EVENTS,
    EnergyModel,
    EnergyReport,
)

__all__ = [
    "BACKEND_EVENTS",
    "CACHE_EVENTS",
    "DRAM_EVENTS",
    "EnergyModel",
    "EnergyReport",
    "FRONTEND_EVENTS",
    "RUNAHEAD_EVENTS",
]
