"""The simulated core: processor, statistics, dataflow analytics, runner."""

from .dataflow import DataflowTracker
from .processor import Processor
from .sim import SimulationResult, simulate
from .stats import ChainAnalysis, SimStats
from .trace import CommitTrace, CommittedOp, render_interval_timeline

__all__ = [
    "ChainAnalysis",
    "CommitTrace",
    "CommittedOp",
    "DataflowTracker",
    "Processor",
    "SimStats",
    "SimulationResult",
    "render_interval_timeline",
    "simulate",
]
