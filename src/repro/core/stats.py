"""Simulation statistics: every counter the paper's figures need.

A :class:`SimStats` is assembled by the processor at the end of a run.
All fields are plain numbers/dicts so results serialize to JSON for the
experiment cache (``repro.analysis.experiments``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class ChainAnalysis:
    """Dependence-chain analytics (Figs 2-5, 13)."""

    # Fig. 2: demand misses whose address slice avoids other misses.
    misses_source_onchip: int = 0
    misses_source_offchip: int = 0
    # Fig. 3: ops executed in traditional runahead vs ops on miss chains.
    runahead_ops_executed: int = 0
    runahead_ops_on_chains: int = 0
    # Fig. 4: chain repetition within an interval.
    unique_chains: int = 0
    repeated_chains: int = 0
    # Fig. 5: chain length distribution.
    chain_length_sum: int = 0
    chain_count: int = 0

    @property
    def source_onchip_fraction(self) -> float:
        total = self.misses_source_onchip + self.misses_source_offchip
        return self.misses_source_onchip / total if total else 1.0

    @property
    def chain_op_fraction(self) -> float:
        if not self.runahead_ops_executed:
            return 0.0
        return self.runahead_ops_on_chains / self.runahead_ops_executed

    @property
    def repeated_fraction(self) -> float:
        total = self.unique_chains + self.repeated_chains
        return self.repeated_chains / total if total else 0.0

    @property
    def mean_chain_length(self) -> float:
        if not self.chain_count:
            return 0.0
        return self.chain_length_sum / self.chain_count

    def to_dict(self) -> dict[str, Any]:
        return {
            "misses_source_onchip": self.misses_source_onchip,
            "misses_source_offchip": self.misses_source_offchip,
            "runahead_ops_executed": self.runahead_ops_executed,
            "runahead_ops_on_chains": self.runahead_ops_on_chains,
            "unique_chains": self.unique_chains,
            "repeated_chains": self.repeated_chains,
            "chain_length_sum": self.chain_length_sum,
            "chain_count": self.chain_count,
            "source_onchip_fraction": self.source_onchip_fraction,
            "chain_op_fraction": self.chain_op_fraction,
            "repeated_fraction": self.repeated_fraction,
            "mean_chain_length": self.mean_chain_length,
        }


@dataclass
class SimStats:
    """Full results of one simulation."""

    workload: str = ""
    config_name: str = ""
    # Core progress.
    cycles: int = 0
    committed_insts: int = 0
    fetched_uops: int = 0
    dispatched_uops: int = 0
    issued_uops: int = 0
    squashed_uops: int = 0
    # Stall / mode accounting.
    memstall_cycles: int = 0
    frontend_idle_cycles: int = 0       # front-end fetched nothing / gated
    cycles_in_traditional: int = 0
    cycles_in_rab: int = 0
    chain_gen_cycles: int = 0
    # Branches.
    cond_branches: int = 0
    cond_mispredicts: int = 0
    # Caches.
    l1d_accesses: int = 0
    l1d_misses: int = 0
    l1i_accesses: int = 0
    llc_accesses: int = 0
    llc_hits: int = 0
    llc_demand_misses: int = 0
    llc_misses_by_kind: dict[str, int] = field(default_factory=dict)
    # DRAM.
    dram_reads: int = 0
    dram_writes: int = 0
    dram_row_hits: int = 0
    dram_row_conflicts: int = 0
    dram_activates: int = 0
    dram_by_kind: dict[str, int] = field(default_factory=dict)
    # Prefetcher.
    prefetches_issued: int = 0
    prefetches_useful: int = 0
    # Runahead.
    runahead_intervals: int = 0
    rab_intervals: int = 0
    traditional_intervals: int = 0
    runahead_pseudo_retired: int = 0
    runahead_misses_generated: int = 0
    runahead_misses_traditional: int = 0
    runahead_misses_rab: int = 0
    inv_ops: int = 0                    # poisoned uops during runahead
    chain_generations: int = 0
    chain_cache_hits: int = 0
    chain_cache_misses: int = 0
    chain_cache_exact_hits: int = 0
    chain_cache_checked_hits: int = 0
    entries_blocked_enh: int = 0
    entries_blocked_no_chain: int = 0
    rab_iterations: int = 0
    # Energy event counts (pJ weights applied by repro.energy).
    energy_events: dict[str, int] = field(default_factory=dict)
    energy_report: dict[str, float] = field(default_factory=dict)
    # Chain analytics.
    chains: ChainAnalysis = field(default_factory=ChainAnalysis)

    # -- derived metrics ----------------------------------------------------------

    @property
    def ipc(self) -> float:
        return self.committed_insts / self.cycles if self.cycles else 0.0

    @property
    def mpki(self) -> float:
        if not self.committed_insts:
            return 0.0
        return 1000.0 * self.llc_demand_misses / self.committed_insts

    @property
    def memstall_fraction(self) -> float:
        return self.memstall_cycles / self.cycles if self.cycles else 0.0

    @property
    def dram_requests(self) -> int:
        return self.dram_reads + self.dram_writes

    @property
    def branch_accuracy(self) -> float:
        if not self.cond_branches:
            return 1.0
        return 1.0 - self.cond_mispredicts / self.cond_branches

    @property
    def rab_cycle_fraction(self) -> float:
        return self.cycles_in_rab / self.cycles if self.cycles else 0.0

    @property
    def runahead_cycle_fraction(self) -> float:
        if not self.cycles:
            return 0.0
        return (self.cycles_in_rab + self.cycles_in_traditional) / self.cycles

    @property
    def hybrid_rab_share(self) -> float:
        """Fraction of runahead cycles spent in buffer mode (Fig. 14)."""
        total = self.cycles_in_rab + self.cycles_in_traditional
        return self.cycles_in_rab / total if total else 0.0

    @property
    def chain_cache_hit_rate(self) -> float:
        total = self.chain_cache_hits + self.chain_cache_misses
        return self.chain_cache_hits / total if total else 0.0

    @property
    def chain_cache_exact_fraction(self) -> float:
        if not self.chain_cache_checked_hits:
            return 0.0
        return self.chain_cache_exact_hits / self.chain_cache_checked_hits

    @property
    def misses_per_interval(self) -> float:
        total = self.runahead_intervals
        return self.runahead_misses_generated / total if total else 0.0

    @property
    def total_energy_j(self) -> float:
        return self.energy_report.get("total", 0.0)

    def metrics(self, names: Any = None) -> dict[str, float]:
        """Named-metric view of this run (see :mod:`repro.obs.metrics`).

        Unlike :meth:`to_dict` — the raw cache serialization — this goes
        through the default :class:`~repro.obs.MetricsRegistry`, so every
        value carries a documented name and unit and can be exported
        alongside other runs.
        """
        from ..obs import default_registry

        return default_registry().collect(self, names=names)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable dump, including derived metrics."""
        out: dict[str, Any] = {}
        for name in self.__dataclass_fields__:
            value = getattr(self, name)
            if name == "chains":
                out[name] = value.to_dict()
            else:
                out[name] = value
        for derived in (
            "ipc", "mpki", "memstall_fraction", "dram_requests",
            "branch_accuracy", "rab_cycle_fraction",
            "runahead_cycle_fraction", "hybrid_rab_share",
            "chain_cache_hit_rate", "chain_cache_exact_fraction",
            "misses_per_interval", "total_energy_j",
        ):
            out[derived] = getattr(self, derived)
        return out
