"""Execution tracing and ASCII visualization.

Two facilities for studying runs:

* :class:`CommitTrace` — a bounded log of architecturally committed
  instructions (attach via ``Processor.commit_hook``); useful for
  debugging workloads and for differential testing against the
  reference interpreter.
* :func:`render_interval_timeline` — an ASCII timeline of a run's
  runahead intervals (mode, duration, misses generated), the quickest
  way to *see* what a policy is doing.

For structured event traces (typed events, Perfetto/Chrome trace
export, occupancy sampling, the metrics registry) see :mod:`repro.obs`,
which attaches through the same zero-cost hook pattern.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover
    from ..runahead import IntervalRecord


@dataclass(frozen=True)
class CommittedOp:
    """One architecturally committed instruction."""

    seq: int
    pc: int
    opcode: str
    cycle: int
    dest_arch: Optional[int]
    value: int
    mem_addr: Optional[int]


class CommitTrace:
    """Bounded in-order log of committed instructions.

    Attach to a processor::

        trace = CommitTrace(capacity=256)
        processor.commit_hook = trace.on_commit
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.entries: deque[CommittedOp] = deque(maxlen=capacity)
        self.total_commits = 0

    def on_commit(self, uop, cycle: int) -> None:
        """Processor commit hook (receives the InFlightUop and cycle)."""
        self.total_commits += 1
        self.entries.append(CommittedOp(
            seq=uop.seq,
            pc=uop.pc,
            opcode=uop.inst.opcode.name,
            cycle=cycle,
            dest_arch=uop.dest_arch,
            value=uop.value,
            mem_addr=uop.mem_addr,
        ))

    def __len__(self) -> int:
        return len(self.entries)

    def last(self, n: int = 10) -> list[CommittedOp]:
        return list(self.entries)[-n:]

    def pcs(self) -> list[int]:
        return [op.pc for op in self.entries]

    def format(self, n: int = 20) -> str:
        """Render the most recent ``n`` commits as a table."""
        lines = [f"{'cycle':>8s} {'seq':>7s} {'pc':>5s} {'op':8s} "
                 f"{'dest':>5s} {'value':>18s}"]
        for op in self.last(n):
            dest = f"R{op.dest_arch}" if op.dest_arch is not None else "-"
            lines.append(f"{op.cycle:8d} {op.seq:7d} {op.pc:5d} "
                         f"{op.opcode:8s} {dest:>5s} {op.value:18d}")
        return "\n".join(lines)


def render_interval_timeline(
    intervals: Iterable["IntervalRecord"],
    total_cycles: int,
    width: int = 72,
) -> str:
    """ASCII timeline: ``.`` normal execution, ``T`` traditional runahead,
    ``B`` runahead-buffer mode.  One summary line per interval follows."""
    intervals = list(intervals)
    if total_cycles <= 0:
        return "(empty run)"
    lane = ["."] * width

    def col(cycle: int) -> int:
        return min(width - 1, cycle * width // total_cycles)

    for record in intervals:
        mark = "B" if record.kind == "buffer" else "T"
        for c in range(col(record.entry_cycle), col(record.exit_cycle) + 1):
            lane[c] = mark

    lines = [
        f"cycles 0..{total_cycles}",
        "".join(lane),
        f"{len(intervals)} intervals "
        f"({sum(1 for r in intervals if r.kind == 'buffer')} buffer, "
        f"{sum(1 for r in intervals if r.kind == 'traditional')} "
        "traditional)",
    ]
    for i, record in enumerate(intervals):
        lines.append(
            f"  [{i:3d}] {record.kind:11s} cycles "
            f"{record.entry_cycle}..{record.exit_cycle} "
            f"({record.cycles}) misses={record.misses_generated} "
            f"uops={record.uops_executed}"
            + (" (chain cache)" if record.used_chain_cache else "")
        )
    return "\n".join(lines)
