"""High-level simulation runner: workload -> processor -> stats + energy.

This is the main entry point of the public API::

    from repro import simulate, make_config, RunaheadMode
    result = simulate("mcf", make_config(RunaheadMode.BUFFER_CHAIN_CACHE),
                      max_instructions=20_000)
    print(result.stats.ipc, result.energy.total)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Union

from ..config import SamplingConfig, SystemConfig, default_system
from ..energy import EnergyModel, EnergyReport
from ..isa import Program
from .processor import Processor
from .stats import SimStats


@dataclass
class SimulationResult:
    """Everything one run produces.

    ``sampling`` is ``None`` for fully detailed runs; two-level runs
    carry the engine's metadata dict (instruction/timing split per tier,
    estimated whole-run cycles) there, keeping ``stats`` bit-compatible
    across tiers.
    """

    stats: SimStats
    energy: EnergyReport
    processor: Processor
    sampling: Optional[dict] = None

    @property
    def ipc(self) -> float:
        return self.stats.ipc


def _resolve_workload(workload) -> tuple[Program, object, Optional[list[int]]]:
    """Accept a workload name, a Workload object, or a bare Program."""
    if isinstance(workload, str):
        from ..workloads import build_workload
        built = build_workload(workload)
        return built.program, built.memory, built.init_regs
    if isinstance(workload, Program):
        return workload, None, None
    # Duck-typed Workload (program/memory/init_regs attributes).
    return workload.program, workload.memory, getattr(workload, "init_regs",
                                                      None)


def simulate(
    workload: Union[str, Program, object],
    config: Optional[SystemConfig] = None,
    max_instructions: int = 20_000,
    warmup_instructions: int = 12_000,
    max_cycles: Optional[int] = None,
    config_name: str = "",
    attach: Optional[Callable[[Processor], None]] = None,
    sampling: Optional[SamplingConfig] = None,
    ff_lane: Optional[str] = None,
    checkpoints: Optional[object] = None,
) -> SimulationResult:
    """Run one workload on one configuration and return stats + energy.

    ``attach`` is called with the processor after warm-up but before the
    timed run — the seam observers use (e.g.
    :meth:`repro.obs.Tracer.attach`) so functional warm-up traffic never
    pollutes a trace.

    ``sampling`` selects the execution tier.  ``None`` or
    ``tier="detailed"`` runs every instruction through the detailed
    core — bit-identical to the pre-sampling simulator.  ``"two-level"``
    alternates detailed windows with functional fast-forward
    (see :mod:`repro.fastpath`); ``result.stats`` then describes the
    detailed windows only and ``result.sampling`` holds the split.

    ``ff_lane`` selects the fast-forward lane (``"interp"`` or
    ``"jit"``) used for warm-up and two-level gaps; ``None`` resolves
    via ``REPRO_FF_LANE`` and then the ``"jit"`` default.

    ``checkpoints`` (a :class:`~repro.fastpath.checkpoint.CheckpointPlan`)
    runs the two-level tier in live-point mode: warm-up restores from
    the checkpoint store when a matching warm snapshot exists, and the
    engine checkpoints every stride boundary and fans the measured
    windows out over ``checkpoints.jobs`` processes.  Only meaningful
    with a sampled tier — the detailed tier is always exact and never
    checkpointed.
    """
    if config is None:
        config = default_system()
    sampled = sampling is not None and sampling.is_sampled
    if checkpoints is not None and not sampled:
        raise ValueError(
            "checkpoints require the two-level tier (pass a sampled "
            "SamplingConfig); the detailed tier stays exact and unsampled")
    program, memory, init_regs = _resolve_workload(workload)
    processor = Processor(program, config, memory=memory, init_regs=init_regs)
    processor.ff_lane = ff_lane
    if checkpoints is not None:
        from ..fastpath.checkpoint import restore_or_warm_up
        restore_or_warm_up(processor, warmup_instructions,
                           store=checkpoints.store)
    elif warmup_instructions > 0:
        processor.warm_up(warmup_instructions)
    if attach is not None:
        attach(processor)
    if sampled:
        from ..fastpath import run_two_tier
        meta = run_two_tier(processor, sampling, max_instructions,
                            max_cycles=max_cycles, checkpoints=checkpoints)
        stats = processor.stats
    else:
        meta = None
        stats = processor.run(max_instructions, max_cycles=max_cycles)
    stats.config_name = config_name or stats.config_name
    model = EnergyModel(config.energy, config.core.clock_ghz)
    energy = model.compute(stats.energy_events, stats.cycles)
    stats.energy_report = energy.to_dict()
    return SimulationResult(stats=stats, energy=energy, processor=processor,
                            sampling=meta)
