"""Dataflow tracker: backward-slice analytics behind Figs 2-5.

Optional (``RunaheadConfig.collect_chain_stats``): records, per executed
uop, which dynamic uops produced its sources, so that when a cache miss
occurs its *dependence chain* (backward slice of the address computation)
can be reconstructed.  This is analysis-only instrumentation — it never
influences timing — and mirrors the measurements the paper presents in
its motivation section:

* Fig. 2 — does a miss's slice contain another LLC miss?  If not, all
  source data was available on chip and runahead could have issued it.
* Fig. 3 — what fraction of ops executed in a traditional-runahead
  interval lie on some miss's dependence chain?
* Fig. 4 — how often is a miss chain a repeat of one already seen in the
  same interval (keyed by the chain's PC signature)?
* Fig. 5 — how long are the chains?
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from .stats import ChainAnalysis

_SLICE_LIMIT = 64          # max uops per backward slice (matches chain walk)
_WINDOW = 8192             # retained uop records


class _UopRecord:
    __slots__ = ("pc", "producers", "is_miss_load")

    def __init__(self, pc: int, producers: tuple[int, ...],
                 is_miss_load: bool) -> None:
        self.pc = pc
        self.producers = producers
        self.is_miss_load = is_miss_load


class DataflowTracker:
    """Sliding-window dataflow graph over executed uops."""

    def __init__(self, analysis: Optional[ChainAnalysis] = None) -> None:
        self.analysis = analysis if analysis is not None else ChainAnalysis()
        self._records: dict[int, _UopRecord] = {}
        self._order: deque[int] = deque()
        # Traditional-runahead interval tracking.
        self._in_interval = False
        self._interval_ops: dict[int, _UopRecord] = {}
        self._interval_misses: list[int] = []
        self._interval_signatures: set[tuple] = set()

    # -- recording -------------------------------------------------------------

    def note_exec(self, seq: int, pc: int, producers: tuple[int, ...],
                  is_miss_load: bool, runahead: bool) -> None:
        """Record one executed uop and its producer seq ids."""
        record = _UopRecord(pc, producers, is_miss_load)
        self._records[seq] = record
        self._order.append(seq)
        if len(self._order) > _WINDOW:
            old = self._order.popleft()
            self._records.pop(old, None)
        if runahead and self._in_interval:
            self._interval_ops[seq] = record
            if is_miss_load:
                self._interval_misses.append(seq)

    # -- Fig. 2 -------------------------------------------------------------------

    def classify_demand_miss(self, seq: int, producers: tuple[int, ...],
                             ) -> bool:
        """Classify a demand miss: True if all source data was on chip
        (no other LLC miss in its backward slice).  Updates analysis."""
        on_chip = True
        seen: set[int] = set()
        frontier = [p for p in producers if p >= 0]
        while frontier and len(seen) < _SLICE_LIMIT:
            s = frontier.pop()
            if s in seen:
                continue
            seen.add(s)
            record = self._records.get(s)
            if record is None:
                continue
            if record.is_miss_load:
                on_chip = False
                break
            frontier.extend(p for p in record.producers if p >= 0)
        if on_chip:
            self.analysis.misses_source_onchip += 1
        else:
            self.analysis.misses_source_offchip += 1
        return on_chip

    # -- Figs 3-5: traditional runahead intervals --------------------------------------

    def begin_interval(self) -> None:
        self._in_interval = True
        self._interval_ops = {}
        self._interval_misses = []
        self._interval_signatures = set()

    def end_interval(self) -> None:
        """Reduce the interval's dataflow into chain statistics."""
        if not self._in_interval:
            return
        self._in_interval = False
        analysis = self.analysis
        ops = self._interval_ops
        analysis.runahead_ops_executed += len(ops)
        on_chain: set[int] = set()
        for miss_seq in self._interval_misses:
            chain = self._slice_within(miss_seq, ops)
            on_chain.update(chain)
            signature = tuple(sorted({ops[s].pc for s in chain}))
            if signature in self._interval_signatures:
                analysis.repeated_chains += 1
            else:
                analysis.unique_chains += 1
                self._interval_signatures.add(signature)
            analysis.chain_length_sum += len(chain)
            analysis.chain_count += 1
        analysis.runahead_ops_on_chains += len(on_chain)
        self._interval_ops = {}
        self._interval_misses = []

    @staticmethod
    def _slice_within(seq: int, ops: dict[int, _UopRecord]) -> set[int]:
        """Backward slice of ``seq`` restricted to the interval's ops.

        The slice stops at repeated *static* PCs, so it captures one loop
        body — the same termination the runahead buffer's chain walk gets
        from the retirement boundary.  Without this, the slice would run
        through the entire induction history of the interval and every
        chain would look unique."""
        chain: set[int] = {seq}
        seen_pcs: set[int] = {ops[seq].pc} if seq in ops else set()
        frontier = [seq]
        while frontier and len(chain) < _SLICE_LIMIT:
            s = frontier.pop()
            record = ops.get(s)
            if record is None:
                continue
            for producer in record.producers:
                if producer < 0 or producer not in ops or producer in chain:
                    continue
                pc = ops[producer].pc
                if pc in seen_pcs:
                    continue
                seen_pcs.add(pc)
                chain.add(producer)
                frontier.append(producer)
        return chain
