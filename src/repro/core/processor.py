"""The cycle-level out-of-order processor (Table 1 core).

Execution-driven: micro-ops compute real 64-bit values against a sparse
functional memory, so runahead modes generate real addresses.  One
:class:`Processor` models the 4-wide superscalar core with a 192-entry
ROB, register renaming with poison bits, a hybrid branch predictor with
wrong-path execution, the full cache/DRAM hierarchy, and three operating
modes:

* ``normal``   — ordinary out-of-order execution;
* ``runahead`` — traditional runahead [Mutlu+, HPCA'03]: checkpoint,
  poison the blocking load, keep fetching/executing, pseudo-retire;
* ``rab``      — the paper's runahead buffer: extract the blocking miss's
  dependence chain from the ROB (Algorithm 1), clock-gate the front-end,
  and loop the chain through rename until the miss returns.

The main loop is event-accelerated: cycles where provably nothing can
happen (pure memory stall) are skipped in bulk, with stall accounting
preserved — necessary for a Python-hosted cycle-level model.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Optional

from ..backend import ForwardResult, InFlightUop, PhysicalRegisterFile, \
    RenameState, StoreQueue
from ..config import RunaheadMode, SystemConfig
from ..frontend import BranchPredictor, FetchedUop, FetchUnit, INST_BYTES
from ..isa import (
    MASK64,
    DataMemory,
    Interpreter,
    Program,
)
from ..isa.uop import (
    CLS_BRANCH,
    CLS_FADD,
    CLS_FDIV,
    CLS_FMUL,
    CLS_IALU,
    CLS_IDIV,
    CLS_IMUL,
    CLS_LOAD,
    CLS_NOP,
    CLS_STORE,
    NUM_UOP_CLASSES,
)
from ..memory import MemoryHierarchy, SharedHierarchyError
from ..runahead import (
    ChainCache,
    ChainUop,
    RunaheadBuffer,
    RunaheadCache,
    RunaheadPolicyState,
    chain_signature,
    generate_chain,
)
from .dataflow import DataflowTracker
from .stats import SimStats

_WATCHDOG_CYCLES = 1_000_000


class Processor:
    """One simulated core plus its memory system."""

    def __init__(
        self,
        program: Program,
        config: Optional[SystemConfig] = None,
        memory: Optional[DataMemory] = None,
        init_regs: Optional[list[int]] = None,
        hierarchy: Optional[MemoryHierarchy] = None,
    ) -> None:
        if config is None:
            from ..config import default_system
            config = default_system()
        config.validate()
        self.config = config
        self.program = program
        self.memory = memory if memory is not None else DataMemory()

        core = config.core
        self.width = core.width
        # A caller (repro.multicore) may pass a hierarchy wired to a
        # shared LLC/DRAM complex; standalone construction keeps the
        # legacy private hierarchy, bit-identical to the golden grid.
        self.hierarchy = (hierarchy if hierarchy is not None
                          else MemoryHierarchy(config))
        self.core_id = self.hierarchy.core_id
        self.predictor = BranchPredictor(config.branch)
        self.fetch = FetchUnit(program, self.predictor, self.hierarchy, core)

        self.prf = PhysicalRegisterFile(core.num_phys_regs)
        self.rename = RenameState(self.prf)
        if init_regs is not None:
            self.rename.reset_to_values(list(init_regs))

        self.rob: deque[InFlightUop] = deque()
        self.store_queue = StoreQueue(core.store_queue_size)
        self.load_queue_used = 0
        self.rs_used = 0
        self.decode_queue: deque[tuple[int, FetchedUop]] = deque()
        self.decode_queue_cap = 4 * core.width

        self.events: list[tuple[int, int, InFlightUop]] = []
        self._retries: list[tuple[int, int, InFlightUop]] = []
        self.ready: deque[InFlightUop] = deque()
        self.deferred_loads: list[InFlightUop] = []
        self.waiters: dict[int, list[InFlightUop]] = {}

        # Runahead machinery.
        ra = config.runahead
        self.mode = "normal"
        self._in_ra = False   # mirrors mode != "normal" for the hot path
        self.ra_policy = RunaheadPolicyState(ra)
        self.runahead_cache = RunaheadCache(
            ra.runahead_cache_bytes, ra.runahead_cache_assoc,
            ra.runahead_cache_line,
        )
        self.chain_cache = ChainCache(ra.chain_cache_entries) if ra.mode in (
            RunaheadMode.BUFFER_CHAIN_CACHE, RunaheadMode.HYBRID
        ) else None
        self.rab = RunaheadBuffer(ra.buffer_uops)
        self._checkpoint: Optional[list[int]] = None
        self._predictor_checkpoint = None
        self._blocking_pc = -1
        self._exit_cycle = -1
        self._rab_start_cycle = -1
        self._interval_pseudo_retired = 0
        # Program-order pseudo-retirements only: RAB chain-loop uops
        # re-execute the same few instructions and do not advance the
        # architectural frontier, so Policy 2's furthest-point tracking
        # must not count them.
        self._interval_pseudo_retired_arch = 0
        self._committed_at_entry = 0
        # Runahead loads whose data is further away than this are INV.
        self._poison_latency = 3 * config.llc.latency

        # Hot-path caches: immutable config facts pulled into flat
        # attributes/lists so the cycle loop never walks
        # ``self.config.core.<field>`` attribute chains per uop.
        self._rob_size = core.rob_size
        self._rs_size = core.rs_size
        self._lq_size = core.load_queue_size
        # Issue-port budgets indexed by Instruction.port_class
        # (PORT_MEM, PORT_ALU, PORT_MULDIV, PORT_FP).
        self._port_limits = (
            core.mem_ports, core.int_alu_units,
            core.mul_div_units, core.fp_units,
        )
        self._lat_agu = core.latency_agu
        self._lat_branch = core.latency_branch
        self._l1d_latency = config.l1d.latency
        self._fetch_to_rename = core.fetch_to_rename_cycles
        self._redirect_penalty = core.branch_mispredict_redirect
        self._ra_mode_off = ra.mode is RunaheadMode.NONE
        self._min_interval = ra.min_interval_cycles
        self._ra_cache_enabled = ra.runahead_cache_enabled
        # Functional-unit latency per UopClass index (ALU classes only).
        lat = [0] * NUM_UOP_CLASSES
        lat[CLS_IALU] = core.latency_ialu
        lat[CLS_IMUL] = core.latency_imul
        lat[CLS_IDIV] = core.latency_idiv
        lat[CLS_FADD] = core.latency_fadd
        lat[CLS_FMUL] = core.latency_fmul
        lat[CLS_FDIV] = core.latency_fdiv
        self._lat_by_cls = lat

        # Hot energy-event counters, folded into plain ints (merged with
        # the ``ev`` dict in _finalize_stats).  Cumulative across run()
        # calls, exactly like the dict entries they replace.
        self._ev_prf_write = 0
        self._ev_rs_wakeup = 0
        self._ev_rob_read = 0
        self._ev_issue = 0
        self._ev_agu = 0
        self._ev_alu = 0
        self._ev_prf_read = 0
        self._ev_rename = 0
        self._ev_rab_read = 0
        self._ev_fetch = 0
        self._ev_decode = 0
        self._ev_runahead_cache = 0
        self._ev_fu = [0] * NUM_UOP_CLASSES  # per-class FU activations

        # Analytics.
        self.stats = SimStats(workload=program.name)
        self.tracker = (
            DataflowTracker(self.stats.chains)
            if ra.collect_chain_stats else None
        )
        self._tracking = self.tracker is not None

        # Bookkeeping.
        self.now = 0
        self.seq = 0
        self.committed = 0
        self.dispatched_total = 0
        self.halted = False
        self._entry_declined_seq = -1
        self._last_progress = 0
        self.ev: dict[str, int] = {}
        # Optional observer called as commit_hook(uop, cycle) for every
        # architecturally committed instruction (see repro.core.trace).
        # Richer observability — typed event traces, Perfetto export,
        # occupancy sampling — attaches via repro.obs.Tracer, which
        # shadows cold-path methods per instance so this hot loop never
        # checks for it.
        self.commit_hook = None
        # Fast-forward lane default for this processor (None = resolve
        # from REPRO_FF_LANE / the built-in "jit" default at call time)
        # and cumulative host seconds spent translating blocks for it.
        self.ff_lane: Optional[str] = None
        self.ff_translate_seconds = 0.0
        # Cumulative instructions executed by fast_forward since
        # construction.  With committed == 0 this is the exact stream
        # position of the architectural state — the provenance the
        # checkpoint store keys on (repro.fastpath.checkpoint).
        self.ff_instructions = 0

    def set_cycle_hook(self, hook) -> None:
        """Install a debug observer called as ``hook(self)`` after every
        simulated cycle, by shadowing ``_step`` with an instance
        attribute — processors without a hook keep calling the class
        method directly, so the hot loop pays nothing when this is off
        (see repro.verify.invariants)."""
        step = type(self)._step

        def stepped() -> None:
            step(self)
            hook(self)

        self._step = stepped

    # ------------------------------------------------------------------
    # Warm-up / functional fast-forward (the two-tier engine's fast tier)
    # ------------------------------------------------------------------

    def sync_architectural(self) -> int:
        """Collapse all speculative state down to the architectural point
        and return its PC.

        Exits any runahead interval (restoring the checkpoint), squashes
        the in-flight window, rebuilds rename from the committed register
        values, and steers fetch to the oldest uncommitted instruction.
        Uncommitted stores live only in the store queue, so discarding the
        window leaves memory holding exactly the committed stores — the
        state a functional replay from the returned PC must start from.
        """
        if self.mode != "normal":
            # run() has already closed the policy interval if it returned
            # mid-runahead; _exit_runahead's second end_interval no-ops.
            self._exit_runahead(self.now)
        if self.rob:
            # Oldest uncommitted instruction.  An in-flight mispredict
            # would be resolved only behind it, so rob[0].pc is on the
            # committed path by construction.
            arch_pc = self.rob[0].pc
        elif self.decode_queue:
            # ROB empty => every branch older than the decode queue has
            # resolved and redirected, so decoded uops are correct-path.
            arch_pc = self.decode_queue[0][1].pc
        else:
            arch_pc = self.fetch.pc
        values = self.rename.arch_values()
        self._flush_pipeline()
        self.rename.reset_to_values(values)
        self.fetch.redirect(arch_pc, self.now)
        return arch_pc

    def fast_forward(self, instructions: int,
                     lane: Optional[str] = None) -> int:
        """Advance ``instructions`` functionally from the architectural
        point, warming caches and the branch predictor, then restart the
        detailed model from the resulting state.  Returns the number of
        instructions actually executed (stops at HALT).

        This is the fast tier of two-tier simulation (and the whole of
        pre-run warm-up).  Two lanes produce bit-identical warm state:

        * ``"jit"`` (default) — block-compiled execution
          (:mod:`repro.fastpath.blockjit`): each basic block / loop
          superblock / branch region is translated once to specialized
          Python and drives the hierarchy/predictor warm paths directly.
        * ``"interp"`` — the reference interpreter replays the committed
          path per-op (:meth:`Interpreter.run_warm`), feeding every
          instruction fetch, memory access, and branch outcome through
          per-op callbacks.

        ``lane`` overrides the processor default (``self.ff_lane``),
        which itself falls back to ``REPRO_FF_LANE`` and then ``"jit"``.
        """
        from ..fastpath.blockjit import (
            WarmTargets,
            program_translate_seconds,
            resolve_ff_lane,
        )
        lane = resolve_ff_lane(lane, self.ff_lane)
        if lane == "jit" and self.hierarchy.is_shared:
            # The jit lane's flattened warm helpers back-invalidate only
            # this core's L1s on clean LLC evictions; with a shared LLC
            # that would leave stale lines in sibling L1s.  The interp
            # lane routes through SharedLLC._on_evict, which is correct.
            lane = "interp"
        if self.halted or instructions <= 0:
            return 0
        self.sync_architectural()
        interp = Interpreter(self.program, self.memory,
                             regs=self.rename.arch_values())
        interp.pc = self.fetch.pc
        hierarchy = self.hierarchy
        predictor = self.predictor
        prev_taken: dict[int, bool] = {}
        warm_ifetch = hierarchy.warm_ifetch
        # Straight-line runs re-warm the same I-line 16x over; skip the
        # call when the line is the L1I's MRU entry with a warm (<= 0)
        # ready cycle.  Bit-identical: MRU-resident implies LLC-resident
        # (inclusive LLC back-invalidates the L1s and clears the MRU key),
        # so the skipped call would only re-merge an already-warm fill.
        l1i = hierarchy.l1i
        pc_line_shift = (hierarchy.l1i.line_bytes.bit_length() - 1
                         - (INST_BYTES.bit_length() - 1))

        def on_ifetch(pc: int) -> None:
            line = pc >> pc_line_shift
            if line == l1i._mru_key and l1i._mru_line.ready_cycle <= 0:
                return
            warm_ifetch(pc * INST_BYTES)

        def on_branch(pc: int, inst, taken: bool, next_pc: int) -> None:
            if inst.is_conditional_branch:
                mispred = prev_taken.get(pc, False) != taken
                predictor.update(pc, inst, taken, next_pc, mispred)
                prev_taken[pc] = taken
            elif inst.is_branch:
                predictor.update(pc, inst, True, next_pc, False)

        if lane == "jit":
            warm = WarmTargets(hierarchy=hierarchy, predictor=predictor,
                               prev_taken=prev_taken,
                               pc_line_shift=pc_line_shift)
            t0 = program_translate_seconds(self.program)
            executed = interp.run_warm_jit(
                instructions, on_ifetch=on_ifetch,
                on_mem=hierarchy.warm_load, on_branch=on_branch,
                warm=warm,
                translate_hook=getattr(self, "_ff_translate_hook", None))
            self.ff_translate_seconds += (
                program_translate_seconds(self.program) - t0)
        else:
            executed = interp.run_warm(instructions, on_ifetch=on_ifetch,
                                       on_mem=hierarchy.warm_load,
                                       on_branch=on_branch)
        self.rename.reset_to_values(interp.regs)
        self.fetch.redirect(interp.pc, self.now)
        self.halted = interp.halted
        self.ff_instructions += executed
        return executed

    def warm_up(self, instructions: int, lane: Optional[str] = None) -> int:
        """Fast-forward functionally before (or between) timed runs —
        kept as the historical name for the pre-run warm-up phase."""
        return self.fast_forward(instructions, lane=lane)

    # ------------------------------------------------------------------
    # Warm-state snapshots (repro.fastpath.checkpoint)
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Architectural + warm microarchitectural state as plain data.

        Collapses to the architectural point first (``sync_architectural``
        — safe mid-episode: any runahead interval is exited exactly as a
        fast-forward call would exit it), then captures the state the
        two-tier engine carries across a fast-forward gap: registers, PC,
        memory words, the full cache/DRAM/prefetcher hierarchy, the
        branch predictor, and the stream-position bookkeeping.  Run
        statistics (``SimStats``, energy counters, runahead-policy
        interval history) are deliberately *not* part of the format:
        a restored processor measures from zero, which is what the
        live-point engine's per-window delta merge needs.

        Refuses shared-hierarchy cores: the hierarchy snapshot assumes
        sole ownership of the LLC/DRAM/prefetcher state, and capturing a
        shared complex per-core would alias it into N checkpoints.
        """
        if self.hierarchy.is_shared:
            raise SharedHierarchyError(
                "Processor.snapshot() requires a private memory "
                "hierarchy; core %d shares its LLC/DRAM complex"
                % self.core_id)
        pc = self.sync_architectural()
        return {
            "pc": pc,
            "regs": tuple(self.rename.arch_values()),
            "memory": dict(self.memory._words),
            "memory_fill": self.memory.default_fill,
            "now": self.now,
            "seq": self.seq,
            "committed": self.committed,
            "halted": self.halted,
            "ff_instructions": self.ff_instructions,
            "hierarchy": self.hierarchy.snapshot(),
            "predictor": self.predictor.snapshot_state(),
        }

    def restore(self, snap: dict) -> None:
        """Load a :meth:`snapshot` into this processor.

        Intended target: a freshly constructed processor for the same
        program and geometry (the live-point window workers).  State
        outside the snapshot format — stats, energy counters, policy
        interval history — keeps its current values, so restoring onto a
        fresh processor yields a measure-from-zero replica of the
        snapshotted architectural + warm state.

        Like :meth:`snapshot`, refuses shared-hierarchy cores — a
        restore would clobber LLC/DRAM state other cores are using.
        """
        if self.hierarchy.is_shared:
            raise SharedHierarchyError(
                "Processor.restore() requires a private memory "
                "hierarchy; core %d shares its LLC/DRAM complex"
                % self.core_id)
        self.sync_architectural()
        self.memory._words = dict(snap["memory"])
        self.memory.default_fill = snap["memory_fill"]
        self.rename.reset_to_values(list(snap["regs"]))
        self.now = snap["now"]
        self.seq = snap["seq"]
        self.committed = snap["committed"]
        self._last_progress = self.now
        self.fetch.redirect(snap["pc"], self.now)
        self.halted = snap["halted"]
        self.ff_instructions = snap["ff_instructions"]
        self.hierarchy.restore(snap["hierarchy"])
        self.predictor.restore_state(snap["predictor"])

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self, max_instructions: int,
            max_cycles: Optional[int] = None) -> SimStats:
        """Simulate until ``max_instructions`` commit (or HALT)."""
        target = self.committed + max_instructions
        while not self.halted and self.committed < target:
            if max_cycles is not None and self.now >= max_cycles:
                break
            self._step()
            if self.now - self._last_progress > _WATCHDOG_CYCLES:
                raise RuntimeError(
                    f"no forward progress for {_WATCHDOG_CYCLES} cycles "
                    f"at cycle {self.now} (mode={self.mode})"
                )
        if self.ra_policy.current is not None:
            self._finish_interval()
        return self._finalize_stats()

    # -- one cycle ---------------------------------------------------------------

    def _step(self) -> None:
        now = self.now
        retries = self._retries
        while retries and retries[0][0] <= now:
            _at, _seq, uop = heapq.heappop(retries)
            if not uop.squashed and not uop.issued:
                self.ready.append(uop)
        # Each stage call is guarded by the same cheap emptiness check the
        # stage itself would bail on, so idle stages cost one comparison
        # instead of a function call.
        events = self.events
        if events and events[0][0] <= now:
            self._writeback(now)
        rob = self.rob
        mode = self.mode
        if mode == "normal":
            if rob and rob[0].completed:
                self._commit(now)
                if self.halted:
                    return
                rob = self.rob
            if not self._ra_mode_off:
                self._maybe_enter_runahead(now)
                mode = self.mode   # may have just entered a runahead mode
        else:
            self._pseudo_retire(now)
            if now >= self._exit_cycle:
                self._exit_runahead(now)
            mode = self.mode
            rob = self.rob
        if self.ready:
            self._issue(now)
        queue = self.decode_queue
        if mode == "rab":
            if queue:
                if queue[0][0] <= now:
                    self._dispatch_from_decode(now)
            elif now >= self._rab_start_cycle:
                self._dispatch_from_buffer(now)
        else:
            if queue and queue[0][0] <= now:
                self._dispatch_from_decode(now)
            if len(queue) < self.decode_queue_cap:
                fetch = self.fetch
                if (fetch.halted or fetch.wait_for_redirect
                        or now < fetch.stalled_until):
                    # fetch_cycle would return an empty group: account
                    # the idle cycle without paying for the call.
                    if self.mode == "normal":
                        self.stats.frontend_idle_cycles += 1
                else:
                    self._fetch_into_decode(now)

        # -- advance the clock, skipping provably idle stretches in bulk --
        nxt = now + 1
        mode = self.mode
        if not self.ready and not self.deferred_loads:
            # retries are handled via the candidate times below.
            best = self.events[0][0] if self.events else None
            if retries:
                t = retries[0][0]
                if best is None or t < best:
                    best = t
            queue = self.decode_queue
            if queue:
                t = queue[0][0]
                if best is None or t < best:
                    best = t
            fetch = self.fetch
            if (mode != "rab" and not fetch.halted
                    and not fetch.wait_for_redirect
                    and len(queue) < self.decode_queue_cap):
                t = fetch.stalled_until
                if t < nxt:
                    t = nxt
                if best is None or t < best:
                    best = t
            if mode == "rab":
                t = self._rab_start_cycle
                if t < nxt:
                    t = nxt
                if best is None or t < best:
                    best = t
            if mode != "normal":
                t = self._exit_cycle
                if best is None or t < best:
                    best = t
            if best is not None and best > nxt:
                nxt = best
        delta = nxt - now
        # Stall/mode accounting covers skipped cycles too: by construction
        # nothing changes during the skipped stretch.
        if mode == "runahead":
            self.stats.cycles_in_traditional += delta
        elif mode == "rab":
            self.stats.cycles_in_rab += delta
            self.stats.frontend_idle_cycles += delta
        rob = self.rob
        if rob:
            head = rob[0]
            if (not head.completed and head.inst.is_load
                    and head.level == "DRAM"):
                self.stats.memstall_cycles += delta
        self.now = nxt

    # ------------------------------------------------------------------
    # Writeback / branch resolution
    # ------------------------------------------------------------------

    def _writeback(self, now: int) -> None:
        events = self.events
        heappop = heapq.heappop
        while events and events[0][0] <= now:
            uop = heappop(events)[2]
            if uop.squashed or uop.completed:
                continue
            self._complete(uop, now)

    def _complete(self, uop: InFlightUop, now: int) -> None:
        uop.completed = True
        dest_phys = uop.dest_phys
        if dest_phys is not None:
            prf = self.prf
            prf.value[dest_phys] = uop.value
            prf.ready[dest_phys] = 1
            prf.poison[dest_phys] = 1 if uop.poisoned else 0
            self._ev_prf_write += 1
            waiters = self.waiters.pop(dest_phys, None)
            if waiters:
                ready = self.ready
                for waiter in waiters:
                    if waiter.squashed:
                        continue
                    waiter.waiting -= 1
                    if waiter.waiting == 0:
                        ready.append(waiter)
        self._ev_rs_wakeup += 1
        if uop.inst.is_store:
            # Address now known: deferred loads may proceed.
            if self.deferred_loads:
                self.ready.extend(
                    u for u in self.deferred_loads if not u.squashed
                )
                self.deferred_loads.clear()
        if self._tracking:
            self.tracker.note_exec(
                uop.seq, uop.pc, uop.producer_seqs,
                uop.inst.is_load and uop.level == "DRAM",
                uop.runahead,
            )
        if uop.inst.is_branch:
            self._resolve_branch(uop, now)

    def _resolve_branch(self, uop: InFlightUop, now: int) -> None:
        inst = uop.inst
        if uop.poisoned:
            # Sources poisoned during runahead: trust the prediction.
            self.stats.inv_ops += 1
            return
        if inst.is_conditional_branch:
            self.stats.cond_branches += 1
        mispredicted = uop.actual_next_pc != uop.predicted_next_pc
        uop.mispredicted = mispredicted
        self.predictor.update(
            uop.pc, inst, uop.taken, uop.actual_next_pc, mispredicted,
            ghr=uop.snapshot.ghr if uop.snapshot is not None else None,
        )
        if not mispredicted:
            return
        if uop.predicted_next_pc == -1:
            # Indirect target unknown at fetch: not a squash, fetch simply
            # waited for the resolve.
            self.fetch.redirect(uop.actual_next_pc, now + 1)
            return
        if uop.snapshot is not None:
            self.predictor.repair(uop.pc, inst, uop.taken, uop.snapshot)
        self._squash_younger(uop.seq)
        self.decode_queue.clear()
        self.fetch.redirect(uop.actual_next_pc, now + self._redirect_penalty)

    def _squash_younger(self, boundary_seq: int) -> None:
        rob = self.rob
        rat = self.rename.rat
        free = self.rename.free_list
        squashed = 0
        while rob and rob[-1].seq > boundary_seq:
            uop = rob.pop()
            uop.squashed = True
            squashed += 1
            if uop.dest_phys is not None:
                rat[uop.dest_arch] = uop.old_phys
                free.append(uop.dest_phys)
            if not uop.issued:
                self.rs_used -= 1
            if uop.inst.is_load:
                self.load_queue_used -= 1
        self.store_queue.squash_younger(boundary_seq)
        if self.deferred_loads:
            self.deferred_loads = [
                u for u in self.deferred_loads if not u.squashed
            ]
        self.stats.squashed_uops += squashed

    # ------------------------------------------------------------------
    # Commit (normal) and pseudo-retire (runahead)
    # ------------------------------------------------------------------

    def _commit(self, now: int) -> None:
        rob = self.rob
        rename = self.rename
        commit_rat = rename.commit_rat
        free_list = rename.free_list
        for _ in range(self.width):
            if not rob:
                break
            uop = rob[0]
            if not uop.completed:
                break
            rob.popleft()
            if uop.dest_phys is not None:
                if uop.old_phys is not None:
                    free_list.append(uop.old_phys)
                commit_rat[uop.dest_arch] = uop.dest_phys
            inst = uop.inst
            if inst.is_store:
                assert uop.mem_addr is not None
                self.memory.store(uop.mem_addr, uop.store_data)
                self.hierarchy.store_commit(uop.mem_addr, now)
                self.store_queue.pop_oldest(uop)
            elif inst.is_load:
                self.load_queue_used -= 1
            self._ev_rob_read += 1
            self.committed += 1
            self._last_progress = now
            if self.commit_hook is not None:
                self.commit_hook(uop, now)
            if inst.is_halt:
                self.halted = True
                break

    def _pseudo_retire(self, now: int) -> None:
        """Runahead retirement: drain the ROB without architectural effect;
        stores feed the runahead cache."""
        rob = self.rob
        rename = self.rename
        for _ in range(self.width):
            if not rob:
                break
            uop = rob[0]
            if not uop.completed:
                if (uop.issued and uop.inst.is_load
                        and uop.done_cycle - now > self._poison_latency):
                    # Runahead semantics: a load waiting on far-away data
                    # (a DRAM miss or a merge with an in-flight fill)
                    # becomes INV — poison its destination and pseudo-
                    # retire it; its prefetch is already in flight.
                    self._poison_head(uop)
                    self.stats.inv_ops += 1
                else:
                    break
            rob.popleft()
            if uop.dest_phys is not None and uop.old_phys is not None:
                rename.free(uop.old_phys)
            inst = uop.inst
            if inst.is_store:
                if (not uop.poisoned and uop.addr_known
                        and self._ra_cache_enabled):
                    assert uop.mem_addr is not None
                    self.runahead_cache.write(uop.mem_addr, uop.store_data)
                    self._ev_runahead_cache += 1
                self.store_queue.pop_oldest(uop)
            elif inst.is_load:
                self.load_queue_used -= 1
            self.stats.runahead_pseudo_retired += 1
            self._interval_pseudo_retired += 1
            if not uop.from_rab:
                self._interval_pseudo_retired_arch += 1
            self._last_progress = now

    # ------------------------------------------------------------------
    # Runahead entry / exit
    # ------------------------------------------------------------------

    def _window_stalled(self) -> bool:
        """True when the out-of-order window cannot grow further: the ROB
        is full, or a secondary structure (RS/LSQ) has filled behind the
        blocking miss."""
        return (
            len(self.rob) >= self._rob_size
            or self.rs_used >= self._rs_size
            or self.store_queue.full()
            or self.load_queue_used >= self._lq_size
        )

    def _maybe_enter_runahead(self, now: int) -> None:
        if self._ra_mode_off:
            return
        rob = self.rob
        if not rob:
            return
        # Cheapest checks first; none of them have side effects, so the
        # order is free to differ from the logical entry conditions.
        head = rob[0]
        if head.completed or not head.inst.is_load or head.level != "DRAM":
            return
        if not self._window_stalled():
            return
        if head.merged:
            # The line is already on its way (e.g. an in-flight prefetch):
            # the remaining stall is not worth a runahead interval.
            return
        if head.seq == self._entry_declined_seq:
            return
        ra = self.config.runahead
        remaining = head.done_cycle - now
        if remaining < self._min_interval:
            self._entry_declined_seq = head.seq
            return
        use_enhancements = ra.enhancements
        if use_enhancements and ra.mode is not RunaheadMode.HYBRID:
            if not self.ra_policy.enhancements_allow(
                self.committed, head.miss_issue_retired
            ):
                self._entry_declined_seq = head.seq
                return

        mode = ra.mode
        if mode is RunaheadMode.TRADITIONAL:
            self._enter_traditional(head, now)
            return

        # Buffer modes: consult the chain cache, then Algorithm 1.
        chain: Optional[tuple[ChainUop, ...]] = None
        gen_cycles = 1
        used_cc = False
        ev = self.ev
        if self.chain_cache is not None:
            cached = self.chain_cache.lookup(head.pc)
            ev["chain_cache_read"] = ev.get("chain_cache_read", 0) + 1
            if cached is not None:
                chain = cached
                used_cc = True
                if ra.collect_chain_stats:
                    self._check_chain_cache_accuracy(head, cached)
        if chain is None:
            result = self._generate_chain(head)
            gen_cycles = result.cycles
            if mode is RunaheadMode.HYBRID:
                if not result.found_pc or result.hit_cap:
                    # Fig. 8 fallback: traditional runahead (gated by the
                    # enhancement filters, which the hybrid policy uses).
                    if self.ra_policy.enhancements_allow(
                        self.committed, head.miss_issue_retired
                    ):
                        self.ra_policy.hybrid_traditional_entries += 1
                        self._enter_traditional(head, now)
                    else:
                        self._entry_declined_seq = head.seq
                    return
                chain = result.chain
                self.ra_policy.hybrid_chain_entries += 1
            else:
                if not result.usable:
                    self.ra_policy.entries_blocked_no_chain += 1
                    self._entry_declined_seq = head.seq
                    return
                chain = result.chain
            if self.chain_cache is not None and chain:
                self.chain_cache.insert(head.pc, chain)
                ev["chain_cache_write"] = ev.get("chain_cache_write", 0) + 1
        elif mode is RunaheadMode.HYBRID:
            self.ra_policy.hybrid_cc_entries += 1
        if not chain:
            self.ra_policy.entries_blocked_no_chain += 1
            self._entry_declined_seq = head.seq
            return
        self._enter_rab(head, chain, gen_cycles, used_cc, now)

    def _generate_chain(self, head: InFlightUop):
        """Run Algorithm 1 against the stalled ROB and account the
        generation's energy events.  Kept as a separate method so the
        observability layer (:mod:`repro.obs`) can shadow it per
        instance to record chain-extraction events."""
        ra = self.config.runahead
        result = generate_chain(
            self.rob, head, self.store_queue,
            max_length=ra.max_chain_length,
            reg_searches_per_cycle=ra.reg_searches_per_cycle,
            readout_width=ra.chain_readout_width,
        )
        self.stats.chain_generations += 1
        ev = self.ev
        ev["pc_cam"] = ev.get("pc_cam", 0) + 1
        ev["destreg_cam"] = ev.get("destreg_cam", 0) + result.reg_searches
        ev["sq_cam"] = ev.get("sq_cam", 0) + result.sq_searches
        ev["rob_read"] = ev.get("rob_read", 0) + len(result.chain)
        self.stats.chain_gen_cycles += result.cycles
        return result

    def _check_chain_cache_accuracy(
        self, head: InFlightUop, cached: tuple[ChainUop, ...]
    ) -> None:
        """Fig. 13 instrumentation: does the cached chain equal the chain
        Algorithm 1 would generate right now?  Analysis only."""
        ra = self.config.runahead
        fresh = generate_chain(
            self.rob, head, self.store_queue,
            max_length=ra.max_chain_length,
            reg_searches_per_cycle=ra.reg_searches_per_cycle,
            readout_width=ra.chain_readout_width,
        )
        self.ra_policy.cc_hits_checked += 1
        if fresh.usable and chain_signature(fresh.chain) == chain_signature(cached):
            self.ra_policy.cc_hits_exact += 1

    def _take_checkpoint(self, head: InFlightUop, now: int) -> None:
        self._checkpoint = self.rename.arch_values()
        self._predictor_checkpoint = self.predictor.checkpoint_full()
        self._blocking_pc = head.pc
        self._exit_cycle = head.done_cycle
        self._interval_pseudo_retired = 0
        self._interval_pseudo_retired_arch = 0
        self._committed_at_entry = self.committed
        self.runahead_cache.clear()
        self.ev["checkpoint"] = self.ev.get("checkpoint", 0) + 1

    def _poison_head(self, head: InFlightUop) -> None:
        """Mark the blocking load INV: complete it with a poisoned dest so
        pseudo-retirement can drain past it."""
        head.poisoned = True
        head.completed = True
        if head.dest_phys is not None:
            self.prf.write(head.dest_phys, 0, poisoned=True)
            waiters = self.waiters.pop(head.dest_phys, None)
            if waiters:
                for waiter in waiters:
                    if waiter.squashed:
                        continue
                    waiter.waiting -= 1
                    if waiter.waiting == 0:
                        self.ready.append(waiter)

    def _enter_traditional(self, head: InFlightUop, now: int) -> None:
        self._take_checkpoint(head, now)
        self._poison_head(head)
        self.mode = "runahead"
        self._in_ra = True
        self.stats.traditional_intervals += 1
        self.ra_policy.begin_interval("traditional", now)
        if self.tracker is not None:
            self.tracker.begin_interval()

    def _enter_rab(self, head: InFlightUop, chain: tuple[ChainUop, ...],
                   gen_cycles: int, used_cc: bool, now: int) -> None:
        """Enter runahead-buffer mode (§4.3).

        Like traditional runahead, the in-flight window keeps executing
        and pseudo-retires — only the *supply* of new uops changes: the
        front-end is clock-gated and, once the decode pipe drains, rename
        pulls decoded uops from the runahead buffer.  Chain live-ins thus
        rename to the youngest in-flight producers, so the looped chain
        continues from the furthest point the window reached."""
        self._take_checkpoint(head, now)
        self._poison_head(head)
        self.fetch.wait_for_redirect = True   # clock-gate the front-end
        self.rab.load_chain(chain)
        self._rab_start_cycle = now + gen_cycles
        self.mode = "rab"
        self._in_ra = True
        self.stats.rab_intervals += 1
        self.ra_policy.begin_interval(
            "buffer", now, chain_gen_cycles=gen_cycles, used_chain_cache=used_cc
        )

    def _flush_pipeline(self) -> None:
        for uop in self.rob:
            uop.squashed = True
        self.stats.squashed_uops += len(self.rob)
        self.rob.clear()
        self.store_queue.clear()
        self.load_queue_used = 0
        self.rs_used = 0
        self.ready.clear()
        self.deferred_loads.clear()
        self._retries.clear()
        self.waiters.clear()
        self.decode_queue.clear()
        self.fetch.flush()

    def _finish_interval(self) -> None:
        self.ra_policy.end_interval(
            self.now, self._committed_at_entry, self._interval_pseudo_retired,
            program_distance=self._interval_pseudo_retired_arch,
        )

    def _exit_runahead(self, now: int) -> None:
        was_rab = self.mode == "rab"
        if self.tracker is not None and not was_rab:
            self.tracker.end_interval()
        self._finish_interval()
        self._flush_pipeline()
        assert self._checkpoint is not None
        self.rename.reset_to_values(self._checkpoint)
        if self._predictor_checkpoint is not None:
            self.predictor.restore_full(self._predictor_checkpoint)
        self.rab.deactivate()
        self.mode = "normal"
        self._in_ra = False
        self.fetch.redirect(self._blocking_pc, now + 1)
        self._checkpoint = None
        self._exit_cycle = -1
        self._last_progress = now

    # ------------------------------------------------------------------
    # Issue / execute
    # ------------------------------------------------------------------

    def _issue(self, now: int) -> None:
        ready = self.ready
        if not ready:
            return
        budget = self.width
        # Per-port budgets, indexed by the statically decoded port class.
        ports = list(self._port_limits)
        skipped: Optional[list[InFlightUop]] = None
        while ready and budget > 0:
            uop = ready.popleft()
            if uop.squashed:
                continue
            if uop.issued:
                if (uop.inst.is_store and uop.addr_known
                        and not uop.data_known and not uop.completed):
                    # STD: the store's data operand has arrived.
                    data, data_poison = self._read_operand(uop.src2_phys)
                    uop.store_data = data
                    uop.data_known = True
                    if data_poison and self._in_ra:
                        uop.poisoned = True
                    heapq.heappush(self.events, (now + 1, uop.seq, uop))
                continue
            port_cls = uop.inst.port_class
            if ports[port_cls] <= 0:
                if skipped is None:
                    skipped = [uop]
                else:
                    skipped.append(uop)
                continue
            ports[port_cls] -= 1
            budget -= 1
            if self._execute(uop, now):
                uop.issued = True
                self.rs_used -= 1
                self._ev_issue += 1
        if skipped is not None:
            for uop in reversed(skipped):
                ready.appendleft(uop)

    def _read_operand(self, phys: Optional[int]) -> tuple[int, bool]:
        if phys is None:
            return 0, False
        prf = self.prf
        return prf.value[phys], bool(prf.poison[phys])

    def _execute(self, uop: InFlightUop, now: int) -> bool:
        """Functionally execute and schedule completion.  Returns False if
        the uop must be re-tried later (memory disambiguation wait)."""
        inst = uop.inst
        cls = inst.cls_idx
        prf = self.prf
        value = prf.value
        poison = prf.poison
        s1 = uop.src1_phys
        s2 = uop.src2_phys
        if s1 is not None:
            a = value[s1]
            a_poison = poison[s1]
            nsrc = 1
        else:
            a = 0
            a_poison = 0
            nsrc = 0
        if s2 is not None:
            b = value[s2]
            b_poison = poison[s2]
            nsrc += 1
        else:
            b = 0
            b_poison = 0
        in_runahead = self._in_ra
        poisoned = bool(a_poison or b_poison) and in_runahead

        if cls == CLS_LOAD:
            if poisoned:
                # INV load: no memory access (address is garbage).
                uop.poisoned = True
                uop.value = 0
                self.stats.inv_ops += 1
                done = now + self._lat_agu + 1
            else:
                done = self._execute_load(uop, a, now)
                if done < 0:
                    return False
            self._ev_agu += 1
        elif cls == CLS_STORE:
            self._ev_agu += 1
            if a_poison and in_runahead:
                # INV store: the address is garbage, drop it.
                uop.poisoned = True
                self.stats.inv_ops += 1
                done = now + self._lat_agu
            else:
                uop.mem_addr = (a + inst.imm) & MASK64
                uop.addr_known = True
                if self.deferred_loads:
                    # Disambiguation: blocked loads may re-try now.
                    self.ready.extend(
                        u for u in self.deferred_loads if not u.squashed
                    )
                    self.deferred_loads.clear()
                if s2 is None or prf.ready[s2]:
                    uop.store_data = b
                    uop.data_known = True
                    if b_poison and in_runahead:
                        uop.poisoned = True
                    done = now + self._lat_agu
                else:
                    # STA done; STD waits for the data operand.
                    uop.waiting = 1
                    self.waiters.setdefault(s2, []).append(uop)
                    uop.done_cycle = 0
                    return True
        elif cls == CLS_BRANCH:
            uop.poisoned = poisoned
            if inst.is_conditional_branch:
                uop.taken = taken = (False if poisoned
                                     else inst.taken_fn(inst, a, b))
            else:
                uop.taken = taken = True
            if inst.is_call:
                uop.value = uop.pc + 1
            if not poisoned:
                # Inline branch_target: indirect targets come from rs1,
                # taken branches from the static target, else fall through.
                if inst.is_indirect:
                    uop.actual_next_pc = a & MASK64
                elif taken:
                    uop.actual_next_pc = inst.target
                else:
                    uop.actual_next_pc = uop.pc + 1
            done = now + self._lat_branch
            self._ev_alu += 1
        elif cls >= CLS_NOP:       # NOP and the dispatch-only CLS_HALT
            done = now + 1
        else:
            uop.poisoned = poisoned
            uop.value = 0 if poisoned else inst.alu_fn(inst, a, b)
            done = now + self._lat_by_cls[cls]
            self._ev_fu[cls] += 1

        if nsrc:
            self._ev_prf_read += nsrc
        uop.done_cycle = done
        heapq.heappush(self.events, (done, uop.seq, uop))
        return True

    def _execute_load(self, uop: InFlightUop, base: int, now: int) -> int:
        """Returns the completion cycle, or -1 to defer (disambiguation)."""
        addr = (base + uop.inst.imm) & MASK64
        uop.mem_addr = addr
        uop.addr_known = True
        result, store = self.store_queue.search(addr >> 3, uop.seq)
        if result is ForwardResult.WAIT:
            uop.deferred = True
            self.deferred_loads.append(uop)
            return -1
        t_access = now + self._lat_agu
        in_runahead = self._in_ra
        if result is ForwardResult.FORWARD:
            assert store is not None
            uop.value = store.store_data
            uop.poisoned = store.poisoned and in_runahead
            uop.forwarded = True
            return t_access + self._l1d_latency
        if in_runahead and self._ra_cache_enabled:
            cached = self.runahead_cache.read(addr)
            self._ev_runahead_cache += 1
            if cached is not None:
                uop.value = cached
                return t_access + self._l1d_latency
        kind = "runahead" if in_runahead else "demand"
        access = self.hierarchy.load(addr, t_access, kind=kind)
        if access.level == "RETRY":
            # All LLC MSHRs busy: re-issue when one frees.  This is the
            # backpressure that bounds runahead's miss generation.
            heapq.heappush(self._retries,
                           (access.done_cycle + 1, uop.seq, uop))
            return -1
        uop.level = access.level
        uop.merged = access.merged
        uop.value = self.memory.load(addr)
        if access.level == "DRAM" and not access.merged:
            uop.miss_issue_retired = self.committed
        if in_runahead:
            if access.done_cycle - t_access > self._poison_latency:
                # The data cannot return within a useful horizon (a fresh
                # miss, or a merge with an in-flight fill): mark INV and
                # move on — the prefetch effect is already in flight.
                uop.poisoned = True
                self.stats.inv_ops += 1
                if access.level == "DRAM" and not access.merged:
                    self.stats.runahead_misses_generated += 1
                    record = self.ra_policy.current
                    if record is not None:
                        record.misses_generated += 1
                    if self.mode == "rab":
                        self.stats.runahead_misses_rab += 1
                    else:
                        self.stats.runahead_misses_traditional += 1
                return t_access + self._l1d_latency + 1
        elif (self._tracking and access.level == "DRAM"
                and not access.merged):
            self.tracker.classify_demand_miss(uop.seq, uop.producer_seqs)
        return access.done_cycle

    # ------------------------------------------------------------------
    # Rename / dispatch
    # ------------------------------------------------------------------

    def _resources_available(self, inst) -> bool:
        if len(self.rob) >= self._rob_size:
            return False
        if self.rs_used >= self._rs_size:
            return False
        if inst.dest_reg is not None and not self.rename.free_list:
            return False
        if inst.is_load and self.load_queue_used >= self._lq_size:
            return False
        if inst.is_store and self.store_queue.full():
            return False
        return True

    def _rename_dispatch(self, pc: int, inst, fetched: Optional[FetchedUop],
                         now: int, from_rab: bool) -> InFlightUop:
        rename = self.rename
        prf = self.prf
        uop = InFlightUop(self.seq, pc, inst)
        self.seq += 1
        uop.runahead = self._in_ra
        uop.from_rab = from_rab

        rat = rename.rat
        ready_bits = prf.ready
        waiters = self.waiters
        src1 = inst.src1
        src2 = inst.src2
        tracking = self._tracking
        waiting = 0
        producers = [] if tracking else None
        if src1 is not None:
            phys = rat[src1]
            uop.src1_phys = phys
            if tracking:
                producers.append(prf.producer_seq[phys])
            if not ready_bits[phys]:
                waiting = 1
                waiters.setdefault(phys, []).append(uop)
        if src2 is not None:
            phys = rat[src2]
            uop.src2_phys = phys
            if tracking:
                producers.append(prf.producer_seq[phys])
            # STA/STD split: a store's data operand does not gate issue —
            # the address computes as soon as rs1 is ready; the data is
            # picked up when it arrives (see _issue / _execute).
            if not ready_bits[phys] and not inst.is_store:
                waiting += 1
                waiters.setdefault(phys, []).append(uop)
        if tracking:
            uop.producer_seqs = tuple(producers)

        dest = inst.dest_reg
        if dest is not None:
            new_phys = rename.free_list.pop()
            uop.dest_arch = dest
            uop.dest_phys = new_phys
            uop.old_phys = rat[dest]
            rat[dest] = new_phys
            # Inlined prf.mark_pending(new_phys, uop.seq).
            ready_bits[new_phys] = 0
            prf.poison[new_phys] = 0
            prf.producer_seq[new_phys] = uop.seq

        if fetched is not None:
            uop.predicted_next_pc = fetched.predicted_next_pc
            uop.predicted_taken = fetched.predicted_taken
            uop.snapshot = fetched.snapshot

        uop.waiting = waiting
        self.rob.append(uop)
        if inst.is_load:
            self.load_queue_used += 1
        elif inst.is_store:
            self.store_queue.push(uop)
        if waiting == 0:
            self.ready.append(uop)
        self.rs_used += 1
        # One counter stands in for every always-equal per-dispatch count
        # (rename, rs_dispatch, rob_write, dispatched_uops/total); they
        # are fanned back out in _finalize_stats.
        self._ev_rename += 1
        return uop

    def _dispatch_from_decode(self, now: int) -> None:
        queue = self.decode_queue
        rob = self.rob
        free_list = self.rename.free_list
        store_queue = self.store_queue
        for _ in range(self.width):
            if not queue:
                break
            entry = queue[0]
            if entry[0] > now:
                break
            fetched = entry[1]
            inst = fetched.inst
            # Inlined _resources_available (kept in sync with the method,
            # which the buffer dispatcher still uses).
            if (len(rob) >= self._rob_size
                    or self.rs_used >= self._rs_size
                    or (inst.dest_reg is not None and not free_list)
                    or (inst.is_load
                        and self.load_queue_used >= self._lq_size)
                    or (inst.is_store and store_queue.full())):
                break
            queue.popleft()
            self._rename_dispatch(fetched.pc, inst, fetched, now,
                                  from_rab=False)

    def _dispatch_from_buffer(self, now: int) -> None:
        rab = self.rab
        if not rab.active:
            return
        for _ in range(self.width):
            chain_uop = rab.peek()
            if not self._resources_available(chain_uop.inst):
                break
            rab.take()
            self._rename_dispatch(chain_uop.pc, chain_uop.inst, None, now,
                                  from_rab=True)
            self._ev_rab_read += 1

    # ------------------------------------------------------------------
    # Fetch
    # ------------------------------------------------------------------

    def _fetch_into_decode(self, now: int) -> None:
        space = self.decode_queue_cap - len(self.decode_queue)
        if space <= 0:
            return
        group = self.fetch.fetch_cycle(now, budget=min(self.width, space))
        if not group:
            if self.mode == "normal":
                self.stats.frontend_idle_cycles += 1
            return
        ready_at = now + self._fetch_to_rename
        n = len(group)
        self._ev_fetch += n
        self._ev_decode += n
        append = self.decode_queue.append
        for fetched in group:
            append((ready_at, fetched))

    # ------------------------------------------------------------------
    # Final statistics
    # ------------------------------------------------------------------

    def _finalize_stats(self) -> SimStats:
        s = self.stats
        s.cycles = self.now
        s.committed_insts = self.committed
        s.config_name = s.config_name or self.config.runahead.mode.value
        # Branch predictor.
        s.cond_mispredicts = self.predictor.stats.cond_mispredicts
        if not s.cond_branches:
            s.cond_branches = self.predictor.stats.cond_predictions
        # Caches.
        h = self.hierarchy
        s.l1d_accesses = h.l1d.stats.accesses
        s.l1d_misses = h.l1d.stats.misses
        s.l1i_accesses = h.l1i.stats.accesses
        if h.is_shared:
            # Shared LLC/DRAM complex: the Cache/Dram stats objects mix
            # every connected core, so this core's SimStats read its
            # CoreAccount slice instead.  Row-buffer behaviour is a
            # property of the shared banks, not of one core — those
            # fields stay 0 here and are reported at the System level.
            a = h._acct
            s.llc_accesses = a.accesses
            s.llc_hits = a.hits
            llc_fill_hits = a.fill_hits
            s.llc_demand_misses = h.demand_llc_misses()
            s.llc_misses_by_kind = dict(h.llc_misses)
            s.dram_reads = a.dram_reads
            s.dram_writes = a.dram_writes
            s.dram_by_kind = dict(a.dram_by_kind)
            if h.prefetcher is not None:
                s.prefetches_issued = a.prefetches_issued
        else:
            s.llc_accesses = h.llc.stats.accesses
            s.llc_hits = h.llc.stats.hits
            llc_fill_hits = h.llc.stats.fill_hits
            s.llc_demand_misses = h.demand_llc_misses()
            s.llc_misses_by_kind = dict(h.llc_misses)
            # DRAM.
            d = h.controller.stats
            s.dram_reads = d.reads
            s.dram_writes = d.writes
            s.dram_row_hits = d.row_hits
            s.dram_row_conflicts = d.row_conflicts
            s.dram_activates = d.activates
            s.dram_by_kind = dict(d.by_kind)
            # Prefetcher.
            if h.prefetcher is not None:
                s.prefetches_issued = h.prefetcher.stats.issued
                s.prefetches_useful = h.prefetcher.stats.useful
        # Runahead.
        policy = self.ra_policy
        s.runahead_intervals = policy.interval_count()
        s.entries_blocked_enh = (
            policy.entries_blocked_short + policy.entries_blocked_overlap
        )
        s.entries_blocked_no_chain = policy.entries_blocked_no_chain
        s.rab_iterations = self.rab.iterations_started
        if self.chain_cache is not None:
            s.chain_cache_hits = self.chain_cache.hits
            s.chain_cache_misses = self.chain_cache.misses
        s.chain_cache_checked_hits = policy.cc_hits_checked
        s.chain_cache_exact_hits = policy.cc_hits_exact
        # Energy events: core-side counters plus memory-side structures.
        # Hot counters are folded into int attributes during simulation;
        # merge them with the (cold-path) dict entries here.  Both are
        # cumulative, so repeated run() calls stay correct.
        events = dict(self.ev)
        fu = self._ev_fu
        dispatch_n = self._ev_rename
        for key, count in (
            ("prf_write", self._ev_prf_write),
            ("rs_wakeup", self._ev_rs_wakeup),
            ("rob_read", self._ev_rob_read),
            ("issue", self._ev_issue),
            ("agu", self._ev_agu),
            ("alu", self._ev_alu + fu[CLS_IALU]),
            ("mul", fu[CLS_IMUL]),
            ("div", fu[CLS_IDIV]),
            ("fpu", fu[CLS_FADD] + fu[CLS_FMUL] + fu[CLS_FDIV]),
            ("prf_read", self._ev_prf_read),
            ("rename", dispatch_n),
            ("rs_dispatch", dispatch_n),
            ("rob_write", dispatch_n),
            ("rab_read", self._ev_rab_read),
            ("fetch", self._ev_fetch),
            ("decode", self._ev_decode),
            ("runahead_cache", self._ev_runahead_cache),
        ):
            if count:
                events[key] = events.get(key, 0) + count
        # These stats are always-equal mirrors of the folded counters.
        s.dispatched_uops = dispatch_n
        self.dispatched_total = dispatch_n
        s.issued_uops = self._ev_issue
        s.fetched_uops = self._ev_fetch
        events["l1d_access"] = s.l1d_accesses
        events["l1i_access"] = s.l1i_accesses
        events["llc_access"] = s.llc_accesses + llc_fill_hits
        events["dram_access"] = s.dram_reads + s.dram_writes
        events["dram_activate"] = s.dram_activates
        s.energy_events = events
        return s
