"""Synthetic kernel builders.

Each builder assembles a small mini-ISA program whose *memory behaviour*
mimics a class of SPEC CPU2006 benchmarks (see ``spec.py`` for the
per-benchmark tuning).  The kernels share register conventions:

========  ==========================================
R1-R8     array cursors / address registers
R9-R19    dependence-chain temporaries
R16-R23   filler (off-chain) temporaries
R24-R30   loop bounds and constants
========  ==========================================

Address-generating structures (pointer arrays, index arrays, hash tables)
are *not* initialised in memory: loads of uninitialised words return
deterministic address-derived junk (see :class:`repro.isa.DataMemory`),
which — masked into a region — behaves like a random pointer/index
structure at zero set-up cost.  Only values that feed *addresses* matter
for miss behaviour; accumulated data values may be junk.
"""

from __future__ import annotations

from ..isa import ProgramBuilder
from .base import Workload, region_base

_LINE_SHIFT = 6  # mask selects a 64-byte line within a region


def _mask_for(region_bytes: int) -> int:
    """Mask picking a random line index within ``region_bytes``."""
    lines = region_bytes >> _LINE_SHIFT
    return lines - 1


def _emit_filler(b: ProgramBuilder, fp: int, ints: int, serial_fp: bool,
                 src_reg: int = 9) -> None:
    """Emit off-chain filler work.

    ``serial_fp=True`` chains the FP ops on one register (latency-bound,
    low-IPC benchmarks); otherwise they spread across temporaries.
    """
    temps = (16, 17, 18, 19, 20, 21, 22, 23)
    for i in range(fp):
        dst = temps[0] if serial_fp else temps[i % len(temps)]
        # Couple only a quarter of the work to the freshly loaded value:
        # stencil/stream codes compute mostly on already-cached operands.
        src = src_reg if i % 4 == 0 else temps[(i + 3) % len(temps)]
        if i % 2:
            b.fmul(dst, dst, src)
        else:
            b.fadd(dst, dst, src)
    for i in range(ints):
        dst = temps[(i + 4) % len(temps)]
        src = src_reg if i % 4 == 0 else temps[(i + 1) % len(temps)]
        if i % 3 == 0:
            b.xor(dst, dst, src)
        elif i % 3 == 1:
            b.add(dst, dst, src)
        else:
            b.sub(dst, dst, src)


def streaming(
    name: str,
    num_arrays: int = 1,
    array_bytes: int = 8 << 20,
    filler_fp: int = 0,
    filler_int: int = 0,
    store: bool = False,
    stencil_taps: int = 1,
    serial_fp: bool = False,
    segment_elems: int = 0,
    segment_gap_bytes: int = 8192,
    description: str = "",
) -> Workload:
    """Sequential sweep over ``num_arrays`` large arrays (libquantum, lbm,
    bwaves, and — with ``stencil_taps > 1`` — the stencil codes).

    One new cache line per array every 8 iterations; dependence chains are
    the 2-uop induction+load pattern, maximally repetitive and maximally
    prefetcher-friendly.

    ``segment_elems > 0`` models a 2D grid walked row by row: after every
    ``segment_elems`` elements the cursors jump by ``segment_gap_bytes``
    (the next row).  A stream prefetcher loses the stream at each
    boundary — it overshoots into the gap (the paper's inaccurate-PF
    traffic) and pays a retraining period — whereas runahead follows the
    program's own code across the boundary.  The runahead buffer's looped
    chain, which omits the boundary branch, runs straight past a row end:
    the source of its mild traffic inaccuracy on stencils (Fig. 16).
    """
    if not 1 <= num_arrays <= 5:
        raise ValueError("num_arrays must be in 1..5")
    if segment_elems and segment_elems & (segment_elems - 1):
        raise ValueError("segment_elems must be a power of two")
    b = ProgramBuilder()
    b.label("start")
    if segment_elems:
        b.li(30, 0)                              # element counter
        b.li(25, segment_elems - 1)
        b.li(26, segment_gap_bytes)
    b.label("init")
    for a in range(num_arrays):
        b.li(1 + a, region_base(a))
    b.li(24, region_base(0) + array_bytes)
    if store:
        b.li(8, region_base(num_arrays))
    b.label("loop")
    for a in range(num_arrays):
        cursor = 1 + a
        for tap in range(stencil_taps):
            b.load(9 + (a + tap) % 7, cursor, tap * 8)
    _emit_filler(b, filler_fp, filler_int, serial_fp)
    if store:
        b.store(9, 8, 0)
        b.addi(8, 8, 8)
    for a in range(num_arrays):
        b.addi(1 + a, 1 + a, 8)
    if segment_elems:
        b.addi(30, 30, 1)
        b.and_(29, 30, 25)
        b.bne(29, 0, "no_gap")                   # row boundary reached?
        for a in range(num_arrays):
            b.add(1 + a, 1 + a, 26)
        if store:
            b.add(8, 8, 26)
        b.label("no_gap")
    b.blt(1, 24, "loop")
    b.jmp("init")
    return Workload(name, b.build(entry="start", name=name),
                    description=description or "sequential streaming sweep")


def gather(
    name: str,
    index_region_bytes: int = 8 << 20,
    data_region_bytes: int = 32 << 20,
    deref_depth: int = 1,
    filler_fp: int = 0,
    filler_int: int = 0,
    store: bool = False,
    serial_fp: bool = False,
    description: str = "",
) -> Workload:
    """Indirect gather ``A[B[i]]`` (mcf's arc walks, milc/soplex gathers).

    The index array streams (prefetchable); the dereference lands on a
    random line of a large region (not prefetchable).  The address chain
    is short (induction -> index load -> mask/scale -> deref), exactly the
    repetitive filtered chain the runahead buffer targets.  With
    ``deref_depth=2`` the loaded junk seeds a second dereference.
    """
    if not 1 <= deref_depth <= 3:
        raise ValueError("deref_depth must be in 1..3")
    b = ProgramBuilder()
    mask = _mask_for(data_region_bytes)
    b.label("init")
    b.li(1, region_base(0))                      # index-array cursor
    b.li(24, region_base(0) + index_region_bytes)
    b.li(26, region_base(1))                     # data region base
    b.li(27, _LINE_SHIFT)
    if store:
        b.li(8, region_base(2))
    b.label("loop")
    b.load(9, 1, 0)                              # B[i] (junk index)
    value_reg = 9
    for _level in range(deref_depth):
        # Static register reuse across levels is fine: renaming keeps the
        # dynamic chain exact, and chain generation walks physical regs.
        b.andi(10, value_reg, mask)              # line index in region
        b.shl(11, 10, 27)                        # *64
        b.add(12, 11, 26)                        # + base
        b.load(13, 12, 0)                        # A[...] (random line)
        value_reg = 13
    _emit_filler(b, filler_fp, filler_int, serial_fp, src_reg=value_reg)
    if store:
        b.store(value_reg, 8, 0)
        b.addi(8, 8, 8)
    b.addi(1, 1, 8)
    b.bne(1, 24, "loop")
    b.jmp("init")
    return Workload(name, b.build(entry="init", name=name),
                    description=description or "indirect gather A[B[i]]")


def dependent_walk(
    name: str,
    seed_region_bytes: int = 8 << 20,
    data_region_bytes: "int | list[int]" = 32 << 20,
    depth: int = 2,
    filler_fp: int = 2,
    filler_int: int = 0,
    description: str = "",
) -> Workload:
    """Pointer-chasing walk reseeded from a streamed array (sphinx3-like
    search structures).

    Each outer iteration performs ``depth`` *serially dependent* loads:
    level *k+1*'s address derives from level *k*'s loaded data.  Levels
    beyond the first have their source data off chip, the part of Fig. 2
    runahead cannot target; the runahead buffer replays the walk but only
    the first level's address is sound — later levels go to junk
    addresses, producing the inaccurate-traffic behaviour the paper
    reports for sphinx.
    """
    if depth < 1:
        raise ValueError("depth must be >= 1")
    if isinstance(data_region_bytes, int):
        level_bytes = [data_region_bytes] * depth
    else:
        level_bytes = list(data_region_bytes)
        if len(level_bytes) != depth:
            raise ValueError("need one region size per level")
    b = ProgramBuilder()
    b.label("init")
    b.li(1, region_base(0))
    b.li(24, region_base(0) + seed_region_bytes)
    for level in range(depth):
        b.li(26 + level, region_base(1 + level))
    b.li(30, _LINE_SHIFT)
    b.label("loop")
    b.load(9, 1, 0)                              # seed (streams)
    value_reg = 9
    for level in range(depth):
        b.andi(10, value_reg, _mask_for(level_bytes[level]))
        b.shl(11, 10, 30)
        b.add(12, 11, 26 + level)
        b.load(13, 12, 0)
        value_reg = 13
    _emit_filler(b, filler_fp, filler_int, False, src_reg=value_reg)
    b.addi(1, 1, 8)
    b.bne(1, 24, "loop")
    b.jmp("init")
    return Workload(name, b.build(entry="init", name=name),
                    description=description or "serially dependent walk")


def hash_probe(
    name: str,
    table_bytes: int = 32 << 20,
    hash_rounds: int = 16,
    stateful: bool = False,
    iterations: int = 1 << 30,
    description: str = "",
) -> Workload:
    """Hash-table probing with a long address-computation chain
    (omnetpp-like).

    The probe address is a many-round mix of the iteration counter, so the
    miss's dependence chain is *long* (2 uops per round + the load — with
    the default 16 rounds it exceeds the paper's 32-uop chain cap).  That
    reproduces omnetpp's signature behaviour: traditional runahead
    (following the front-end) prefetches accurately, while the runahead
    buffer must truncate the chain — its loop then recomputes a fixed
    address and generates no MLP — and the hybrid policy detects the
    over-long chain and falls back to traditional runahead (Fig. 8).
    A ~50/50 data-dependent branch supplies omnetpp's poor branch
    behaviour without feeding addresses.

    ``stateful=True`` additionally folds loaded data into the address
    state (an even more runahead-hostile variant used by tests/examples;
    every scheme's accuracy collapses because the source data is off
    chip).
    """
    if not 1 <= hash_rounds <= 16:
        raise ValueError("hash_rounds must be in 1..16")
    b = ProgramBuilder()
    mask = _mask_for(table_bytes)
    b.label("init")
    b.li(5, 0)                       # counter
    b.li(7, 0x9E3779B9)              # state seed
    b.li(24, iterations)
    b.li(26, region_base(0))
    b.li(27, _LINE_SHIFT)
    b.li(28, 0x5851F42D)             # multiplier
    b.li(29, 13)                     # shift amount
    b.label("loop")
    # Long address computation: counter (and optionally state) mixed
    # through `hash_rounds` shift/xor rounds.
    b.mul(9, 5, 28)
    if stateful:
        b.xor(10, 9, 7)
    else:
        b.addi(10, 9, 0x6D2B79F5)
    value = 10
    for round_index in range(hash_rounds):
        r = 11 + (round_index % 2) * 2
        b.shr(r, value, 29)
        b.xor(r + 1, r, value)
        value = r + 1
    b.andi(20, value, mask)
    b.shl(21, 20, 27)
    b.add(22, 21, 26)
    b.load(19, 22, 0)                # the probe (random line)
    b.andi(23, 19, 1)
    b.beq(23, 0, "skip_update")      # data-dependent (~50/50)
    if stateful:
        b.xor(7, 7, 19)              # state absorbs loaded (off-chip) data
    b.addi(16, 16, 1)                # bookkeeping on the taken path
    b.label("skip_update")
    b.addi(5, 5, 1)
    b.bne(5, 24, "loop")
    b.jmp("init")
    return Workload(name, b.build(entry="init", name=name),
                    description=description or "hash probing, long chains")


def compute(
    name: str,
    working_set_bytes: int = 64 << 10,
    filler_fp: int = 6,
    filler_int: int = 4,
    serial_fp: bool = False,
    branchy: bool = False,
    big_region_every: int = 0,
    big_region_bytes: int = 32 << 20,
    use_muldiv: bool = False,
    description: str = "",
) -> Workload:
    """Cache-resident compute loop (the 16 low-intensity benchmarks).

    The working set fits in the L1/LLC, so the loop is bound by execution
    resources and (with ``branchy=True``) branch mispredicts.  Setting
    ``big_region_every=N`` adds one random big-region load every N
    iterations, producing the fractional MPKIs of gcc/astar/xalancbmk.
    """
    b = ProgramBuilder()
    b.label("start")                             # one-time preamble
    if big_region_every:
        b.li(5, 0)                               # global counter: never reset
    b.label("init")                              # per-pass cursor reset
    b.li(1, region_base(0))
    b.li(24, region_base(0) + working_set_bytes)
    if big_region_every:
        b.li(26, region_base(1))
        b.li(27, _LINE_SHIFT)
        b.li(25, big_region_every - 1)
    if use_muldiv:
        b.li(28, 2654435761)
        b.li(29, 17)
    b.label("loop")
    b.load(9, 1, 0)                              # small region: cache hit
    _emit_filler(b, filler_fp, filler_int, serial_fp)
    if use_muldiv:
        b.mul(18, 9, 28)
        b.shr(19, 18, 29)
    if branchy:
        b.andi(20, 9, 1)
        b.beq(20, 0, "even")
        b.addi(16, 16, 1)
        b.jmp("join")
        b.label("even")
        b.addi(17, 17, 1)
        b.label("join")
    if big_region_every:
        b.addi(5, 5, 1)
        b.and_(21, 5, 25)
        b.bne(21, 0, "no_big")
        b.xor(22, 9, 5)                          # mix counter: fresh lines
        b.andi(22, 22, _mask_for(big_region_bytes))
        b.shl(22, 22, 27)
        b.add(22, 22, 26)
        b.load(23, 22, 0)                        # occasional far miss
        b.label("no_big")
    b.addi(1, 1, 8)
    b.bne(1, 24, "loop")
    b.jmp("init")
    return Workload(name, b.build(entry="start", name=name),
                    description=description or "cache-resident compute loop")


def linked_list(
    name: str,
    num_nodes: int = 1 << 16,
    node_stride: int = 256,
    payload_loads: int = 1,
    description: str = "",
) -> Workload:
    """A true serially-dependent linked-list walk (``p = p->next``).

    Built with a real initialised list (shuffled order), this is the
    pathological case where *no* runahead scheme can generate MLP — the
    next address is the missing data itself (Fig. 2's off-chip-source
    misses).  Used by examples and tests, not part of the SPEC06 suite.
    """
    from ..isa import DataMemory

    memory = DataMemory()
    base = region_base(0)
    # Deterministic shuffle of node order (LCG permutation walk).
    order = list(range(num_nodes))
    state = 0x12345678
    for i in range(num_nodes - 1, 0, -1):
        state = (state * 6364136223846793005 + 1442695040888963407) % (1 << 64)
        j = state % (i + 1)
        order[i], order[j] = order[j], order[i]
    addr_of = [base + idx * node_stride for idx in order]
    for here, nxt in zip(addr_of, addr_of[1:]):
        memory.store(here, nxt)
    memory.store(addr_of[-1], addr_of[0])        # circular

    b = ProgramBuilder()
    b.label("init")
    b.li(1, addr_of[0])
    b.label("loop")
    b.load(1, 1, 0)                              # p = p->next
    for k in range(payload_loads):
        b.load(9 + k, 1, 8 * (k + 1))
        b.add(16, 16, 9 + k)
    b.jmp("loop")
    return Workload(name, b.build(entry="init", name=name), memory=memory,
                    description=description or "serial linked-list walk")
