"""The synthetic SPEC CPU2006-like suite (one kernel per benchmark name).

Each entry tunes a kernel builder so the workload lands in its Table 2
memory-intensity class and exhibits the qualitative behaviour the paper's
motivation figures attribute to it:

* mcf / milc / soplex — short, highly repetitive miss chains (index-array
  gathers): the runahead buffer's best case.
* libquantum / lbm / bwaves — pure streams: prefetcher's best case;
  runahead chains are the trivial induction+load pair.
* leslie3d / GemsFDTD — multi-array stencil streams, high MPKI.
* zeusmp / cactusADM / wrf — stencils with heavy per-element FP work:
  medium MPKI, big bodies but tiny address chains, so the runahead buffer
  runs far further ahead than traditional runahead.
* omnetpp — stateful hash probing: long, low-repetition chains and
  data-dependent branches; traditional runahead's territory.
* sphinx3 — dependent two-level walk (cache-resident level 1): longer
  chains, moderately inaccurate when replayed from the buffer.
* 16 low-intensity benchmarks — cache-resident compute loops with varied
  FP/int/branch mixes and (for gcc/astar/xalancbmk et al.) an occasional
  far miss for their fractional MPKIs.

Ordering matches Fig. 1 (sorted by memory intensity).
"""

from __future__ import annotations

from .base import register
from .kernels import compute, dependent_walk, gather, hash_probe, streaming

KB = 1 << 10
MB = 1 << 20


def _lazy(builder, **params):
    return lambda: builder(**params)


# -- low intensity (MPKI <= 2), Fig. 1 left-to-right ---------------------------

register("calculix", "low", _lazy(
    compute, name="calculix", filler_fp=8, filler_int=4,
    working_set_bytes=4 * KB,
    description="FE solver: parallel FP, cache resident"))
register("povray", "low", _lazy(
    compute, name="povray", filler_fp=6, filler_int=4, serial_fp=True,
    working_set_bytes=4 * KB,
    description="ray tracing: serial FP chains"))
register("namd", "low", _lazy(
    compute, name="namd", filler_fp=9, filler_int=3,
    working_set_bytes=4 * KB,
    description="molecular dynamics: FP heavy"))
register("gamess", "low", _lazy(
    compute, name="gamess", filler_fp=7, filler_int=5,
    working_set_bytes=4 * KB,
    description="quantum chemistry: mixed FP/int"))
register("perlbench", "low", _lazy(
    compute, name="perlbench", filler_fp=1, filler_int=8, branchy=True,
    working_set_bytes=4 * KB, big_region_every=128,
    description="interpreter: branchy integer"))
register("tonto", "low", _lazy(
    compute, name="tonto", filler_fp=6, filler_int=3, serial_fp=True,
    working_set_bytes=4 * KB,
    description="quantum crystallography: serial FP"))
register("gromacs", "low", _lazy(
    compute, name="gromacs", filler_fp=7, filler_int=3,
    working_set_bytes=4 * KB,
    description="molecular dynamics"))
register("gobmk", "low", _lazy(
    compute, name="gobmk", filler_fp=0, filler_int=7, branchy=True,
    working_set_bytes=4 * KB, big_region_every=128,
    description="Go engine: mispredict-bound"))
register("dealII", "low", _lazy(
    compute, name="dealII", filler_fp=6, filler_int=4,
    working_set_bytes=4 * KB, big_region_every=128,
    description="FE library"))
register("sjeng", "low", _lazy(
    compute, name="sjeng", filler_fp=0, filler_int=6, branchy=True,
    use_muldiv=True, working_set_bytes=4 * KB, big_region_every=160,
    description="chess engine: branchy, mul/div"))
register("gcc", "low", _lazy(
    compute, name="gcc", filler_fp=0, filler_int=6, branchy=True,
    working_set_bytes=4 * KB, big_region_every=64,
    description="compiler: branchy, pointer-ish"))
register("hmmer", "low", _lazy(
    compute, name="hmmer", filler_fp=2, filler_int=9,
    working_set_bytes=4 * KB,
    description="profile HMM: ILP-rich integer"))
register("h264", "low", _lazy(
    compute, name="h264", filler_fp=2, filler_int=8,
    working_set_bytes=4 * KB, big_region_every=256,
    description="video encode: integer SIMD-ish"))
register("bzip2", "low", _lazy(
    compute, name="bzip2", filler_fp=0, filler_int=8, branchy=True,
    working_set_bytes=4 * KB, big_region_every=96,
    description="compression"))
register("astar", "low", _lazy(
    compute, name="astar", filler_fp=0, filler_int=5, branchy=True,
    working_set_bytes=4 * KB, big_region_every=64,
    description="path finding: fractional MPKI"))
register("xalancbmk", "low", _lazy(
    compute, name="xalancbmk", filler_fp=0, filler_int=5, branchy=True,
    working_set_bytes=4 * KB, big_region_every=96,
    description="XSLT: fractional MPKI"))

# -- medium intensity (2 < MPKI < 10) -------------------------------------------

register("zeusmp", "medium", _lazy(
    streaming, name="zeusmp", segment_elems=1024, num_arrays=2, stencil_taps=2, filler_fp=24,
    filler_int=2, array_bytes=8 * MB,
    description="CFD stencil: 2 streams, heavy FP"))
register("cactusADM", "medium", _lazy(
    streaming, name="cactusADM", segment_elems=1024, num_arrays=2, stencil_taps=3, filler_fp=30,
    filler_int=2, array_bytes=8 * MB, store=True,
    description="GR solver stencil: big body, tiny chains"))
register("wrf", "medium", _lazy(
    streaming, name="wrf", segment_elems=1024, num_arrays=1, stencil_taps=3, filler_fp=28,
    filler_int=2, array_bytes=8 * MB,
    description="weather stencil: 1 stream, heavy FP"))

# -- high intensity (MPKI >= 10) --------------------------------------------------

register("GemsFDTD", "high", _lazy(
    streaming, name="GemsFDTD", segment_elems=1024, num_arrays=5, filler_fp=12, filler_int=1,
    array_bytes=8 * MB,
    description="FDTD: 5 streams"))
register("leslie3d", "high", _lazy(
    streaming, name="leslie3d", segment_elems=1024, num_arrays=3, stencil_taps=2, filler_fp=10,
    filler_int=1, array_bytes=8 * MB, store=True,
    description="LES stencil: 3 streams + store"))
register("omnetpp", "high", _lazy(
    hash_probe, name="omnetpp", table_bytes=32 * MB, hash_rounds=16,
    description="discrete-event sim: hash probes with over-long chains"))
register("milc", "high", _lazy(
    gather, name="milc", index_region_bytes=8 * MB,
    data_region_bytes=32 * MB, deref_depth=1, filler_fp=8,
    description="lattice QCD: indirect gather + FP"))
register("soplex", "high", _lazy(
    gather, name="soplex", index_region_bytes=8 * MB,
    data_region_bytes=16 * MB, deref_depth=1, filler_fp=4, filler_int=2,
    store=True,
    description="LP solver: sparse gather + store"))
register("sphinx3", "high", _lazy(
    dependent_walk, name="sphinx3", seed_region_bytes=8 * MB,
    data_region_bytes=[256 * KB, 32 * MB], depth=2, filler_fp=6,
    description="speech: 2-level dependent walk"))
register("bwaves", "high", _lazy(
    streaming, name="bwaves", segment_elems=1024, num_arrays=3, filler_fp=10, filler_int=1,
    array_bytes=8 * MB,
    description="CFD: 3 pure streams"))
register("libquantum", "high", _lazy(
    streaming, name="libquantum", num_arrays=1, filler_int=2, store=True,
    array_bytes=16 * MB,
    description="quantum sim: single read-modify-write stream"))
register("lbm", "high", _lazy(
    streaming, name="lbm", segment_elems=1024, num_arrays=3, filler_fp=8, filler_int=1,
    store=True, array_bytes=8 * MB,
    description="lattice Boltzmann: 3 streams + store"))
register("mcf", "high", _lazy(
    gather, name="mcf", index_region_bytes=8 * MB,
    data_region_bytes=64 * MB, deref_depth=1, filler_int=6,
    store=True,
    description="network simplex: pointer-array walk, short chains"))
