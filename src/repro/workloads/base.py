"""Workload infrastructure: the Workload container and the suite registry.

A workload is a mini-ISA program plus its initial data memory and register
state.  The SPEC CPU2006 binaries/SimPoints the paper simulates are not
available, so ``repro.workloads.spec`` registers 29 synthetic kernels —
one per SPEC06 benchmark name — whose *memory-access structure* is tuned
to reproduce each benchmark's published characteristics (see DESIGN.md §1
for the substitution argument).

Kernels avoid large memory-image initialisation by exploiting the
deterministic hash-fill of :class:`~repro.isa.DataMemory`: loading an
uninitialised word returns address-derived pseudo-random junk, which,
masked into a region, serves as a pointer/index structure with zero
set-up cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..isa import NUM_ARCH_REGS, DataMemory, Program

# Disjoint address regions handed out to kernels (64 MB apart).
REGION_BYTES = 1 << 26


def region_base(index: int) -> int:
    """Base byte address of data region ``index``."""
    return (index + 1) * REGION_BYTES


@dataclass
class Workload:
    """A runnable workload: program + initial memory + initial registers."""

    name: str
    program: Program
    memory: DataMemory = field(default_factory=DataMemory)
    init_regs: Optional[list[int]] = None
    description: str = ""
    intensity: str = "low"           # "low" | "medium" | "high" (Table 2)

    def __post_init__(self) -> None:
        if self.init_regs is not None and len(self.init_regs) != NUM_ARCH_REGS:
            raise ValueError("init_regs must have NUM_ARCH_REGS entries")


# name -> zero-argument builder
_REGISTRY: dict[str, Callable[[], Workload]] = {}
_INTENSITY: dict[str, str] = {}


def register(name: str, intensity: str,
             builder: Callable[[], Workload]) -> None:
    """Add a named workload to the registry (idempotent per name)."""
    if intensity not in ("low", "medium", "high"):
        raise ValueError(f"bad intensity class: {intensity}")
    _REGISTRY[name] = builder
    _INTENSITY[name] = intensity


def build_workload(name: str) -> Workload:
    """Instantiate a registered workload (fresh memory/state every call)."""
    _ensure_suite()
    try:
        builder = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
    workload = builder()
    workload.intensity = _INTENSITY[name]
    return workload


def workload_names() -> list[str]:
    """All registered workload names, in suite (Fig. 1) order."""
    _ensure_suite()
    return list(_REGISTRY)


def intensity_of(name: str) -> str:
    _ensure_suite()
    return _INTENSITY[name]


def names_by_intensity(*classes: str) -> list[str]:
    """Workload names in the given intensity classes, suite order."""
    _ensure_suite()
    return [n for n in _REGISTRY if _INTENSITY[n] in classes]


def medium_high_names() -> list[str]:
    """The 13 benchmarks the paper's evaluation focuses on (Table 2)."""
    return names_by_intensity("medium", "high")


def _ensure_suite() -> None:
    # Importing the module populates the registry via register() calls.
    from . import spec  # noqa: F401
