"""Synthetic workloads: kernel builders and the SPEC06-like suite."""

from .base import (
    Workload,
    build_workload,
    intensity_of,
    medium_high_names,
    names_by_intensity,
    region_base,
    register,
    workload_names,
)
from .kernels import (
    compute,
    dependent_walk,
    gather,
    hash_probe,
    linked_list,
    streaming,
)

__all__ = [
    "Workload",
    "build_workload",
    "compute",
    "dependent_walk",
    "gather",
    "hash_probe",
    "intensity_of",
    "linked_list",
    "medium_high_names",
    "names_by_intensity",
    "region_base",
    "register",
    "streaming",
    "workload_names",
]
