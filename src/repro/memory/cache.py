"""Parametric set-associative write-back cache with in-fill (MSHR) tracking.

Timing model: an access at cycle ``t`` to a line whose fill is still in
flight (``ready_cycle > t``) completes when the fill does — this is the
MSHR merge path, so concurrent misses to one line collapse into a single
memory request.  Tags are updated at request time; the ``ready_cycle``
carried by each line delays use until the data has actually arrived.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Optional

from ..config import CacheConfig


class CacheLine:
    """State of one resident (or in-fill) cache line."""

    __slots__ = ("ready_cycle", "dirty", "prefetched", "referenced")

    def __init__(self, ready_cycle: int, prefetched: bool = False) -> None:
        self.ready_cycle = ready_cycle
        self.dirty = False
        self.prefetched = prefetched   # brought in by the prefetcher ...
        self.referenced = False        # ... and not yet used by a demand access


class CacheStats:
    """Hit/miss counters for one cache level."""

    __slots__ = ("hits", "misses", "fill_hits", "evictions", "writebacks",
                 "invalidations")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.fill_hits = 0      # hit on a line whose fill was in flight
        self.evictions = 0
        self.writebacks = 0
        self.invalidations = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses + self.fill_hits


class Cache:
    """One cache level.  Replacement is true LRU within a set."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.line_bytes = config.line_bytes
        self.num_sets = config.size_bytes // (config.assoc * config.line_bytes)
        if self.num_sets < 1:
            raise ValueError(f"{config.name}: zero sets")
        self.assoc = config.assoc
        self.latency = config.latency
        # One OrderedDict per set, keyed by line address (LRU at the front).
        self._sets: list[OrderedDict[int, CacheLine]] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self._resident = 0
        # MRU fast path: the last line that reached the tail of its set via
        # a touching lookup or a fill.  While it holds, a repeat access can
        # skip both the set indexing and the (no-op) ``move_to_end``.  The
        # invariant is maintained by updating it on every touch/fill and
        # clearing it when the tracked line is invalidated or the arrays
        # are cleared; a fill into any set replaces it with the filled
        # line, so a stale "no longer at tail" key can never survive.
        self._mru_key = -1
        self._mru_line: Optional[CacheLine] = None
        self.stats = CacheStats()
        # Called with the victim line address on eviction (inclusion hook).
        self.eviction_hook: Optional[Callable[[int, CacheLine], None]] = None

    def _set_for(self, line_addr: int) -> OrderedDict[int, CacheLine]:
        return self._sets[line_addr % self.num_sets]

    # -- lookups --------------------------------------------------------------

    def lookup(self, line_addr: int, touch: bool = True) -> Optional[CacheLine]:
        """Return the line if resident or in fill, else ``None``.

        Does not update hit/miss statistics; callers classify the access.
        """
        if line_addr == self._mru_key:
            # Already at the tail of its set: move_to_end would be a no-op.
            return self._mru_line
        cache_set = self._sets[line_addr % self.num_sets]
        line = cache_set.get(line_addr)
        if line is not None and touch:
            cache_set.move_to_end(line_addr)
            self._mru_key = line_addr
            self._mru_line = line
        return line

    def probe(self, line_addr: int) -> bool:
        """Non-intrusive presence check (no LRU update, no stats)."""
        if line_addr == self._mru_key:
            return True
        return line_addr in self._sets[line_addr % self.num_sets]

    # -- fills / evictions ------------------------------------------------------

    def fill(
        self, line_addr: int, ready_cycle: int, prefetched: bool = False
    ) -> Optional[tuple[int, CacheLine]]:
        """Allocate a line (tag now, data at ``ready_cycle``).

        Returns the evicted ``(line_addr, CacheLine)`` if a victim was
        displaced, else ``None``.  Filling a line that is already present
        just lowers its ready time (fill merge).
        """
        if line_addr == self._mru_key:
            # Fill merge on the MRU line: already at the tail of its set.
            existing = self._mru_line
            if existing.ready_cycle > ready_cycle:
                existing.ready_cycle = ready_cycle
            return None
        cache_set = self._sets[line_addr % self.num_sets]
        existing = cache_set.get(line_addr)
        if existing is not None:
            existing.ready_cycle = min(existing.ready_cycle, ready_cycle)
            cache_set.move_to_end(line_addr)
            self._mru_key = line_addr
            self._mru_line = existing
            return None
        victim = None
        if len(cache_set) >= self.assoc:
            victim_addr, victim_line = cache_set.popitem(last=False)
            self.stats.evictions += 1
            self._resident -= 1
            if victim_line.dirty:
                self.stats.writebacks += 1
            if victim_addr == self._mru_key:
                self._mru_key = -1
                self._mru_line = None
            victim = (victim_addr, victim_line)
            if self.eviction_hook is not None:
                self.eviction_hook(victim_addr, victim_line)
        line = CacheLine(ready_cycle, prefetched=prefetched)
        cache_set[line_addr] = line
        self._resident += 1
        self._mru_key = line_addr
        self._mru_line = line
        return victim

    def invalidate(self, line_addr: int) -> Optional[CacheLine]:
        """Remove a line (back-invalidation for inclusion); returns it."""
        cache_set = self._set_for(line_addr)
        line = cache_set.pop(line_addr, None)
        if line is not None:
            self.stats.invalidations += 1
            self._resident -= 1
            if line_addr == self._mru_key:
                self._mru_key = -1
                self._mru_line = None
        return line

    def mark_dirty(self, line_addr: int) -> None:
        line = self.lookup(line_addr, touch=False)
        if line is not None:
            line.dirty = True

    # -- warm-state snapshots -----------------------------------------------------

    def snapshot(self) -> tuple:
        """Complete array state: per-set line lists in LRU order (LRU
        first), the MRU fast-path key, and the stats counters.

        The format is position-independent data (ints/bools only), so it
        pickles, digests, and compares across processes; line identity is
        not preserved (``restore`` builds fresh :class:`CacheLine`
        objects), which is invisible to the simulator — nothing compares
        lines by ``id``.
        """
        st = self.stats
        return (
            tuple(
                tuple((addr, ln.ready_cycle, ln.dirty, ln.prefetched,
                       ln.referenced)
                      for addr, ln in cache_set.items())
                for cache_set in self._sets
            ),
            self._mru_key,
            (st.hits, st.misses, st.fill_hits, st.evictions, st.writebacks,
             st.invalidations),
        )

    def restore(self, snap: tuple) -> None:
        """Rebuild the arrays from a :meth:`snapshot` (same geometry)."""
        sets, mru_key, stats = snap
        if len(sets) != self.num_sets:
            raise ValueError(
                f"{self.config.name}: snapshot has {len(sets)} sets, "
                f"cache has {self.num_sets}")
        self._sets = []
        resident = 0
        mru_line = None
        for entries in sets:
            cache_set: OrderedDict[int, CacheLine] = OrderedDict()
            for addr, ready, dirty, prefetched, referenced in entries:
                line = CacheLine(ready, prefetched=prefetched)
                line.dirty = dirty
                line.referenced = referenced
                cache_set[addr] = line
                if addr == mru_key:
                    mru_line = line
            resident += len(entries)
            self._sets.append(cache_set)
        self._resident = resident
        self._mru_key = mru_key if mru_line is not None else -1
        self._mru_line = mru_line
        st = self.stats
        (st.hits, st.misses, st.fill_hits, st.evictions, st.writebacks,
         st.invalidations) = stats

    # -- introspection -----------------------------------------------------------

    def resident_lines(self) -> int:
        """Number of resident (or in-fill) lines — O(1), counter-maintained."""
        return self._resident

    def clear(self) -> None:
        for cache_set in self._sets:
            cache_set.clear()
        self._resident = 0
        self._mru_key = -1
        self._mru_line = None
